"""Parallel + cached sweeps must be bit-identical to serial sweeps.

The parallel engine is pure plumbing: workers run the very same
``ExperimentRunner._run`` on the very same inputs, and the persistent
cache stores exactly what was computed.  These tests pin that down for
three applications (compute-bound, divergence-bound, and memory-bound
representatives): every metric of every cell — cycles, code size, and
every hardware counter — must match the serial runner exactly, cold and
warm.
"""

import dataclasses

import pytest

from repro.bench import benchmark_by_name
from repro.gpu.counters import Counters
from repro.harness import CellCache, ExperimentRunner, ParallelRunner

APPS = ("complex", "coordinates", "XSBench")


def sweep_signature(sweep):
    """Every observable metric of every cell, in deterministic order."""
    rows = []
    for config in sorted(sweep):
        for cell in sweep[config]:
            rows.append((
                cell.app, cell.config, cell.loop_id, cell.factor,
                cell.cycles, cell.code_size, cell.outputs_match_baseline,
                cell.timed_out, cell.error,
                tuple(getattr(cell.counters, f.name)
                      for f in dataclasses.fields(Counters)),
            ))
    return rows


@pytest.fixture(scope="module")
def serial_sweeps():
    runner = ExperimentRunner(max_instructions=8000, compile_timeout=20.0)
    return {app: sweep_signature(runner.full_sweep(benchmark_by_name(app)))
            for app in APPS}


def test_parallel_cold_matches_serial(serial_sweeps, tmp_path_factory):
    cache = CellCache(tmp_path_factory.mktemp("cellcache"))
    runner = ParallelRunner(max_instructions=8000, compile_timeout=20.0,
                            jobs=2, cache=cache)
    for app in APPS:
        sweep = runner.full_sweep(benchmark_by_name(app))
        assert sweep_signature(sweep) == serial_sweeps[app], app
    assert cache.stats()["entries"] > 0

    # A second runner over the same cache must reproduce everything from
    # disk alone — bit-identical again, with zero recomputation.
    warm = ParallelRunner(max_instructions=8000, compile_timeout=20.0,
                          jobs=2, cache=CellCache(cache.root))
    for app in APPS:
        sweep = warm.full_sweep(benchmark_by_name(app))
        assert sweep_signature(sweep) == serial_sweeps[app], app
    assert warm.cache.misses == 0


def test_serial_jobs1_path_matches_serial(serial_sweeps, tmp_path_factory):
    # jobs=1 takes the in-process path (no pool); must agree as well.
    runner = ParallelRunner(max_instructions=8000, compile_timeout=20.0,
                            jobs=1,
                            cache=CellCache(tmp_path_factory.mktemp("cc")))
    app = APPS[0]
    sweep = runner.full_sweep(benchmark_by_name(app))
    assert sweep_signature(sweep) == serial_sweeps[app]
