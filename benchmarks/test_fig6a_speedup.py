"""Regenerates Figure 6a: per-loop u&u speedup (factors 2/4/8) + heuristic.

Shape targets (paper RQ1):
* every application except `complex` has at least one (loop, factor) that
  beats baseline;
* `complex` slows down and gets worse as the factor grows;
* the heuristic avoids the worst fixed-factor slowdowns.
"""

import math

from conftest import write_artifact

from repro.harness import geomean
from repro.harness.fig6 import format_figure, series


def test_fig6a(benchmark, runner, benches, results_dir):
    points = benchmark.pedantic(
        lambda: series(runner, benches), iterations=1, rounds=1)
    text = format_figure(points, "speedup")
    write_artifact(results_dir, "fig6a.txt", text)
    from repro.harness.figures_svg import fig6_svg
    write_artifact(results_dir, "fig6a.svg", fig6_svg(points, "speedup"))
    print()
    print(text)

    finite = [p for p in points if math.isfinite(p.speedup) and p.speedup > 0]
    assert finite, "sweep produced no valid points"
    for p in finite:
        assert p.outputs_ok, f"{p.app} {p.loop_id}@{p.factor} wrong outputs"

    per_app_best = {}
    for p in finite:
        if p.loop_id is not None:
            per_app_best[p.app] = max(per_app_best.get(p.app, 0.0), p.speedup)

    # RQ1: at least one profitable factor for (nearly) every app but complex.
    profitable = [app for app, s in per_app_best.items() if s > 1.0]
    assert len(profitable) >= 10, profitable
    assert per_app_best["complex"] < 1.0

    # complex: slowdown grows with the unroll factor (paper: worst at u=8).
    complex_by_factor = {p.factor: p.speedup for p in finite
                         if p.app == "complex" and p.loop_id is not None}
    if {2, 8} <= set(complex_by_factor):
        assert complex_by_factor[8] <= complex_by_factor[2]

    # Heuristic points exist for every app and avoid the worst extremes.
    heuristic = {p.app: p.speedup for p in finite if p.loop_id is None}
    assert len(heuristic) == 16
    worst_fixed = min(p.speedup for p in finite if p.loop_id is not None)
    assert min(heuristic.values()) > worst_fixed
