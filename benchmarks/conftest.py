"""Shared fixtures for the exhibit-regeneration benchmarks.

One :class:`ParallelRunner` is shared across the whole session so each
(app, config, loop, factor) cell is compiled and simulated exactly once no
matter how many exhibits consume it; cells persist in the cache under
``results/.cellcache/`` so later sessions reuse them (``REPRO_JOBS`` and
``REPRO_CACHE_DIR`` override worker count and location).  Text artifacts
are written to ``results/`` next to the repository root.
"""

import pathlib

import pytest

from repro.bench import all_benchmarks
from repro.harness import ParallelRunner

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def runner():
    return ParallelRunner(max_instructions=8000, compile_timeout=20.0)


@pytest.fixture(scope="session")
def benches():
    return all_benchmarks()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
