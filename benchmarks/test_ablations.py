"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper exhibit — these isolate *why* u&u works in this reproduction:

1. **Branch facts**: disable GVN's provenance-fact machinery and u&u's win
   on the fact-driven benchmarks collapses (the duplication alone buys
   little — the paper's central claim that the *subsequent* optimizations
   do the work).
2. **Heuristic budget c**: shrink the f(p,s,u) bound and the heuristic
   stops selecting loops; grow it and it behaves like fixed large factors,
   inheriting their code-size extremes.
3. **Divergence filter** (the paper's future-work extension): with
   ``avoid_divergent=True`` the `complex` regression disappears.
"""

import numpy as np
import pytest
from conftest import write_artifact

from repro.bench import benchmark_by_name
from repro.harness import ExperimentRunner
from repro.transforms import HeuristicParams, compile_module
from repro.transforms.heuristic import select_loops
from repro.analysis import LoopInfo


def _run_config(bench, config, branch_facts=True, **kw):
    module = bench.build_module()
    compile_module(module, config, max_instructions=8000,
                   branch_facts=branch_facts, **kw)
    outputs, counters = bench.run(module)
    return outputs, counters


def test_branch_facts_ablation(benchmark, results_dir):
    """u&u minus branch facts ~= expensive no-op on fact-driven loops."""

    def run():
        rows = []
        # bezier and bspline wins are fact-driven (condition re-checks fold
        # via edge facts); XSBench's win flows through unmerge's phi
        # collapse + instcombine instead, so it is reported but expected to
        # be insensitive to this ablation.
        for app, loop_id, factor in [("bezier-surface", "bezier_blend:0", 2),
                                     ("bspline-vgh", "bspline_vgh:0", 5),
                                     ("XSBench", "grid_search:0", 2)]:
            bench = benchmark_by_name(app)
            base_out, base = _run_config(bench, "baseline")
            uu_out, uu = _run_config(bench, "uu", loop_id=loop_id,
                                     factor=factor)
            abl_out, ablated = _run_config(bench, "uu", branch_facts=False,
                                           loop_id=loop_id, factor=factor)
            for name in base_out:
                assert np.array_equal(base_out[name], uu_out[name])
                assert np.array_equal(base_out[name], abl_out[name])
            rows.append((app, base.cycles / uu.cycles,
                         base.cycles / ablated.cycles))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = [f"{'app':<16} {'u&u':>8} {'u&u, no branch facts':>22}"]
    for app, with_facts, without in rows:
        lines.append(f"{app:<16} {with_facts:>7.3f}x {without:>21.3f}x")
    text = "\n".join(["Ablation: GVN branch facts"] + lines)
    write_artifact(results_dir, "ablation_branch_facts.txt", text)
    print("\n" + text)

    by_app = {app: (wf, wo) for app, wf, wo in rows}
    # The facts account for a real share of the win on the fact-driven loops
    # and never hurt elsewhere.
    for app in ("bezier-surface", "bspline-vgh"):
        with_facts, without = by_app[app]
        assert with_facts > without, (app, with_facts, without)
    for app, with_facts, without in rows:
        assert with_facts >= without * 0.999, (app, with_facts, without)


def test_heuristic_budget_ablation(benchmark, results_dir):
    """The c bound controls how many loops are selected."""

    def run():
        bench = benchmark_by_name("rainflow")
        module = bench.build_module()
        func = module.get_function("rainflow_count")
        info = LoopInfo.compute(func)
        counts = {}
        for c in (32, 1024, 1 << 20):
            decisions = select_loops(func, info, HeuristicParams(c=c))
            counts[c] = sum(1 for d in decisions if d.factor is not None)
        return counts

    counts = benchmark.pedantic(run, iterations=1, rounds=1)
    text = "Ablation: heuristic budget c -> selected loops " + repr(counts)
    write_artifact(results_dir, "ablation_heuristic_budget.txt", text)
    print("\n" + text)

    assert counts[32] <= counts[1024] <= counts[1 << 20]
    assert counts[32] == 0              # Tiny budget selects nothing.
    assert counts[1024] >= 1            # The paper's budget selects.


def test_divergence_filter_ablation(benchmark, runner, results_dir):
    """avoid_divergent=True neutralises the complex regression."""

    def run():
        bench = benchmark_by_name("complex")
        plain_runner = ExperimentRunner(
            heuristic=HeuristicParams(), max_instructions=8000)
        aware_runner = ExperimentRunner(
            heuristic=HeuristicParams(avoid_divergent=True),
            max_instructions=8000)
        base = plain_runner.baseline(bench)
        plain = plain_runner.heuristic_cell(bench)
        base2 = aware_runner.baseline(bench)
        aware = aware_runner.heuristic_cell(bench)
        return (plain.speedup_over(base), aware.speedup_over(base2))

    plain, aware = benchmark.pedantic(run, iterations=1, rounds=1)
    text = (f"Ablation: divergence filter on complex — default {plain:.3f}x, "
            f"avoid_divergent {aware:.3f}x")
    write_artifact(results_dir, "ablation_divergence_filter.txt", text)
    print("\n" + text)

    assert plain < 0.9          # Default heuristic regresses on complex.
    assert aware > 0.95         # The filter keeps baseline performance.


def test_partial_unmerging_extension(benchmark, results_dir):
    """The paper's Section VI extension: partial unmerging skips merges
    with no foldable provenance, containing code growth and the complex
    slowdown while keeping the wins where facts exist."""

    from repro.analysis import LoopInfo
    from repro.transforms.uu import apply_uu
    from repro.transforms.pass_manager import PassManager
    from repro.transforms import SimplifyCFG

    def measure(app, loop_id, factor, selective):
        bench = benchmark_by_name(app)
        module = bench.build_module()
        # Early SimplifyCFG as in the real pipeline, then raw u&u so the
        # comparison isolates the unmerge policy.
        PassManager([SimplifyCFG()]).run(module)
        for func in module.functions.values():
            info = LoopInfo.compute(func)
            target = info.by_id(loop_id)
            if target is not None:
                apply_uu(func, target, factor, max_instructions=8000,
                         selective=selective)
        outputs, counters = bench.run(module)
        return outputs, counters, module.instruction_count()

    def run():
        rows = []
        for app, loop_id, factor in [("complex", "complex_pow:0", 4),
                                     ("bezier-surface", "bezier_blend:0", 2)]:
            bench = benchmark_by_name(app)
            base_out, base = _run_config(bench, "baseline")
            f_out, full, f_size = measure(app, loop_id, factor, False)
            s_out, sel, s_size = measure(app, loop_id, factor, True)
            for name in base_out:
                assert np.array_equal(base_out[name], f_out[name])
                assert np.array_equal(base_out[name], s_out[name])
            rows.append((app, base.cycles / full.cycles,
                         base.cycles / sel.cycles, f_size, s_size))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = [f"{'app':<16} {'full u&u':>9} {'partial':>9} "
             f"{'size full':>10} {'size part':>10}"]
    for app, full_s, sel_s, f_size, s_size in rows:
        lines.append(f"{app:<16} {full_s:>8.3f}x {sel_s:>8.3f}x "
                     f"{f_size:>10} {s_size:>10}")
    text = "\n".join(["Ablation: partial unmerging (paper Section VI)"]
                     + lines)
    write_artifact(results_dir, "ablation_partial_unmerge.txt", text)
    print("\n" + text)

    by_app = {r[0]: r for r in rows}
    # complex: skipping the unprofitable merge avoids the blowup.
    _, full_s, sel_s, f_size, s_size = by_app["complex"]
    assert sel_s > full_s
    assert s_size < f_size
    # bezier: the profitable merge is still duplicated, keeping the win.
    _, full_s, sel_s, _, _ = by_app["bezier-surface"]
    assert sel_s > 1.0
