"""Regenerates Figure 8a: per-loop scatter of u&u vs plain unroll speedup.

Shape targets (paper):
* several loops sit below the diagonal (u&u wins where unroll does not);
* a large cluster sits on/near the diagonal (similar speedups);
* factor 8 exhibits both the greatest u&u speedups and the greatest
  slowdowns (code-size blowup), while factors 2/4 avoid severe slowdown.
"""

import math

from conftest import write_artifact

from repro.harness.fig8 import format_figure, series


def test_fig8a(benchmark, runner, benches, results_dir):
    points = benchmark.pedantic(
        lambda: series("unroll", runner, benches), iterations=1, rounds=1)
    finite = [p for p in points
              if math.isfinite(p.uu_speedup) and p.uu_speedup > 0]
    text = format_figure(finite, "unroll")
    write_artifact(results_dir, "fig8a.txt", text)
    from repro.harness.figures_svg import fig8_svg
    write_artifact(results_dir, "fig8a.svg",
                   fig8_svg(finite, "unroll"))
    print()
    print(text)

    assert len(finite) >= 30

    uu_wins = [p for p in finite if p.uu_speedup > p.other_speedup * 1.02]
    near_diag = [p for p in finite
                 if abs(p.uu_speedup - p.other_speedup) <=
                 0.05 * max(p.uu_speedup, p.other_speedup)]
    assert len(uu_wins) >= 5, "u&u must win on a meaningful set of loops"
    assert len(near_diag) >= 5, "many loops should tie"

    # Factor-8 extremes vs moderate factors (paper's closing RQ3 point).
    by_factor = {}
    for p in finite:
        by_factor.setdefault(p.factor, []).append(p.uu_speedup)
    if 8 in by_factor and 2 in by_factor:
        assert min(by_factor[8]) <= min(by_factor[2])
