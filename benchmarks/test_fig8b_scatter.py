"""Regenerates Figure 8b: per-loop scatter of u&u vs plain unmerge speedup.

Shape target (paper): "unmerge is typically ineffective unless composed
with unrolling" — the bulk of unmerge-alone speedups cluster at ~1.0, and
loops where u&u wins big gain little from unmerge alone.
"""

import math

from conftest import write_artifact

from repro.harness import geomean
from repro.harness.fig8 import format_figure, series


def test_fig8b(benchmark, runner, benches, results_dir):
    points = benchmark.pedantic(
        lambda: series("unmerge", runner, benches), iterations=1, rounds=1)
    finite = [p for p in points
              if math.isfinite(p.uu_speedup) and p.uu_speedup > 0]
    text = format_figure(finite, "unmerge")
    write_artifact(results_dir, "fig8b.txt", text)
    from repro.harness.figures_svg import fig8_svg
    write_artifact(results_dir, "fig8b.svg",
                   fig8_svg(finite, "unmerge"))
    print()
    print(text)

    assert len(finite) >= 30

    # Unmerge alone hovers around 1.0 for the majority of loops.
    unmerge_speedups = {(p.app, p.loop_id): p.other_speedup for p in finite}
    near_one = [s for s in unmerge_speedups.values() if 0.9 <= s <= 1.15]
    assert len(near_one) >= len(unmerge_speedups) * 0.5

    # In aggregate, composing with unrolling is what pays off: geomean of
    # the best u&u factor per loop beats geomean of unmerge alone.
    best_uu = {}
    for p in finite:
        key = (p.app, p.loop_id)
        best_uu[key] = max(best_uu.get(key, 0.0), p.uu_speedup)
    assert geomean(best_uu.values()) > geomean(unmerge_speedups.values())
