"""Interpreter performance guard.

The pre-decoded fast-path interpreter (see ``repro.gpu.machine``) is what
keeps the full sweep tractable; an accidental return to per-instruction
``isinstance`` dispatch would show up here as a multi-x slowdown long
before anyone notices sweeps crawling.  The budget was recorded on the
reference container (best-of-5 ~0.02-0.05 s); the pre-decode rewrite runs
~3-7x under it, while the old dispatch loop exceeded it.  Set
``REPRO_SKIP_PERF=1`` to skip on slow or heavily-loaded machines.
"""

import os
import time

import pytest

from repro.bench import benchmark_by_name
from repro.harness.benchinterp import _KERNELS, bench_kernel

#: Recorded best-of-5 wall-clock budget (seconds) for one XSBench workload
#: run (build excluded) on the reference container.
XSBENCH_RUN_BUDGET_S = 0.10
#: Allowed slack over the budget before the guard fails.
SLACK = 1.5


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_xsbench_simulation_within_budget():
    bench = benchmark_by_name("XSBench")
    module = bench.build_module()
    bench.run(module)  # Warm-up: numpy dispatch caches, allocator.
    best = min(
        (lambda t0: (bench.run(module), time.perf_counter() - t0)[1])(
            time.perf_counter())
        for _ in range(5))
    limit = XSBENCH_RUN_BUDGET_S * SLACK
    assert best <= limit, (
        f"XSBench simulation best-of-5 took {best:.3f}s, over the "
        f"{limit:.3f}s guard ({SLACK}x the recorded {XSBENCH_RUN_BUDGET_S}s "
        f"budget) — did the interpreter fast path regress?")


#: Required batched-over-per-warp speedup on a uniform multi-warp launch.
#: The reference container measures ~3.5-4x at 16 warps; 2x leaves
#: headroom for noisy machines while still catching the failure mode
#: that matters (the batched engine silently degenerating to per-warp
#: execution, which would read ~1.0x).
BATCHED_MIN_SPEEDUP = 2.0


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_batched_engine_speedup_on_uniform_launch():
    name, needs_buf, text = _KERNELS[0]
    assert name == "uniform"
    # Warm-up launch (parse + numpy dispatch caches), then median-of-3
    # per engine inside bench_kernel.
    bench_kernel(name, needs_buf, text, warps=16, repeats=1, trips=50)
    row = bench_kernel(name, needs_buf, text, warps=16, repeats=3)
    assert row.speedup >= BATCHED_MIN_SPEEDUP, (
        f"batched engine only {row.speedup:.2f}x over per-warp on a "
        f"uniform 16-warp launch (floor {BATCHED_MIN_SPEEDUP}x) — is the "
        f"launch still being executed as one lattice?")
