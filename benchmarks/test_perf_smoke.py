"""Interpreter performance guard.

The pre-decoded fast-path interpreter (see ``repro.gpu.machine``) is what
keeps the full sweep tractable; an accidental return to per-instruction
``isinstance`` dispatch would show up here as a multi-x slowdown long
before anyone notices sweeps crawling.  The budget was recorded on the
reference container (best-of-5 ~0.02-0.05 s); the pre-decode rewrite runs
~3-7x under it, while the old dispatch loop exceeded it.  Set
``REPRO_SKIP_PERF=1`` to skip on slow or heavily-loaded machines.
"""

import os
import time

import pytest

from repro.bench import benchmark_by_name

#: Recorded best-of-5 wall-clock budget (seconds) for one XSBench workload
#: run (build excluded) on the reference container.
XSBENCH_RUN_BUDGET_S = 0.10
#: Allowed slack over the budget before the guard fails.
SLACK = 1.5


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_xsbench_simulation_within_budget():
    bench = benchmark_by_name("XSBench")
    module = bench.build_module()
    bench.run(module)  # Warm-up: numpy dispatch caches, allocator.
    best = min(
        (lambda t0: (bench.run(module), time.perf_counter() - t0)[1])(
            time.perf_counter())
        for _ in range(5))
    limit = XSBENCH_RUN_BUDGET_S * SLACK
    assert best <= limit, (
        f"XSBench simulation best-of-5 took {best:.3f}s, over the "
        f"{limit:.3f}s guard ({SLACK}x the recorded {XSBENCH_RUN_BUDGET_S}s "
        f"budget) — did the interpreter fast path regress?")
