"""Interpreter performance guard.

The pre-decoded fast-path interpreter (see ``repro.gpu.machine``) is what
keeps the full sweep tractable; an accidental return to per-instruction
``isinstance`` dispatch would show up here as a multi-x slowdown long
before anyone notices sweeps crawling.  The budget was recorded on the
reference container (best-of-5 ~0.02-0.05 s); the pre-decode rewrite runs
~3-7x under it, while the old dispatch loop exceeded it.  Set
``REPRO_SKIP_PERF=1`` to skip on slow or heavily-loaded machines.
"""

import os
import time

import pytest

from repro.bench import benchmark_by_name
from repro.harness import perfhistory
from repro.harness.benchinterp import _KERNELS, bench_kernel

#: Recorded best-of-5 wall-clock budget (seconds) for one XSBench workload
#: run (build excluded) on the reference container.
XSBENCH_RUN_BUDGET_S = 0.10
#: Allowed slack over the budget before the guard fails.
SLACK = 1.5


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_xsbench_simulation_within_budget():
    bench = benchmark_by_name("XSBench")
    module = bench.build_module()
    bench.run(module)  # Warm-up: numpy dispatch caches, allocator.
    best = min(
        (lambda t0: (bench.run(module), time.perf_counter() - t0)[1])(
            time.perf_counter())
        for _ in range(5))
    limit = XSBENCH_RUN_BUDGET_S * SLACK
    assert best <= limit, (
        f"XSBench simulation best-of-5 took {best:.3f}s, over the "
        f"{limit:.3f}s guard ({SLACK}x the recorded {XSBENCH_RUN_BUDGET_S}s "
        f"budget) — did the interpreter fast path regress?")


#: Required batched-over-per-warp speedup on a uniform multi-warp launch.
#: The reference container measures ~3.5-4x at 16 warps; 2x leaves
#: headroom for noisy machines while still catching the failure mode
#: that matters (the batched engine silently degenerating to per-warp
#: execution, which would read ~1.0x).
BATCHED_MIN_SPEEDUP = 2.0

#: Required jit-over-per-warp speedup on the same uniform launch.  The
#: reference container measures ~10-12x; 4x catches the jit tier falling
#: back to block-at-a-time dispatch (which reads as plain batched, ~3.5x)
#: without tripping on machine noise.
JIT_MIN_SPEEDUP = 4.0

#: Required jit-over-batched ratio on the briefly-divergent kernel.  This
#: is the demotion-hysteresis guard: briefdiv's one-off prelude branch
#: splits the lattice on the first trip, and without hysteresis the
#: singleton rows demote to per-warp execution and never rejoin the
#: compiled regions (reference measures ~2.5x with hysteresis, ~parity
#: without).
BRIEFDIV_JIT_VS_BATCHED = 1.0

#: Required fused-over-unfused jit speedup on the ``chain`` kernel, whose
#: long memory-free chain is the expression fuser's home turf.  The
#: reference container measures ~1.7-2.0x; 1.3x catches fusion silently
#: not engaging (which reads ~1.0x) without tripping on noise.
CHAIN_FUSED_MIN_SPEEDUP = 1.3

#: Floor for fused-vs-unfused on *every* microkernel shape: fusion must
#: never make a kernel slower.  Shapes where nothing fuses (``divergent``
#: — its only chain is shorter than ``MIN_CHAIN``) sit at parity, so the
#: floor carries noise headroom below 1.0 while still catching a real
#: regression (a fused segment losing to the specialized closures reads
#: well under 0.9x, as the pre-``MIN_CHAIN`` tuning did).
FUSED_MIN_EVERYWHERE = 0.9

#: Kernels benchmarked by the module fixture (warm-up, then median-of-3
#: per engine at 16 warps).  The full bench-interp set: the fusion
#: guards quantify over every shape, and the emitted BENCH json should
#: archive the fusion kernels alongside the originals.
_SMOKE_KERNELS = tuple(name for name, _, _ in _KERNELS)


@pytest.fixture(scope="module")
def engine_rows():
    """Bench the smoke kernels once; every engine guard reads from here.

    Also emits the machine-readable ``BENCH_<date>.json`` record (same
    shape as ``repro bench-interp --json``) so every test session archives
    engine throughput alongside test results.  ``REPRO_BENCH_JSON``
    overrides the destination path; set it to ``0`` to disable emission.
    When emission is on, the run also appends a perf-history record
    (ratio metrics only; see ``repro.harness.perfhistory``) so the trend
    gate below has data; ``REPRO_PERF_CHECK=0`` disables both the append
    and the gate.
    """
    rows = {}
    for name, needs_buf, text in _KERNELS:
        if name not in _SMOKE_KERNELS:
            continue
        # Warm-up launch (parse + numpy dispatch caches), then
        # median-of-3 per engine inside bench_kernel.
        bench_kernel(name, needs_buf, text, warps=16, repeats=1, trips=50)
        rows[name] = bench_kernel(name, needs_buf, text, warps=16, repeats=3)
    json_out = os.environ.get("REPRO_BENCH_JSON")
    if json_out != "0":
        from repro.harness.benchinterp import (DEFAULT_TRIPS,
                                               bench_json_payload,
                                               default_bench_json_path,
                                               write_bench_json)
        path = json_out or default_bench_json_path()
        write_bench_json(list(rows.values()), 16, DEFAULT_TRIPS, path,
                         source="perf-smoke")
        if os.environ.get(perfhistory.CHECK_ENV) != "0":
            payload = bench_json_payload(list(rows.values()), 16,
                                         DEFAULT_TRIPS, "perf-smoke")
            perfhistory.append_record(
                perfhistory.record_from_bench(payload, source="perf-smoke"))
    return rows


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_batched_engine_speedup_on_uniform_launch(engine_rows):
    row = engine_rows["uniform"]
    assert row.speedup >= BATCHED_MIN_SPEEDUP, (
        f"batched engine only {row.speedup:.2f}x over per-warp on a "
        f"uniform 16-warp launch (floor {BATCHED_MIN_SPEEDUP}x) — is the "
        f"launch still being executed as one lattice?")


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_jit_engine_speedup_on_uniform_launch(engine_rows):
    row = engine_rows["uniform"]
    assert row.jit_speedup >= JIT_MIN_SPEEDUP, (
        f"jit engine only {row.jit_speedup:.2f}x over per-warp on a "
        f"uniform 16-warp launch (floor {JIT_MIN_SPEEDUP}x) — are compiled "
        f"regions still being entered, or is every block deopting?")


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_jit_hysteresis_on_briefly_divergent_launch(engine_rows):
    row = engine_rows["briefdiv"]
    assert row.jit_vs_batched >= BRIEFDIV_JIT_VS_BATCHED, (
        f"jit only {row.jit_vs_batched:.2f}x over batched on the "
        f"briefly-divergent kernel (floor {BRIEFDIV_JIT_VS_BATCHED}x) — "
        f"did demotion hysteresis stop keeping post-prelude rows on the "
        f"compiled path?")


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_fuser_speedup_on_chain_kernel(engine_rows):
    row = engine_rows["chain"]
    assert row.fused_speedup >= CHAIN_FUSED_MIN_SPEEDUP, (
        f"fused jit only {row.fused_speedup:.2f}x over fusion-disabled "
        f"jit on the chain kernel (floor {CHAIN_FUSED_MIN_SPEEDUP}x) — "
        f"is the expression fuser still collapsing the loop body into "
        f"one generated closure?")


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_fuser_never_slower_on_any_kernel(engine_rows):
    slow = {name: row.fused_speedup for name, row in engine_rows.items()
            if row.fused_speedup < FUSED_MIN_EVERYWHERE}
    assert not slow, (
        f"fusion made kernels slower than the fusion-disabled jit "
        f"(floor {FUSED_MIN_EVERYWHERE}x): "
        + ", ".join(f"{k}={v:.2f}x" for k, v in sorted(slow.items()))
        + " — should MIN_CHAIN exclude these segment shapes?")


#: Relative geomean drop the trend gate tolerates before failing.  Far
#: looser than ``repro perf check``'s 8% default: the committed baseline
#: was recorded on the reference container, and tier-1 must stay green on
#: slower machines — 50% still catches the engine-tier failure modes the
#: floors above describe (a tier silently degenerating reads as 3-10x).
#: Override with ``REPRO_PERF_THRESHOLD``; skip with ``REPRO_PERF_CHECK=0``.
PERF_GATE_THRESHOLD = float(os.environ.get("REPRO_PERF_THRESHOLD", "0.5"))


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
@pytest.mark.skipif(os.environ.get(perfhistory.CHECK_ENV) == "0",
                    reason=f"{perfhistory.CHECK_ENV}=0")
def test_perf_no_regression_vs_previous_record(engine_rows):
    """Trend gate: this run's geomeans vs the previous history record.

    The fixture appended this run's record, so the previous one is the
    committed baseline (or the last local run).  Only ``geomean/``
    rollups are gated — per-kernel ratios are noisier and already have
    dedicated floors above.
    """
    records = perfhistory.read_history()
    if len(records) < 2:
        pytest.skip("no prior perf-history record to compare against")
    regressions = perfhistory.check_regression(
        records[-2], records[-1], threshold=PERF_GATE_THRESHOLD,
        prefix="geomean/")
    assert not regressions, (
        f"engine geomeans regressed beyond {PERF_GATE_THRESHOLD:.0%} of "
        f"the previous perf-history record "
        f"({records[-2].get('source')} @ {records[-2].get('recorded_at')}):"
        + "".join("\n  " + r.describe() for r in regressions)
        + f"\n(set {perfhistory.CHECK_ENV}=0 or raise "
        "REPRO_PERF_THRESHOLD on known-slow machines)")


#: Ratio floor for the tracing-disabled run against the uninstrumented
#: interpreter's recorded envelope: the disabled obs path must cost under
#: 3% end-to-end, so it has to fit the very same budget the pre-obs
#: interpreter guard uses (which itself carries 1.5x slack on a budget
#: the fast path beats 3-7x — a >3% structural regression of the disabled
#: path, e.g. per-block object construction, blows through it while
#: scheduler noise does not).
OBS_DISABLED_MAX_OVERHEAD = 0.03


def test_obs_disabled_path_does_no_work():
    """With no session installed, the obs hooks must construct nothing.

    The <3% disabled-overhead contract is enforced structurally: a full
    compile + simulate with ``REPRO_TRACE`` off may touch the obs layer
    only through ``is None`` tests, so remark construction, session
    emission, and trace-event recording are patched to raise.  Any code
    path that does observable work while disabled fails loudly here,
    independent of machine speed.
    """
    from unittest import mock

    from repro.obs import metrics as obs_metrics
    from repro.obs import session as obs_session
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.session import ObsSession
    from repro.obs.trace import Tracer
    from repro.transforms.pipeline import compile_module

    assert obs_session.active() is None, "a test leaked a live session"
    assert obs_metrics.active() is None, "a test leaked a live registry"

    def forbid(name):
        def _raise(*args, **kwargs):
            raise AssertionError(
                f"{name} ran with tracing disabled — the obs disabled "
                "path must be a bare `is None` test")
        return _raise

    bench = benchmark_by_name("bspline-vgh")
    module = bench.build_module()
    with mock.patch.object(obs_session, "Remark",
                           side_effect=forbid("Remark()")), \
            mock.patch.object(ObsSession, "emit", forbid("ObsSession.emit")), \
            mock.patch.object(Tracer, "complete", forbid("Tracer.complete")), \
            mock.patch.object(obs_metrics, "Counter",
                              side_effect=forbid("metrics.Counter()")), \
            mock.patch.object(obs_metrics, "Gauge",
                              side_effect=forbid("metrics.Gauge()")), \
            mock.patch.object(obs_metrics, "Histogram",
                              side_effect=forbid("metrics.Histogram()")), \
            mock.patch.object(MetricsRegistry, "inc",
                              forbid("MetricsRegistry.inc")), \
            mock.patch.object(MetricsRegistry, "observe",
                              forbid("MetricsRegistry.observe")):
        compile_module(module, "uu_heuristic")
        bench.run(module)


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_obs_disabled_simulation_within_budget():
    """Tracing-disabled simulation must fit the pre-obs timing envelope.

    Identical measurement to ``test_xsbench_simulation_within_budget``
    (same workload, same recorded budget), asserted separately so a
    disabled-path obs regression is named as such rather than reading as
    a generic interpreter slowdown.  See ``OBS_DISABLED_MAX_OVERHEAD``
    for why the shared envelope bounds the <3% contract.
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import session as obs_session

    assert obs_session.active() is None
    assert obs_metrics.active() is None
    assert not os.environ.get(obs_session.ENV_VAR), (
        "REPRO_TRACE is set; this guard measures the disabled path")
    assert not os.environ.get(obs_metrics.ENV_VAR), (
        "REPRO_METRICS is set; this guard measures the disabled path")
    bench = benchmark_by_name("XSBench")
    module = bench.build_module()
    bench.run(module)  # Warm-up.
    best = min(
        (lambda t0: (bench.run(module), time.perf_counter() - t0)[1])(
            time.perf_counter())
        for _ in range(5))
    limit = XSBENCH_RUN_BUDGET_S * SLACK
    assert best <= limit, (
        f"XSBench with tracing disabled took {best:.3f}s best-of-5, over "
        f"the {limit:.3f}s envelope — the obs disabled path is supposed "
        f"to cost <{OBS_DISABLED_MAX_OVERHEAD:.0%}; is something doing "
        "work without checking the session slot?")
