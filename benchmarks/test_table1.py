"""Regenerates the paper's Table I (benchmark overview).

Shape targets (paper Section IV):
* the heuristic speeds up the majority of the 16 applications;
* the paper's regression cases (ccs, complex, contract) regress here too;
* baseline milliseconds anchor to the paper's Table I column by design.
"""

from conftest import write_artifact

from repro.harness import geomean
from repro.harness.table1 import build_table, format_table


def test_table1(benchmark, runner, benches, results_dir):
    rows = benchmark.pedantic(
        lambda: build_table(runner, benches), iterations=1, rounds=1)
    text = format_table(rows)
    write_artifact(results_dir, "table1.txt", text)
    print()
    print(text)

    by_name = {r.name: r for r in rows}
    assert len(rows) == 16

    # Baseline column anchored to the paper.
    for row in rows:
        assert row.baseline_mean_ms == __import__("pytest").approx(
            row.paper_baseline_ms, rel=0.25)

    # The paper's heuristic improves 13/16; ours must improve a clear
    # majority (>= 9) and regress on the paper's worst cases.
    winners = [r for r in rows if r.speedup > 1.0]
    assert len(winners) >= 9, [r.name for r in winners]
    assert by_name["complex"].speedup < 0.9
    assert by_name["ccs"].speedup < 1.0
    assert by_name["contract"].speedup < 1.0

    # Headline: bspline-vgh is a big winner (paper: 1.78x).
    assert by_name["bspline-vgh"].speedup > 1.2

    # The paper's headline geomeans (1.05x speedup, 1.7x size, 1.18x
    # compile): ours must land in the same regime — net-positive speedup
    # with bounded size/compile inflation.
    from repro.harness import heuristic_summary

    summary = heuristic_summary(runner, benches)
    write_artifact(results_dir, "summary.txt", summary.format())
    print()
    print(summary.format())
    assert summary.speedup > 1.0
    assert summary.size_ratio < 4.0
    assert summary.compile_ratio < 30.0
