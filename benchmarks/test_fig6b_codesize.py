"""Regenerates Figure 6b: code size increase of u&u over baseline.

Shape targets (paper RQ2):
* code size typically grows with the unroll factor;
* the heuristic avoids the extreme code-size increases of fixed u=8;
* bspline-vgh saturates: once the trip-count-4 loop is fully unrolled,
  larger factors produce (nearly) the same code.
"""

import math

from conftest import write_artifact

from repro.harness import geomean
from repro.harness.fig6 import format_figure, series


def test_fig6b(benchmark, runner, benches, results_dir):
    points = benchmark.pedantic(
        lambda: series(runner, benches), iterations=1, rounds=1)
    text = format_figure(points, "size_ratio")
    write_artifact(results_dir, "fig6b.txt", text)
    from repro.harness.figures_svg import fig6_svg
    write_artifact(results_dir, "fig6b.svg",
                   fig6_svg(points, "size_ratio"))
    print()
    print(text)

    per_loop = [p for p in points if p.loop_id is not None]
    heuristic = {p.app: p.size_ratio for p in points if p.loop_id is None}

    # Growth with factor, in aggregate (geomean across loops).
    by_factor = {f: [p.size_ratio for p in per_loop if p.factor == f]
                 for f in (2, 4, 8)}
    g2, g8 = geomean(by_factor[2]), geomean(by_factor[8])
    assert g8 > g2, (g2, g8)

    # Heuristic avoids extremes: its worst inflation is far below the worst
    # fixed-factor inflation (paper: geomean 1.7x for the heuristic).
    worst_fixed = max(p.size_ratio for p in per_loop)
    worst_heur = max(heuristic.values())
    assert worst_heur < worst_fixed
    assert geomean(heuristic.values()) < 4.0

    # bspline-vgh saturation: u>=5 fully unrolls the trip-count-4 loop, so
    # factor 8 is no bigger than ~the factor-4 body (paper: equal at 4 & 8).
    bs = {p.factor: p.size_ratio for p in per_loop
          if p.app == "bspline-vgh" and p.loop_id == "bspline_vgh:0"}
    if {4, 8} <= set(bs):
        assert bs[8] <= bs[4] * 1.25
