"""Regenerates Figure 7: u&u vs plain unroll vs plain unmerge per app.

Shape targets (paper RQ3):
* u&u achieves the best speedup of the three configs for most applications;
* mandelbrot is the exception where unmerge alone beats both (and u&u still
  beats unroll there);
* complex is the worst u&u case, far below its unroll/unmerge variants.
"""

from conftest import write_artifact

from repro.harness.fig7 import format_figure, series


def test_fig7(benchmark, runner, benches, results_dir):
    rows = benchmark.pedantic(
        lambda: series(runner, benches), iterations=1, rounds=1)
    text = format_figure(rows)
    write_artifact(results_dir, "fig7.txt", text)
    from repro.harness.figures_svg import fig7_svg
    write_artifact(results_dir, "fig7.svg", fig7_svg(rows))
    print()
    print(text)

    assert len(rows) == 16 * 3

    # Best-over-factors per app per config.
    best = {}
    for r in rows:
        entry = best.setdefault(r.app, {"uu": 0.0, "unroll": 0.0,
                                        "unmerge": r.unmerge_speedup})
        entry["uu"] = max(entry["uu"], r.uu_speedup)
        entry["unroll"] = max(entry["unroll"], r.unroll_speedup)

    # u&u >= both comparators for most applications.
    uu_wins = [app for app, e in best.items()
               if e["uu"] >= e["unroll"] and e["uu"] >= e["unmerge"]]
    assert len(uu_wins) >= 8, sorted(uu_wins)

    # mandelbrot: an application where unmerge *alone* achieves a
    # substantial win and beats plain unrolling (paper: it even beats u&u
    # there; in our model u&u keeps an edge — see EXPERIMENTS.md).
    mb = best["mandelbrot"]
    assert mb["unmerge"] > 1.1
    assert mb["unmerge"] > mb["unroll"]
    assert mb["uu"] > mb["unroll"]

    # haccmk: plain unroll edges out u&u at the larger factors (paper:
    # "the speedups achieved by unroll are slightly higher than u&u").
    haccmk_u8 = [r for r in rows if r.app == "haccmk" and r.factor == 8][0]
    assert haccmk_u8.unroll_speedup > haccmk_u8.uu_speedup

    # complex: u&u is by far the worst of the three.
    cx = best["complex"]
    assert cx["uu"] < cx["unroll"]
    assert cx["uu"] < cx["unmerge"]
