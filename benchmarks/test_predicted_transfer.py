"""Tuning-transfer acceptance gate (leave-one-out over the full suite).

Builds a fresh similarity index from the committed ``results/tuned``
corpus and replays every app's *predicted* configuration with the app's
own entries excluded from the vote (``exclude_self``, the production
semantics for unseen kernels).  The gate:

* predicted geomean speedup >= heuristic geomean speedup — transfer must
  beat the static heuristic it falls back to, or it has no reason to
  exist;
* no app below 0.95x baseline — a prediction may miss the tuned optimum
  but must never wreck a kernel (the paper's `complex` failure mode,
  guarded by the divergence clamp);
* a warm prediction resolves in under 50 ms and performs **zero**
  empirical evaluations, pinned via CellCache session counters — the
  whole point of transfer is instant configs without measurements.

Each run appends the three geomeans to ``results/perf/history.jsonl``
(ratio metrics only) so the transfer margin is trendable alongside the
engine ratios.  Set ``REPRO_SKIP_PERF=1`` to skip on loaded machines.
"""

import os
import time

import pytest

from repro.harness import ParallelRunner, perfhistory
from repro.harness.cache import CellCache
from repro.harness.summary import transfer_summary
from repro.similarity.index import SimilarityIndex, build_index
from repro.similarity.predict import predict_bench

#: Minimum per-app speedup over baseline a prediction may produce.
PER_APP_FLOOR = 0.95

#: Warm per-kernel prediction budget (seconds).  The reference container
#: resolves a prediction in ~2-10 ms (module build + feature extraction
#: + brute-force neighbor search over the tuned corpus).
PREDICT_BUDGET_S = 0.050


@pytest.fixture(scope="module")
def tuned_index(tmp_path_factory):
    index = SimilarityIndex(tmp_path_factory.mktemp("simindex"))
    report = build_index(index=index)
    assert not report["skipped"], f"stale tuned corpus: {report['skipped']}"
    return index


@pytest.fixture(scope="module")
def transfer_runner(tuned_index):
    # Shares the repo-level cell cache with the session runner (cells key
    # on the prediction fingerprint, so reuse across sessions is safe);
    # only the similarity index is redirected to the fresh build.
    return ParallelRunner(max_instructions=8000, compile_timeout=20.0,
                          sim_index_dir=tuned_index.root)


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_predicted_beats_heuristic_leave_one_out(transfer_runner, benches,
                                                 results_dir):
    summary = transfer_summary(transfer_runner, benches)
    assert len(summary.rows) == len(benches)
    assert not any(row.fallback for row in summary.rows), (
        "prediction fell back on "
        f"{[r.app for r in summary.rows if r.fallback]}")

    floor_violations = [
        f"{row.app}: {row.predicted_speedup:.3f}x"
        for row in summary.rows if row.predicted_speedup < PER_APP_FLOOR]
    assert not floor_violations, (
        f"predicted config below {PER_APP_FLOOR}x baseline: "
        + ", ".join(floor_violations))

    assert summary.geomean_predicted >= summary.geomean_heuristic, (
        f"predicted geomean {summary.geomean_predicted:.3f}x fell below "
        f"the heuristic's {summary.geomean_heuristic:.3f}x — transfer is "
        "doing worse than its own fallback")

    if os.environ.get(perfhistory.CHECK_ENV) != "0":
        perfhistory.append_record(perfhistory.record_from_bench(
            {"kernels": []}, source="predicted-transfer",
            extra_metrics={
                "sweep/heuristic_speedup": summary.geomean_heuristic,
                "sweep/tuned_speedup": summary.geomean_tuned,
                "sweep/predicted_speedup": summary.geomean_predicted,
            }))


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_PERF") == "1",
                    reason="REPRO_SKIP_PERF=1")
def test_warm_prediction_is_instant_and_measurement_free(tuned_index,
                                                         benches, tmp_path):
    # A dedicated empty cell cache: if prediction ever consults or writes
    # a cell (i.e. performs an empirical evaluation), its session
    # counters move and the assertion below names the regression.
    cache = CellCache(tmp_path / "cells")
    over_budget = []
    for bench in benches:
        predict_bench(bench, tuned_index, emit=False)  # warm caches
        best = min(
            (lambda t0: (predict_bench(bench, tuned_index, emit=False),
                         time.perf_counter() - t0)[1])(time.perf_counter())
            for _ in range(3))
        if best > PREDICT_BUDGET_S:
            over_budget.append(f"{bench.name}: {best * 1000:.1f}ms")
    assert not over_budget, (
        "warm prediction over the "
        f"{PREDICT_BUDGET_S * 1000:.0f}ms budget: " + ", ".join(over_budget))
    assert (cache.hits, cache.misses, cache.puts) == (0, 0, 0), (
        "prediction touched the cell cache — it must perform zero "
        "empirical evaluations")
