"""Regenerates the Section V in-depth analyses (XSBench, rainflow, complex,
bezier-surface) and checks the counter-level shape the paper reports.
"""

from conftest import write_artifact

from repro.harness.indepth import (bezier_analysis, complex_analysis,
                                   format_comparison, rainflow_analysis,
                                   xsbench_analysis)


def test_indepth_xsbench(benchmark, runner, results_dir):
    """Paper: selp -> branches; inst_misc -55%; IPC x1.88; WEE 62.9 -> 18.9."""
    cmp = benchmark.pedantic(lambda: xsbench_analysis(runner, factor=4),
                             iterations=1, rounds=1)
    text = format_comparison(cmp)
    write_artifact(results_dir, "indepth_xsbench.txt", text)
    print("\n" + text)

    assert cmp.reduction("inst_misc") > 25.0         # Data moves eliminated.
    assert cmp.ratio("ipc") > 1.1                    # IPC rises.
    assert cmp.transformed["warp_execution_efficiency"] < \
        cmp.baseline["warp_execution_efficiency"]    # WEE drops...
    assert cmp.speedup > 1.0                         # ...yet it is faster.


def test_indepth_rainflow(benchmark, runner, results_dir):
    """Paper: inst_misc -77%, inst_control -45%, gld -17%, IPC x2.04 @ u4."""
    cmp = benchmark.pedantic(lambda: rainflow_analysis(runner, factor=4),
                             iterations=1, rounds=1)
    text = format_comparison(cmp)
    write_artifact(results_dir, "indepth_rainflow.txt", text)
    print("\n" + text)

    assert cmp.reduction("inst_misc") > 30.0
    assert cmp.reduction("inst_control") > 10.0
    assert cmp.ratio("ipc") > 1.2
    assert cmp.speedup > 1.0


def test_indepth_complex(benchmark, runner, results_dir):
    """Paper: WEE 100 -> 19.4, stall_inst_fetch 3.7 -> 79.6, slowdown 0.11x."""
    cmp = benchmark.pedantic(lambda: complex_analysis(runner, factor=8),
                             iterations=1, rounds=1)
    text = format_comparison(cmp)
    write_artifact(results_dir, "indepth_complex.txt", text)
    print("\n" + text)

    assert cmp.baseline["warp_execution_efficiency"] > 80.0
    assert cmp.transformed["warp_execution_efficiency"] < 50.0
    assert cmp.transformed["stall_inst_fetch"] > \
        cmp.baseline["stall_inst_fetch"]
    assert cmp.speedup < 0.8                         # Clear slowdown.


def test_indepth_bezier(benchmark, runner, results_dir):
    """Paper Section III-B: ~30% faster on the blend loop at factor 2."""
    cmp = benchmark.pedantic(lambda: bezier_analysis(runner, factor=2),
                             iterations=1, rounds=1)
    text = format_comparison(cmp)
    write_artifact(results_dir, "indepth_bezier.txt", text)
    print("\n" + text)

    assert cmp.speedup > 1.0
    assert cmp.reduction("inst_misc") > 15.0
