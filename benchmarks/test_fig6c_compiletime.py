"""Regenerates Figure 6c: compile time increase of u&u over baseline.

Shape targets (paper RQ2):
* compile time inflation tracks code growth (passes must chew through the
  duplicated code);
* the heuristic avoids the extreme compile-time blowups;
* most compile time is spent in the *cleanup* passes, not in the u&u
  transform itself (the paper: IPSCCP dominated).
"""

from conftest import write_artifact

from repro.bench import benchmark_by_name
from repro.harness import geomean
from repro.harness.fig6 import format_figure, series
from repro.transforms import compile_module


def test_fig6c(benchmark, runner, benches, results_dir):
    points = benchmark.pedantic(
        lambda: series(runner, benches), iterations=1, rounds=1)
    text = format_figure(points, "compile_ratio")
    write_artifact(results_dir, "fig6c.txt", text)
    from repro.harness.figures_svg import fig6_svg
    write_artifact(results_dir, "fig6c.svg",
                   fig6_svg(points, "compile_ratio"))
    print()
    print(text)

    per_loop = [p for p in points if p.loop_id is not None]
    heuristic = [p.compile_ratio for p in points if p.loop_id is None]

    by_factor = {f: geomean([p.compile_ratio for p in per_loop
                             if p.factor == f]) for f in (2, 4, 8)}
    # Compile inflation grows with the factor in aggregate.
    assert by_factor[8] > by_factor[2]

    # Heuristic contains compile-time inflation vs the worst fixed factor.
    assert max(heuristic) < max(p.compile_ratio for p in per_loop)


def test_cleanup_time_tracks_duplicated_code(benchmark):
    """The paper attributes compile-time inflation to other passes (IPSCCP)
    processing the duplicated code, not to the u&u transform alone.  Our
    analogue: the cleanup stage's wall time under the u&u configuration
    clearly exceeds its wall time under the baseline configuration on the
    very same module."""

    def cleanup_time(config, **kw):
        bench = benchmark_by_name("bezier-surface")
        module = bench.build_module()
        result = compile_module(module, config, max_instructions=8000, **kw)
        times = result.pass_stats.times
        return sum(t for name, t in times.items()
                   if name in ("cleanup", "gvn", "sccp", "instcombine",
                               "simplifycfg", "dce", "licm", "load-elim",
                               "predication", "baseline-unroll"))

    base_time, uu_time = benchmark.pedantic(
        lambda: (cleanup_time("baseline"),
                 cleanup_time("uu", loop_id="bezier_blend:0", factor=4)),
        iterations=1, rounds=1)
    assert uu_time > base_time
