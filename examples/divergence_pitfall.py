"""The `complex` pitfall: when u&u makes code slower, and how to avoid it.

Reproduces the paper's Section V worst case — binary exponentiation where
the loop-controlling value is the thread id, so the `n & 1` branch diverges
within every warp.  The baseline if-converts the conditional body into
selects and stays converged; u&u replaces them with long divergent paths
and gains nothing, so it only loses.

The example then demonstrates the paper's proposed mitigation (Section V /
future work): a tid-taint divergence analysis that disqualifies such loops
in the selection heuristic (`HeuristicParams(avoid_divergent=True)`).

Run:  python examples/divergence_pitfall.py
"""

from repro.analysis import DivergenceInfo, LoopInfo, loop_has_divergent_branch
from repro.bench import benchmark_by_name
from repro.harness import ExperimentRunner
from repro.transforms import HeuristicParams, select_loops


def main():
    runner = ExperimentRunner(max_instructions=8000)
    bench = benchmark_by_name("complex")
    base = runner.baseline(bench)

    print("complex (paper Listing 7): n = global thread id, so `n & 1`")
    print("diverges almost every iteration within a warp.\n")

    print(f"{'config':<12} {'speedup':>8} {'WEE %':>7} {'fetch stall %':>14}")
    print("-" * 46)
    for factor in (2, 4, 8):
        cell = runner.cell(bench, "uu", "complex_pow:0", factor)
        c = cell.counters
        print(f"u&u@{factor:<8} {cell.speedup_over(base):>7.3f}x "
              f"{c.warp_execution_efficiency:>6.1f}% "
              f"{c.stall_inst_fetch:>13.2f}%")
    b = base.counters
    print(f"{'baseline':<12} {'1.000':>7}x {b.warp_execution_efficiency:>6.1f}% "
          f"{b.stall_inst_fetch:>13.2f}%")

    # -- the taint analysis the paper proposes ---------------------------
    module = bench.build_module()
    func = module.get_function("complex_pow")
    info = DivergenceInfo.compute(func)
    loops = LoopInfo.compute(func)
    loop = loops.by_id("complex_pow:0")
    print()
    print("Divergence (tid-taint) analysis on the loop:",
          "DIVERGENT branch inside body"
          if loop_has_divergent_branch(loop, info) else "uniform")

    # The default heuristic picks the loop; the divergence-aware one skips.
    plain = select_loops(func, loops, HeuristicParams())
    aware = select_loops(func, loops, HeuristicParams(avoid_divergent=True))
    print(f"default heuristic decision:      factor={plain[0].factor} "
          f"({plain[0].reason})")
    print(f"divergence-aware heuristic:      factor={aware[0].factor} "
          f"({aware[0].reason})")
    print()
    print("With avoid_divergent=True the loop is left alone and the")
    print("application keeps its baseline performance — the mitigation the")
    print("paper sketches for exactly this case.")


if __name__ == "__main__":
    main()
