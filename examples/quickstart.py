"""Quickstart: compile a kernel with and without u&u and compare.

Builds the paper's motivating example — the XSBench binary-search loop
(Listing 1) — with the structured frontend, compiles it under the baseline
-O3-like pipeline and under unroll-and-unmerge, runs both on the SIMT
simulator, and prints the optimized IR plus nvprof-style counters.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.frontend import (Assign, GlobalTid, If, Index, KernelDef, Lit,
                            Param, Store, V, While)
from repro.frontend.lower import lower_kernels
from repro.gpu import Memory, SimtMachine
from repro.ir import print_function
from repro.transforms import compile_module

# ---------------------------------------------------------------------------
# 1. Write the kernel (paper Listing 1: binary search per thread).
# ---------------------------------------------------------------------------

binary_search = KernelDef(
    "binary_search",
    [Param("grid", "f64*", restrict=True),
     Param("quarries", "f64*", restrict=True),
     Param("out", "i64*", restrict=True),
     Param("n", "i64"), Param("lookups", "i64")],
    [
        Assign("gid", GlobalTid()),
        If(V("gid") < V("lookups"), [
            Assign("quarry", Index("quarries", V("gid"))),
            Assign("lowerLimit", Lit(0, "i64")),
            Assign("upperLimit", V("n")),
            Assign("length", V("n")),
            While(V("length") > 1, [
                Assign("mid", V("lowerLimit") + V("length") / 2),
                If(Index("grid", V("mid")) > V("quarry"),
                   [Assign("upperLimit", V("mid"))],
                   [Assign("lowerLimit", V("mid"))]),
                Assign("length", V("upperLimit") - V("lowerLimit")),
            ]),
            Store("out", V("gid"), V("lowerLimit")),
        ]),
    ])


def compile_and_run(config, **kwargs):
    """Compile under one pipeline configuration and execute the workload."""
    module = lower_kernels([binary_search], "quickstart")
    compiled = compile_module(module, config, **kwargs)

    rng = np.random.default_rng(42)
    n, lookups = 4096, 64
    mem = Memory()
    grid = mem.alloc("grid", "f64", n, np.sort(rng.random(n)))
    quarries = mem.alloc("quarries", "f64", lookups, rng.random(lookups))
    out = mem.alloc("out", "i64", lookups)

    machine = SimtMachine(module, mem)
    machine.launch("binary_search", grid_dim=1, block_dim=lookups,
                   args=[grid, quarries, out, n, lookups])
    return module, compiled, mem.read_back("out"), machine


def main():
    base_mod, base, base_out, base_machine = compile_and_run("baseline")
    uu_mod, uu, uu_out, uu_machine = compile_and_run(
        "uu", loop_id="binary_search:0", factor=2)

    assert np.array_equal(base_out, uu_out), "transform changed results!"

    print("=" * 72)
    print("Baseline -O3 IR (note the two selects — PTX `selp`, Listing 4):")
    print("=" * 72)
    print(print_function(base_mod.get_function("binary_search")))
    print()
    print("=" * 72)
    print("After unroll-and-unmerge, factor 2 (subtraction eliminated on")
    print("the taken path; re-used length/2 — paper Listing 5):")
    print("=" * 72)
    print(print_function(uu_mod.get_function("binary_search")))

    # Re-run to collect counters (fresh machines for clean numbers).
    _, _, _, m1 = compile_and_run("baseline")
    _, _, _, m2 = compile_and_run("uu", loop_id="binary_search:0", factor=2)

    print()
    print(f"{'metric':<30} {'baseline':>12} {'u&u(2)':>12}")
    print("-" * 56)
    rows = [
        ("code size (cost units)", base.code_size, uu.code_size),
        ("compile time (ms)", base.compile_seconds * 1e3,
         uu.compile_seconds * 1e3),
    ]
    for name, a, b in rows:
        print(f"{name:<30} {a:>12.1f} {b:>12.1f}")
    print()
    print("Both configurations computed identical results on the simulated")
    print("GPU; see examples/xsbench_counters.py for the full counter story.")


if __name__ == "__main__":
    main()
