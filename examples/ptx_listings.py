"""Reproduce the paper's Listings 4 and 5: PTX before and after u&u.

Compiles the XSBench binary-search kernel under the baseline pipeline and
under unroll-and-unmerge, lowers both to PTX-style assembly, and prints
them side by side with the instruction-mix statistics the paper discusses
(selp pairs in the baseline, predicated branches and the eliminated
subtraction after u&u).

Run:  python examples/ptx_listings.py
"""

from repro.bench import benchmark_by_name
from repro.codegen import lower_function, render
from repro.transforms import compile_module


def build(config, **kw):
    bench = benchmark_by_name("XSBench")
    module = bench.build_module()
    compile_module(module, config, max_instructions=8000, **kw)
    return lower_function(module.get_function("grid_search"))


def main():
    base = build("baseline")
    uu = build("uu", loop_id="grid_search:0", factor=2)

    print("=" * 72)
    print("Listing-4 analogue — baseline PTX (predicated selp form):")
    print("=" * 72)
    print(render(base))
    print()
    print("=" * 72)
    print("Listing-5 analogue — after u&u, factor 2 (branches replace selp,")
    print("subtraction eliminated on the taken path):")
    print("=" * 72)
    print(render(uu))
    print()

    print(f"{'mnemonic':<10} {'baseline':>10} {'u&u(2)':>10}   (counts)")
    print("-" * 44)
    for mnemonic in ("selp", "setp", "sub", "bra", "mov", "ld", "st"):
        print(f"{mnemonic:<10} {base.count_opcode(mnemonic):>10} "
              f"{uu.count_opcode(mnemonic):>10}")
    print()
    b_total, u_total = base.instruction_count(), uu.instruction_count()
    print(f"total      {b_total:>10} {u_total:>10}")
    print()
    print("Per the paper's Section V: the baseline's selp pairs become")
    print("conditionally executed jumps, and `upperLimit - lowerLimit` is")
    print("replaced by the already-computed `length/2` on the taken path.")


if __name__ == "__main__":
    main()
