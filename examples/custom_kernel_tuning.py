"""Tuning u&u on your own kernel: per-loop sweeps and the f(p,s,u) budget.

Writes a small stencil-style kernel with a sticky boundary flag, then:

1. enumerates its loops with their deterministic ids,
2. shows the heuristic's reasoning (paths p, size s, chosen factor via
   the paper's f(p, s, u) = sum p^i * s bound),
3. sweeps unroll factors manually and reports speedup / code size, the way
   the paper's per-loop experiments (Figure 6) are run.

Run:  python examples/custom_kernel_tuning.py
"""

import numpy as np

from repro.analysis import LoopInfo, count_paths, estimate_unmerged_size, loop_size
from repro.frontend import (Assign, GlobalTid, If, Index, KernelDef, Lit,
                            Param, Store, V, While)
from repro.frontend.lower import lower_kernels
from repro.gpu import Memory, SimtMachine
from repro.transforms import HeuristicParams, compile_module, select_loops

kernel = KernelDef(
    "smooth",
    [Param("src", "f64*", restrict=True),
     Param("dst", "f64*", restrict=True),
     Param("n", "i64"), Param("threads", "i64")],
    [
        Assign("gid", GlobalTid()),
        If(V("gid") < V("threads"), [
            Assign("acc", Lit(0.0, "f64")),
            Assign("clipped", Lit(0, "i64")),
            Assign("i", Lit(0, "i64")),
            While(V("i") < V("n"), [
                Assign("v", Index("src", (V("gid") + V("i")) % V("n"))),
                # Sticky clipping state: once clipped, stays clipped —
                # exactly the cross-iteration fact u&u exposes.
                If(V("clipped") != 0, [
                    Assign("acc", V("acc") + V("v") * 0.25),
                ], [
                    If(V("v") > 0.9, [
                        Assign("clipped", Lit(1, "i64")),
                    ], [
                        Assign("acc", V("acc") + V("v")),
                    ]),
                ]),
                Assign("i", V("i") + 1),
            ]),
            Store("dst", V("gid"), V("acc")),
        ]),
    ])


def run(config, loop_id=None, factor=1):
    module = lower_kernels([kernel], "tuning")
    compiled = compile_module(module, config, loop_id=loop_id, factor=factor,
                              max_instructions=8000)
    rng = np.random.default_rng(3)
    n, threads = 48, 64
    mem = Memory()
    src = mem.alloc("src", "f64", n, rng.random(n))
    dst = mem.alloc("dst", "f64", threads)
    machine = SimtMachine(module, mem)
    result = machine.launch("smooth", 1, threads, [src, dst, n, threads])
    return compiled, result.counters, mem.read_back("dst")


def main():
    # 1. Inspect the loops.
    module = lower_kernels([kernel], "tuning")
    func = module.get_function("smooth")
    info = LoopInfo.compute(func)
    print("Loops discovered:")
    for loop in info.loops:
        p = count_paths(loop, info)
        s = loop_size(loop)
        print(f"  {loop.loop_id}: paths p={p}, size s={s}")
        for u in (2, 4, 8):
            print(f"     f(p, s, {u}) = {estimate_unmerged_size(p, s, u)}")

    # 2. What would the paper's heuristic pick?
    decisions = select_loops(func, info, HeuristicParams(c=1024, u_max=8))
    for d in decisions:
        print(f"heuristic: {d.loop_id} -> factor {d.factor} ({d.reason})")

    # 3. Manual per-loop sweep (the Figure 6 methodology).
    _, base_counters, base_out = run("baseline")
    base_compiled, _, _ = run("baseline")
    print(f"\n{'config':<14} {'speedup':>8} {'size':>6} {'WEE %':>7}")
    print("-" * 40)
    print(f"{'baseline':<14} {'1.000':>7}x {base_compiled.code_size:>6} "
          f"{base_counters.warp_execution_efficiency:>6.1f}%")
    loop_id = info.loops[0].loop_id
    for factor in (2, 4, 8):
        compiled, counters, out = run("uu", loop_id, factor)
        assert np.allclose(out, base_out), "semantics must be preserved"
        speedup = base_counters.cycles / counters.cycles
        print(f"{'u&u@' + str(factor):<14} {speedup:>7.3f}x "
              f"{compiled.code_size:>6} "
              f"{counters.warp_execution_efficiency:>6.1f}%")


if __name__ == "__main__":
    main()
