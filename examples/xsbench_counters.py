"""XSBench case study: reproduce the paper's Section V counter analysis.

Runs the XSBench benchmark analog under baseline, unroll, unmerge and u&u,
and prints the nvprof-style counters the paper quotes: inst_misc drops
sharply and IPC rises even though warp execution efficiency collapses —
the counter-intuitive result at the heart of the paper.

Run:  python examples/xsbench_counters.py
"""

from repro.bench import benchmark_by_name
from repro.harness import ExperimentRunner


def main():
    runner = ExperimentRunner(max_instructions=8000)
    bench = benchmark_by_name("XSBench")
    base = runner.baseline(bench)

    configs = [
        ("baseline", None, 1),
        ("unmerge", "grid_search:0", 1),
        ("unroll", "grid_search:0", 2),
        ("uu", "grid_search:0", 2),
        ("uu", "grid_search:0", 4),
    ]

    print(f"{'config':<16} {'speedup':>8} {'inst_misc':>10} {'WEE %':>7} "
          f"{'IPC':>7} {'fetch %':>8} {'size':>6}")
    print("-" * 68)
    for config, loop_id, factor in configs:
        if config == "baseline":
            cell = base
        else:
            cell = runner.cell(bench, config, loop_id, factor)
        c = cell.counters
        label = config if factor == 1 else f"{config}@{factor}"
        print(f"{label:<16} {cell.speedup_over(base):>7.3f}x "
              f"{c.inst_misc:>10.0f} {c.warp_execution_efficiency:>6.1f}% "
              f"{c.ipc:>7.3f} {c.stall_inst_fetch:>7.2f}% "
              f"{cell.code_size:>6}")

    print()
    uu4 = runner.cell(bench, "uu", "grid_search:0", 4)
    misc_drop = 100 * (1 - uu4.counters.inst_misc / base.counters.inst_misc)
    ipc_ratio = uu4.counters.ipc / base.counters.ipc
    print(f"u&u@4 vs baseline: inst_misc -{misc_drop:.0f}% "
          f"(paper: -55% @ u8), IPC x{ipc_ratio:.2f} (paper: x1.88), "
          f"WEE {base.counters.warp_execution_efficiency:.1f}% -> "
          f"{uu4.counters.warp_execution_efficiency:.1f}% "
          f"(paper: 62.9% -> 18.9%)")
    print("The select-free divergent paths execute fewer data-movement")
    print("instructions per thread, which outweighs the serialization.")


if __name__ == "__main__":
    main()
