"""Unit tests for values, def-use chains and constants."""

import pytest

from repro.ir import (FALSE, TRUE, ConstantFloat, ConstantInt, IRBuilder,
                      Module, Undef, bool_const, const)
from repro.ir import types as T
from repro.ir.values import User, Value


def make_func():
    m = Module("t")
    f = m.add_function("f", T.FunctionType(T.I64, (T.I64, T.I64)), ["a", "b"])
    block = f.add_block("entry")
    return m, f, block


class TestDefUse:
    def test_operands_register_uses(self):
        m, f, block = make_func()
        b = IRBuilder(block)
        x = b.add(f.args[0], f.args[1], "x")
        assert f.args[0].num_uses == 1
        assert f.args[1].num_uses == 1
        assert x.operands[0] is f.args[0]

    def test_replace_all_uses_with(self):
        m, f, block = make_func()
        b = IRBuilder(block)
        x = b.add(f.args[0], 1, "x")
        y = b.mul(x, x, "y")
        x.replace_all_uses_with(f.args[1])
        assert y.operands[0] is f.args[1]
        assert y.operands[1] is f.args[1]
        assert x.num_uses == 0
        assert f.args[1].num_uses == 2

    def test_same_value_in_multiple_slots(self):
        m, f, block = make_func()
        b = IRBuilder(block)
        y = b.mul(f.args[0], f.args[0], "y")
        assert f.args[0].num_uses == 2
        assert len(list(f.args[0].users())) == 1

    def test_set_operand_updates_uses(self):
        m, f, block = make_func()
        b = IRBuilder(block)
        x = b.add(f.args[0], f.args[1], "x")
        x.set_operand(0, f.args[1])
        assert f.args[0].num_uses == 0
        assert f.args[1].num_uses == 2

    def test_erase_drops_operand_uses(self):
        m, f, block = make_func()
        b = IRBuilder(block)
        x = b.add(f.args[0], f.args[1], "x")
        x.erase_from_parent()
        assert f.args[0].num_uses == 0
        assert x.parent is None
        assert len(block.instructions) == 0


class TestConstants:
    def test_int_interning(self):
        assert ConstantInt(T.I64, 5) is ConstantInt(T.I64, 5)
        assert ConstantInt(T.I64, 5) is not ConstantInt(T.I32, 5)

    def test_int_wrapping_at_construction(self):
        c = ConstantInt(T.I8, 255)
        assert c.value == -1
        assert c.unsigned() == 255

    def test_bool_constants(self):
        assert bool_const(True) is TRUE
        assert bool_const(False) is FALSE
        assert TRUE.is_true and FALSE.is_false

    def test_float_interning(self):
        assert ConstantFloat(T.F64, 1.5) is ConstantFloat(T.F64, 1.5)

    def test_f32_rounding(self):
        c = ConstantFloat(T.F32, 0.1)
        import struct

        assert c.value == struct.unpack("f", struct.pack("f", 0.1))[0]

    def test_negative_zero_distinct(self):
        pos = ConstantFloat(T.F64, 0.0)
        neg = ConstantFloat(T.F64, -0.0)
        assert pos is not neg

    def test_undef_interned(self):
        assert Undef(T.I64) is Undef(T.I64)
        assert Undef(T.I64) is not Undef(T.F64)

    def test_const_dispatch(self):
        assert isinstance(const(T.I32, 3), ConstantInt)
        assert isinstance(const(T.F64, 3.0), ConstantFloat)
        with pytest.raises(TypeError):
            const(T.PointerType(T.I8), 0)


class TestGlobals:
    def test_global_type_is_pointer(self):
        m = Module("g")
        gv = m.add_global("table", T.F64, 128)
        assert gv.type is T.PointerType(T.F64)
        assert gv.count == 128
        assert m.get_global("table") is gv

    def test_duplicate_global_rejected(self):
        m = Module("g")
        m.add_global("x", T.I64, 1)
        with pytest.raises(ValueError):
            m.add_global("x", T.I64, 1)
