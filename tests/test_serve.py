"""Optimization-service tests: protocol, job queue, daemon end to end.

The load-bearing assertions:

* a served result is bit-identical (modulo honest compile wall-clock) to
  the same request executed directly in-process;
* N identical submissions perform exactly one computation (dedup both
  in-flight and via the finished-job memo);
* shutdown — explicit or via SIGTERM — joins every thread the daemon
  started.
"""

import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.frontend import ast as F
from repro.frontend.lower import lower_kernels
from repro.harness.cache import CellCache
from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import ParallelRunner
from repro.ir.printer import print_module
from repro.serve import (OptimizeRequest, OptimizeResult, ServeClient,
                         ServeDaemon, ast_from_json, ast_to_json,
                         content_hash, execute_request, parse_directive)
from repro.serve.client import ServeError
from repro.serve.jobs import JobQueue, JobState
from repro.serve.protocol import ProtocolError

CORPUS_IR = (Path(__file__).parent / "corpus"
             / "fuzz_seed7_structured.ll").read_text()


def ir_request(**overrides):
    kwargs = dict(ir=CORPUS_IR, config="uu_heuristic", lanes=8)
    kwargs.update(overrides)
    return OptimizeRequest(**kwargs)


def semantic(data):
    """A result minus its honest nondeterminism (wall-clock): compile
    seconds and the trace-event stream, whose ts/dur are wall-clock."""
    return {k: v for k, v in data.items()
            if k not in ("compile_seconds", "trace_events")}


def sample_kernel():
    return F.KernelDef(
        name="axpy",
        params=[F.Param("n", "i64"), F.Param("a", "i64")],
        body=[
            F.Assign("acc", F.Lit(0, "i64")),
            F.For("i", F.Lit(0, "i64"), F.Var("n"),
                  [F.Assign("acc", F.BinOp(
                      "+", F.Var("acc"),
                      F.BinOp("*", F.Var("i"), F.Var("a"))))]),
            F.Return(F.Var("acc")),
        ],
        ret_type="i64")


# -- protocol -----------------------------------------------------------------

class TestProtocol:
    def test_request_wire_round_trip(self):
        req = ir_request(loop_id=None, priority=3,
                         directives=("unroll(4)@k/L0",))
        back = OptimizeRequest.from_json(json.loads(
            json.dumps(req.to_json())))
        assert back == req
        assert content_hash(back) == content_hash(req)

    def test_request_needs_exactly_one_source(self):
        with pytest.raises(ProtocolError):
            OptimizeRequest(config="baseline").validate()
        with pytest.raises(ProtocolError):
            OptimizeRequest(app="complex", ir="x").validate()

    def test_per_loop_config_needs_loop_id(self):
        with pytest.raises(ProtocolError, match="loop_id"):
            OptimizeRequest(ir="x", config="uu").validate()

    def test_unknown_fields_and_schema_rejected(self):
        base = ir_request().to_json()
        with pytest.raises(ProtocolError, match="unknown request fields"):
            OptimizeRequest.from_json(dict(base, surprise=1))
        with pytest.raises(ProtocolError, match="schema"):
            OptimizeRequest.from_json(dict(base, schema=999))

    def test_content_hash_excludes_engine_and_priority(self):
        # Engines are bit-identical by contract; priority only schedules.
        assert content_hash(ir_request()) == \
            content_hash(ir_request(engine="warp", priority=9))
        assert content_hash(ir_request()) != \
            content_hash(ir_request(config="baseline"))
        assert content_hash(ir_request()) != \
            content_hash(ir_request(lanes=4))

    def test_ast_codec_round_trips_to_identical_ir(self):
        kernel = sample_kernel()
        data = json.loads(json.dumps(ast_to_json(kernel)))
        back = ast_from_json(data)
        assert print_module(lower_kernels([kernel], "m")) == \
            print_module(lower_kernels([back], "m"))

    def test_ast_codec_preserves_loop_pragmas(self):
        kernel = sample_kernel()
        kernel.loop_pragmas[0] = "unroll(2)"
        back = ast_from_json(ast_to_json(kernel))
        assert back.loop_pragmas == {0: "unroll(2)"}

    def test_ast_codec_rejects_unknown_node(self):
        with pytest.raises(ProtocolError, match="unknown AST node"):
            ast_from_json({"node": "EvalStmt", "expr": None})

    def test_parse_directive(self):
        assert parse_directive("unroll(4)@k/L0") == \
            {"name": "unroll", "args": [4], "loop": "k/L0"}
        assert parse_directive("unmerge") == \
            {"name": "unmerge", "args": [], "loop": None}
        assert parse_directive("interchange(i,j)") == \
            {"name": "interchange", "args": ["i", "j"], "loop": None}
        with pytest.raises(ProtocolError):
            parse_directive("Unroll[4]")

    def test_directives_rejected_at_execution(self):
        result = execute_request(ir_request(directives=("unroll(4)",)))
        assert result.status == "error"
        assert "not executed yet" in result.error


# -- job queue ----------------------------------------------------------------

class TestJobQueue:
    def test_priority_order_with_fifo_ties(self):
        queue = JobQueue(lambda req: req, workers=1, autostart=False)
        low1, _ = queue.submit({"n": 1}, "h1", priority=0)
        high, _ = queue.submit({"n": 2}, "h2", priority=5)
        low2, _ = queue.submit({"n": 3}, "h3", priority=0)
        order = [queue._pop().id for _ in range(3)]
        assert order == [high.id, low1.id, low2.id]

    def test_dedup_inflight_and_memo(self):
        ran = []

        def executor(req):
            ran.append(req)
            time.sleep(0.05)
            return {"status": "ok"}

        queue = JobQueue(executor, workers=1)
        try:
            jobs = [queue.submit({"k": 1}, "same")[0] for _ in range(3)]
            assert len({job.id for job in jobs}) == 1
            queue.wait(jobs[0].id, timeout=10)
            memo, deduped = queue.submit({"k": 1}, "same")
            assert deduped and memo.id == jobs[0].id
            assert memo.state == JobState.DONE
            stats = queue.stats()
            assert stats["executed"] == 1 and len(ran) == 1
            assert stats["submitted"] == 4 and stats["deduped"] == 3
            assert jobs[0].clients == 4
        finally:
            queue.shutdown()

    def test_cancel_queued_not_running(self):
        queue = JobQueue(lambda req: req, workers=1, autostart=False)
        job, _ = queue.submit({}, "h")
        assert queue.cancel(job.id)
        assert job.state == JobState.CANCELLED and job.done_event.is_set()
        assert not queue.cancel(job.id)          # Already terminal.
        assert not queue.cancel("j999999")       # Unknown.
        # A cancelled job no longer serves dedup hits: resubmit runs fresh.
        job2, deduped = queue.submit({}, "h")
        assert not deduped and job2.id != job.id

    def test_failed_job_keeps_traceback_and_reruns(self):
        queue = JobQueue(lambda req: 1 / 0, workers=1)
        try:
            job, _ = queue.submit({}, "boom")
            queue.wait(job.id, timeout=10)
            assert job.state == JobState.FAILED
            assert "ZeroDivisionError" in job.error
            job2, deduped = queue.submit({}, "boom")
            assert not deduped                   # Failures are not memoized.
        finally:
            queue.shutdown()

    def test_shutdown_cancels_queued_and_joins_workers(self):
        queue = JobQueue(lambda req: time.sleep(0.02) or {}, workers=2,
                         autostart=False)
        jobs = [queue.submit({}, f"h{i}")[0] for i in range(4)]
        queue.shutdown(wait=True)
        assert all(job.state == JobState.CANCELLED for job in jobs)
        assert queue.alive_workers == 0
        with pytest.raises(RuntimeError):
            queue.submit({}, "late")

    def test_memo_retention_is_bounded(self):
        queue = JobQueue(lambda req: {}, workers=1, retain=2)
        try:
            jobs = [queue.submit({}, f"h{i}")[0] for i in range(4)]
            for job in jobs:
                queue.wait(job.id, timeout=10)
            assert queue.get(jobs[0].id) is None     # Trimmed.
            assert queue.get(jobs[-1].id) is not None
        finally:
            queue.shutdown()


# -- execution core -----------------------------------------------------------

class TestExecuteRequest:
    def test_ir_subject_measured_against_baseline(self):
        result = execute_request(ir_request())
        assert result.status == "ok", result.error
        assert result.outputs_match_baseline
        assert result.baseline_cycles > 0 and result.cycles > 0
        assert result.optimized_ir and "define" in result.optimized_ir
        assert result.remarks and result.outputs
        assert all(r.get("context", {}).get("request") ==
                   result.content_hash for r in result.remarks)

    def test_kernel_subject_round_trips(self):
        req = OptimizeRequest(kernel=ast_to_json(sample_kernel()),
                              config="uu_heuristic", lanes=4)
        result = execute_request(req)
        assert result.status == "ok", result.error
        assert result.outputs_match_baseline

    def test_app_submission_matches_harness(self, tmp_path):
        runner = ParallelRunner(cache=CellCache(tmp_path))
        req = OptimizeRequest(app="coordinates", config="uu_heuristic")
        result = execute_request(req, runner=runner)
        assert result.status == "ok", result.error

        from repro.bench import benchmark_by_name
        serial = ExperimentRunner()
        bench_base = serial.baseline(benchmark_by_name("coordinates"))
        assert result.baseline_cycles == bench_base.cycles
        assert result.speedup > 0 and result.decisions
        assert result.optimized_ir

    def test_unknown_loop_id_is_protocol_error(self):
        result = execute_request(
            OptimizeRequest(app="coordinates", config="uu",
                            loop_id="nope/L9", factor=2))
        assert result.status == "error"
        assert "unknown loop" in result.error

    def test_broken_ir_reports_error_result(self):
        result = execute_request(OptimizeRequest(ir="this is not IR",
                                                 config="baseline"))
        assert result.status == "error" and result.error
        assert result.content_hash          # Hash still computed.


# -- daemon end to end --------------------------------------------------------

@pytest.fixture
def daemon():
    d = ServeDaemon(workers=2, use_cache=False)
    d.start()
    try:
        yield d
    finally:
        d.shutdown()


class TestDaemon:
    def test_served_result_bit_identical_to_direct(self, daemon):
        req = ir_request()
        direct = execute_request(req)
        client = ServeClient(daemon.url)
        served = client.submit_and_wait(req, timeout=120)
        assert served.status == "ok", served.error
        assert semantic(served.to_json()) == semantic(direct.to_json())

    def test_identical_submissions_compute_once(self, daemon):
        client = ServeClient(daemon.url)
        req = ir_request(lanes=4)
        tickets = [client.submit(req) for _ in range(3)]
        assert len({t["job_id"] for t in tickets}) == 1
        results = [client.result(tickets[i]["job_id"], wait=60)
                   for i in range(3)]
        assert len({json.dumps(semantic(r), sort_keys=True)
                    for r in results}) == 1
        stats = client.stats()["queue"]
        assert stats["executed"] == 1
        assert stats["submitted"] == 3 and stats["deduped"] == 2

    def test_status_result_cancel_endpoints(self, daemon):
        client = ServeClient(daemon.url)
        ticket = client.submit(ir_request(lanes=2))
        status = client.status(ticket["job_id"])
        assert status["job_id"] == ticket["job_id"]
        assert status["state"] in ("queued", "running", "done")
        with pytest.raises(ServeError) as err:
            client.status("j424242")
        assert err.value.code == 404
        cancelled = client.cancel("j424242")
        assert cancelled["cancelled"] is False
        assert client.health()["ok"] is True

    def test_malformed_submission_is_400(self, daemon):
        client = ServeClient(daemon.url)
        with pytest.raises(ServeError) as err:
            client._call("/submit", {"schema": 1, "config": "nope"})
        assert err.value.code == 400

    def test_shutdown_leaves_no_threads(self):
        before = {t.ident for t in threading.enumerate()}
        d = ServeDaemon(workers=3, use_cache=False)
        d.start()
        client = ServeClient(d.url)
        client.submit_and_wait(ir_request(lanes=2), timeout=120)
        d.shutdown()
        d.shutdown()                         # Idempotent.
        leaked = [t for t in threading.enumerate()
                  if t.ident not in before and t.is_alive()]
        assert leaked == []

    def test_sigterm_triggers_clean_shutdown(self):
        d = ServeDaemon(workers=2, use_cache=False)
        previous = d.install_signal_handlers()
        try:
            d.start()
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.time() + 15
            while time.time() < deadline and not d._stopped:
                time.sleep(0.05)
            assert d._stopped
            assert d.queue.alive_workers == 0
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            d.shutdown()

    def test_app_request_uses_shared_cache(self, tmp_path):
        cache = CellCache(tmp_path)
        runner = ParallelRunner(cache=cache)
        d = ServeDaemon(workers=2, runner=runner)
        d.start()
        try:
            client = ServeClient(d.url)
            req = OptimizeRequest(app="coordinates", config="uu_heuristic",
                                  include_ir=False)
            first = client.submit_and_wait(req, timeout=300)
            assert first.status == "ok", first.error
            assert cache.stats()["entries"] >= 2   # baseline + heuristic.
            # Same coordinates via a second daemon on the same cache dir:
            # the cells are read back, not recomputed.
            d2 = ServeDaemon(workers=1,
                             runner=ParallelRunner(cache=CellCache(tmp_path)))
            d2.start()
            try:
                again = ServeClient(d2.url).submit_and_wait(req, timeout=300)
                assert again.status == "ok", again.error
                assert d2.runner.cache.hits >= 2
                assert semantic(again.to_json()) == semantic(first.to_json())
            finally:
                d2.shutdown()
        finally:
            d.shutdown()
