"""Tuning-transfer subsystem tests (features, index, prediction, serve).

The load-bearing property of the whole subsystem is determinism: a
kernel's feature vector must be a pure function of the module text —
independent of worker count, execution engine, and any cache state —
because the similarity index is content-addressed over it and the
``predicted`` cell cache key folds the resolved prediction.  The golden
vectors below pin the schema itself: any change to a feature definition,
the dimension order, or a normalization scale must show up here and be
accompanied by a FEATURE_SCHEMA_VERSION bump.
"""

import json
import os

import pytest

from repro.bench import all_benchmarks, benchmark_by_name
from repro.harness.cache import CellCache
from repro.harness.experiment import ExperimentRunner
from repro.harness.parallel import ParallelRunner
from repro.obs import session as obs
from repro.serve.daemon import ServeDaemon
from repro.similarity.features import (COMBINED_SCALES, FEATURE_SCHEMA_VERSION,
                                       KERNEL_FEATURE_SPECS,
                                       LOOP_FEATURE_SPECS, combined_vector,
                                       distance, kernel_features)
from repro.similarity.index import SimilarityIndex, build_index
from repro.similarity.predict import (Prediction, predict_bench,
                                      prediction_fingerprint)


@pytest.fixture(autouse=True)
def _clean_obs_slot():
    yield
    obs.uninstall()
    os.environ.pop(obs.ENV_VAR, None)


def _install_obs():
    os.environ[obs.ENV_VAR] = "1"
    return obs.install()


@pytest.fixture(scope="module")
def tuned_index(tmp_path_factory):
    """A similarity index built from the committed results/tuned corpus."""
    root = tmp_path_factory.mktemp("simindex")
    index = SimilarityIndex(root)
    report = build_index(index=index)
    return index, report


# -- feature vectors ---------------------------------------------------------

#: Hand-pinned vectors (6-decimal) for three structurally distinct apps:
#: mandelbrot (unknown-trip divergent escape loop — the paper's big win),
#: complex (the tid-data-flow worst case), bspline-vgh (short known-trip
#: loop, the paper's best unroll case).  Loop dims are LOOP_FEATURE_SPECS
#: order; kernel dims are KERNEL_FEATURE_SPECS order.
GOLDEN = {
    "mandelbrot": {
        "loop_id": "mandelbrot_escape:0",
        "loop": [2.807355, 5.857981, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0,
                 0.087719, 0.842105, 0.0, 0.0, 0.070175, 0.0, 0.0],
        "kernel": [6.442943, 1.0, 1.0, 0.151163, 0.55814, 0.093023,
                   0.093023, 0.069767, 0.0, 0.034884],
    },
    "complex": {
        "loop_id": "complex_pow:0",
        "loop": [1.584963, 4.247928, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0,
                 0.222222, 0.666667, 0.0, 0.0, 0.111111, 0.0, 0.0],
        "kernel": [5.321928, 1.0, 1.0, 0.25641, 0.358974, 0.102564,
                   0.102564, 0.102564, 0.0, 0.076923],
    },
    "bspline-vgh": {
        "loop_id": "bspline_vgh:0",
        "loop": [1.584963, 4.643856, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0,
                 0.25, 0.666667, 0.0, 0.0, 0.083333, 0.0, 0.0],
        "kernel": [6.087463, 1.0, 1.0, 0.328358, 0.328358, 0.119403,
                   0.119403, 0.059701, 0.0, 0.044776],
    },
}


class TestFeatureVectors:
    def test_schema_arity(self):
        assert FEATURE_SCHEMA_VERSION == 1
        assert len(LOOP_FEATURE_SPECS) == 16
        assert len(KERNEL_FEATURE_SPECS) == 10
        assert len(COMBINED_SCALES) == 26

    @pytest.mark.parametrize("app", sorted(GOLDEN))
    def test_golden_vectors(self, app):
        golden = GOLDEN[app]
        features = kernel_features(benchmark_by_name(app).build_module())
        by_id = {lf.loop_id: lf for lf in features.loops}
        lf = by_id[golden["loop_id"]]
        assert len(lf.vector) == len(LOOP_FEATURE_SPECS)
        assert list(lf.vector) == pytest.approx(golden["loop"], abs=1e-6)
        assert list(features.vector) == pytest.approx(golden["kernel"],
                                                      abs=1e-6)
        assert len(combined_vector(features, lf)) == len(COMBINED_SCALES)

    def test_deterministic_across_rebuilds(self):
        bench = benchmark_by_name("mandelbrot")
        a = kernel_features(bench.build_module())
        b = kernel_features(bench.build_module())
        assert a.vector == b.vector
        assert tuple(lf.vector for lf in a.loops) == \
            tuple(lf.vector for lf in b.loops)

    @pytest.mark.parametrize("engine", ["warp", "batched", "jit"])
    def test_invariant_under_engine(self, engine):
        # Extraction is static, but this pins the operational claim:
        # running the app under any engine leaves the vectors extracted
        # before and after bit-identical.
        bench = benchmark_by_name("haccmk")
        before = kernel_features(bench.build_module())
        runner = ExperimentRunner(engine=engine)
        runner.baseline(bench)
        after = kernel_features(bench.build_module())
        assert before.vector == after.vector
        assert tuple(lf.vector for lf in before.loops) == \
            tuple(lf.vector for lf in after.loops)

    def test_invariant_under_region_cache_state(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REGION_CACHE_DIR", str(tmp_path))
        bench = benchmark_by_name("haccmk")
        vectors = []
        for _ in range(2):  # cold pass populates the cache, warm pass hits
            runner = ExperimentRunner(engine="jit")
            runner.baseline(bench)
            kf = kernel_features(bench.build_module())
            vectors.append((kf.vector,
                            tuple(lf.vector for lf in kf.loops)))
        assert vectors[0] == vectors[1]

    def test_tid_branch_flags_exactly_complex(self):
        flagged = sorted(
            lf.loop_id
            for bench in all_benchmarks()
            for lf in kernel_features(bench.build_module()).loops
            if lf.tid_branch)
        assert flagged == ["complex_pow:0"]

    def test_distance_arity_mismatch_rejected(self):
        ok = tuple(0.0 for _ in COMBINED_SCALES)
        with pytest.raises(ValueError):
            distance(ok[:-1], ok[:-1])
        with pytest.raises(ValueError):
            distance(ok, ok[:-1])
        assert distance(ok, ok) == 0.0


# -- index -------------------------------------------------------------------

class TestSimilarityIndex:
    def test_builds_from_committed_tuned(self, tuned_index):
        index, report = tuned_index
        assert not report["skipped"]
        assert report["entries"] == len(report["added"])
        for app in ("mandelbrot", "complex", "bspline-vgh"):
            assert app in report["added"]

    def test_rebuild_is_idempotent(self, tuned_index):
        index, report = tuned_index
        files = sorted(p.name for p in index.entries())
        again = build_index(index=index)
        assert again["added"] == report["added"]
        assert sorted(p.name for p in index.entries()) == files

    def test_entries_round_trip(self, tuned_index):
        index, report = tuned_index
        entries = index.load_entries()
        assert [str(e["app"]) for e in entries] == \
            sorted(str(e["app"]) for e in entries)
        for entry in entries:
            assert entry["schema"] == {
                "feature": FEATURE_SCHEMA_VERSION,
                "timing": index.stats()["schema"]["timing"],
                "tune": index.stats()["schema"]["tune"],
            }
            assert len(entry["kernel_vector"]) == len(KERNEL_FEATURE_SPECS)
            for loop in entry["loops"]:
                assert len(loop["vector"]) == len(LOOP_FEATURE_SPECS)
                assert loop["factor"] >= 1

    def test_stale_schema_entry_deleted_as_miss(self, tmp_path):
        index = SimilarityIndex(tmp_path)
        build_index(benches=[benchmark_by_name("haccmk")], index=index)
        (path,) = index.entries()
        entry = json.loads(path.read_text())
        entry["schema"]["feature"] = FEATURE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        misses = index.misses
        assert index.get_entry(path.stem) is None
        assert not path.exists()
        assert index.misses == misses + 1
        assert index.load_entries() == []

    def test_corrupt_entry_deleted_as_miss(self, tmp_path):
        index = SimilarityIndex(tmp_path)
        build_index(benches=[benchmark_by_name("haccmk")], index=index)
        (path,) = index.entries()
        path.write_text("{not json")
        assert index.get_entry(path.stem) is None
        assert not path.exists()

    def test_stats_shape(self, tuned_index):
        index, _ = tuned_index
        stats = index.stats()
        assert stats["entries"] > 0
        assert stats["bytes"] > 0
        assert stats["tmp_files"] == 0
        assert set(stats["schema"]) == {"feature", "timing", "tune"}


# -- prediction --------------------------------------------------------------

class TestPredict:
    def test_leave_one_out_prediction_well_formed(self, tuned_index):
        index, _ = tuned_index
        bench = benchmark_by_name("mandelbrot")
        prediction = predict_bench(bench, index, emit=False)
        assert isinstance(prediction, Prediction)
        assert not prediction.fallback
        assert prediction.app == "mandelbrot"
        assert [lp.loop_id for lp in prediction.loops] == \
            sorted(lp.loop_id for lp in prediction.loops)
        for lp in prediction.loops:
            # exclude_self (the default) keeps the app's own entries out.
            assert all(v.app != "mandelbrot" for v in lp.neighbors)
            assert lp.source in ("transfer", "heuristic", "infeasible",
                                 "divergence-clamped", "inner-selected")
        for decision in prediction.decisions:
            assert decision.factor >= 1

    def test_prediction_is_deterministic(self, tuned_index):
        index, _ = tuned_index
        bench = benchmark_by_name("bspline-vgh")
        a = predict_bench(bench, index, emit=False)
        b = predict_bench(bench, index, emit=False)
        assert prediction_fingerprint(a) == prediction_fingerprint(b)
        assert a.loops == b.loops

    def test_divergence_clamp_on_complex(self, tuned_index):
        # The paper's worst case: complex's in-body branch is a pure
        # data-flow function of the thread id, so a transferred unroll
        # factor is clamped to 1 while the voted unmerge is kept —
        # complex's own empirical optimum (u=1 + unmerge).
        index, _ = tuned_index
        prediction = predict_bench(benchmark_by_name("complex"), index,
                                   emit=False)
        (lp,) = [p for p in prediction.loops
                 if p.loop_id == "complex_pow:0"]
        assert lp.source == "divergence-clamped"
        assert lp.factor == 1
        assert lp.unmerge is True

    def test_empty_index_falls_back_with_missed_remark(self, tmp_path):
        session = _install_obs()
        prediction = predict_bench(benchmark_by_name("haccmk"),
                                   SimilarityIndex(tmp_path))
        assert prediction.fallback
        assert prediction.decisions == ()
        missed = [r for r in session.remarks if r.kind == "missed"]
        assert any(r.pass_name == "predict" and
                   r.args.get("reason") == "empty-index" for r in missed)

    def test_fingerprint_fallback_sentinel(self):
        assert prediction_fingerprint(None) == "fallback"


# -- harness integration -----------------------------------------------------

class TestPredictedPipeline:
    def test_cells_identical_across_worker_counts(self, tuned_index,
                                                  tmp_path):
        index, _ = tuned_index
        bench = benchmark_by_name("haccmk")
        observed = []
        for jobs in (1, 2):
            runner = ParallelRunner(
                jobs=jobs, cache=CellCache(tmp_path / f"cache{jobs}"),
                sim_index_dir=index.root)
            cells = runner.prefetch([bench],
                                    configs=("baseline", "predicted"))
            observed.append((
                [(c.config, c.cycles, c.code_size) for c in cells],
                prediction_fingerprint(runner._predict(bench))))
        assert observed[0] == observed[1]
        assert observed[0][1] != "fallback"

    def test_empty_index_predicted_equals_heuristic(self, tmp_path):
        runner = ExperimentRunner(sim_index_dir=tmp_path)
        bench = benchmark_by_name("haccmk")
        with pytest.warns(RuntimeWarning):
            predicted = runner.cell(bench, "predicted")
        heuristic = runner.heuristic_cell(bench)
        assert predicted.cycles == heuristic.cycles
        assert predicted.code_size == heuristic.code_size

    def test_tuned_fallback_emits_missed_remark(self, tmp_path):
        # Satellite: a tuned replay that cannot resolve its decisions
        # surfaces a typed `missed` remark with the staleness reason.
        session = _install_obs()
        runner = ExperimentRunner(tuned_dir=tmp_path)
        bench = benchmark_by_name("haccmk")
        with pytest.warns(RuntimeWarning):
            runner.cell(bench, "tuned")
        missed = [r for r in session.remarks
                  if r.kind == "missed" and r.pass_name == "tuned-uu"]
        assert missed
        assert missed[0].args.get("reason")


# -- serve-daemon similarity plane -------------------------------------------

class TestServeSimilarity:
    def test_refinement_counters_and_stats(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SIMINDEX_DIR", str(tmp_path))
        daemon = ServeDaemon(workers=1, use_cache=False)

        def fake_refine(app, sim_index_dir=None):
            if app == "complex":
                raise RuntimeError("boom")
            return {"status": "ok", "app": app, "indexed": True,
                    "entry_key": "k", "source": "refined",
                    "tuned_cycles": 1}

        daemon.refine_fn = fake_refine
        daemon.start()
        try:
            job, deduped = daemon.submit_refinement("haccmk")
            assert not deduped
            finished = daemon.queue.wait(job.id, timeout=10.0)
            assert finished is not None and finished.done_event.is_set()
            assert finished.result["status"] == "ok"

            # A second predicted submission dedups on refine:<app>.
            again, deduped_again = daemon.submit_refinement("haccmk")
            assert deduped_again and again.id == job.id

            bad, _ = daemon.submit_refinement("complex")
            daemon.queue.wait(bad.id, timeout=10.0)

            stats = daemon.stats()
            similarity = stats["similarity"]
            assert similarity["refinements_submitted"] == 2
            assert similarity["refinements_completed"] == 1
            assert similarity["refinements_failed"] == 1
            assert similarity["refinements_pending"] == 0
            assert similarity["predictions_served"] == 0
            assert similarity["index"]["entries"] == 0
            assert similarity["index"]["root"] == str(tmp_path)
        finally:
            daemon.shutdown()
