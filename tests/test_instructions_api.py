"""Instruction API tests: metadata, value keys, predicates, phi surgery."""

import pytest

from repro.ir import (BinaryInst, BranchInst, CallInst, CondBranchInst,
                      ConstantInt, FCmpInst, ICmpInst, IRBuilder, Module,
                      PhiInst, SelectInst, const, parse_function)
from repro.ir import types as T
from repro.ir.instructions import (FCMP_NEGATED, ICMP_NEGATED, ICMP_SWAPPED,
                                   INTRINSICS)


def fresh_block():
    m = Module("t")
    f = m.add_function("f", T.FunctionType(T.I64, (T.I64, T.I64)), ["a", "b"])
    block = f.add_block("entry")
    return f, block, IRBuilder(block)


class TestMetadata:
    def test_purity(self):
        f, block, b = fresh_block()
        add = b.add(f.args[0], f.args[1])
        assert add.is_pure
        p = b.alloca(T.F64)
        st = b.store(1.0, p)
        assert not st.is_pure
        ld = b.load(p)
        assert not ld.is_pure

    def test_convergence(self):
        f, block, b = fresh_block()
        bar = b.syncthreads()
        assert bar.is_convergent
        sq = b.call("sqrt", [const(T.F64, 2.0)])
        assert not sq.is_convergent
        assert sq.is_pure

    def test_categories(self):
        f, block, b = fresh_block()
        assert b.add(f.args[0], 1).category == "int"
        assert b.fadd(const(T.F64, 1.0), 2.0).category == "fp"
        c = b.icmp("eq", f.args[0], 0)
        assert b.select(c, f.args[0], f.args[1]).category == "misc"

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            BinaryInst("frobnicate", ConstantInt(T.I64, 1),
                       ConstantInt(T.I64, 2))

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinaryInst("add", ConstantInt(T.I64, 1), ConstantInt(T.I32, 2))
        with pytest.raises(TypeError):
            ICmpInst("eq", ConstantInt(T.I64, 1), ConstantInt(T.I32, 1))

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(ValueError):
            CallInst("warp_vote", [])


class TestValueKeys:
    def test_commutative_canonicalisation(self):
        f, block, b = fresh_block()
        x = b.add(f.args[0], f.args[1])
        y = b.add(f.args[1], f.args[0])
        assert x.value_key() == y.value_key()
        s1 = b.sub(f.args[0], f.args[1])
        s2 = b.sub(f.args[1], f.args[0])
        assert s1.value_key() != s2.value_key()

    def test_predicate_in_key(self):
        f, block, b = fresh_block()
        lt = b.icmp("slt", f.args[0], f.args[1])
        gt = b.icmp("sgt", f.args[0], f.args[1])
        assert lt.value_key() != gt.value_key()

    def test_impure_has_no_key(self):
        f, block, b = fresh_block()
        p = b.alloca(T.F64)
        ld = b.load(p)
        assert ld.value_key() is None

    def test_phi_has_no_key(self):
        f, block, b = fresh_block()
        phi = b.phi(T.I64)
        assert phi.value_key() is None


class TestPredicateTables:
    def test_negations_are_involutions(self):
        for pred, neg in ICMP_NEGATED.items():
            assert ICMP_NEGATED[neg] == pred
        for pred, neg in FCMP_NEGATED.items():
            assert FCMP_NEGATED[neg] == pred

    def test_swaps_are_involutions(self):
        for pred, swapped in ICMP_SWAPPED.items():
            assert ICMP_SWAPPED[swapped] == pred

    def test_negated_predicate_methods(self):
        f, block, b = fresh_block()
        cmp = b.icmp("sgt", f.args[0], f.args[1])
        assert cmp.negated_predicate() == "sle"
        fcmp = b.fcmp("ogt", const(T.F64, 1.0), const(T.F64, 2.0))
        assert fcmp.negated_predicate() == "ule"


class TestPhiSurgery:
    def test_incoming_management(self):
        f = parse_function("""
define i64 @f(i64 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i64 [ 1, %a ], [ 2, %b ]
  ret i64 %r
}
""")
        phi = f.blocks[3].phis()[0]
        a = f.blocks[1]
        assert phi.has_incoming_for(a)
        assert phi.incoming_for(a).value == 1
        phi.remove_incoming(a)
        assert not phi.has_incoming_for(a)
        assert len(phi.incoming_blocks) == 1
        assert phi.is_trivial().value == 2

    def test_trivial_with_self_reference(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  br label %loop
loop:
  %p = phi i64 [ %x, %entry ], [ %p, %loop ]
  %c = icmp slt i64 %p, 10
  br i1 %c, label %loop, label %out
out:
  ret i64 %p
}
""")
        phi = f.blocks[1].phis()[0]
        assert phi.is_trivial() is f.args[0]


class TestTerminators:
    def test_successor_replacement(self):
        f = parse_function("""
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret void
b:
  ret void
}
""")
        term = f.entry.terminator
        a, b = f.blocks[1], f.blocks[2]
        term.replace_successor(a, b)
        assert term.true_target is b and term.false_target is b
        with pytest.raises(ValueError):
            term.replace_successor(a, b)   # a no longer a successor.

    def test_condbr_requires_bool(self):
        f, block, b = fresh_block()
        other = f.add_block("other")
        with pytest.raises(TypeError):
            CondBranchInst(f.args[0], other, other)

    def test_intrinsic_registry_sanity(self):
        assert INTRINSICS["syncthreads"].convergent
        assert not INTRINSICS["sqrt"].convergent
        assert INTRINSICS["tid.x"].pure
