"""Loop analysis tests: discovery, nesting, latches, exits, trip counts."""

import pytest

from repro.analysis import (LoopInfo, constant_trip_count, count_paths,
                            estimate_unmerged_size, find_induction,
                            loop_size)
from repro.ir import parse_function

SIMPLE_LOOP = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %header, label %exit
exit:
  ret i64 %next
}
"""

NESTED = """
define i64 @f(i64 %n, i64 %m) {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %inext, %outer.latch ]
  %ci = icmp slt i64 %i, %n
  br i1 %ci, label %inner, label %exit
inner:
  %j = phi i64 [ 0, %outer ], [ %jnext, %inner ]
  %jnext = add i64 %j, 1
  %cj = icmp slt i64 %jnext, %m
  br i1 %cj, label %inner, label %outer.latch
outer.latch:
  %inext = add i64 %i, 1
  br label %outer
exit:
  ret i64 %i
}
"""

BRANCHY_LOOP = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %even = icmp eq i64 %i, 0
  br i1 %even, label %a, label %b
a:
  br label %latch
b:
  br label %latch
latch:
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %i
}
"""


class TestDiscovery:
    def test_single_loop(self):
        f = parse_function(SIMPLE_LOOP)
        info = LoopInfo.compute(f)
        assert len(info.loops) == 1
        loop = info.loops[0]
        assert loop.header.name == "header"
        assert loop.loop_id == "f:0"
        assert loop.depth == 1
        assert loop.is_innermost

    def test_nested_loops(self):
        f = parse_function(NESTED)
        info = LoopInfo.compute(f)
        assert len(info.loops) == 2
        outer = info.by_id("f:0")
        inner = info.by_id("f:1")
        assert outer.header.name == "outer"
        assert inner.header.name == "inner"
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.depth == 2
        assert not outer.is_innermost

    def test_innermost_first_order(self):
        f = parse_function(NESTED)
        info = LoopInfo.compute(f)
        order = info.innermost_first()
        assert order[0].depth == 2
        assert order[1].depth == 1

    def test_loop_for_block(self):
        f = parse_function(NESTED)
        info = LoopInfo.compute(f)
        bb = {b.name: b for b in f.blocks}
        assert info.loop_for(bb["inner"]).header.name == "inner"
        assert info.loop_for(bb["outer.latch"]).header.name == "outer"
        assert info.loop_for(bb["exit"]) is None


class TestStructure:
    def test_latch_and_exits(self):
        f = parse_function(BRANCHY_LOOP)
        info = LoopInfo.compute(f)
        loop = info.loops[0]
        assert loop.single_latch().name == "latch"
        assert [b.name for b in loop.exiting_blocks()] == ["header"]
        assert [b.name for b in loop.exit_blocks()] == ["exit"]

    def test_preheader(self):
        f = parse_function(SIMPLE_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        assert loop.preheader().name == "entry"

    def test_ensure_preheader_creates_block(self):
        # Entry branches conditionally to the header: no dedicated preheader.
        f = parse_function("""
define i64 @f(i64 %n, i1 %c) {
entry:
  br i1 %c, label %header, label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %next = add i64 %i, 1
  %cc = icmp slt i64 %next, %n
  br i1 %cc, label %header, label %exit
exit:
  ret i64 %next
}
""")
        loop = LoopInfo.compute(f).loops[0]
        pre = loop.ensure_preheader()
        assert pre.name != "entry"
        assert pre.successors()[0] is loop.header
        from repro.ir import verify_function

        verify_function(f)


class TestPathCounting:
    def test_straight_body_is_one_path(self):
        f = parse_function(SIMPLE_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        assert count_paths(loop) == 1

    def test_diamond_body_is_two_paths(self):
        f = parse_function(BRANCHY_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        assert count_paths(loop) == 2

    def test_estimate_formula(self):
        # f(p, s, u) = sum_{i<u} p^i * s  (paper Section III-A).
        assert estimate_unmerged_size(2, 10, 1) == 10
        assert estimate_unmerged_size(2, 10, 2) == 30
        assert estimate_unmerged_size(2, 10, 3) == 70
        assert estimate_unmerged_size(4, 5, 3) == 5 + 20 + 80
        assert estimate_unmerged_size(1, 7, 4) == 28

    def test_estimate_capped(self):
        assert estimate_unmerged_size(10, 1000, 30, cap=1 << 20) == 1 << 20


class TestTripCount:
    def test_counted_loop(self):
        f = parse_function(SIMPLE_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        ind = find_induction(loop)
        assert ind is not None
        assert ind.step.value == 1
        # do-while shape: body runs n times for n >= 1... the exit compares
        # %next (i+1) < n, so trip count is n-? — just check a concrete n
        # via the known closed form: continue while i+1 < n starting i=0.
        # With symbolic n the count is unknown:
        assert constant_trip_count(loop) is None

    def test_constant_bounds(self):
        f = parse_function("""
define i64 @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %i, 9
  br i1 %c, label %header, label %exit
exit:
  ret i64 %i
}
""")
        loop = LoopInfo.compute(f).loops[0]
        # continue while i < 9, i from 0 step 1 -> 10 traversals of header?
        # The closed form counts iterations with the condition evaluated on
        # %i: i = 0..9 continues while i<9 -> 9... the helper computes the
        # for-style count.
        assert constant_trip_count(loop) == 9

    def test_decrementing_loop(self):
        f = parse_function("""
define i64 @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 16, %entry ], [ %next, %header ]
  %next = sub i64 %i, 2
  %c = icmp sgt i64 %i, 0
  br i1 %c, label %header, label %exit
exit:
  ret i64 %i
}
""")
        loop = LoopInfo.compute(f).loops[0]
        assert constant_trip_count(loop) == 8

    def test_non_counted_loop_returns_none(self):
        f = parse_function(BRANCHY_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        assert constant_trip_count(loop) is None

    def test_zero_trip(self):
        f = parse_function("""
define i64 @f() {
entry:
  br label %header
header:
  %i = phi i64 [ 5, %entry ], [ %next, %header ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %i, 3
  br i1 %c, label %header, label %exit
exit:
  ret i64 %i
}
""")
        loop = LoopInfo.compute(f).loops[0]
        assert constant_trip_count(loop) == 0
