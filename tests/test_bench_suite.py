"""Benchmark-suite integration tests.

The heavyweight differential sweep lives in the benchmarks/ harness; here we
check structural invariants for all 16 analogs plus full differential
correctness on a representative subset (kept small for test-suite runtime).
"""

import numpy as np
import pytest

from repro.bench import all_benchmarks, benchmark_by_name, benchmark_names
from repro.harness import ExperimentRunner
from repro.ir import verify_module

EXPECTED_NAMES = [
    "bezier-surface", "bn", "bspline-vgh", "ccs", "clink", "complex",
    "contract", "coordinates", "haccmk", "lavaMD", "libor", "mandelbrot",
    "qtclustering", "quicksort", "rainflow", "XSBench",
]


class TestRegistry:
    def test_all_16_table1_rows_present(self):
        assert benchmark_names() == EXPECTED_NAMES

    def test_lookup_by_name(self):
        bench = benchmark_by_name("XSBench")
        assert bench.name == "XSBench"
        with pytest.raises(KeyError):
            benchmark_by_name("nope")


class TestStructure:
    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_module_builds_and_verifies(self, name):
        bench = benchmark_by_name(name)
        module = bench.build_module()
        verify_module(module)

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_has_loops_and_metadata(self, name):
        bench = benchmark_by_name(name)
        assert bench.loop_ids(), "benchmark must expose at least one loop"
        assert bench.category
        assert bench.command_line
        assert bench.paper.baseline_ms > 0

    @pytest.mark.parametrize("name", EXPECTED_NAMES)
    def test_runs_deterministically(self, name):
        bench = benchmark_by_name(name)
        module = bench.build_module()
        out1, counters1 = bench.run(module)
        module2 = bench.build_module()
        out2, counters2 = bench.run(module2)
        for key in out1:
            assert np.array_equal(out1[key], out2[key])
        assert counters1.cycles == counters2.cycles


class TestDifferentialSubset:
    """Per-loop transform correctness on three representative apps."""

    @pytest.mark.parametrize("name", ["XSBench", "complex", "mandelbrot"])
    def test_all_configs_preserve_outputs(self, name):
        runner = ExperimentRunner(max_instructions=4000, compile_timeout=30)
        bench = benchmark_by_name(name)
        base = runner.baseline(bench)
        assert base.outputs_match_baseline  # vs the unoptimized module.
        for loop_id in bench.loop_ids():
            for config, factor in [("uu", 2), ("unroll", 2), ("unmerge", 1)]:
                cell = runner.cell(bench, config, loop_id, factor)
                if cell.timed_out:
                    continue
                assert cell.outputs_match_baseline, (
                    f"{name} {loop_id} {config}@{factor} changed outputs")

    def test_heuristic_preserves_outputs(self):
        runner = ExperimentRunner(max_instructions=4000, compile_timeout=30)
        for name in ("rainflow", "bspline-vgh"):
            bench = benchmark_by_name(name)
            runner.baseline(bench)
            cell = runner.heuristic_cell(bench)
            assert cell.outputs_match_baseline


class TestPaperAnchors:
    def test_paper_numbers_match_table1(self):
        # Spot-check the Table I constants carried from the paper.
        xs = benchmark_by_name("XSBench")
        assert xs.paper.baseline_ms == 137.21
        assert xs.paper.heuristic_ms == 121.72
        assert xs.paper.compute_percent == 87.62
        cx = benchmark_by_name("complex")
        assert cx.paper.baseline_ms == 2199.23
        assert cx.paper.heuristic_ms == 2730.95
        bs = benchmark_by_name("bspline-vgh")
        assert bs.paper.baseline_ms / bs.paper.heuristic_ms > 1.7
