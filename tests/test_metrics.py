"""Metrics-plane tests: registry semantics, deterministic folds, the
daemon's Prometheus surface, and per-request stream isolation.

The load-bearing assertions:

* the registry's take/absorb fold is order-independent, so ``-j1`` and
  ``-jN`` sweeps of the same cells render byte-identical Prometheus text;
* a served job increments the same jit counters as the identical request
  executed directly in-process;
* ``GET /metrics`` on a live daemon is valid exposition text covering the
  queue, cache, and jit families;
* ``repro trace --request <id>`` isolates exactly one job's spans from a
  multi-job daemon's merged export;
* the daemon releases the process registry slot on shutdown.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.bench import benchmark_by_name
from repro.harness.parallel import ParallelRunner
from repro.obs import metrics
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry
from repro.serve import (OptimizeRequest, ServeClient, ServeDaemon,
                         content_hash, execute_request)
from repro.serve.client import ServeError
from repro.serve.protocol import SERVE_SCHEMA_VERSION

from tests.test_serve import ir_request


@pytest.fixture(autouse=True)
def _clean_slot():
    """Every test starts and ends with no live registry."""
    assert metrics.active() is None, "a previous test leaked a registry"
    yield
    metrics.uninstall()


# -- registry semantics -------------------------------------------------------

class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 2)
        reg.inc("c_total", 3)
        reg.set("g", 7)
        reg.set("g", 4)
        reg.observe("h_seconds", 0.002)
        reg.observe("h_seconds", 999.0)
        assert reg.counter("c_total").value == 5
        assert reg.gauge("g").value == 4
        hist = reg.histogram("h_seconds")
        assert hist.count == 2
        assert hist.sum == pytest.approx(999.002)
        # 0.002 lands in the 0.005 bucket; 999 only in the implicit +Inf.
        assert hist.counts[LATENCY_BUCKETS_S.index(0.005)] == 1
        assert sum(hist.counts) == 1

    def test_labels_are_order_insensitive(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 1, a="x", b="y")
        reg.inc("c_total", 1, b="y", a="x")
        assert reg.counter("c_total", a="x", b="y").value == 2

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.inc("c_total")
        with pytest.raises(ValueError, match="counter"):
            reg.set("c_total", 1)

    def test_render_is_valid_prometheus_text(self):
        reg = MetricsRegistry()
        reg.inc("repro_jit_deopts_total", 3)
        reg.set("repro_serve_queue_depth", 2)
        reg.observe("repro_serve_execute_seconds", 0.05)
        text = reg.render()
        assert text.endswith("\n")
        assert "# TYPE repro_jit_deopts_total counter" in text
        assert "# HELP repro_jit_deopts_total" in text
        assert "repro_jit_deopts_total 3" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_execute_seconds histogram" in text
        # Histogram buckets are cumulative and close with +Inf/sum/count.
        assert 'repro_serve_execute_seconds_bucket{le="0.05"} 1' in text
        assert 'repro_serve_execute_seconds_bucket{le="120"} 1' in text
        assert 'repro_serve_execute_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_serve_execute_seconds_sum 0.05" in text
        assert "repro_serve_execute_seconds_count 1" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 1, path='a"b\\c')
        assert 'path="a\\"b\\\\c"' in reg.render()

    def test_absorb_is_order_independent(self):
        ops = [("inc", "c_total", 2), ("inc", "c_total", 5),
               ("set", "g", 3), ("set", "g", 9),
               ("obs", "h_seconds", 0.01), ("obs", "h_seconds", 2.0)]

        def registry_for(order):
            shards = [MetricsRegistry() for _ in range(2)]
            for i, (op, name, value) in enumerate(order):
                shard = shards[i % 2]
                getattr(shard, {"inc": "inc", "set": "set",
                                "obs": "observe"}[op])(name, value)
            parent = MetricsRegistry()
            for shard in shards:
                parent.absorb(shard.snapshot())
            return parent

        fwd = registry_for(ops)
        rev = registry_for(list(reversed(ops)))
        assert fwd.render() == rev.render()
        assert fwd.gauge("g").value == 9          # Gauges fold by max.

    def test_snapshot_absorb_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("repro_cache_hits_total", 4, cache="cell")
        reg.observe("h_seconds", 0.3)
        clone = MetricsRegistry()
        clone.absorb(json.loads(json.dumps(reg.snapshot())))
        assert clone.render() == reg.render()

    def test_hooks_are_noops_without_registry(self):
        metrics.inc("c_total")
        metrics.set_gauge("g", 1)
        metrics.observe("h_seconds", 0.1)
        metrics.absorb({"families": []})
        assert metrics.active() is None

    def test_worker_lifecycle_respects_env(self, monkeypatch):
        monkeypatch.delenv(metrics.ENV_VAR, raising=False)
        assert metrics.begin_worker() is None
        assert metrics.end_worker() is None
        monkeypatch.setenv(metrics.ENV_VAR, "1")
        reg = metrics.begin_worker()
        assert reg is not None
        metrics.inc("c_total", 2)
        snap = metrics.end_worker()
        assert snap is not None
        assert metrics.active() is None           # Snapshot clears the slot.
        parent = metrics.install()
        metrics.absorb(snap)
        assert parent.counter("c_total").value == 2

    def test_preregister_covers_core_families(self):
        reg = MetricsRegistry()
        metrics.preregister(reg)
        text = reg.render()
        for family in ("repro_serve_queue_depth",
                       "repro_serve_queue_wait_seconds",
                       "repro_cache_hits_total",
                       "repro_jit_regions_total",
                       "repro_jit_guard_failures_total"):
            assert f"# TYPE {family} " in text
        assert 'repro_cache_hits_total{cache="cell"} 0' in text
        assert reg.summary()["families"] >= 10


# -- deterministic sweep folds ------------------------------------------------

BENCH = "bspline-vgh"


class TestSweepFold:
    def test_j1_and_jN_registries_render_identically(self, monkeypatch):
        # The persistent region cache is the one legitimately
        # order-dependent source (first run would warm it for the
        # second); metrics determinism is only promised with it off,
        # same caveat as RegionSession.
        monkeypatch.setenv("REPRO_REGION_CACHE", "0")
        monkeypatch.setenv(metrics.ENV_VAR, "1")

        def render(jobs):
            registry = metrics.install()
            runner = ParallelRunner(jobs=jobs, use_cache=False,
                                    engine="jit")
            cells = runner.prefetch([benchmark_by_name(BENCH)],
                                    configs=("baseline", "uu_heuristic"))
            metrics.uninstall()
            assert all(c.error is None for c in cells)
            return registry.render()

        serial = render(1)
        pooled = render(2)
        assert serial == pooled
        assert "repro_sweep_cells_total 2" in serial
        assert "repro_jit_regions_total" in serial


# -- the daemon's metrics surface ---------------------------------------------

@pytest.fixture
def daemon():
    d = ServeDaemon(workers=2, use_cache=False)
    d.start()
    try:
        yield d
    finally:
        d.shutdown()


def _counter_values(registry, prefix):
    out = {}
    for family in registry.snapshot()["families"]:
        if not family["name"].startswith(prefix):
            continue
        if family["kind"] != "counter":
            continue
        for entry in family["series"]:
            if entry["value"]:
                out[(family["name"],
                     tuple(tuple(kv) for kv in entry["labels"]))] = \
                    entry["value"]
    return out


class TestDaemonMetrics:
    def test_daemon_owns_and_releases_the_slot(self):
        d = ServeDaemon(workers=1, use_cache=False)
        assert metrics.active() is d.metrics
        d.start()
        d.shutdown()
        assert metrics.active() is None

    def test_metrics_endpoint_serves_prometheus_text(self, daemon):
        client = ServeClient(daemon.url)
        result = client.submit_and_wait(ir_request(lanes=2), timeout=300)
        assert result.status == "ok", result.error
        text = client.metrics_text()
        # All three families the acceptance criterion names, plus the
        # request counter this very scrape sequence incremented.
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "# TYPE repro_jit_regions_total counter" in text
        assert 'repro_serve_jobs_total{state="done"} 1' in text
        assert ('repro_serve_requests_total{endpoint="submit",'
                'method="POST"} 1') in text
        assert "repro_serve_queue_wait_seconds_count 1" in text
        assert "repro_serve_execute_seconds_count 1" in text

    def test_served_job_counts_like_direct_execution(self, monkeypatch):
        # The persistent region cache would let whichever run goes
        # second replay plans the first one compiled, skewing the
        # compiled/fused counters; job-level metric parity is only
        # promised with it off (same caveat as the -j1/-jN fold).
        monkeypatch.setenv("REPRO_REGION_CACHE", "0")
        req = ir_request(engine="jit")
        d = ServeDaemon(workers=2, use_cache=False)
        d.start()
        try:
            result = ServeClient(d.url).submit_and_wait(req, timeout=300)
            assert result.status == "ok", result.error
            served = _counter_values(d.metrics, "repro_jit_")
        finally:
            d.shutdown()                   # Releases the slot for `direct`.

        direct_reg = metrics.install()
        direct_result = execute_request(req)
        metrics.uninstall()
        assert direct_result.status == "ok"
        direct = _counter_values(direct_reg, "repro_jit_")
        assert served == direct
        assert direct, "expected the jit engine to record region activity"

    def test_stats_carry_metrics_summary(self, daemon):
        stats = ServeClient(daemon.url).stats()
        assert stats["metrics"]["families"] >= 10
        assert stats["metrics"]["series"] >= stats["metrics"]["families"]

    def test_serve_status_renders_metrics_row(self, daemon, capsys):
        from repro.cli import main
        assert main(["serve-status", "--url", daemon.url]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "scrape GET /metrics" in out

    def test_health_reports_uptime_and_schema(self, daemon):
        data = ServeClient(daemon.url).health()
        assert data["ok"] is True
        assert data["schema"] == SERVE_SCHEMA_VERSION
        assert data["uptime_seconds"] >= 0

    def test_known_route_wrong_verb_gets_405(self, daemon):
        # POST to a GET-only route: 405 with an Allow header, not 404.
        req = urllib.request.Request(f"{daemon.url}/health", data=b"{}",
                                     method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 405
        assert exc.value.headers["Allow"] == "GET"
        # GET to a POST-only route.
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{daemon.url}/submit", timeout=10)
        assert exc.value.code == 405
        assert exc.value.headers["Allow"] == "POST"
        # Unknown routes still 404 under either verb.
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{daemon.url}/nope", timeout=10)
        assert exc.value.code == 404

    def test_metrics_cli_scrapes_daemon(self, daemon, capsys):
        from repro.cli import main
        assert main(["metrics", "--url", daemon.url]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_queue_depth gauge" in out

    def test_metrics_cli_reports_unreachable_daemon(self, capsys):
        from repro.cli import main
        assert main(["metrics", "--url", "http://127.0.0.1:9"]) == 1
        assert "repro metrics:" in capsys.readouterr().err


# -- per-request correlation --------------------------------------------------

class TestRequestCorrelation:
    def test_trace_filter_isolates_one_jobs_spans(self, tmp_path, capsys):
        from repro.cli import main
        d = ServeDaemon(workers=2, use_cache=False)
        d.start()
        try:
            client = ServeClient(d.url)
            requests = [ir_request(lanes=lanes) for lanes in (2, 4, 8)]
            for req in requests:
                result = client.submit_and_wait(req, timeout=300)
                assert result.status == "ok", result.error
            trace = tmp_path / "daemon.trace.json"
            remarks = tmp_path / "daemon.remarks.jsonl"
            written = d.export_obs(str(trace), str(remarks))
            assert written["events"] > 0
        finally:
            d.shutdown()

        ids = [content_hash(req) for req in requests]
        assert len(set(ids)) == 3
        merged = json.loads(trace.read_text())["traceEvents"]
        stamped = {e["args"]["request"] for e in merged
                   if e.get("args", {}).get("request")}
        assert set(ids) <= stamped

        out = tmp_path / "one.trace.json"
        assert main(["trace", "--in", str(trace),
                     "--request", ids[0], "--out", str(out)]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        assert events, "the filtered trace must keep the job's spans"
        assert all(e["args"]["request"] == ids[0] for e in events)
        # Not just the top-level serve span: the pass manager records
        # its spans via tracer.complete() directly, and those must be
        # request-stamped too for the filter to tell one job's story.
        assert {e["cat"] for e in events} >= {"cell", "pass"}
        assert f"{len(events)} events" in capsys.readouterr().out

        # The remarks filter isolates the same job's remark stream.
        assert main(["remarks", "--in", str(remarks),
                     "--request", ids[1], "--json"]) == 0
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.splitlines() if line]
        assert lines
        assert all(r["context"]["request"] == ids[1] for r in lines)

    def test_result_carries_trace_events_and_optional_profile(self):
        plain = execute_request(ir_request(lanes=2))
        assert plain.status == "ok"
        assert plain.trace_events, "results must ship their spans"
        assert all(e["args"]["request"] == content_hash(ir_request(lanes=2))
                   for e in plain.trace_events
                   if e.get("ph") == "X" and "request" in e.get("args", {}))
        assert plain.profile is None, "profiles are opt-in"

        with_profile = execute_request(ir_request(lanes=2,
                                                  include_profile=True))
        assert with_profile.status == "ok"
        assert with_profile.profile is not None
        assert with_profile.profile.get("request") == \
            content_hash(ir_request(lanes=2, include_profile=True))
