"""SVG chart rendering tests."""

import pytest

from repro.harness.fig6 import Fig6Point
from repro.harness.fig7 import Fig7Row
from repro.harness.fig8 import ScatterPoint
from repro.harness.figures_svg import fig6_svg, fig7_svg, fig8_svg
from repro.harness.svg import (BarGroup, ScatterSeries, grouped_bar_chart,
                               scatter_chart, _nice_ticks)


class TestPrimitives:
    def test_nice_ticks_cover_range(self):
        ticks = _nice_ticks(0.0, 10.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 10.0 + 1e-9
        assert len(ticks) >= 3

    def test_bar_chart_is_valid_svg(self):
        groups = [BarGroup("a", [1.0, 2.0]), BarGroup("b", [0.5, None])]
        svg = grouped_bar_chart(groups, ["s1", "s2"], "T", "y")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= 3      # Background + 3 bars.
        assert "T" in svg

    def test_bar_chart_log_scale(self):
        groups = [BarGroup("a", [0.2, 5.0])]
        svg = grouped_bar_chart(groups, ["s"], "T", "y", log_scale=True)
        assert "<svg" in svg

    def test_scatter_has_diagonal_and_points(self):
        series = [ScatterSeries("u=2", [(1.0, 1.1), (2.0, 0.9)])]
        svg = scatter_chart(series, "T", "x", "y")
        assert svg.count("<circle") >= 3    # 2 points + legend marker.
        assert "stroke-dasharray" in svg    # The diagonal.

    def test_text_escaped(self):
        svg = grouped_bar_chart([BarGroup("a<b", [1.0])], ["s&t"], "T", "y")
        assert "a&lt;b" in svg
        assert "s&amp;t" in svg


def _p(app, loop, factor, value):
    return Fig6Point(app, loop, factor, value, value, value, True)


class TestFigureAdapters:
    def test_fig6_svg(self):
        points = [_p("appA", "l:0", 2, 1.2), _p("appA", "l:0", 4, 1.1),
                  _p("appA", "l:0", 8, 0.4), _p("appA", None, None, 1.15)]
        svg = fig6_svg(points, "speedup")
        assert "<svg" in svg and "appA" in svg
        assert "heuristic" in svg

    def test_fig6_svg_skips_infinite(self):
        points = [_p("appA", "l:0", 2, float("inf")),
                  _p("appA", None, None, 1.0)]
        svg = fig6_svg(points, "speedup")
        assert "<svg" in svg

    def test_fig7_svg(self):
        rows = [Fig7Row("appA", 2, 1.3, 1.0, 1.1),
                Fig7Row("appA", 4, 1.5, 1.1, 1.1)]
        svg = fig7_svg(rows)
        assert "u&amp;u" in svg

    def test_fig8_svg(self):
        points = [ScatterPoint("appA", "l:0", f, 1.0 + f / 10, 1.0)
                  for f in (2, 4, 8)]
        svg = fig8_svg(points, "unroll")
        assert "u=2" in svg and "u=8" in svg
        assert svg.count("<circle") >= 6
