"""CLI driver tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (["list"], ["run-uu", "--factor", "4"],
                     ["run-unroll"], ["run-unmerge"],
                     ["run-heuristic", "--verbose"],
                     ["table1"], ["fig6"], ["fig7"], ["fig8"], ["indepth"],
                     ["ptx", "--app", "complex"]):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_ptx_requires_app(self):
        with pytest.raises(SystemExit):
            main(["ptx"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list", "--app", "complex"]) == 0
        out = capsys.readouterr().out
        assert "complex" in out
        assert "complex_pow:0" in out

    def test_run_unmerge_single_app(self, capsys):
        assert main(["run-unmerge", "--app", "complex"]) == 0
        out = capsys.readouterr().out
        assert "complex_pow:0" in out
        assert "yes" in out          # Outputs matched the baseline.

    def test_heuristic_verbose(self, capsys):
        assert main(["run-heuristic", "--app", "complex",
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        # The per-loop report is the rendered remark stream (repro.obs),
        # carrying the heuristic inputs on every applied loop.
        assert "[applied] uu" in out
        assert "u_prime=" in out

    def test_ptx_output(self, capsys):
        assert main(["ptx", "--app", "complex",
                     "--kernel", "complex_pow"]) == 0
        out = capsys.readouterr().out
        assert ".visible .entry complex_pow" in out
        assert "selp" in out         # The baseline predication shows up.

    def test_table1_single_app(self, capsys):
        assert main(["table1", "--app", "complex"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out and "complex" in out


class TestFuzzCommands:
    def test_fuzz_commands_parse(self):
        parser = build_parser()
        for argv in (["fuzz", "run", "--seed", "3", "--count", "7",
                      "-j", "2", "--no-bisect"],
                     ["fuzz", "run", "--save-corpus", "--out", "/tmp/x"],
                     ["fuzz", "reduce", "--seed", "5"],
                     ["fuzz", "corpus", "--lanes", "8"]):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_fuzz_reduce_requires_seed(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "reduce"])

    def test_fuzz_run_clean_seeds(self, capsys):
        assert main(["fuzz", "run", "--seed", "0", "--count", "2"]) == 0
        out = capsys.readouterr().out
        assert "no divergences found" in out
        assert "fuzzed 2 kernels" in out

    def test_fuzz_reduce_clean_seed(self, capsys):
        assert main(["fuzz", "reduce", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "nothing to reduce" in out

    def test_fuzz_corpus_replays_entries(self, capsys):
        assert main(["fuzz", "corpus"]) == 0
        out = capsys.readouterr().out
        assert "fptosi_saturation" in out
        assert "FAIL" not in out

    def test_fuzz_corpus_empty_dir(self, capsys, tmp_path):
        assert main(["fuzz", "corpus", "--dir", str(tmp_path)]) == 0
        assert "no corpus entries" in capsys.readouterr().out


class TestTuneCommands:
    def test_tune_commands_parse(self):
        parser = build_parser()
        for argv in (["tune", "bspline-vgh", "--budget", "4"],
                     ["tune", "--all", "--u-max", "4"],
                     ["tune", "show", "--app", "complex"],
                     ["run-tuned", "--app", "complex"],
                     ["bench-interp", "--json"],
                     ["bench-interp", "--json-out", "x.json"],
                     ["ptx", "--app", "complex", "--config", "tuned"]):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_tune_without_target_rejected(self, capsys):
        assert main(["tune"]) == 2
        assert "name a benchmark" in capsys.readouterr().err

    def test_tune_then_show_and_run_tuned(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path / "tuned"))
        out_dir = tmp_path / "tuned"
        assert main(["tune", "bspline-vgh", "--budget", "2", "-j", "1",
                     "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "winner" in out and "vs heuristic" in out
        assert (out_dir / "bspline-vgh.json").is_file()

        assert main(["tune", "show", "--app", "bspline-vgh",
                     "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "bspline_vgh:0" in out and "verified" in out

        assert main(["run-tuned", "--app", "bspline-vgh", "-j", "1"]) == 0
        out = capsys.readouterr().out
        assert "tuned configs applied: 1/1" in out

    def test_tune_show_without_file_explains(self, capsys, tmp_path):
        assert main(["tune", "show", "--app", "complex",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "missing" in out and "repro tune" in out

    def test_run_tuned_falls_back_without_files(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_TUNED_DIR", str(tmp_path / "tuned"))
        with pytest.warns(RuntimeWarning, match="no usable tuned config"):
            assert main(["run-tuned", "--app", "complex", "-j", "1"]) == 0
        out = capsys.readouterr().out
        assert "fallback: missing" in out
        assert "tuned configs applied: 0/1" in out

    def test_cache_stats_separate_tuner_entries(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        (tmp_path / "cache").mkdir()
        (tmp_path / "cache" / "aa.json").write_text("{}")
        (tmp_path / "cache" / "tune-bb.json").write_text("{}")
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 1" in out and "tuner: 1" in out

    def test_bench_interp_json_out(self, capsys, tmp_path):
        import json
        target = tmp_path / "bench.json"
        assert main(["bench-interp", "--warps", "2", "--repeats", "1",
                     "--json-out", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["schema"] == 2
        assert payload["source"] == "bench-interp"
        assert set(payload["provenance"]) == \
            {"python", "platform", "timing_model"}
        assert {k["kernel"] for k in payload["kernels"]} == \
            {"uniform", "divergent", "staggered", "briefdiv",
             "chain", "chaindia"}
        for kernel in payload["kernels"]:
            assert set(kernel["warp_steps_per_sec"]) == \
                {"batched", "warp", "jit", "jit-nofuse"}
            assert kernel["warp_steps"] > 0
            assert kernel["jit_speedup"] > 0
            assert kernel["jit_vs_batched"] > 0
            assert kernel["fused_speedup"] > 0

    def test_remarks_kind_filter(self, capsys):
        assert main(["remarks", "--app", "complex", "--engine", "jit",
                     "--kind", "jit", "-j", "1"]) == 0
        out = capsys.readouterr().out
        assert "matching 'jit'" in out
        # Only jit region remarks survive the filter: every line that
        # renders a remark names the jit pass.
        body = [line for line in out.splitlines()
                if line.startswith("[")]
        assert body, "jit engine emitted no region remarks"
        assert all(" jit " in line for line in body)

    def test_bench_interp_compare(self, capsys):
        assert main(["bench-interp", "--warps", "2", "--repeats", "1",
                     "--compare"]) == 0
        out = capsys.readouterr().out
        assert "Engine comparison" in out
        # One row per engine per kernel, wall ms plus both ratios.
        for engine in ("warp", "batched", "jit"):
            assert engine in out
        assert "vs batched" in out


class TestHeuristicReport:
    def test_report_lists_decisions(self, capsys):
        assert main(["run-heuristic", "--app", "complex",
                     "--report"]) == 0
        out = capsys.readouterr().out
        # The report is the rendered remark stream: every selected loop
        # is an [applied] remark with its (p, s, u') or a [missed] one
        # carrying the skip reason.
        assert "[applied]" in out or "[missed ]" in out
        assert "u_prime=" in out or "p=" in out


class TestServeCommands:
    def test_serve_commands_parse(self):
        parser = build_parser()
        for argv in (["serve", "--port", "0", "--serve-workers", "4",
                      "--cache-cap", "1048576"],
                     ["submit", "--app", "complex", "--json"],
                     ["submit", "--ir", "k.ll", "--config", "uu",
                      "--loop-id", "k/L0", "--factor", "4",
                      "--directive", "unroll(4)@k/L0", "--no-wait"],
                     ["serve-status", "--json"]):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_submit_rejects_malformed_request(self, capsys):
        # No source at all: fails client-side before touching the network.
        assert main(["submit", "--config", "baseline"]) == 2
        err = capsys.readouterr().err
        assert "exactly one of app/ir/kernel" in err

    def test_submit_against_live_daemon(self, capsys, tmp_path):
        import json as json_mod

        from repro.serve import ServeDaemon

        ir_file = tmp_path / "kernel.ll"
        ir_file.write_text(
            (__import__("pathlib").Path(__file__).parent / "corpus"
             / "fuzz_seed7_structured.ll").read_text())
        daemon = ServeDaemon(workers=1, use_cache=False)
        daemon.start()
        try:
            out_file = tmp_path / "result.json"
            assert main(["submit", "--ir", str(ir_file),
                         "--config", "uu_heuristic", "--lanes", "8",
                         "--url", daemon.url, "--out", str(out_file)]) == 0
            out = capsys.readouterr().out
            assert "ok=yes" in out
            payload = json_mod.loads(out_file.read_text())
            assert payload["status"] == "ok"
            assert payload["remarks"]

            assert main(["serve-status", "--url", daemon.url]) == 0
            status_out = capsys.readouterr().out
            assert "executed:  1" in status_out
        finally:
            daemon.shutdown()

    def test_serve_status_unreachable_daemon(self, capsys):
        assert main(["serve-status",
                     "--url", "http://127.0.0.1:1"]) == 1
        assert "unreachable" in capsys.readouterr().err

    def test_cache_stats_reports_orphans_and_cap(self, capsys, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "2048")
        (tmp_path / "cache").mkdir()
        (tmp_path / "cache" / "aa.json").write_text("{}")
        (tmp_path / "cache" / "bb.json.tmp.99-0").write_text("orphan")
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "orphans: 1 tmp file(s)" in out
        assert "cap:     2.0 KiB" in out
        # clear sweeps the orphan along with the entry.
        assert main(["cache", "clear"]) == 0
        assert "removed 2" in capsys.readouterr().out
