"""Frontend tests: AST lowering, SSA construction, operators."""

import numpy as np
import pytest

from repro.frontend import (And, Assign, Break, Call, Cast, For, GlobalTid,
                            If, Index, KernelDef, Lit, LoweringError, Not, Or,
                            Param, Return, Store, V, While, lower_kernels)
from repro.gpu import Memory, SimtMachine
from repro.ir import verify_module
from repro.analysis import LoopInfo


def run_kernel(kernel, args, lanes=1, bufs=()):
    module = lower_kernels([kernel], "test")
    verify_module(module)
    mem = Memory()
    addrs = {}
    for name, dtype, count, init in bufs:
        addrs[name] = mem.alloc(name, dtype, count, init)
    machine = SimtMachine(module, mem)
    resolved = [addrs.get(a, a) for a in args]
    ret, _ = machine.run_function(kernel.name, resolved, lanes=lanes)
    return ret, mem


class TestScalars:
    def test_return_arithmetic(self):
        k = KernelDef("k", [Param("x", "i64")],
                      [Return(V("x") * 2 + 1)], ret_type="i64")
        ret, _ = run_kernel(k, [20])
        assert ret[0] == 41

    def test_float_int_mixing(self):
        k = KernelDef("k", [Param("x", "f64"), Param("n", "i64")],
                      [Return(V("x") * V("n"))], ret_type="f64")
        ret, _ = run_kernel(k, [2.5, 4])
        assert ret[0] == 10.0

    def test_cast(self):
        k = KernelDef("k", [Param("x", "f64")],
                      [Return(Cast("i64", V("x") * 2.0))], ret_type="i64")
        ret, _ = run_kernel(k, [3.7])
        assert ret[0] == 7

    def test_comparison_chain(self):
        k = KernelDef("k", [Param("x", "i64")],
                      [If(And(V("x") > 2, V("x") < 10),
                          [Return(Lit(1, "i64"))]),
                       Return(Lit(0, "i64"))], ret_type="i64")
        assert run_kernel(k, [5])[0][0] == 1
        assert run_kernel(k, [1])[0][0] == 0
        assert run_kernel(k, [12])[0][0] == 0

    def test_or_and_not(self):
        k = KernelDef("k", [Param("x", "i64")],
                      [If(Or(V("x") < 0, Not(V("x") < 100)),
                          [Return(Lit(1, "i64"))]),
                       Return(Lit(0, "i64"))], ret_type="i64")
        assert run_kernel(k, [-5])[0][0] == 1
        assert run_kernel(k, [500])[0][0] == 1
        assert run_kernel(k, [50])[0][0] == 0


class TestControlFlow:
    def test_if_else_value(self):
        k = KernelDef("k", [Param("x", "i64")],
                      [Assign("r", Lit(0, "i64")),
                       If(V("x") > 0,
                          [Assign("r", V("x") * 2)],
                          [Assign("r", 0 - V("x"))]),
                       Return(V("r"))], ret_type="i64")
        assert run_kernel(k, [5])[0][0] == 10
        assert run_kernel(k, [-5])[0][0] == 5

    def test_while_loop_ssa(self):
        k = KernelDef("k", [Param("n", "i64")],
                      [Assign("acc", Lit(0, "i64")),
                       Assign("i", Lit(0, "i64")),
                       While(V("i") < V("n"), [
                           Assign("acc", V("acc") + V("i")),
                           Assign("i", V("i") + 1),
                       ]),
                       Return(V("acc"))], ret_type="i64")
        assert run_kernel(k, [10])[0][0] == 45
        assert run_kernel(k, [0])[0][0] == 0

    def test_for_loop(self):
        k = KernelDef("k", [Param("n", "i64")],
                      [Assign("acc", Lit(0, "i64")),
                       For("i", Lit(0, "i64"), V("n"), [
                           Assign("acc", V("acc") + V("i") * V("i")),
                       ]),
                       Return(V("acc"))], ret_type="i64")
        assert run_kernel(k, [5])[0][0] == 30

    def test_for_with_step(self):
        k = KernelDef("k", [Param("n", "i64")],
                      [Assign("acc", Lit(0, "i64")),
                       For("i", Lit(0, "i64"), V("n"), [
                           Assign("acc", V("acc") + 1),
                       ], step=Lit(3)),
                       Return(V("acc"))], ret_type="i64")
        assert run_kernel(k, [10])[0][0] == 4  # i = 0,3,6,9.

    def test_break(self):
        k = KernelDef("k", [Param("n", "i64")],
                      [Assign("i", Lit(0, "i64")),
                       While(V("i") < V("n"), [
                           If(V("i") >= 5, [Break()]),
                           Assign("i", V("i") + 1),
                       ]),
                       Return(V("i"))], ret_type="i64")
        assert run_kernel(k, [100])[0][0] == 5
        assert run_kernel(k, [3])[0][0] == 3

    def test_nested_loops(self):
        k = KernelDef("k", [Param("n", "i64")],
                      [Assign("acc", Lit(0, "i64")),
                       For("i", Lit(0, "i64"), V("n"), [
                           For("j", Lit(0, "i64"), V("i"), [
                               Assign("acc", V("acc") + 1),
                           ]),
                       ]),
                       Return(V("acc"))], ret_type="i64")
        assert run_kernel(k, [5])[0][0] == 10

    def test_loop_ids_match_source_order(self):
        k = KernelDef("k", [Param("n", "i64")],
                      [Assign("a", Lit(0, "i64")),
                       While(V("a") < V("n"), [Assign("a", V("a") + 1)]),
                       Assign("b", Lit(0, "i64")),
                       While(V("b") < V("n"), [Assign("b", V("b") + 2)]),
                       Return(V("a") + V("b"))], ret_type="i64")
        module = lower_kernels([k], "t")
        info = LoopInfo.compute(module.get_function("k"))
        assert len(info.loops) == 2
        assert sorted(l.loop_id for l in info.loops) == ["k:0", "k:1"]


class TestMemory:
    def test_load_store(self):
        k = KernelDef("k",
                      [Param("src", "f64*", restrict=True),
                       Param("dst", "f64*", restrict=True)],
                      [Assign("gid", GlobalTid()),
                       Store("dst", V("gid"), Index("src", V("gid")) * 2.0)])
        data = np.arange(4, dtype=np.float64)
        _, mem = run_kernel(k, ["src", "dst"], lanes=4,
                            bufs=[("src", "f64", 4, data),
                                  ("dst", "f64", 4, None)])
        assert np.array_equal(mem.read_back("dst"), data * 2)

    def test_restrict_attribute_recorded(self):
        k = KernelDef("k", [Param("p", "f64*", restrict=True),
                            Param("q", "f64*")], [Return(None)])
        module = lower_kernels([k], "t")
        f = module.get_function("k")
        assert f.attributes["restrict_args"] == ("p",)


class TestPragmas:
    def test_pragma_lowered_to_attribute(self):
        k = KernelDef("k", [Param("n", "i64")],
                      [Assign("i", Lit(0, "i64")),
                       While(V("i") < V("n"), [Assign("i", V("i") + 1)]),
                       Return(V("i"))],
                      ret_type="i64", loop_pragmas={0: "unroll"})
        module = lower_kernels([k], "t")
        f = module.get_function("k")
        assert f.attributes["loop_pragmas"] == {"k:0": "unroll"}


class TestErrors:
    def test_undefined_variable(self):
        k = KernelDef("k", [], [Return(V("nope"))], ret_type="i64")
        with pytest.raises(LoweringError):
            lower_kernels([k], "t")

    def test_type_conflict_coerced_or_rejected(self):
        # Re-assignment with a different type is coerced to the declared one.
        k = KernelDef("k", [Param("n", "i64")],
                      [Assign("x", Lit(1.5, "f64")),
                       Assign("x", V("n")),
                       Return(V("x"))], ret_type="f64")
        ret, _ = run_kernel(k, [3])
        assert ret[0] == 3.0

    def test_missing_return_value(self):
        k = KernelDef("k", [], [], ret_type="i64")
        with pytest.raises(LoweringError):
            lower_kernels([k], "t")

    def test_break_outside_loop(self):
        k = KernelDef("k", [], [Break()])
        with pytest.raises(LoweringError):
            lower_kernels([k], "t")
