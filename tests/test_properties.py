"""Property-based tests (hypothesis) on core invariants.

Three families:

* random straight-line integer programs: the cleanup pipeline preserves
  interpreter semantics;
* random branchy loop kernels (frontend-generated): unroll / unmerge / u&u
  preserve per-lane results for every factor;
* random CFGs: our dominator tree matches networkx's.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import DominatorTree, LoopInfo
from repro.frontend import (Assign, BinOp, If, KernelDef, Lit, Param, Return,
                            V, While)
from repro.frontend.lower import lower_kernels
from repro.gpu import SimtMachine
from repro.ir import Module, verify_function
from repro.transforms import (run_dce, run_gvn, run_instcombine, run_sccp,
                              run_simplifycfg, unmerge_loop, unroll_loop)

# ---------------------------------------------------------------------------
# Straight-line expression programs
# ---------------------------------------------------------------------------

_INT_OPS = ["+", "-", "*", "&", "|", "^"]


def _expr(draw, depth, num_vars):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return V(f"x{draw(st.integers(0, num_vars - 1))}")
        return Lit(draw(st.integers(-100, 100)), "i64")
    op = draw(st.sampled_from(_INT_OPS))
    return BinOp(op, _expr(draw, depth - 1, num_vars),
                 _expr(draw, depth - 1, num_vars))


@st.composite
def straightline_program(draw):
    num_vars = draw(st.integers(1, 3))
    stmts = [Assign(f"x{i}", Lit(draw(st.integers(-50, 50)), "i64"))
             for i in range(num_vars)]
    for _ in range(draw(st.integers(1, 6))):
        target = f"x{draw(st.integers(0, num_vars - 1))}"
        stmts.append(Assign(target, _expr(draw, 2, num_vars)))
    result = _expr(draw, 2, num_vars)
    stmts.append(Return(result))
    return KernelDef("prog", [Param("seed", "i64")], stmts, ret_type="i64")


def _interpret(kernel) -> int:
    module = lower_kernels([kernel], "prop")
    ret, _ = SimtMachine(module).run_function("prog", [0], lanes=1)
    return int(ret[0])


def _interpret_optimized(kernel) -> int:
    module = lower_kernels([kernel], "prop")
    func = module.get_function("prog")
    for _ in range(3):
        run_instcombine(func)
        run_gvn(func)
        run_sccp(func)
        run_simplifycfg(func)
        run_dce(func)
        verify_function(func)
    ret, _ = SimtMachine(module).run_function("prog", [0], lanes=1)
    return int(ret[0])


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(straightline_program())
def test_cleanup_pipeline_preserves_straightline_semantics(kernel):
    assert _interpret(kernel) == _interpret_optimized(kernel)


# ---------------------------------------------------------------------------
# Branchy loop kernels under unroll / unmerge / u&u
# ---------------------------------------------------------------------------

@st.composite
def loop_kernel(draw):
    """A bounded while-loop with 1-2 data-dependent diamonds in its body."""
    trip = draw(st.integers(0, 9))
    num_ifs = draw(st.integers(1, 2))
    body = []
    for k in range(num_ifs):
        divisor = draw(st.integers(2, 4))
        then = [Assign("acc", _expr_simple(draw, k))]
        els = [Assign("acc", V("acc") + Lit(draw(st.integers(-5, 5)), "i64"))]
        body.append(If(BinOp("%", V("i"), Lit(divisor, "i64"))
                       == Lit(0, "i64"), then, els))
    body.append(Assign("i", V("i") + 1))
    stmts = [
        Assign("acc", Lit(draw(st.integers(-10, 10)), "i64")),
        Assign("i", Lit(0, "i64")),
        While(V("i") < Lit(trip, "i64"), body),
        Return(V("acc")),
    ]
    return KernelDef("prog", [Param("seed", "i64")], stmts, ret_type="i64")


def _expr_simple(draw, salt):
    base = V("acc") * Lit(draw(st.integers(-2, 3)), "i64")
    return base + Lit(salt + draw(st.integers(0, 7)), "i64")


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(loop_kernel(), st.sampled_from([2, 3, 4, 5]))
def test_unroll_preserves_loop_semantics(kernel, factor):
    expected = _interpret(kernel)
    module = lower_kernels([kernel], "prop")
    func = module.get_function("prog")
    loops = LoopInfo.compute(func).loops
    if not loops:
        return
    unroll_loop(func, loops[0], factor)
    verify_function(func)
    ret, _ = SimtMachine(module).run_function("prog", [0], lanes=1)
    assert int(ret[0]) == expected


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(loop_kernel())
def test_unmerge_preserves_loop_semantics(kernel):
    expected = _interpret(kernel)
    module = lower_kernels([kernel], "prop")
    func = module.get_function("prog")
    loops = LoopInfo.compute(func).loops
    if not loops:
        return
    unmerge_loop(func, loops[0], 60_000)
    verify_function(func)
    ret, _ = SimtMachine(module).run_function("prog", [0], lanes=1)
    assert int(ret[0]) == expected


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(loop_kernel(), st.sampled_from([2, 3]))
def test_uu_plus_cleanup_preserves_loop_semantics(kernel, factor):
    expected = _interpret(kernel)
    module = lower_kernels([kernel], "prop")
    func = module.get_function("prog")
    loops = LoopInfo.compute(func).loops
    if not loops:
        return
    unroll_loop(func, loops[0], factor)
    fresh = [l for l in LoopInfo.compute(func).loops
             if l.header is loops[0].header]
    if fresh:
        unmerge_loop(func, fresh[0], 60_000)
    for _ in range(2):
        run_instcombine(func)
        run_gvn(func)
        run_sccp(func)
        run_simplifycfg(func)
        run_dce(func)
    verify_function(func)
    ret, _ = SimtMachine(module).run_function("prog", [0], lanes=1)
    assert int(ret[0]) == expected


# ---------------------------------------------------------------------------
# Random CFG dominators vs networkx
# ---------------------------------------------------------------------------

@st.composite
def random_cfg(draw):
    n = draw(st.integers(2, 10))
    edges = set()
    # A spine guarantees reachability; extra edges add merges/back edges.
    for i in range(n - 1):
        edges.add((i, i + 1))
    for _ in range(draw(st.integers(0, 2 * n))):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b:
            edges.add((a, b))
    return n, sorted(edges)


@settings(max_examples=60, deadline=None)
@given(random_cfg())
def test_dominators_match_networkx(cfg):
    n, edges = cfg
    from repro.ir import BranchInst, CondBranchInst, Module, RetInst
    from repro.ir import types as T
    from repro.ir.constants import const

    mod = Module("cfg")
    func = mod.add_function("f", T.FunctionType(T.VOID, (T.I1,)), ["c"])
    blocks = [func.add_block(f"b{i}") for i in range(n)]
    succs = {}
    for a, b in edges:
        succs.setdefault(a, []).append(b)
    for i, block in enumerate(blocks):
        out = succs.get(i, [])
        if not out:
            block.append(RetInst(None))
        elif len(out) == 1:
            block.append(BranchInst(blocks[out[0]]))
        else:
            # Chain conditional branches for >2 successors.
            current = block
            remaining = list(out)
            while len(remaining) > 2:
                nxt = func.add_block(f"b{i}x")
                current.append(CondBranchInst(func.args[0],
                                              blocks[remaining.pop()], nxt))
                current = nxt
            current.append(CondBranchInst(func.args[0],
                                          blocks[remaining[0]],
                                          blocks[remaining[1]]))

    g = nx.DiGraph()
    for block in func.blocks:
        g.add_node(block.name)
        for succ in block.successors():
            g.add_edge(block.name, succ.name)
    reference = nx.immediate_dominators(g, func.entry.name)
    dt = DominatorTree.compute(func)
    for block in func.blocks:
        if not dt.is_reachable(block):
            assert block.name not in reference
            continue
        idom = dt.idom(block)
        if block is func.entry:
            assert idom is None
        else:
            assert reference[block.name] == idom.name
