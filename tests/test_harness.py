"""Harness tests: stats, experiment runner, table/figure generators."""

import math

import numpy as np
import pytest

from repro.bench import benchmark_by_name
from repro.harness import (ExperimentRunner, geomean, mean_and_rsd, median,
                           relative_std, simulate_runs)
from repro.harness.fig6 import Fig6Point, format_figure as fmt6, series as s6
from repro.harness.fig7 import format_figure as fmt7, series as s7
from repro.harness.fig8 import format_figure as fmt8, series as s8
from repro.harness.indepth import compare, format_comparison
from repro.harness.table1 import build_row, format_table


class TestStats:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_ignores_nonpositive(self):
        assert geomean([2.0, 0.0, 8.0]) == pytest.approx(4.0)

    def test_relative_std(self):
        assert relative_std([5.0, 5.0, 5.0]) == 0.0
        assert relative_std([4.0, 6.0]) > 0

    def test_simulated_runs_deterministic_and_scaled(self):
        a = simulate_runs(100.0, 2.0, runs=20, seed=7)
        b = simulate_runs(100.0, 2.0, runs=20, seed=7)
        assert a == b
        mean, rsd = mean_and_rsd(a)
        assert mean == pytest.approx(100.0, rel=0.05)
        assert 0.5 < rsd < 5.0


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(max_instructions=4000, compile_timeout=30)


@pytest.fixture(scope="module")
def small_benches():
    return [benchmark_by_name("mandelbrot"), benchmark_by_name("complex")]


class TestRunner:
    def test_cells_cached(self, runner, small_benches):
        bench = small_benches[0]
        a = runner.baseline(bench)
        b = runner.baseline(bench)
        assert a is b

    def test_speedup_metrics(self, runner, small_benches):
        bench = small_benches[0]
        base = runner.baseline(bench)
        cell = runner.cell(bench, "unmerge", bench.loop_ids()[0], 1)
        assert cell.speedup_over(base) > 0
        # Unmerging can shrink code below baseline when the exposed facts
        # delete more than the duplication added, so only positivity holds.
        assert cell.size_ratio_over(base) > 0
        assert cell.compile_ratio_over(base) > 0

    def test_complex_slows_down_under_uu(self, runner, small_benches):
        # The paper's worst case must reproduce directionally.
        bench = small_benches[1]
        base = runner.baseline(bench)
        cell = runner.cell(bench, "uu", "complex_pow:0", 8)
        if not cell.timed_out:
            assert cell.speedup_over(base) < 0.9


class TestExhibits:
    def test_fig6_series_and_rendering(self, runner, small_benches):
        points = s6(runner, small_benches[:1])
        # 1 loop x 3 factors + 1 heuristic point.
        assert len(points) == 4
        heur = [p for p in points if p.loop_id is None]
        assert len(heur) == 1
        for metric in ("speedup", "size_ratio", "compile_ratio"):
            text = fmt6(points, metric)
            assert "mandelbrot" in text

    def test_fig7_series(self, runner, small_benches):
        rows = s7(runner, small_benches[:1])
        assert len(rows) == 3  # Factors 2, 4, 8.
        assert {r.factor for r in rows} == {2, 4, 8}
        assert "u&u" in fmt7(rows)

    def test_fig8_series(self, runner, small_benches):
        pts_a = s8("unroll", runner, small_benches[:1])
        pts_b = s8("unmerge", runner, small_benches[:1])
        assert len(pts_a) == 3 and len(pts_b) == 3
        assert "unroll" in fmt8(pts_a, "unroll")
        with pytest.raises(ValueError):
            s8("bogus", runner, small_benches[:1])

    def test_table1_row(self, runner, small_benches):
        row = build_row(small_benches[0], runner)
        assert row.name == "mandelbrot"
        assert row.baseline_mean_ms == pytest.approx(
            small_benches[0].paper.baseline_ms, rel=0.2)
        assert row.loops == 1
        text = format_table([row])
        assert "mandelbrot" in text and "TABLE I" in text

    def test_indepth_compare(self, runner, small_benches):
        cmp = compare("mandelbrot", "mandelbrot_escape:0", 2, runner)
        assert cmp.baseline["cycles"] > 0
        assert cmp.transformed["cycles"] > 0
        text = format_comparison(cmp)
        assert "inst_misc" in text
