"""Unit tests for jit superblock selection (``repro.gpu.regions``).

The engine-equivalence suite pins the jit tier's *results*; this file
pins its *decisions*: which region shapes get selected, how diamonds are
detected (and what disqualifies one), what guard-failure feedback does
to a compiled region, and which remarks document all of it.
"""

from __future__ import annotations

from repro.gpu import Memory, SimtMachine
from repro.gpu.batched import DEMOTE_HYSTERESIS
from repro.gpu.regions import (GUARD_DEMOTE_FAILS, R_DIAMOND, R_EXIT_CONDBR,
                               R_GUARD, compile_regions, demote_guard,
                               drop_cold_region)
from repro.ir.parser import parse_module
from repro.obs import session as obs_session

SELF_LOOP_IR = """
define i64 @selfloop(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ %tid, %entry ], [ %acc.next, %loop ]
  %t = mul i64 %acc, 7
  %acc.next = add i64 %t, %i
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""

# Both arms end in an unconditional br to the same join, no phi moves on
# the way in: the canonical diamond.
DIAMOND_IR = """
define i64 @diamond(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %bit = and i64 %tid, 1
  %odd = icmp eq i64 %bit, 1
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %join ]
  %acc = phi i64 [ %tid, %entry ], [ %acc.next, %join ]
  br i1 %odd, label %a, label %b
a:
  %x = mul i64 %acc, 3
  br label %join
b:
  %y = add i64 %acc, 7
  br label %join
join:
  %m = phi i64 [ %x, %a ], [ %y, %b ]
  %acc.next = and i64 %m, 1048575
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""

# Same condition, but the false arm detours through an extra block before
# the join, so the arms do NOT rejoin symmetrically -> guard, not diamond.
ASYMMETRIC_IR = """
define i64 @asym(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %bit = and i64 %tid, 1
  %odd = icmp eq i64 %bit, 1
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %join ]
  %acc = phi i64 [ %tid, %entry ], [ %acc.next, %join ]
  %pre = add i64 %acc, %i
  br i1 %odd, label %a, label %b
a:
  %x = mul i64 %pre, 3
  br label %join
b:
  %y0 = add i64 %pre, 7
  br label %b2
b2:
  %y = mul i64 %y0, 5
  br label %join
join:
  %m = phi i64 [ %x, %a ], [ %y, %b2 ]
  %acc.next = and i64 %m, 1048575
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""


def regions_of(ir_text: str, name: str = "m"):
    module = parse_module(ir_text, name)
    func = next(iter(module.functions.values()))
    machine = SimtMachine(module, Memory(), engine="jit")
    entry = machine._decode(func)
    return compile_regions(machine, func, entry), entry


def region_at(regions, entry, block_name: str):
    heads = {r.head_name: r for r in regions.values()}
    assert block_name in heads, (
        f"no region headed at {block_name}; heads: {sorted(heads)}")
    return heads[block_name]


# -- selection ----------------------------------------------------------------

def test_self_loop_region_selected():
    regions, entry = regions_of(SELF_LOOP_IR)
    loop = region_at(regions, entry, "loop")
    assert loop.loopback
    assert loop.self_loop is not None
    assert loop.ops[0].kind == R_GUARD
    assert loop.ops[0].next_i == 0
    # Memory-free single-warp shape: the scalar replay mode is valid.
    assert loop.scalar_ok


def test_diamond_selected_and_vector_only():
    regions, entry = regions_of(DIAMOND_IR)
    loop = region_at(regions, entry, "loop")
    dia = [op for op in loop.ops if op.kind == R_DIAMOND]
    assert len(dia) == 1
    op = dia[0]
    # _compile_arm layout: (block_id, size, name, steps, join_edge,
    # cat_counts, issues).
    assert op.arm_t[2] == "a" and op.arm_f[2] == "b"
    assert op.arm_t[6] == len(op.arm_t[3]) + 1  # steps + the arm's br.
    # Arms run masked with per-row accounting: no scalar replay.
    assert not loop.scalar_ok
    # The loop back-edge was still followed past the join.
    assert loop.loopback


def test_asymmetric_arms_fall_back_to_guard():
    regions, entry = regions_of(ASYMMETRIC_IR)
    loop = region_at(regions, entry, "loop")
    assert not any(op.kind == R_DIAMOND for op in loop.ops)
    assert any(op.kind == R_GUARD for op in loop.ops)


def test_region_remarks_document_selection():
    session = obs_session.install()
    try:
        regions, entry = regions_of(DIAMOND_IR)
    finally:
        obs_session.uninstall()
    jit = [r for r in session.remarks if r.pass_name == "jit"]
    assert jit and all(r.kind == "analysis" for r in jit)
    compiled = [r for r in jit if "compiled superblock" in r.message]
    assert any(r.args.get("diamonds", 0) > 0 for r in compiled)
    assert any(r.args.get("mode") == "vector" for r in compiled)
    # Every remark names its head block so streams are greppable.
    assert all(r.args.get("head") for r in jit)


# -- guard-failure feedback ---------------------------------------------------

def test_demote_guard_truncates_to_side_exit():
    regions, entry = regions_of(ASYMMETRIC_IR)
    loop = region_at(regions, entry, "loop")
    guard_i = next(i for i, op in enumerate(loop.ops)
                   if op.kind == R_GUARD and op.next_i != 0)
    assert loop.ops[guard_i].steps, \
        "a guard with work before it truncates rather than drops"
    loop.ops[guard_i].fails = GUARD_DEMOTE_FAILS
    demote_guard(regions, loop, guard_i, "asym")
    replacement = regions[loop.head_id]
    assert replacement is not loop
    assert len(replacement.ops) == guard_i + 1
    assert replacement.ops[-1].kind == R_EXIT_CONDBR
    assert not replacement.loopback


# Region head with *no* steps before a divergent non-diamond branch: the
# loop header carries only phis, the condition is computed in the entry
# block, and the arms rejoin asymmetrically.  Demoting its guard leaves
# nothing worth keeping, so the whole region is dropped.
DROP_IR = """
define i64 @drop(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %bit = and i64 %tid, 1
  %odd = icmp eq i64 %bit, 1
  br label %hdr
hdr:
  %i = phi i64 [ 0, %entry ], [ %i.next, %join ]
  %acc = phi i64 [ %tid, %entry ], [ %acc.next, %join ]
  br i1 %odd, label %a, label %b
a:
  %x = mul i64 %acc, 3
  br label %join
b:
  %y0 = add i64 %acc, 7
  br label %b2
b2:
  %y = mul i64 %y0, 5
  br label %join
join:
  %m = phi i64 [ %x, %a ], [ %y, %b2 ]
  %acc.next = and i64 %m, 1048575
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %hdr
exit:
  ret i64 %acc.next
}
"""


def test_demote_guard_drops_leading_empty_guard():
    regions, entry = regions_of(DROP_IR)
    hdr = region_at(regions, entry, "hdr")
    assert hdr.ops[0].kind == R_GUARD and not hdr.ops[0].steps
    demote_guard(regions, hdr, 0, "drop")
    assert hdr.head_id not in regions


def test_drop_cold_region_removes_region():
    regions, entry = regions_of(SELF_LOOP_IR)
    loop = region_at(regions, entry, "loop")
    loop.entry_fails = 10
    drop_cold_region(regions, loop, "selfloop")
    assert loop.head_id not in regions


# -- demotion hysteresis ------------------------------------------------------

BRIEFDIV_IR = """
define i64 @briefdiv(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %ctaid = call i64 @ctaid.x()
  %ntid = call i64 @ntid.x()
  %base = mul i64 %ctaid, %ntid
  %gid = add i64 %base, %tid
  %first = icmp slt i64 %gid, 32
  br i1 %first, label %prelude, label %main
prelude:
  %p = mul i64 %gid, 17
  br label %main
main:
  %seed = phi i64 [ %p, %prelude ], [ %gid, %entry ]
  br label %loop
loop:
  %i = phi i64 [ 0, %main ], [ %i.next, %loop ]
  %acc = phi i64 [ %seed, %main ], [ %acc.next, %loop ]
  %t = mul i64 %acc, 1103515245
  %acc.next = add i64 %t, %i
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""


def _demotions(engine: str) -> int:
    """Run briefdiv (one warp takes a prelude) and count row demotions."""
    session = obs_session.install()
    try:
        module = parse_module(BRIEFDIV_IR, "briefdiv")
        machine = SimtMachine(module, Memory(), engine=engine)
        func = next(iter(module.functions.values()))
        machine.launch(func, 1, 128, [50])
    finally:
        obs_session.uninstall()
    return len(session.profile.demotions)


def test_hysteresis_is_engine_dependent():
    """The first split demotes under batched but not under jit.

    briefdiv splits its 4-row lattice once (warp 0 takes the prelude).
    Plain batched demotes the singleton immediately — a 1-row lattice is
    slower than the per-warp engine — while the jit keeps it vectorized
    so the row re-enters compiled regions (``DEMOTE_HYSTERESIS`` splits
    must be survived before a singleton is handed over).
    """
    assert DEMOTE_HYSTERESIS > 1
    assert _demotions("batched") > 0
    assert _demotions("jit") == 0
