"""SIMT machine tests: semantics, divergence, counters, memory."""

import numpy as np
import pytest

from repro.gpu import Memory, SimtMachine, SimulationError, WARP_SIZE
from repro.gpu.timing import charge
from repro.ir import Module, parse_function, parse_module


def machine_for(text, mem=None):
    module = parse_module(text, "m")
    return SimtMachine(module, mem), module


class TestScalarExecution:
    def test_arithmetic(self):
        m, _ = machine_for("""
define i64 @f(i64 %x) {
entry:
  %a = mul i64 %x, 3
  %b = add i64 %a, 4
  ret i64 %b
}
""")
        ret, _ = m.run_function("f", [5], lanes=1)
        assert ret[0] == 19

    def test_sdiv_truncates_toward_zero(self):
        m, _ = machine_for("""
define i64 @f(i64 %x, i64 %y) {
entry:
  %d = sdiv i64 %x, %y
  ret i64 %d
}
""")
        assert m.run_function("f", [7, 2], lanes=1)[0][0] == 3
        assert m.run_function("f", [-7, 2], lanes=1)[0][0] == -3

    def test_srem_sign_follows_dividend(self):
        m, _ = machine_for("""
define i64 @f(i64 %x, i64 %y) {
entry:
  %r = srem i64 %x, %y
  ret i64 %r
}
""")
        assert m.run_function("f", [7, 3], lanes=1)[0][0] == 1
        assert m.run_function("f", [-7, 3], lanes=1)[0][0] == -1

    def test_i32_wrapping(self):
        m, _ = machine_for("""
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  ret i32 %a
}
""")
        assert m.run_function("f", [2**31 - 1], lanes=1)[0][0] == -(2**31)

    def test_select(self):
        m, _ = machine_for("""
define i64 @f(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 0
  %r = select i1 %c, i64 1, i64 -1
  ret i64 %r
}
""")
        assert m.run_function("f", [5], lanes=1)[0][0] == 1
        assert m.run_function("f", [-5], lanes=1)[0][0] == -1


class TestLanes:
    def test_tid_per_lane(self):
        m, _ = machine_for("""
define i64 @f() {
entry:
  %t = call i64 @tid.x()
  %r = mul i64 %t, 2
  ret i64 %r
}
""")
        ret, _ = m.run_function("f", [], lanes=8)
        assert list(ret) == [2 * i for i in range(8)]

    def test_divergent_branch_results(self):
        m, _ = machine_for("""
define i64 @f() {
entry:
  %t = call i64 @tid.x()
  %bit = and i64 %t, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i64 [ 100, %a ], [ 200, %b ]
  ret i64 %r
}
""")
        ret, counters = m.run_function("f", [], lanes=8)
        assert list(ret) == [200, 100] * 4
        assert counters.divergent_branches >= 1

    def test_divergent_trip_counts(self):
        # Each lane loops tid times: results must still be exact.
        m, _ = machine_for("""
define i64 @f() {
entry:
  %t = call i64 @tid.x()
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %t
  br i1 %c, label %header, label %exit
exit:
  ret i64 %i
}
""")
        ret, _ = m.run_function("f", [], lanes=8)
        assert list(ret) == [0, 0, 1, 2, 3, 4, 5, 6]

    def test_epoch_scheduler_reconverges(self):
        # A loop whose body splits every iteration: the convergent group
        # scheduler should re-merge lanes at each back-edge traversal, so
        # WEE stays well above the no-reconvergence floor.
        m, _ = machine_for("""
define i64 @f(i64 %n) {
entry:
  %t = call i64 @tid.x()
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %merge ]
  %acc = phi i64 [ 0, %entry ], [ %nacc, %merge ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %mix = add i64 %t, %i
  %bit = and i64 %mix, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %a, label %b
a:
  br label %merge
b:
  br label %merge
merge:
  %v = phi i64 [ 1, %a ], [ 2, %b ]
  %nacc = add i64 %acc, %v
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
""")
        ret, counters = m.run_function("f", [16], lanes=32)
        # Alternating lanes: half add 1, half add 2 each iteration.
        expected = [16 * (1 if (t % 2 == 1) else 2) for t in range(32)]
        # t+i parity flips per iteration: each lane alternates 1/2.
        expected = [16 // 2 * 3 for _ in range(32)]
        assert list(ret) == expected
        assert counters.warp_execution_efficiency > 45.0


class TestMemoryOps:
    def test_gather_scatter(self):
        text = """
define void @copy(f64* %src, f64* %dst, i64 %n) {
entry:
  %t = call i64 @tid.x()
  %c = icmp slt i64 %t, %n
  br i1 %c, label %do, label %done
do:
  %ps = gep f64* %src, i64 %t
  %v = load f64, f64* %ps
  %pd = gep f64* %dst, i64 %t
  store f64 %v, f64* %pd
  br label %done
done:
  ret void
}
"""
        mem = Memory()
        data = np.arange(16, dtype=np.float64)
        src = mem.alloc("src", "f64", 16, data)
        dst = mem.alloc("dst", "f64", 16)
        machine, _ = machine_for(text, mem)
        machine.launch("copy", 1, 16, [src, dst, 16])
        assert np.array_equal(mem.read_back("dst"), data)

    def test_coalescing_counted(self):
        mem = Memory()
        data = np.zeros(1024)
        src = mem.alloc("src", "f64", 1024, data)
        addrs = src + np.arange(32, dtype=np.int64) * 8
        vals, tx = mem.load(addrs, np.ones(32, dtype=bool), 8)
        assert tx == 8  # 32 consecutive f64 = 256B = 8 x 32B segments.
        strided = src + np.arange(32, dtype=np.int64) * 8 * 16
        _, tx2 = mem.load(strided, np.ones(32, dtype=bool), 8)
        assert tx2 == 32  # Fully scattered.

    def test_unmapped_address_faults(self):
        mem = Memory()
        with pytest.raises(MemoryError):
            mem.load(np.full(32, 8, dtype=np.int64),
                     np.ones(32, dtype=bool), 8)

    def test_global_variables_materialised(self):
        module = parse_module("""
@table = global f64 x 4

define f64 @f() {
entry:
  %p = gep f64* @table, i64 2
  store f64 9.0, f64* %p
  %v = load f64, f64* %p
  ret f64 %v
}
""", "m")
        machine = SimtMachine(module)
        ret, _ = machine.run_function("f", [], lanes=1)
        assert ret[0] == 9.0


class TestCounters:
    def test_misc_counts_selects_and_phi_moves(self):
        m, _ = machine_for("""
define i64 @f(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 0
  %s = select i1 %c, i64 1, i64 2
  ret i64 %s
}
""")
        _, counters = m.run_function("f", [1], lanes=32)
        assert counters.inst_misc == 32  # One select, 32 lanes.

    def test_wee_100_for_uniform(self):
        m, _ = machine_for("""
define i64 @f(i64 %x) {
entry:
  %a = add i64 %x, 1
  ret i64 %a
}
""")
        _, counters = m.run_function("f", [1], lanes=32)
        assert counters.warp_execution_efficiency == pytest.approx(100.0)

    def test_charge_is_activity_weighted(self):
        full = charge(10, 32)
        half = charge(10, 16)
        one = charge(10, 1)
        assert full == pytest.approx(10.0)
        assert half < full
        assert one < half
        assert one > 0

    def test_runaway_kernel_detected(self):
        m, _ = machine_for("""
define void @f() {
entry:
  br label %spin
spin:
  br label %spin
}
""")
        m.max_cycles = 10_000
        with pytest.raises(SimulationError, match="exceeded"):
            m.run_function("f", [], lanes=1)


class TestPhiParallelCopy:
    """Edge phi moves are a parallel copy: all incomings read before any
    phi is written, even when an incoming *is* a sibling phi of the
    target block (phi swaps/rotations — the shape unmerge produces when
    it resolves a clone's phi straight to a header phi)."""

    SWAP = """
define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %a = phi i64 [ 1, %entry ], [ %b, %loop ]
  %b = phi i64 [ 2, %entry ], [ %a, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %exit
exit:
  %hi = mul i64 %a, 10
  %r = add i64 %hi, %b
  ret i64 %r
}
"""

    def test_phi_swap_round_trips(self):
        m, _ = machine_for(self.SWAP)
        # Each back edge swaps (a, b); after an even number of swaps the
        # pair is back to (1, 2).
        assert m.run_function("f", [3], lanes=1)[0][0] == 12  # 2 swaps
        assert m.run_function("f", [2], lanes=1)[0][0] == 21  # 1 swap

    def test_phi_rotation_divergent_lanes(self):
        text = """
define i64 @f(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %a = phi i64 [ %tid, %entry ], [ %b, %loop ]
  %b = phi i64 [ 100, %entry ], [ %c2, %loop ]
  %c2 = phi i64 [ 200, %entry ], [ %a, %loop ]
  %next = add i64 %i, 1
  %cond = icmp slt i64 %next, %n
  br i1 %cond, label %loop, label %exit
exit:
  %h1 = mul i64 %a, 1000000
  %h2 = mul i64 %b, 1000
  %s = add i64 %h1, %h2
  %r = add i64 %s, %c2
  ret i64 %r
}
"""
        m, _ = machine_for(text)
        ret, _ = m.run_function("f", [4], lanes=2)
        # 3 rotations of (tid, 100, 200): back to the start.
        assert ret[0] == 0 * 1000000 + 100 * 1000 + 200
        assert ret[1] == 1 * 1000000 + 100 * 1000 + 200
