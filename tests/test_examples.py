"""Smoke tests for the example scripts.

The fast examples run end-to-end; the sweep-heavy ones (which take minutes)
are checked for compilability so they cannot rot silently.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "select" in out              # The baseline's selp view.
        assert "identical results" in out

    def test_ptx_listings(self):
        out = run_example("ptx_listings.py")
        assert "selp.b64" in out
        assert "Listing-5 analogue" in out
        assert "total" in out

    def test_custom_kernel_tuning(self):
        out = run_example("custom_kernel_tuning.py")
        assert "heuristic:" in out
        assert "u&u@2" in out
        assert "f(p, s, 2)" in out


class TestHeavyExamplesCompile:
    @pytest.mark.parametrize("name", ["xsbench_counters.py",
                                      "divergence_pitfall.py"])
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)
