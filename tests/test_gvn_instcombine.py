"""GVN (with branch facts) and instcombine unit tests."""

import pytest

from repro.ir import ConstantInt, parse_function, verify_function
from repro.transforms import (run_dce, run_gvn, run_instcombine,
                              run_simplifycfg)


def last_ret(func):
    for block in func.blocks:
        term = block.terminator
        if term is not None and term.opcode == "ret":
            return term
    raise AssertionError("no ret")


class TestValueNumbering:
    def test_redundant_computation_removed(self):
        f = parse_function("""
define i64 @f(i64 %x, i64 %y) {
entry:
  %a = add i64 %x, %y
  %b = add i64 %x, %y
  %r = mul i64 %a, %b
  ret i64 %r
}
""")
        run_gvn(f)
        verify_function(f)
        mul = f.entry.instructions[-2]
        assert mul.operands[0] is mul.operands[1]

    def test_commutative_operands_number_identically(self):
        f = parse_function("""
define i64 @f(i64 %x, i64 %y) {
entry:
  %a = add i64 %x, %y
  %b = add i64 %y, %x
  %r = sub i64 %a, %b
  ret i64 %r
}
""")
        run_gvn(f)
        run_instcombine(f)
        ret = last_ret(f)
        assert isinstance(ret.value, ConstantInt)
        assert ret.value.value == 0

    def test_dedup_across_dominating_blocks(self):
        f = parse_function("""
define i64 @f(i64 %x, i1 %c) {
entry:
  %a = add i64 %x, 1
  br i1 %c, label %t, label %e
t:
  %b = add i64 %x, 1
  ret i64 %b
e:
  ret i64 %a
}
""")
        run_gvn(f)
        verify_function(f)
        ret = f.blocks[1].terminator
        assert ret.value is f.entry.instructions[0]

    def test_no_dedup_across_siblings(self):
        # Sibling blocks do not dominate each other: both adds must stay.
        f = parse_function("""
define i64 @f(i64 %x, i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  %a = add i64 %x, 1
  br label %join
e:
  %b = add i64 %x, 1
  br label %join
join:
  %r = phi i64 [ %a, %t ], [ %b, %e ]
  ret i64 %r
}
""")
        run_gvn(f)
        verify_function(f)
        assert len(f.blocks[1].instructions) == 2
        assert len(f.blocks[2].instructions) == 2

    def test_impure_not_deduped(self):
        f = parse_function("""
define f64 @f(f64* %p) {
entry:
  %a = load f64, f64* %p
  store f64 0.0, f64* %p
  %b = load f64, f64* %p
  %r = fadd f64 %a, %b
  ret f64 %r
}
""")
        run_gvn(f)
        loads = [i for i in f.entry.instructions if i.opcode == "load"]
        assert len(loads) == 2


class TestBranchFacts:
    def test_condition_known_true_in_then_block(self):
        f = parse_function("""
define i1 @f(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 1
  br i1 %c, label %t, label %e
t:
  ret i1 %c
e:
  ret i1 %c
}
""")
        run_gvn(f)
        t_ret = f.blocks[1].terminator
        e_ret = f.blocks[2].terminator
        assert isinstance(t_ret.value, ConstantInt) and t_ret.value.value == 1
        assert isinstance(e_ret.value, ConstantInt) and e_ret.value.value == 0

    def test_recomputed_comparison_folds(self):
        # The bezier-surface mechanism (paper Listing 2 / Figure 5): once
        # `kn > 1` is known false and kn is unchanged, the re-check folds.
        f = parse_function("""
define i64 @f(i64 %kn) {
entry:
  %c1 = icmp sgt i64 %kn, 1
  br i1 %c1, label %a, label %b
b:
  %c2 = icmp sgt i64 %kn, 1
  br i1 %c2, label %dead, label %alive
a:
  ret i64 1
dead:
  ret i64 2
alive:
  ret i64 3
}
""")
        run_gvn(f)
        run_simplifycfg(f)
        verify_function(f)
        names = {blk.name for blk in f.blocks}
        assert "dead" not in names

    def test_negated_comparison_folds(self):
        f = parse_function("""
define i1 @f(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 1
  br i1 %c, label %t, label %e
t:
  %n = icmp sle i64 %x, 1
  ret i1 %n
e:
  ret i1 0
}
""")
        run_gvn(f)
        t_ret = f.blocks[1].terminator
        assert isinstance(t_ret.value, ConstantInt)
        assert t_ret.value.value == 0

    def test_equality_fact_substitutes_constant(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  %c = icmp eq i64 %x, 5
  br i1 %c, label %t, label %e
t:
  %y = add i64 %x, 1
  ret i64 %y
e:
  ret i64 0
}
""")
        run_gvn(f)
        run_instcombine(f)
        t_ret = f.blocks[1].terminator
        assert isinstance(t_ret.value, ConstantInt)
        assert t_ret.value.value == 6

    def test_fact_dies_at_merge(self):
        # The paper's core observation: a control-flow merge destroys the
        # provenance, so the re-check cannot fold.
        f = parse_function("""
define i1 @f(i64 %x) {
entry:
  %c = icmp sgt i64 %x, 1
  br i1 %c, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  %c2 = icmp sgt i64 %x, 1
  ret i1 %c2
}
""")
        run_gvn(f)
        ret = f.blocks[3].terminator
        # c2 may be deduped to %c but must NOT fold to a constant.
        assert not isinstance(ret.value, ConstantInt)


class TestInstCombine:
    def test_sub_of_add_cancels(self):
        # The XSBench mechanism (paper Section V): (lower + half) - lower.
        f = parse_function("""
define i64 @f(i64 %lower, i64 %half) {
entry:
  %mid = add i64 %lower, %half
  %len = sub i64 %mid, %lower
  ret i64 %len
}
""")
        run_instcombine(f)
        ret = last_ret(f)
        assert ret.value is f.args[1]

    @pytest.mark.parametrize("expr,expected_arg", [
        ("add i64 %x, 0", 0),
        ("mul i64 %x, 1", 0),
        ("sdiv i64 %x, 1", 0),
        ("and i64 %x, %x", 0),
        ("or i64 %x, 0", 0),
        ("xor i64 %x, 0", 0),
        ("shl i64 %x, 0", 0),
    ])
    def test_identities(self, expr, expected_arg):
        f = parse_function(f"""
define i64 @f(i64 %x) {{
entry:
  %r = {expr}
  ret i64 %r
}}
""")
        run_instcombine(f)
        assert last_ret(f).value is f.args[expected_arg]

    def test_x_minus_x_is_zero(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  %r = sub i64 %x, %x
  ret i64 %r
}
""")
        run_instcombine(f)
        ret = last_ret(f)
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 0

    def test_select_same_arms(self):
        f = parse_function("""
define i64 @f(i64 %x, i1 %c) {
entry:
  %r = select i1 %c, i64 %x, i64 %x
  ret i64 %r
}
""")
        run_instcombine(f)
        assert last_ret(f).value is f.args[0]

    def test_double_boolean_negation(self):
        f = parse_function("""
define i1 @f(i1 %c) {
entry:
  %n = xor i1 %c, 1
  %nn = xor i1 %n, 1
  ret i1 %nn
}
""")
        run_instcombine(f)
        assert last_ret(f).value is f.args[0]

    def test_constant_folding(self):
        f = parse_function("""
define i64 @f() {
entry:
  %a = mul i64 6, 7
  ret i64 %a
}
""")
        run_instcombine(f)
        ret = last_ret(f)
        assert isinstance(ret.value, ConstantInt) and ret.value.value == 42
