"""Tests for the empirical per-loop autotuner (``repro.tune``).

Covers the search-space units, the persisted-config store (staleness,
canonical bytes), the determinism contract (``-j1`` vs ``-jN`` and cold
vs cache-warm runs produce byte-identical tuned files), the ``tuned``
pipeline end-to-end on both execution engines, and the graceful
heuristic fallback when no usable tuned file exists.
"""

import json
from pathlib import Path

import pytest

from repro.bench import benchmark_by_name
from repro.bench.base import scale_geometry
from repro.gpu.timing import TIMING_MODEL_VERSION
from repro.harness.cache import TUNE_PREFIX, CellCache
from repro.harness.experiment import ExperimentRunner
from repro.transforms.heuristic import HeuristicParams
from repro.tune import (Candidate, TuneParams, enumerate_candidates,
                        loop_facts, tune_benchmark)
from repro.tune.search import (_compose_per_loop, _decisions_key,
                               _heuristic_decisions)
from repro.tune.space import LoopFacts, predicted_size
from repro.tune.store import (TUNE_SCHEMA_VERSION, TunedConfig,
                              TunedLoopDecision, decisions_fingerprint,
                              load_tuned, resolve_decisions, save_tuned,
                              tuned_path)

#: Small, fast benchmarks used for the simulation-backed tests.
FAST_BENCH = "bspline-vgh"      # one loop — the cheapest full search
E2E_BENCHES = ("bspline-vgh", "complex", "coordinates")


# -- search space ------------------------------------------------------------

class TestSpace:
    def test_enumeration_excludes_identity(self):
        facts = [LoopFacts("f:0", paths=2, size=10, descendants=())]
        admitted, pruned = enumerate_candidates(facts, TuneParams(u_max=4))
        keys = [c.key for c in admitted]
        assert "f:0|u=1|unmerge=off" not in keys
        # u in 1..4, unmerge on/off, minus the identity point.
        assert len(admitted) + len(pruned) == 2 * 4 - 1

    def test_enumeration_order_is_canonical(self):
        facts = [LoopFacts("f:0", paths=2, size=4, descendants=()),
                 LoopFacts("f:1", paths=2, size=4, descendants=())]
        admitted, _ = enumerate_candidates(
            facts, TuneParams(u_max=2, size_cap=10**9))
        assert [c.key for c in admitted] == [
            "f:0|u=1|unmerge=on",
            "f:0|u=2|unmerge=on", "f:0|u=2|unmerge=off",
            "f:1|u=1|unmerge=on",
            "f:1|u=2|unmerge=on", "f:1|u=2|unmerge=off",
        ]

    def test_size_cap_prunes_with_predicted_size(self):
        # paths=4, size=100: unmerged size grows as sum(4^i)*100, so high
        # factors blow through a small cap while plain unrolling survives
        # longer (100 * u).
        facts = [LoopFacts("f:0", paths=4, size=100, descendants=())]
        params = TuneParams(u_max=8, size_cap=1000)
        admitted, pruned = enumerate_candidates(facts, params)
        assert pruned, "expected the cost model to prune something"
        for candidate, predicted in pruned:
            assert predicted > params.size_cap
            assert predicted == predicted_size(facts[0], candidate)
        for candidate in admitted:
            assert predicted_size(facts[0], candidate) <= params.size_cap

    def test_candidate_config_mapping(self):
        assert Candidate("f:0", 4, True).config == "uu"
        assert Candidate("f:0", 1, True).config == "unmerge"
        assert Candidate("f:0", 4, False).config == "unroll"

    def test_loop_facts_cover_benchmark_loops(self):
        bench = benchmark_by_name("coordinates")
        facts = loop_facts(bench.build_module())
        assert sorted(f.loop_id for f in facts) == sorted(bench.loop_ids())


# -- composing per-loop winners ----------------------------------------------

class TestCompose:
    def test_nesting_rule_drops_outer_when_inner_won(self):
        facts = [LoopFacts("f:outer", 2, 10, descendants=("f:inner",)),
                 LoopFacts("f:inner", 2, 5, descendants=())]
        winners = {"f:outer": Candidate("f:outer", 2, True),
                   "f:inner": Candidate("f:inner", 4, True)}
        decisions = _compose_per_loop(facts, winners)
        assert [d.loop_id for d in decisions] == ["f:inner"]

    def test_outer_winner_kept_when_inner_lost(self):
        facts = [LoopFacts("f:outer", 2, 10, descendants=("f:inner",)),
                 LoopFacts("f:inner", 2, 5, descendants=())]
        winners = {"f:outer": Candidate("f:outer", 2, True)}
        decisions = _compose_per_loop(facts, winners)
        assert [d.loop_id for d in decisions] == ["f:outer"]

    def test_decisions_key_is_order_independent_canonical(self):
        a = [TunedLoopDecision("f:0", 2, True),
             TunedLoopDecision("f:1", 4, False)]
        assert _decisions_key(a) == _decisions_key(list(a))
        assert _decisions_key(a) != _decisions_key(a[:1])


# -- persisted store ---------------------------------------------------------

def _config(app="bspline-vgh"):
    return TunedConfig(
        app=app,
        decisions=[TunedLoopDecision("bspline_vgh:0", 2, True)],
        source="per_loop", baseline_cycles=100.0, heuristic_cycles=90.0,
        tuned_cycles=80.0)


class TestStore:
    def test_roundtrip(self, tmp_path):
        save_tuned(_config(), tmp_path)
        loaded, reason = load_tuned("bspline-vgh", tmp_path)
        assert reason == "ok"
        assert loaded.decisions == _config().decisions
        assert loaded.source == "per_loop"
        assert loaded.speedup_over_baseline == pytest.approx(1.25)
        assert loaded.speedup_over_heuristic == pytest.approx(1.125)

    def test_missing(self, tmp_path):
        config, reason = load_tuned("nope", tmp_path)
        assert config is None and reason == "missing"
        assert decisions_fingerprint("nope", tmp_path) == "fallback"

    def test_stale_schema(self, tmp_path):
        path = save_tuned(_config(), tmp_path)
        data = json.loads(path.read_text())
        data["schema"] = TUNE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        config, reason = load_tuned("bspline-vgh", tmp_path)
        assert config is None and reason.startswith("stale-schema")

    def test_stale_timing(self, tmp_path):
        path = save_tuned(_config(), tmp_path)
        data = json.loads(path.read_text())
        data["timing"] = TIMING_MODEL_VERSION + "-older"
        path.write_text(json.dumps(data))
        config, reason = load_tuned("bspline-vgh", tmp_path)
        assert config is None and reason.startswith("stale-timing")

    def test_unverified_rejected(self, tmp_path):
        config = _config()
        config.verified = False
        save_tuned(config, tmp_path)
        loaded, reason = load_tuned("bspline-vgh", tmp_path)
        assert loaded is None and reason == "unverified"

    def test_corrupt(self, tmp_path):
        tuned_path("bspline-vgh", tmp_path).parent.mkdir(exist_ok=True,
                                                         parents=True)
        tuned_path("bspline-vgh", tmp_path).write_text("{not json")
        config, reason = load_tuned("bspline-vgh", tmp_path)
        assert config is None and reason == "corrupt"

    def test_canonical_bytes(self, tmp_path):
        path = save_tuned(_config(), tmp_path)
        first = path.read_bytes()
        save_tuned(_config(), tmp_path)
        assert path.read_bytes() == first

    def test_fingerprint_tracks_decisions(self, tmp_path):
        save_tuned(_config(), tmp_path)
        fp = decisions_fingerprint("bspline-vgh", tmp_path)
        assert fp != "fallback"
        other = _config()
        other.decisions = [TunedLoopDecision("bspline_vgh:0", 4, True)]
        save_tuned(other, tmp_path)
        assert decisions_fingerprint("bspline-vgh", tmp_path) != fp


# -- workload scaling --------------------------------------------------------

class TestScaleGeometry:
    def test_identity(self):
        assert scale_geometry(4, 128, 1) == (4, 128)

    def test_drops_whole_blocks_first(self):
        assert scale_geometry(8, 128, 4) == (2, 128)

    def test_shrinks_in_whole_warps(self):
        assert scale_geometry(1, 128, 4) == (1, 32)

    def test_never_below_one_warp(self):
        assert scale_geometry(1, 64, 100) == (1, 32)


# -- cache key folding + tune-entry bookkeeping ------------------------------

class TestCacheTuneExtensions:
    BASE = dict(baseline_ir="ir", workload="w", config="uu",
                loop_id="f:0", factor=2, heuristic=HeuristicParams(),
                max_instructions=1000, compile_timeout=None,
                verify_each=False)

    def test_scale_one_matches_pre_tuner_key(self):
        assert CellCache.make_key(**self.BASE) == \
            CellCache.make_key(**self.BASE, scale=1)

    def test_scale_and_tuned_fold_into_key(self):
        base = CellCache.make_key(**self.BASE)
        assert CellCache.make_key(**self.BASE, scale=4) != base
        assert CellCache.make_key(**self.BASE, tuned="[]") != base
        assert CellCache.make_key(**self.BASE, tuned="[]") != \
            CellCache.make_key(**self.BASE, tuned="fallback")

    def test_stats_report_tuner_entries_separately(self, tmp_path):
        (tmp_path / "aa.json").write_text("{}")
        (tmp_path / f"{TUNE_PREFIX}bb.json").write_text('{"x": 1}')
        stats = CellCache(root=tmp_path).stats()
        assert stats["entries"] == 2
        assert stats["tune_entries"] == 1
        assert stats["tune_bytes"] == len('{"x": 1}')

    def test_prefix_separates_entries_on_disk(self, tmp_path):
        plain = CellCache(root=tmp_path)
        tuner = CellCache(root=tmp_path, prefix=TUNE_PREFIX)
        assert plain._path("k") != tuner._path("k")
        assert tuner._path("k").name.startswith(TUNE_PREFIX)


# -- the search itself (simulation-backed) -----------------------------------

def _tune(tmp, sub, jobs, budget=4, use_cache=True):
    bench = benchmark_by_name(FAST_BENCH)
    return tune_benchmark(
        bench, params=TuneParams(budget=budget),
        max_instructions=8_000, jobs=jobs,
        cache_root=tmp / sub / "cache", use_cache=use_cache,
        tuned_dir=tmp / sub / "tuned")


class TestSearch:
    @pytest.fixture(scope="class")
    def cold(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("tune")
        result = _tune(tmp, "j1", jobs=1)
        return tmp, result

    def test_winner_persisted_and_verified(self, cold):
        _, result = cold
        assert result.verified and result.persisted
        assert result.path.is_file()
        assert result.candidates_truncated > 0  # budget 4 < 15 candidates

    def test_tuned_never_worse_than_heuristic_or_baseline(self, cold):
        _, result = cold
        c = result.config
        assert c.tuned_cycles <= c.heuristic_cycles
        assert c.tuned_cycles <= c.baseline_cycles

    def test_budget_caps_fresh_evaluations(self, cold):
        _, result = cold
        # budget 4 candidates + baselines + heuristic + combined round:
        # the point is that the cap bounds work, not the exact number.
        assert 0 < result.fresh_evaluations <= 4 * len(TuneParams().scales) \
            + len(TuneParams().budgets) + 8

    def test_warm_retune_is_free_and_byte_identical(self, cold):
        tmp, result = cold
        first = result.path.read_bytes()
        warm = _tune(tmp, "j1", jobs=1)
        assert warm.fresh_evaluations == 0
        assert warm.path.read_bytes() == first

    def test_parallel_search_is_byte_identical(self, cold):
        tmp, result = cold
        parallel = _tune(tmp, "j2", jobs=2)
        assert parallel.path.read_bytes() == result.path.read_bytes()

    def test_trials_audit_trail_recorded(self, cold):
        _, result = cold
        rounds = {t["round"] for t in result.config.trials}
        assert "screen-0" in rounds and "combined" in rounds
        combined = [t for t in result.config.trials
                    if t["round"] == "combined"]
        assert any(t["source"].startswith("heuristic:c=1024")
                   for t in combined)


# -- the tuned pipeline end-to-end -------------------------------------------

class TestTunedPipeline:
    def test_tuned_config_runs_bit_identically_on_both_engines(self,
                                                               tmp_path):
        for name in E2E_BENCHES:
            bench = benchmark_by_name(name)
            decisions = _heuristic_decisions(bench, HeuristicParams(),
                                             c=1024, u_max=8)
            if not decisions:  # ensure the transform actually fires
                decisions = [TunedLoopDecision(bench.loop_ids()[0], 2, True)]
            save_tuned(TunedConfig(
                app=name, decisions=decisions, source="per_loop",
                baseline_cycles=1.0, heuristic_cycles=1.0,
                tuned_cycles=1.0), tmp_path)
            cells = {}
            for engine in ("batched", "warp"):
                runner = ExperimentRunner(max_instructions=20_000,
                                          engine=engine, tuned_dir=tmp_path)
                cell = runner.tuned_cell(bench)
                assert cell.error is None, (name, engine, cell.error)
                assert cell.outputs_match_baseline, (name, engine)
                cells[engine] = cell
            assert cells["batched"].cycles == cells["warp"].cycles, name
            assert cells["batched"].counters == cells["warp"].counters, name

    def test_tuned_decisions_are_replayed_not_recomputed(self, tmp_path):
        # A deliberately non-heuristic decision (plain unroll by 2, no
        # unmerge) must produce a cell distinct from the heuristic's.
        bench = benchmark_by_name(FAST_BENCH)
        save_tuned(TunedConfig(
            app=bench.name,
            decisions=[TunedLoopDecision(bench.loop_ids()[0], 2, False)],
            source="per_loop", baseline_cycles=1.0, heuristic_cycles=1.0,
            tuned_cycles=1.0), tmp_path)
        runner = ExperimentRunner(max_instructions=20_000,
                                  tuned_dir=tmp_path)
        tuned = runner.tuned_cell(bench)
        heur = runner.heuristic_cell(bench)
        assert tuned.error is None and tuned.outputs_match_baseline
        assert tuned.code_size != heur.code_size

    def test_oracle_accepts_heuristic_decision_set(self):
        bench = benchmark_by_name(FAST_BENCH)
        decisions = _heuristic_decisions(bench, HeuristicParams(),
                                         c=1024, u_max=8)
        from repro.fuzz.oracle import verify_tuned_config
        outcome = verify_tuned_config(bench, decisions,
                                      max_instructions=20_000)
        assert outcome.ok, outcome.describe()


# -- graceful fallback -------------------------------------------------------

class TestFallback:
    def test_missing_file_warns_and_uses_heuristic(self, tmp_path):
        bench = benchmark_by_name(FAST_BENCH)
        runner = ExperimentRunner(max_instructions=20_000,
                                  tuned_dir=tmp_path)
        with pytest.warns(RuntimeWarning,
                          match="no usable tuned config .*missing"):
            tuned = runner.tuned_cell(bench)
        heur = runner.heuristic_cell(bench)
        assert tuned.cycles == heur.cycles
        assert tuned.code_size == heur.code_size

    def test_stale_file_warns_with_reason(self, tmp_path):
        bench = benchmark_by_name(FAST_BENCH)
        path = save_tuned(_config(app=bench.name), tmp_path)
        data = json.loads(path.read_text())
        data["schema"] = TUNE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        runner = ExperimentRunner(max_instructions=20_000,
                                  tuned_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="stale-schema"):
            runner.tuned_cell(bench)

    def test_resolve_decisions_reports_reason(self, tmp_path):
        decisions, reason = resolve_decisions("bspline-vgh", tmp_path)
        assert decisions is None and reason == "missing"
        save_tuned(_config(), tmp_path)
        decisions, reason = resolve_decisions("bspline-vgh", tmp_path)
        assert reason == "ok" and len(decisions) == 1
