"""Dominator / post-dominator tests, including a networkx cross-check."""

import networkx as nx
import pytest

from repro.analysis import (DominatorTree, PostDominatorTree,
                            predecessor_map, reverse_postorder)
from repro.ir import parse_function

DIAMOND = """
define i64 @f(i64 %n, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  ret i64 %n
}
"""

LOOP = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %latch ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %even = icmp eq i64 %i, 0
  br i1 %even, label %then, label %latch
then:
  br label %latch
latch:
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %i
}
"""


def blocks_by_name(func):
    return {b.name: b for b in func.blocks}


class TestDominators:
    def test_diamond(self):
        f = parse_function(DIAMOND)
        bb = blocks_by_name(f)
        dt = DominatorTree.compute(f)
        assert dt.idom(bb["a"]) is bb["entry"]
        assert dt.idom(bb["b"]) is bb["entry"]
        assert dt.idom(bb["join"]) is bb["entry"]
        assert dt.dominates_block(bb["entry"], bb["join"])
        assert not dt.dominates_block(bb["a"], bb["join"])

    def test_loop(self):
        f = parse_function(LOOP)
        bb = blocks_by_name(f)
        dt = DominatorTree.compute(f)
        assert dt.idom(bb["header"]) is bb["entry"]
        assert dt.idom(bb["latch"]) is bb["body"]
        assert dt.dominates_block(bb["header"], bb["exit"])
        assert dt.strictly_dominates(bb["header"], bb["body"])
        assert not dt.strictly_dominates(bb["header"], bb["header"])

    @pytest.mark.parametrize("text", [DIAMOND, LOOP], ids=["diamond", "loop"])
    def test_against_networkx(self, text):
        f = parse_function(text)
        g = nx.DiGraph()
        for block in f.blocks:
            g.add_node(block.name)
            for succ in block.successors():
                g.add_edge(block.name, succ.name)
        reference = nx.immediate_dominators(g, f.entry.name)
        dt = DominatorTree.compute(f)
        for block in f.blocks:
            idom = dt.idom(block)
            if block is f.entry:
                # Depending on the networkx version the start maps to
                # itself or is omitted.
                assert reference.get(block.name, block.name) == block.name
                assert idom is None
            else:
                assert reference[block.name] == idom.name

    def test_dominance_frontier(self):
        f = parse_function(DIAMOND)
        bb = blocks_by_name(f)
        dt = DominatorTree.compute(f)
        frontier = dt.dominance_frontier()
        assert bb["join"] in frontier[id(bb["a"])]
        assert bb["join"] in frontier[id(bb["b"])]
        assert not frontier[id(bb["entry"])]

    def test_preorder_parents_first(self):
        f = parse_function(LOOP)
        dt = DominatorTree.compute(f)
        order = dt.preorder()
        position = {id(b): i for i, b in enumerate(order)}
        for block in order:
            parent = dt.idom(block)
            if parent is not None:
                assert position[id(parent)] < position[id(block)]


class TestPostDominators:
    def test_diamond(self):
        f = parse_function(DIAMOND)
        bb = blocks_by_name(f)
        pdt = PostDominatorTree.compute(f)
        assert pdt.ipdom(bb["entry"]) is bb["join"]
        assert pdt.ipdom(bb["a"]) is bb["join"]
        assert pdt.ipdom(bb["join"]) is None
        assert pdt.post_dominates(bb["join"], bb["entry"])
        assert not pdt.post_dominates(bb["a"], bb["entry"])

    def test_loop_reconvergence_points(self):
        f = parse_function(LOOP)
        bb = blocks_by_name(f)
        pdt = PostDominatorTree.compute(f)
        # The in-body branch reconverges at the latch.
        assert pdt.ipdom(bb["body"]) is bb["latch"]
        # The header's paths reconverge at the exit.
        assert pdt.ipdom(bb["header"]) is bb["exit"]


class TestTraversals:
    def test_rpo_starts_at_entry(self):
        f = parse_function(LOOP)
        rpo = reverse_postorder(f)
        assert rpo[0] is f.entry
        assert len(rpo) == len(f.blocks)

    def test_rpo_excludes_unreachable(self):
        f = parse_function("""
define void @f() {
entry:
  ret void
dead:
  br label %dead
}
""")
        rpo = reverse_postorder(f)
        assert len(rpo) == 1

    def test_predecessor_map_dedupes_double_edges(self):
        f = parse_function("""
define void @f(i1 %c) {
entry:
  br i1 %c, label %next, label %next
next:
  ret void
}
""")
        preds = predecessor_map(f)
        bb = blocks_by_name(f)
        assert preds[bb["next"]] == [bb["entry"]]
