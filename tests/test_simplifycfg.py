"""SimplifyCFG unit tests."""

import pytest

from repro.ir import (ConstantInt, parse_function, print_function,
                      verify_function)
from repro.ir import types as T
from repro.transforms import run_simplifycfg


def names(func):
    return [b.name for b in func.blocks]


class TestConstantBranchFolding:
    def test_true_branch_folds(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  br i1 1, label %a, label %b
a:
  ret i64 %x
b:
  ret i64 0
}
""")
        run_simplifycfg(f)
        verify_function(f)
        assert "b" not in names(f)

    def test_false_branch_folds(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  br i1 0, label %a, label %b
a:
  ret i64 %x
b:
  ret i64 0
}
""")
        run_simplifycfg(f)
        verify_function(f)
        assert "a" not in names(f)

    def test_phi_entry_removed_for_dead_edge(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  br i1 1, label %a, label %join
a:
  br label %join
join:
  %r = phi i64 [ %x, %a ], [ 0, %entry ]
  ret i64 %r
}
""")
        run_simplifycfg(f)
        verify_function(f)
        # The whole thing collapses to ret %x.
        ret = f.entry.instructions[-1]
        assert ret.opcode == "ret"
        assert ret.value is f.args[0]

    def test_same_target_condbr_normalised(self):
        f = parse_function("""
define i64 @f(i64 %x, i1 %c) {
entry:
  br i1 %c, label %next, label %next
next:
  ret i64 %x
}
""")
        run_simplifycfg(f)
        verify_function(f)
        assert len(f.blocks) == 1


class TestUnreachable:
    def test_unreachable_block_removed(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  ret i64 %x
dead:
  %y = add i64 %x, 1
  br label %dead
}
""")
        run_simplifycfg(f)
        verify_function(f)
        assert names(f) == ["entry"]


class TestMerging:
    def test_straight_line_chain_merges(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  %a = add i64 %x, 1
  br label %mid
mid:
  %b = add i64 %a, 2
  br label %end
end:
  ret i64 %b
}
""")
        run_simplifycfg(f)
        verify_function(f)
        assert len(f.blocks) == 1
        assert len(f.entry.instructions) == 3

    def test_merge_keeps_diamond(self):
        f = parse_function("""
define i64 @f(i64 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %p = add i64 %x, 1
  br label %join
b:
  %q = add i64 %x, 2
  br label %join
join:
  %r = phi i64 [ %p, %a ], [ %q, %b ]
  ret i64 %r
}
""")
        before = len(f.blocks)
        run_simplifycfg(f)
        verify_function(f)
        # Diamond structure must be preserved (phi depends on the merge).
        assert len(f.blocks) == before


class TestTrivialPhis:
    def test_single_value_phi_collapses(self):
        f = parse_function("""
define i64 @f(i64 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i64 [ %x, %a ], [ %x, %b ]
  ret i64 %r
}
""")
        run_simplifycfg(f)
        verify_function(f)
        ret = [i for b in f.blocks for i in b.instructions][-1]
        assert ret.value is f.args[0]
