"""Fixed-seed differential fuzz smoke (tier-1).

Runs the full fuzz stack — generator, five-config differential oracle,
verifier-after-every-pass — over a fixed seed range.  Any failure here is
a real miscompile (or a fuzzer bug), never flakiness: generation is a
pure function of the seed and kernels are deterministic by construction.

Budget control: ``REPRO_FUZZ_BUDGET`` overrides the number of kernels
(default 50); ``REPRO_FUZZ_BUDGET=0`` skips the smoke entirely.
"""

import os

import pytest

from repro.fuzz.campaign import run_campaign
from repro.fuzz.generator import generate_kernel
from repro.fuzz.oracle import config_specs, subject_from_kernel
from repro.ir.printer import print_module

BUDGET_ENV = "REPRO_FUZZ_BUDGET"
DEFAULT_BUDGET = 50


def _budget() -> int:
    raw = os.environ.get(BUDGET_ENV)
    if raw is None:
        return DEFAULT_BUDGET
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_BUDGET


class TestGeneratorDeterminism:
    def test_same_seed_same_kernel(self):
        a = print_module(subject_from_kernel(generate_kernel(123)).build())
        b = print_module(subject_from_kernel(generate_kernel(123)).build())
        assert a == b

    def test_different_seeds_differ(self):
        a = print_module(subject_from_kernel(generate_kernel(1)).build())
        b = print_module(subject_from_kernel(generate_kernel(2)).build())
        assert a != b

    def test_covers_all_configs(self):
        # Most kernels have at least one loop, so the spec list spans the
        # paper's five configurations.
        module = subject_from_kernel(generate_kernel(0)).build()
        configs = {s.config for s in config_specs(module)}
        assert configs == {"baseline", "unroll", "unmerge", "uu",
                           "uu_heuristic"}


class TestFuzzSmoke:
    def test_fixed_seed_campaign_is_clean(self):
        budget = _budget()
        if budget <= 0:
            pytest.skip(f"fuzz smoke disabled via {BUDGET_ENV}=0")
        result = run_campaign(0, budget, bisect=True)
        assert not result.errors, "\n".join(result.errors)
        assert not result.failures, "\n".join(
            f.describe() for f in result.failures)
        # Each seed checked baseline + uu_heuristic at minimum.
        assert result.checked_configs >= 2 * budget
