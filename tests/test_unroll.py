"""Loop unrolling tests: structure and semantics preservation."""

import numpy as np
import pytest

from repro.analysis import LoopInfo
from repro.ir import Module, parse_function, verify_function
from repro.gpu import SimtMachine
from repro.transforms import run_dce, run_sccp, run_simplifycfg, unroll_loop
from repro.transforms.unroll import BaselineUnroll

SUM_LOOP = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header.cont ]
  %acc = phi i64 [ 0, %entry ], [ %nacc, %header.cont ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %header.cont, label %exit
header.cont:
  %sq = mul i64 %i, %i
  %nacc = add i64 %acc, %sq
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"""

BRANCHY = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %nacc, %latch ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %bit = and i64 %i, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %a, label %b
a:
  %x3 = mul i64 %i, 3
  br label %latch
b:
  %x5 = mul i64 %i, 5
  br label %latch
latch:
  %add = phi i64 [ %x3, %a ], [ %x5, %b ]
  %nacc = add i64 %acc, %add
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"""


def interpret(text: str, factor: int, n: int) -> int:
    mod = Module("t")
    f = parse_function(text, mod)
    if factor > 1:
        loop = LoopInfo.compute(f).loops[0]
        unroll_loop(f, loop, factor)
        verify_function(f)
    ret, _ = SimtMachine(mod).run_function("f", [n], lanes=1)
    return int(ret[0])


class TestSemanticsPreserved:
    @pytest.mark.parametrize("factor", [2, 3, 4, 5, 8])
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 16, 23])
    def test_sum_loop(self, factor, n):
        assert interpret(SUM_LOOP, factor, n) == interpret(SUM_LOOP, 1, n)

    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    @pytest.mark.parametrize("n", [0, 1, 5, 12])
    def test_branchy_loop(self, factor, n):
        assert interpret(BRANCHY, factor, n) == interpret(BRANCHY, 1, n)


class TestStructure:
    def test_block_count_scales(self):
        mod = Module("t")
        f = parse_function(BRANCHY, mod)
        before = len(f.blocks)
        loop = LoopInfo.compute(f).loops[0]
        region = unroll_loop(f, loop, 3)
        verify_function(f)
        # 5 loop blocks cloned twice more.
        assert len(f.blocks) == before + 2 * 5
        assert len(region) == 15

    def test_factor_one_is_noop(self):
        mod = Module("t")
        f = parse_function(SUM_LOOP, mod)
        before = len(f.blocks)
        loop = LoopInfo.compute(f).loops[0]
        unroll_loop(f, loop, 1)
        assert len(f.blocks) == before

    def test_cloned_headers_have_no_phis(self):
        mod = Module("t")
        f = parse_function(SUM_LOOP, mod)
        loop = LoopInfo.compute(f).loops[0]
        unroll_loop(f, loop, 4)
        for block in f.blocks:
            if block.name.startswith("header.u"):
                if "cont" not in block.name:
                    assert not block.phis(), block.name


class TestFullUnrollThroughSCCP:
    def test_constant_trip_count_dissolves(self):
        # Unrolling past the trip count + SCCP + SimplifyCFG = full unroll.
        text = SUM_LOOP.replace("%i, %n", "%i, 3").replace(
            "(i64 %n)", "(i64 %unused)")
        mod = Module("t")
        f = parse_function(text, mod)
        loop = LoopInfo.compute(f).loops[0]
        unroll_loop(f, loop, 4)
        run_sccp(f)
        run_simplifycfg(f)
        run_dce(f)
        verify_function(f)
        assert not LoopInfo.compute(f).loops  # Loop dissolved.
        ret, _ = SimtMachine(mod).run_function("f", [0], lanes=1)
        assert int(ret[0]) == 0 + 1 + 4


class TestBaselineUnroll:
    def test_claimed_loops_skipped(self):
        mod = Module("t")
        f = parse_function(SUM_LOOP, mod)
        f.attributes["uu_claimed_loops"] = {"f:0"}
        before = len(f.blocks)
        BaselineUnroll().run(f)
        assert len(f.blocks) == before

    def test_pragma_loops_skipped(self):
        mod = Module("t")
        f = parse_function(SUM_LOOP, mod)
        f.attributes["loop_pragmas"] = {"f:0": "unroll"}
        before = len(f.blocks)
        BaselineUnroll().run(f)
        assert len(f.blocks) == before

    def test_runtime_unroll_applies_to_small_innermost(self):
        mod = Module("t")
        f = parse_function(SUM_LOOP, mod)
        before = len(f.blocks)
        assert BaselineUnroll().run(f)
        assert len(f.blocks) > before
        verify_function(f)
        ret, _ = SimtMachine(mod).run_function("f", [9], lanes=1)
        assert int(ret[0]) == sum(i * i for i in range(9))
