"""Observability subsystem tests (:mod:`repro.obs`).

Covers the contracts ISSUE-critical consumers rely on: the remark JSONL
schema round-trips for every kind, exported traces are valid Chrome
trace-event JSON (Perfetto-loadable shape), execution profiling never
perturbs simulation results, and parallel sweeps aggregate worker
remarks/statistics deterministically (jobs=1 and jobs=N produce the same
stream).
"""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.bench import benchmark_by_name
from repro.gpu.counters import Counters
from repro.harness.cache import CellCache
from repro.harness.experiment import Cell
from repro.harness.parallel import ParallelRunner
from repro.obs import ExecutionProfile, Remark, Tracer
from repro.transforms.heuristic import LoopDecision


@pytest.fixture(autouse=True)
def _clean_slot():
    """Never leak a session or the env opt-in into other tests."""
    yield
    obs.uninstall()
    os.environ.pop(obs.ENV_VAR, None)


def _install():
    os.environ[obs.ENV_VAR] = "1"
    return obs.install()


# -- remark schema -----------------------------------------------------------

class TestRemarkStream:
    def test_jsonl_round_trip_every_kind(self, tmp_path):
        remarks = [
            Remark("applied", "uu", "k", "unroll-and-unmerge with u'=4",
                   loop_id="k:0",
                   args={"p": 2, "s": 24, "u_prime": 4, "cost": 360},
                   context={"app": "bench", "config": "uu_heuristic"}),
            Remark("missed", "uu", "k", "f(p,s,2) >= c", loop_id="k:1",
                   args={"p": 9, "s": 80}),
            Remark("analysis", "dce", "k", "erased dead instructions",
                   args={"erased": 12}),
        ]
        assert sorted(r.kind for r in remarks) == sorted(obs.KINDS)
        path = tmp_path / "r.jsonl"
        assert obs.write_jsonl(remarks, path) == 3
        assert obs.read_jsonl(path) == remarks

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Remark("info", "uu", "k", "nope").validate()
        with pytest.raises(ValueError):
            Remark.from_json({"kind": "info", "pass": "uu",
                              "function": "k", "message": "m"})

    def test_render_is_grepable(self):
        line = obs.render_remark(
            Remark("missed", "uu", "k", "divergent branch",
                   loop_id="k:2", args={"p": 3}))
        assert "[missed ]" in line
        assert "k:2" in line
        assert "p=3" in line


class TestHeuristicRemarks:
    """run-heuristic --report and the remark stream share this rendering."""

    def test_three_decision_shapes(self):
        decisions = [
            LoopDecision("k:0", paths=2, size=24, factor=5,
                         reason="f(2,24,5)=744 < 1024", applied=True),
            LoopDecision("k:1", paths=9, size=80, factor=None,
                         reason="f(p,s,2) >= c", applied=False),
            LoopDecision("k:2", paths=2, size=10, factor=3,
                         reason="selected", applied=False),
        ]
        remarks = obs.heuristic_remarks(decisions)
        assert [r.kind for r in remarks] == ["applied", "missed", "missed"]
        applied = remarks[0]
        assert applied.args["u_prime"] == 5
        # cost = sum_{i<5} 2^i * 24 = 24 * 31
        assert applied.args["cost"] == 24 * 31
        assert remarks[1].message == "f(p,s,2) >= c"
        assert "not applied" in remarks[2].message
        # Every remark is loop-scoped and carries the heuristic inputs.
        for remark in remarks:
            assert remark.loop_id is not None
            assert "p" in remark.args and "s" in remark.args


# -- Chrome trace shape ------------------------------------------------------

class TestChromeTrace:
    def test_event_shape_is_perfetto_loadable(self):
        tracer = Tracer(pid=100)
        start = tracer.now()
        tracer.complete("gvn", "pass", start, 0.002,
                        args={"insts_before": 10, "insts_after": 8})
        tracer.counter("occupancy", start, {"active": 24.0})
        tracer.absorb([{"name": "uu", "cat": "pass", "ph": "X",
                        "ts": 1.0, "dur": 2.0, "pid": 0, "tid": 0}],
                      pid=200)
        data = json.loads(json.dumps(tracer.to_json()))
        assert isinstance(data["traceEvents"], list)
        assert data["displayTimeUnit"] == "ms"
        for event in data["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
            assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # One lane label per distinct pid, worker events re-homed.
        labels = {e["pid"]: e["args"]["name"]
                  for e in data["traceEvents"] if e["ph"] == "M"}
        assert labels[100] == "repro harness"
        assert labels[200] == "worker 200"
        assert any(e["pid"] == 200 for e in data["traceEvents"]
                   if e["ph"] == "X")

    def test_write_and_span(self, tmp_path):
        session = _install()
        with obs.span("phase-x", cat="phase", note=1):
            pass
        path = tmp_path / "t.json"
        assert session.tracer.write(path) == 1
        data = json.loads(path.read_text())
        (event,) = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert event["name"] == "phase-x"
        assert event["cat"] == "phase"
        assert event["args"] == {"note": 1}


# -- execution profile -------------------------------------------------------

class TestExecutionProfile:
    def test_record_merge_and_occupancy(self):
        a = ExecutionProfile()
        a.note_block("entry", 10.0, 32, 32, 0.0)
        a.note_block("loop", 20.0, 16, 32, 10.0)
        b = ExecutionProfile()
        b.note_block("loop", 5.0, 8, 32, 0.0)
        b.note_split("loop", classes=2, rows=4)
        b.note_demotion("tail", warp=3)
        a.merge(b)
        assert a.block_hits == {"entry": 1, "loop": 2}
        assert a.block_cycles["loop"] == 25.0
        assert a.mean_occupancy() == pytest.approx((32 + 16 + 8) / 96)
        assert a.splits == [{"block": "loop", "classes": 2, "rows": 4}]
        assert a.demotions == [{"block": "tail", "warp": 3}]
        back = ExecutionProfile.from_json(
            json.loads(json.dumps(a.to_json())))
        assert back.to_json() == a.to_json()
        text = a.format()
        assert "loop" in text and "occupancy" in text and "splits" in text

    def test_occupancy_cap_counts_drops(self, monkeypatch):
        # ``repro.obs.profile`` the *attribute* is the session hook, which
        # shadows the module of the same name; patch the module itself.
        import importlib
        profile_mod = importlib.import_module("repro.obs.profile")
        monkeypatch.setattr(profile_mod, "OCCUPANCY_CAP", 3)
        prof = ExecutionProfile()
        for i in range(5):
            prof.note_block("b", 1.0, 32, 32, float(i))
        assert len(prof.occupancy) == 3
        assert prof.occupancy_dropped == 2
        other = ExecutionProfile()
        other.note_block("b", 1.0, 32, 32, 9.0)
        prof.merge(other)
        assert len(prof.occupancy) == 3
        assert prof.occupancy_dropped == 3


# -- session mechanics -------------------------------------------------------

class TestSession:
    def test_disabled_hooks_are_inert(self):
        assert obs.active() is None
        assert obs.tracer() is None
        assert obs.profile() is None
        obs.remark("applied", "uu", "k", "ignored")  # must not raise
        with obs.span("nothing"):
            pass

    def test_context_stamps_remarks(self):
        session = _install()
        with obs.context(app="bench", config="uu", sweep_factor=None):
            obs.remark("applied", "uu", "k", "msg", loop_id="k:0", p=2)
        (remark,) = session.remarks
        assert remark.context == {"app": "bench", "config": "uu"}
        assert remark.args == {"p": 2}

    def test_capture_is_isolated(self):
        outer = _install()
        with obs.capture() as inner:
            obs.remark("analysis", "gvn", "k", "inner")
        obs.remark("analysis", "gvn", "k", "outer")
        assert [r.message for r in inner.remarks] == ["inner"]
        assert [r.message for r in outer.remarks] == ["outer"]

    def test_worker_lifecycle_round_trip(self):
        parent = _install()
        obs.remark("analysis", "gvn", "k", "parent-only")
        # A fork()ed worker inherits the parent session: begin_worker must
        # discard it so the export contains only the worker's own remarks.
        worker = obs.begin_worker()
        assert worker is not parent and not worker.remarks
        obs.remark("applied", "uu", "k", "from-worker", loop_id="k:0")
        payload = obs.end_worker()
        assert obs.active() is None
        obs.install(parent)
        parent.merge_payload(payload)
        assert [r.message for r in parent.remarks] == \
            ["parent-only", "from-worker"]

    def test_begin_worker_respects_env(self):
        os.environ.pop(obs.ENV_VAR, None)
        assert obs.begin_worker() is None
        assert obs.end_worker() is None


# -- cell cache counters -----------------------------------------------------

class TestCacheCounters:
    def test_hit_miss_put_counters(self, tmp_path):
        cache = CellCache(root=tmp_path)
        cell = Cell(app="a", config="baseline", loop_id=None, factor=1,
                    cycles=1.0, code_size=10, compile_seconds=0.1,
                    counters=Counters(), outputs_match_baseline=True)
        key = "0" * 64
        assert cache.get(key) is None
        cache.put(key, cell)
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses, cache.puts) == (1, 1, 1)
        stats = cache.stats()
        assert stats["session_hits"] == 1
        assert stats["session_misses"] == 1
        assert stats["session_puts"] == 1
        assert "1 hits / 1 misses" in cache.session_line()
        assert "1 entries written" in cache.session_line()


# -- end-to-end: traced runs -------------------------------------------------

BENCH = "bspline-vgh"


class TestTracedRuns:
    def test_traced_uu_run_emits_applied_remark(self):
        session = _install()
        runner = ParallelRunner(jobs=1, use_cache=False)
        runner.prefetch([benchmark_by_name(BENCH)],
                        configs=("baseline", "uu_heuristic"))
        applied = [r for r in session.remarks if r.kind == "applied"
                   and r.pass_name == "uu"]
        assert applied, "heuristic u&u must emit an applied remark"
        for key in ("p", "s", "u_prime", "cost"):
            assert key in applied[0].args
        # Pass spans record the IR delta alongside the timing.
        pass_spans = [e for e in session.tracer.events
                      if e.get("cat") == "pass"]
        assert pass_spans
        assert {"insts_before", "insts_after", "blocks_before",
                "blocks_after"} <= set(pass_spans[0]["args"])

    def test_profiling_preserves_bit_identical_execution(self):
        bench = benchmark_by_name("complex")
        for engine in ("batched", "warp"):
            module = bench.build_module()
            off_outputs, off_counters = bench.run(module, engine=engine)
            session = _install()
            on_outputs, on_counters = bench.run(module, engine=engine)
            obs.uninstall()
            assert on_counters.cycles == off_counters.cycles, engine
            for name in off_outputs:
                assert np.array_equal(on_outputs[name],
                                      off_outputs[name]), (engine, name)
            assert session.profile.block_hits, engine
            assert session.profile.mean_occupancy() is not None, engine

    def test_parallel_aggregation_is_deterministic(self):
        def stream(jobs):
            session = _install()
            runner = ParallelRunner(jobs=jobs, use_cache=False)
            cells = runner.prefetch([benchmark_by_name(BENCH)],
                                    configs=("baseline", "uu_heuristic"))
            obs.uninstall()
            assert all(c.error is None for c in cells)
            return session, runner, cells

        s1, r1, c1 = stream(1)
        s2, r2, c2 = stream(2)
        assert [r.to_json() for r in s1.remarks] == \
            [r.to_json() for r in s2.remarks]
        assert r1.pass_stats.runs == r2.pass_stats.runs
        assert r1.pass_stats.changes == r2.pass_stats.changes
        # Trace timestamps/pids differ across processes; the set of work
        # performed (span names per category) must not.
        def spans(session):
            return sorted((e["name"], e["cat"])
                          for e in session.tracer.events
                          if e.get("ph") == "X")
        assert spans(s1) == spans(s2)
        assert [(c.cycles, c.code_size) for c in c1] == \
            [(c.cycles, c.code_size) for c in c2]


class TestCliExport:
    def test_trace_out_produces_perfetto_and_remarks(self, tmp_path, capsys):
        from repro.cli import main
        trace_path = tmp_path / "run.trace.json"
        assert main(["run-heuristic", "--app", BENCH,
                     "--trace-out", str(trace_path)]) == 0
        data = json.loads(trace_path.read_text())
        assert data["traceEvents"]
        assert all({"name", "ph", "ts", "pid", "tid"} <= set(e)
                   for e in data["traceEvents"])
        remarks = obs.read_jsonl(tmp_path / "run.trace.remarks.jsonl")
        assert any(r.kind == "applied" for r in remarks)
        # The session did not leak past main().
        assert obs.active() is None
        assert not os.environ.get(obs.ENV_VAR)
