"""Perf-regression sentinel tests: record shape, history IO, the gate,
and the ``repro perf`` CLI exit codes.

The acceptance-critical assertion: an injected >=10% geomean regression
makes ``repro perf check`` exit nonzero, while checking a record against
its own baseline exits zero.
"""

import copy
import json

import pytest

from repro.cli import main
from repro.harness import perfhistory
from repro.harness.perfhistory import (PERF_SCHEMA_VERSION, RATIO_KEYS,
                                       Regression, append_record,
                                       check_regression, format_report,
                                       load_baseline, read_history,
                                       record_from_bench)


def bench_payload():
    return {
        "schema": 2,
        "source": "bench-interp",
        "warps": 16,
        "trips": 200,
        "provenance": {"python": "3.x", "platform": "test",
                       "timing_model": "7"},
        "kernels": [
            {"kernel": "uniform", "batched_speedup": 4.0,
             "jit_speedup": 16.0, "jit_vs_batched": 4.0,
             "fused_speedup": 1.5},
            {"kernel": "chain", "batched_speedup": 6.0,
             "jit_speedup": 36.0, "jit_vs_batched": 6.0,
             "fused_speedup": 2.0},
        ],
    }


class TestRecord:
    def test_record_flattens_ratios_and_geomeans(self):
        record = record_from_bench(bench_payload(), source="test")
        assert record["schema"] == PERF_SCHEMA_VERSION
        assert record["source"] == "test"
        assert record["provenance"]["timing_model"] == "7"
        m = record["metrics"]
        assert m["uniform/jit_speedup"] == 16.0
        assert m["chain/batched_speedup"] == 6.0
        # Geomean of 16 and 36 is 24; of 4 and 6 is sqrt(24).
        assert m["geomean/jit_speedup"] == pytest.approx(24.0)
        assert m["geomean/batched_speedup"] == pytest.approx(24.0 ** 0.5)
        assert all(f"geomean/{key}" in m for key in RATIO_KEYS)

    def test_record_tolerates_sparse_schema1_payloads(self):
        payload = {"kernels": [{"kernel": "k", "batched_speedup": 2.0}]}
        record = record_from_bench(payload)
        assert record["metrics"] == {"k/batched_speedup": 2.0,
                                     "geomean/batched_speedup": 2.0}
        assert record["provenance"] == {}
        assert record["source"] == "unknown"

    def test_extra_metrics_fold_in(self):
        record = record_from_bench(
            bench_payload(), extra_metrics={"sweep/heuristic_speedup": 1.05})
        assert record["metrics"]["sweep/heuristic_speedup"] == 1.05


class TestHistoryIO:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = record_from_bench(bench_payload(), source="a")
        second = record_from_bench(bench_payload(), source="b")
        append_record(first, path)
        append_record(second, path)
        records = read_history(path)
        assert [r["source"] for r in records] == ["a", "b"]
        assert records[0]["metrics"] == first["metrics"]

    def test_read_skips_corrupt_and_stale_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = record_from_bench(bench_payload(), source="good")
        path.write_text("not json\n"
                        + json.dumps({"schema": 999, "metrics": {}}) + "\n"
                        + json.dumps(good, sort_keys=True) + "\n"
                        + "[1, 2]\n")
        records = read_history(path)
        assert [r["source"] for r in records] == ["good"]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_history(tmp_path / "absent.jsonl") == []

    def test_load_baseline_by_index(self, tmp_path):
        path = tmp_path / "history.jsonl"
        for source in ("a", "b", "c"):
            append_record(record_from_bench(bench_payload(), source=source),
                          path)
        assert load_baseline("-2", path)["source"] == "b"
        assert load_baseline("-1", path)["source"] == "c"
        assert load_baseline("-9", path) is None

    def test_load_baseline_from_paths(self, tmp_path):
        history = tmp_path / "history.jsonl"
        append_record(record_from_bench(bench_payload(), source="hist"),
                      history)
        assert load_baseline(str(history))["source"] == "hist"
        bench = tmp_path / "BENCH_test.json"
        bench.write_text(json.dumps(bench_payload()))
        loaded = load_baseline(str(bench))
        assert loaded["source"] == str(bench)
        assert loaded["metrics"]["geomean/jit_speedup"] == \
            pytest.approx(24.0)
        assert load_baseline(str(tmp_path / "absent.json")) is None


class TestGate:
    def test_ten_percent_drop_is_caught(self):
        base = record_from_bench(bench_payload())
        bad = copy.deepcopy(base)
        for name in bad["metrics"]:
            bad["metrics"][name] *= 0.90
        found = check_regression(base, bad)
        assert found, "a 10% drop must exceed the 8% default threshold"
        assert all(isinstance(r, Regression) for r in found)
        assert found[0].ratio == pytest.approx(0.90)
        assert "%" in found[0].describe()

    def test_noise_sized_drop_passes(self):
        base = record_from_bench(bench_payload())
        wobble = copy.deepcopy(base)
        for name in wobble["metrics"]:
            wobble["metrics"][name] *= 0.95
        assert check_regression(base, wobble) == []

    def test_prefix_restricts_and_missing_metrics_ignored(self):
        base = record_from_bench(bench_payload())
        cur = copy.deepcopy(base)
        cur["metrics"]["uniform/jit_speedup"] *= 0.5
        del cur["metrics"]["chain/jit_speedup"]      # Kernels come and go.
        base["metrics"]["retired/only_in_baseline"] = 1.0
        assert check_regression(base, cur, prefix="geomean/") == []
        names = [r.metric for r in check_regression(base, cur)]
        assert "uniform/jit_speedup" in names
        assert "chain/jit_speedup" not in names
        assert "retired/only_in_baseline" not in names

    def test_report_renders_trend_table(self):
        records = [record_from_bench(bench_payload(), source=s)
                   for s in ("a", "b")]
        text = format_report(records)
        assert "2 records" in text
        assert "geomean/jit_speedup" in text
        assert format_report([]) == "perf history: no records"
        assert "no tracked metrics" in format_report(records,
                                                     prefix="nope/")


class TestCli:
    @pytest.fixture(autouse=True)
    def _no_escape_hatch(self, monkeypatch):
        monkeypatch.delenv(perfhistory.CHECK_ENV, raising=False)

    def seeded_history(self, tmp_path, regress=False):
        path = tmp_path / "history.jsonl"
        base = record_from_bench(bench_payload(), source="baseline")
        append_record(base, path)
        current = copy.deepcopy(base)
        current["source"] = "current"
        if regress:
            for name in current["metrics"]:
                current["metrics"][name] *= 0.88     # A >=10% regression.
        append_record(current, path)
        return path

    def test_check_exits_nonzero_on_injected_regression(self, tmp_path,
                                                        capsys):
        path = self.seeded_history(tmp_path, regress=True)
        assert main(["perf", "check", "--history", str(path)]) == 1
        out = capsys.readouterr().out
        assert "regressed beyond 8%" in out
        assert "geomean/jit_speedup" in out

    def test_check_passes_against_committed_baseline(self, tmp_path,
                                                     capsys):
        path = self.seeded_history(tmp_path)
        assert main(["perf", "check", "--history", str(path)]) == 0
        assert "perf check: ok" in capsys.readouterr().out

    def test_check_honors_escape_hatch(self, tmp_path, monkeypatch,
                                       capsys):
        monkeypatch.setenv(perfhistory.CHECK_ENV, "0")
        path = self.seeded_history(tmp_path, regress=True)
        assert main(["perf", "check", "--history", str(path)]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_check_threshold_and_metrics_flags(self, tmp_path):
        path = self.seeded_history(tmp_path, regress=True)
        assert main(["perf", "check", "--history", str(path),
                     "--threshold", "0.5"]) == 0
        assert main(["perf", "check", "--history", str(path),
                     "--metrics", "geomean/"]) == 1

    def test_check_without_history_is_a_usage_error(self, tmp_path,
                                                    capsys):
        missing = tmp_path / "none.jsonl"
        assert main(["perf", "check", "--history", str(missing)]) == 2
        assert "no history" in capsys.readouterr().err

    def test_single_record_history_passes_default_check(self, tmp_path,
                                                        capsys):
        # A freshly-seeded history (one record, e.g. a new checkout) has
        # no previous record to gate against — clean slate, not an error.
        path = tmp_path / "history.jsonl"
        append_record(record_from_bench(bench_payload(), source="seed"),
                      path)
        assert main(["perf", "check", "--history", str(path)]) == 0
        assert "nothing to compare" in capsys.readouterr().out
        # But an explicit unresolvable baseline is still a usage error.
        assert main(["perf", "check", "--history", str(path),
                     "--baseline", "-9"]) == 2

    def test_record_ingests_bench_json(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_test.json"
        bench.write_text(json.dumps(bench_payload()))
        history = tmp_path / "history.jsonl"
        assert main(["perf", "record", "--from", str(bench),
                     "--history", str(history)]) == 0
        assert "recorded" in capsys.readouterr().out
        records = read_history(history)
        assert len(records) == 1
        assert records[0]["source"] == "BENCH_test.json"

    def test_report_renders(self, tmp_path, capsys):
        path = self.seeded_history(tmp_path)
        assert main(["perf", "report", "--history", str(path),
                     "--metrics", "geomean/"]) == 0
        out = capsys.readouterr().out
        assert "perf history: 2 records" in out
        assert "geomean/jit_speedup" in out

    def test_committed_history_passes_the_gate(self):
        """The in-repo history must never ship a regressed tip.

        Local runs append records from this machine, so the threshold
        here is the generous cross-machine one the perf-smoke gate uses,
        not the 8% same-machine default.
        """
        records = read_history()
        assert records, "results/perf/history.jsonl must be seeded"
        if len(records) >= 2:
            assert check_regression(records[-2], records[-1],
                                    threshold=0.5, prefix="geomean/") == []
