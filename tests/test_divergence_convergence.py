"""Divergence (tid-taint) and convergence analysis tests."""

import pytest

from repro.analysis import (DivergenceInfo, LoopInfo, convergent_instructions,
                            function_has_convergent, loop_has_divergent_branch,
                            loop_is_convergent)
from repro.ir import parse_function


class TestConvergence:
    def test_syncthreads_is_convergent(self):
        f = parse_function("""
define void @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  call void @syncthreads()
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %out
out:
  ret void
}
""")
        assert function_has_convergent(f)
        loop = LoopInfo.compute(f).loops[0]
        assert loop_is_convergent(loop)
        assert len(convergent_instructions(loop)) == 1

    def test_math_intrinsics_not_convergent(self):
        f = parse_function("""
define f64 @f(f64 %x) {
entry:
  %s = call f64 @sqrt(f64 %x)
  ret f64 %s
}
""")
        assert not function_has_convergent(f)


DIVERGENT_FUNC = """
define i64 @f(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %ctaid = call i64 @ctaid.x()
  %ntid = call i64 @ntid.x()
  %blockoff = mul i64 %ctaid, %ntid
  %gid = add i64 %tid, %blockoff
  %uniform = add i64 %ctaid, 5
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %merge ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %out
body:
  %bit = and i64 %gid, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %a, label %b
a:
  br label %merge
b:
  br label %merge
merge:
  %v = phi i64 [ 1, %a ], [ 2, %b ]
  %next = add i64 %i, 1
  br label %loop
out:
  ret i64 %i
}
"""


class TestDivergence:
    def test_tid_is_divergent_ctaid_uniform(self):
        f = parse_function(DIVERGENT_FUNC)
        info = DivergenceInfo.compute(f)
        by_name = {i.name: i for i in f.instructions() if i.name}
        assert info.is_divergent(by_name["tid"])
        assert not info.is_divergent(by_name["ctaid"])
        assert not info.is_divergent(by_name["uniform"])

    def test_taint_propagates_through_arithmetic(self):
        f = parse_function(DIVERGENT_FUNC)
        info = DivergenceInfo.compute(f)
        by_name = {i.name: i for i in f.instructions() if i.name}
        assert info.is_divergent(by_name["gid"])
        assert info.is_divergent(by_name["odd"])

    def test_phi_sync_dependence(self):
        # %v merges under a divergent branch: divergent even though its
        # incoming values are constants.
        f = parse_function(DIVERGENT_FUNC)
        info = DivergenceInfo.compute(f)
        by_name = {i.name: i for i in f.instructions() if i.name}
        assert info.is_divergent(by_name["v"])

    def test_loop_filter_flags_in_body_branch(self):
        f = parse_function(DIVERGENT_FUNC)
        info = DivergenceInfo.compute(f)
        loop = LoopInfo.compute(f).loops[0]
        assert loop_has_divergent_branch(loop, info)

    def test_divergent_args_seed(self):
        f = parse_function("""
define i64 @f(i64 %n) {
entry:
  %x = add i64 %n, 1
  ret i64 %x
}
""")
        plain = DivergenceInfo.compute(f)
        seeded = DivergenceInfo.compute(f, {"n"})
        x = next(i for i in f.instructions() if i.name == "x")
        assert not plain.is_divergent(x)
        assert seeded.is_divergent(x)

    def test_divergent_branches_listing(self):
        f = parse_function(DIVERGENT_FUNC)
        info = DivergenceInfo.compute(f)
        branches = info.divergent_branches()
        assert any(b.name == "body" for b in branches)
