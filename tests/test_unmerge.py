"""Control-flow unmerging tests: structure, phis, semantics, budget."""

import numpy as np
import pytest

from repro.analysis import LoopInfo, predecessor_map
from repro.gpu import SimtMachine
from repro.ir import Module, parse_function, verify_function
from repro.transforms import UnmergeBudgetExceeded, unmerge_loop, unroll_loop

DIAMOND_LOOP = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %merge ]
  %acc = phi i64 [ 0, %entry ], [ %nacc, %merge ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %bit = and i64 %i, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %a, label %b
a:
  %x3 = mul i64 %i, 3
  br label %merge
b:
  %x5 = mul i64 %i, 5
  br label %merge
merge:
  %add = phi i64 [ %x3, %a ], [ %x5, %b ]
  %nacc = add i64 %acc, %add
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"""

TWO_DIAMONDS = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %m2 ]
  %acc = phi i64 [ 0, %entry ], [ %nacc2, %m2 ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %bit = and i64 %i, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %a1, label %b1
a1:
  br label %m1
b1:
  br label %m1
m1:
  %v1 = phi i64 [ 3, %a1 ], [ 5, %b1 ]
  %nacc = add i64 %acc, %v1
  %big = icmp sgt i64 %i, 4
  br i1 %big, label %a2, label %b2
a2:
  br label %m2
b2:
  br label %m2
m2:
  %v2 = phi i64 [ 7, %a2 ], [ 11, %b2 ]
  %nacc2 = add i64 %nacc, %v2
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"""


def unmerge(text, budget=60_000):
    mod = Module("t")
    f = parse_function(text, mod)
    loop = LoopInfo.compute(f).loops[0]
    unmerge_loop(f, loop, budget)
    verify_function(f)
    return mod, f


def interpret(mod, n):
    ret, _ = SimtMachine(mod).run_function("f", [n], lanes=1)
    return int(ret[0])


class TestStructure:
    def test_no_in_loop_merges_remain(self):
        mod, f = unmerge(DIAMOND_LOOP)
        info = LoopInfo.compute(f)
        loop = info.loops[0]
        preds = predecessor_map(f)
        for block in loop.blocks:
            if block is loop.header:
                continue
            in_loop = [p for p in preds[block] if loop.contains(p)]
            assert len(in_loop) <= 1, f"{block.name} still merges"

    def test_merge_phis_collapsed(self):
        mod, f = unmerge(DIAMOND_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        for block in loop.blocks:
            if block is not loop.header:
                assert not block.phis(), f"phi left in {block.name}"

    def test_header_gains_latch_entries(self):
        mod, f = unmerge(DIAMOND_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        # Two unmerged paths -> two latches into the header.
        assert len(loop.latches()) == 2
        for phi in loop.header.phis():
            assert len(phi.incoming_blocks) == 3  # preheader + 2 latches.

    def test_straight_loop_unchanged(self):
        text = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %header, label %exit
exit:
  ret i64 %next
}
"""
        mod = Module("t")
        f = parse_function(text, mod)
        before = len(f.blocks)
        loop = LoopInfo.compute(f).loops[0]
        assert not unmerge_loop(f, loop)
        assert len(f.blocks) == before


class TestSemantics:
    @pytest.mark.parametrize("text", [DIAMOND_LOOP, TWO_DIAMONDS],
                             ids=["one-diamond", "two-diamonds"])
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 9])
    def test_unmerge_preserves_results(self, text, n):
        mod0 = Module("t0")
        parse_function(text, mod0)
        expected = interpret(mod0, n)
        mod, f = unmerge(text)
        assert interpret(mod, n) == expected

    @pytest.mark.parametrize("factor", [2, 3, 4])
    @pytest.mark.parametrize("n", [0, 1, 4, 9])
    def test_unroll_then_unmerge_preserves_results(self, factor, n):
        mod0 = Module("t0")
        parse_function(TWO_DIAMONDS, mod0)
        expected = interpret(mod0, n)

        mod = Module("t")
        f = parse_function(TWO_DIAMONDS, mod)
        loop = LoopInfo.compute(f).loops[0]
        unroll_loop(f, loop, factor)
        verify_function(f)
        fresh = [l for l in LoopInfo.compute(f).loops
                 if l.header.name == "header"][0]
        unmerge_loop(f, fresh)
        verify_function(f)
        assert interpret(mod, n) == expected


class TestPathExplosion:
    def test_two_diamonds_make_four_paths(self):
        mod, f = unmerge(TWO_DIAMONDS)
        loop = LoopInfo.compute(f).loops[0]
        # 2 conditions -> 4 distinct latch paths.
        assert len(loop.latches()) == 4

    def test_budget_cap_raises(self):
        mod = Module("t")
        f = parse_function(TWO_DIAMONDS, mod)
        loop = LoopInfo.compute(f).loops[0]
        unroll_loop(f, loop, 8)
        fresh = [l for l in LoopInfo.compute(f).loops
                 if l.header.name == "header"][0]
        with pytest.raises(UnmergeBudgetExceeded):
            unmerge_loop(f, fresh, max_instructions=200)
        # IR must remain valid after the abort.
        verify_function(f)


class TestInnerLoops:
    def test_inner_loop_header_not_unmerged(self):
        text = """
define i64 @f(i64 %n, i64 %m) {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %inext, %olatch ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %olatch ]
  %ci = icmp slt i64 %i, %n
  br i1 %ci, label %inner, label %exit
inner:
  %j = phi i64 [ 0, %outer ], [ %jnext, %inner ]
  %a1 = phi i64 [ %acc, %outer ], [ %anext, %inner ]
  %anext = add i64 %a1, %j
  %jnext = add i64 %j, 1
  %cj = icmp slt i64 %jnext, %m
  br i1 %cj, label %inner, label %olatch
olatch:
  %acc2 = add i64 %anext, 1
  %inext = add i64 %i, 1
  br label %outer
exit:
  ret i64 %acc
}
"""
        mod0 = Module("t0")
        parse_function(text, mod0)
        expected = interpret_nm(mod0, 3, 4)

        mod = Module("t")
        f = parse_function(text, mod)
        outer = LoopInfo.compute(f).by_id("f:0")
        unmerge_loop(f, outer)
        verify_function(f)
        assert interpret_nm(mod, 3, 4) == expected


def interpret_nm(mod, n, m):
    ret, _ = SimtMachine(mod).run_function("f", [n, m], lanes=1)
    return int(ret[0])
