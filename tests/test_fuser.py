"""Unit tests for the jit expression fuser (``repro.gpu.fuser``).

The engine-equivalence suite pins fused execution bit-identical to the
other engines; this file pins the fuser's *decisions* and mechanics:
which step runs become segments, where liveouts are required, that the
generated code objects are shared across identical functions, and that
the escape hatch really disables everything.
"""

from __future__ import annotations

import numpy as np

from repro.gpu import Memory, SimtMachine
from repro.gpu.fuser import (MIN_CHAIN, _CODE_CACHE, FUSE_ENV, find_segments,
                             use_counts)
from repro.gpu.regions import compile_regions
from repro.ir.parser import parse_module

CHAIN_IR = """
define i64 @chain(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ %tid, %entry ], [ %acc.next, %loop ]
  %t1 = mul i64 %acc, 1103515245
  %t2 = add i64 %t1, 12345
  %t3 = xor i64 %t2, %i
  %t4 = lshr i64 %t3, 9
  %t5 = add i64 %t4, %t2
  %big = icmp sgt i64 %t5, 524287
  %sel = select i1 %big, i64 %t4, i64 %t5
  %acc.next = and i64 %sel, 16777215
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""

# A store in the middle of the chain: memory steps are fusion barriers,
# so the chain must split around it (front long enough to fuse, back not).
SPLIT_IR = """
define void @split(i64* %buf, i64 %n) {
entry:
  %tid = call i64 @tid.x()
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ %tid, %entry ], [ %acc.next, %loop ]
  %t1 = mul i64 %acc, 7
  %t2 = add i64 %t1, %i
  %t3 = xor i64 %t2, 5
  %t4 = and i64 %t3, 1048575
  %addr = gep i64* %buf, i64 %tid
  store i64 %t4, i64* %addr
  %acc.next = add i64 %t4, 1
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret void
}
"""


def decoded_block(ir_text: str, block: str, name: str = "m"):
    module = parse_module(ir_text, name)
    func = next(iter(module.functions.values()))
    machine = SimtMachine(module, Memory(), engine="jit")
    entry = machine._decode(func)
    stack, seen = [entry], set()
    while stack:
        db = stack.pop()
        if id(db) in seen:
            continue
        seen.add(id(db))
        if db.name == block:
            return machine, func, db
        if db.term_kind == 0:        # _T_BR
            stack.append(db.term.target)
        elif db.term_kind == 1:      # _T_CONDBR
            stack.extend((db.term[1].target, db.term[2].target))
    raise AssertionError(f"no block named {block}")


# -- chain analysis -----------------------------------------------------------

def test_whole_block_chain_is_one_segment():
    machine, func, loop = decoded_block(CHAIN_IR, "loop")
    segments = find_segments(loop.steps, use_counts(func))
    assert len(segments) == 1
    lo, hi, live = segments[0]
    # Every step in the loop body (10 binops/icmps/selects) joins.
    assert (lo, hi) == (0, len(loop.steps))
    assert len(live) == hi - lo


def test_liveouts_mark_exactly_the_externally_used_values():
    machine, func, loop = decoded_block(CHAIN_IR, "loop")
    (lo, hi, live), = find_segments(loop.steps, use_counts(func))
    by_name = {loop.steps[k][7][2].name: live[k - lo] for k in range(lo, hi)}
    # Used by phis (next iteration), the terminator, or the exit block:
    assert by_name["acc.next"] == 1
    assert by_name["i.next"] == 1   # phi incoming (done's use is internal)
    assert by_name["done"] == 1     # the conditional branch reads it
    # Pure intermediates die inside the segment: no store is emitted.
    for name in ("t1", "t2", "t3", "t4", "t5", "big", "sel"):
        assert by_name[name] == 0, f"{name} should be dead outside"


def test_memory_step_breaks_the_chain():
    machine, func, loop = decoded_block(SPLIT_IR, "loop")
    segments = find_segments(loop.steps, use_counts(func))
    # Front: t1..t4 + the gep (5 fusible steps).  The store is a barrier;
    # the tail (acc.next, i.next, done) is below MIN_CHAIN and stays
    # on the specialized per-step closures.
    assert len(segments) == 1
    lo, hi, _ = segments[0]
    assert lo == 0
    assert loop.steps[hi][3] != 0 or loop.steps[hi][7] is None \
        or loop.steps[hi][7][2].name != "t4"


def test_min_chain_floor_is_enforced():
    machine, func, loop = decoded_block(SPLIT_IR, "loop")
    segments = find_segments(loop.steps, use_counts(func))
    for lo, hi, _ in segments:
        assert hi - lo >= MIN_CHAIN


# -- region integration -------------------------------------------------------

def region_fused_counts(ir_text: str, fuse: bool):
    module = parse_module(ir_text, "m")
    func = next(iter(module.functions.values()))
    machine = SimtMachine(module, Memory(), engine="jit")
    entry = machine._decode(func)
    regions = compile_regions(machine, func, entry, fuse=fuse)
    return (sum(r.fused_segments for r in regions.values()),
            sum(r.fused_steps for r in regions.values()),
            max((r.max_chain for r in regions.values()), default=0))


def test_compiled_regions_carry_fusion_accounting():
    segments, steps, max_chain = region_fused_counts(CHAIN_IR, fuse=True)
    assert segments > 0
    assert steps >= 10          # the loop body chain at minimum
    assert max_chain >= 10


def test_fuse_flag_disables_everything():
    segments, steps, max_chain = region_fused_counts(CHAIN_IR, fuse=False)
    assert (segments, steps, max_chain) == (0, 0, 0)


def test_fused_results_match_warp_engine():
    outs = {}
    for engine in ("warp", "jit"):
        module = parse_module(CHAIN_IR, "chain")
        machine = SimtMachine(module, Memory(), engine=engine)
        result = machine.launch("chain", 1, 64, [50])
        outs[engine] = (result.return_values.tobytes(), result.counters)
    assert outs["jit"][0] == outs["warp"][0]
    assert outs["jit"][1] == outs["warp"][1]


def test_generated_code_objects_are_shared_across_reparses():
    """Identical IR in a fresh machine must not recompile its segments.

    The generated source is id-free (SSA slots bind through the closure
    namespace), so the (filename, source) memo hits across re-parses —
    this is what amortizes codegen over repeated launches.
    """
    region_fused_counts(CHAIN_IR, fuse=True)      # Prime the cache.
    before = dict(_CODE_CACHE)
    region_fused_counts(CHAIN_IR, fuse=True)      # Fresh parse, same IR.
    assert dict(_CODE_CACHE) == before, \
        "re-parsing identical IR created new code objects"


def test_fused_numpy_values_match_unfused(monkeypatch):
    """Value arrays agree elementwise between fused and unfused runs."""
    results = {}
    for flag in ("1", "0"):
        monkeypatch.setenv(FUSE_ENV, flag)
        module = parse_module(CHAIN_IR, "chain")
        machine = SimtMachine(module, Memory(), engine="jit")
        result = machine.launch("chain", 2, 96, [40])
        results[flag] = np.asarray(result.return_values)
    np.testing.assert_array_equal(results["1"], results["0"])
