"""LCSSA and region-cloning tests."""

import pytest

from repro.analysis import LoopInfo
from repro.gpu import SimtMachine
from repro.ir import (Module, clone_blocks, parse_function, verify_function)
from repro.ir.instructions import PhiInst
from repro.transforms import form_lcssa

LOOP_WITH_OUTSIDE_USE = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %sq = mul i64 %i, %i
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %header, label %exit
exit:
  %use = add i64 %sq, 100
  ret i64 %use
}
"""


class TestLCSSA:
    def test_outside_use_routed_through_exit_phi(self):
        f = parse_function(LOOP_WITH_OUTSIDE_USE)
        loop = LoopInfo.compute(f).loops[0]
        assert form_lcssa(f, loop)
        verify_function(f)
        exit_block = [b for b in f.blocks if b.name == "exit"][0]
        phis = exit_block.phis()
        assert len(phis) == 1
        use = exit_block.instructions[-2]
        assert use.operands[0] is phis[0]

    def test_idempotent(self):
        f = parse_function(LOOP_WITH_OUTSIDE_USE)
        loop = LoopInfo.compute(f).loops[0]
        form_lcssa(f, loop)
        exit_block = [b for b in f.blocks if b.name == "exit"][0]
        n_phis = len(exit_block.phis())
        loop = LoopInfo.compute(f).loops[0]
        form_lcssa(f, loop)
        assert len(exit_block.phis()) == n_phis

    def test_follower_loop_header_circulates_value(self):
        # The exit block of loop 0 is the header of loop 1: the LCSSA phi
        # must circulate itself along loop 1's back edge, not re-read the
        # (dynamically stale) definition.  Regression test for the bn bug.
        text = """
define i64 @f(i64 %n) {
entry:
  br label %h0
h0:
  %i = phi i64 [ 0, %entry ], [ %inext, %h0 ]
  %sq = mul i64 %i, %i
  %inext = add i64 %i, 1
  %c0 = icmp slt i64 %inext, %n
  br i1 %c0, label %h0, label %h1
h1:
  %k = phi i64 [ 0, %h0 ], [ %knext, %h1 ]
  %acc = phi i64 [ 0, %h0 ], [ %nacc, %h1 ]
  %nacc = add i64 %acc, %sq
  %knext = add i64 %k, 1
  %c1 = icmp slt i64 %knext, 4
  br i1 %c1, label %h1, label %out
out:
  ret i64 %nacc
}
"""
        f = parse_function(text)
        loop0 = LoopInfo.compute(f).by_id("f:0")
        form_lcssa(f, loop0)
        verify_function(f)
        h1 = [b for b in f.blocks if b.name == "h1"][0]
        lcssa_phis = [p for p in h1.phis() if p.name.endswith(".lcssa")]
        assert lcssa_phis
        phi = lcssa_phis[0]
        back = phi.incoming_for(h1)
        assert back is phi, "back edge must circulate the phi itself"


class TestCloneBlocks:
    def test_internal_edges_remapped(self):
        f = parse_function("""
define i64 @f(i64 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %p = add i64 %x, 1
  br label %join
b:
  %q = add i64 %x, 2
  br label %join
join:
  %r = phi i64 [ %p, %a ], [ %q, %b ]
  ret i64 %r
}
""")
        region = f.blocks[1:]  # a, b, join.
        clones, vmap = clone_blocks(f, region, "copy")
        assert len(clones) == 3
        # Cloned phi points at cloned values and cloned blocks.
        join_clone = clones[2]
        phi = join_clone.phis()[0]
        assert phi.incoming_blocks[0] is clones[0]
        assert phi.operands[0] is vmap[id(region[0].instructions[0])]

    def test_external_values_shared(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  %base = mul i64 %x, 10
  br label %tail
tail:
  %r = add i64 %base, 1
  ret i64 %r
}
""")
        clones, vmap = clone_blocks(f, [f.blocks[1]], "copy")
        cloned_add = clones[0].instructions[0]
        # %base is outside the region: shared, not cloned.
        assert cloned_add.operands[0] is f.entry.instructions[0]

    def test_clone_names_unique(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  br label %tail
tail:
  %r = add i64 %x, 1
  ret i64 %r
}
""")
        clones, _ = clone_blocks(f, [f.blocks[1]], "c1")
        names = [i.name for b in f.blocks for i in b.instructions if i.name]
        assert len(names) == len(set(names))
