"""Round-trip and error tests for the textual IR parser/printer."""

import pytest

from repro.ir import (ParseError, parse_function, parse_module,
                      print_function, print_module, verify_module)

LOOP_FUNC = """
define i64 @binsearch(f64* %A, i64 %n, f64 %q) {
entry:
  br label %header
header:
  %length = phi i64 [ %n, %entry ], [ %nlen, %merge ]
  %lower = phi i64 [ 0, %entry ], [ %nl, %merge ]
  %c = icmp sgt i64 %length, 1
  br i1 %c, label %body, label %exit
body:
  %half = sdiv i64 %length, 2
  %mid = add i64 %lower, %half
  %p = gep f64* %A, i64 %mid
  %v = load f64, f64* %p
  %gt = fcmp ogt f64 %v, %q
  br i1 %gt, label %then, label %els
then:
  br label %merge
els:
  br label %merge
merge:
  %nl = phi i64 [ %lower, %then ], [ %mid, %els ]
  %nlen = sub i64 %half, %nl
  br label %header
exit:
  ret i64 %lower
}
"""

ALL_OPS = """
define f64 @ops(f64* %p, i64 %i, f64 %x, i32 %w) {
entry:
  %a = add i64 %i, 3
  %s = sub i64 %a, %i
  %m = mul i64 %s, 2
  %d = sdiv i64 %m, 2
  %r = srem i64 %d, 7
  %sh = shl i64 %r, 1
  %lr = lshr i64 %sh, 1
  %ar = ashr i64 %lr, 1
  %an = and i64 %ar, 255
  %o = or i64 %an, 1
  %x1 = xor i64 %o, 5
  %c = icmp slt i64 %x1, 100
  %w64 = sext i32 %w to i64
  %wt = trunc i64 %w64 to i32
  %wf = sitofp i64 %x1 to f64
  %fa = fadd f64 %wf, %x
  %fs = fsub f64 %fa, 1.0
  %fm = fmul f64 %fs, 2.0
  %fd = fdiv f64 %fm, 2.0
  %fc = fcmp olt f64 %fd, 100.0
  %both = and i1 %c, %fc
  %sel = select i1 %both, f64 %fd, f64 %x
  %g = gep f64* %p, i64 %i
  store f64 %sel, f64* %g
  %l = load f64, f64* %g
  %sq = call f64 @sqrt(f64 %l)
  ret f64 %sq
}
"""


class TestRoundTrip:
    @pytest.mark.parametrize("text", [LOOP_FUNC, ALL_OPS],
                             ids=["loop", "all-ops"])
    def test_print_parse_print_fixpoint(self, text):
        m1 = parse_module(text, "m")
        verify_module(m1)
        t1 = print_module(m1)
        m2 = parse_module(t1, "m")
        verify_module(m2)
        assert print_module(m2) == t1

    def test_globals_roundtrip(self):
        text = """
@table = global f64 x 64

define void @k() {
entry:
  %p = gep f64* @table, i64 3
  store f64 1.0, f64* %p
  ret void
}
"""
        m = parse_module(text, "m")
        assert m.get_global("table").count == 64
        t = print_module(m)
        m2 = parse_module(t, "m")
        assert print_module(m2) == t


class TestParseErrors:
    def test_unresolved_value(self):
        with pytest.raises(ParseError):
            parse_function("""
define void @f() {
entry:
  %x = add i64 %missing, 1
  ret void
}
""")

    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_function("""
define void @f() {
entry:
  %x = frobnicate i64 1, 2
  ret void
}
""")

    def test_missing_close_brace(self):
        with pytest.raises(ParseError):
            parse_function("""
define void @f() {
entry:
  ret void
""")

    def test_comments_stripped(self):
        f = parse_function("""
; leading comment
define i64 @f(i64 %x) {
entry:                 ; preds: none
  %y = add i64 %x, 1  ; increment
  ret i64 %y
}
""")
        assert f.name == "f"
        assert len(f.entry.instructions) == 2

    def test_phi_back_reference(self):
        # Phi referencing a value defined later in the function (back edge).
        f = parse_function(LOOP_FUNC)
        phi = f.blocks[1].phis()[0]
        assert phi.name == "length"
        names = {v.name for v in phi.operands if hasattr(v, "name")}
        assert "nlen" in names
