"""Unit tests for the IR type system."""

import pytest

from repro.ir import types as T


class TestInterning:
    def test_int_types_are_interned(self):
        assert T.IntType(32) is T.IntType(32)
        assert T.IntType(32) is T.I32

    def test_float_types_are_interned(self):
        assert T.FloatType(64) is T.F64

    def test_pointer_types_are_interned(self):
        assert T.PointerType(T.F64) is T.PointerType(T.F64)
        assert T.PointerType(T.F64) is not T.PointerType(T.F32)

    def test_function_types_are_interned(self):
        a = T.FunctionType(T.VOID, (T.I64, T.F64))
        b = T.FunctionType(T.VOID, (T.I64, T.F64))
        assert a is b

    def test_nested_pointers(self):
        pp = T.PointerType(T.PointerType(T.I32))
        assert pp.pointee.pointee is T.I32


class TestProperties:
    def test_predicates(self):
        assert T.I1.is_bool
        assert T.I32.is_integer and not T.I32.is_bool
        assert T.F32.is_float
        assert T.PointerType(T.I8).is_pointer
        assert T.VOID.is_void

    def test_sizes(self):
        assert T.I8.size_bytes() == 1
        assert T.I32.size_bytes() == 4
        assert T.I64.size_bytes() == 8
        assert T.F32.size_bytes() == 4
        assert T.F64.size_bytes() == 8
        assert T.PointerType(T.F64).size_bytes() == 8

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            T.IntType(0)
        with pytest.raises(ValueError):
            T.IntType(128)
        with pytest.raises(ValueError):
            T.FloatType(16)


class TestWrapping:
    def test_wrap_signed(self):
        assert T.I8.wrap(127) == 127
        assert T.I8.wrap(128) == -128
        assert T.I8.wrap(255) == -1
        assert T.I8.wrap(256) == 0
        assert T.I8.wrap(-129) == 127

    def test_wrap_i1(self):
        assert T.I1.wrap(0) == 0
        assert T.I1.wrap(1) == 1
        assert T.I1.wrap(2) == 0

    def test_to_unsigned(self):
        assert T.I8.to_unsigned(-1) == 255
        assert T.I64.to_unsigned(-1) == (1 << 64) - 1

    def test_bounds(self):
        assert T.I32.min_signed == -(1 << 31)
        assert T.I32.max_signed == (1 << 31) - 1
        assert T.I32.max_unsigned == (1 << 32) - 1


class TestParseType:
    def test_scalars(self):
        assert T.parse_type("i64") is T.I64
        assert T.parse_type("f32") is T.F32
        assert T.parse_type("void") is T.VOID

    def test_llvm_aliases(self):
        assert T.parse_type("double") is T.F64
        assert T.parse_type("float") is T.F32

    def test_pointers(self):
        assert T.parse_type("f64*") is T.PointerType(T.F64)
        assert T.parse_type("i32**") is T.PointerType(T.PointerType(T.I32))

    def test_whitespace_tolerated(self):
        assert T.parse_type(" i64 ") is T.I64
        assert T.parse_type("f64 *") is T.PointerType(T.F64)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            T.parse_type("i128")
