; repro-fuzz: {"bug": "edge phi moves staged reads by reference; when unmerge resolves a clone's phi straight to a header phi the masked write to a sibling phi corrupted the staged value", "config": "unmerge", "culprit": "interpreter phi parallel-copy (exposed by unmerge)", "kind": "mismatch", "seed": 80, "source": "repro fuzz reduce"}
; module fuzz80
define i64 @fuzz80(i64 %seed, f64 %noise) {
entry:
  %v = fptrunc f64 %noise to f32
  %v.1 = add i64 -4169877953204843554, 9223372036854775806
  br label %while.cond
while.cond:                ; preds: entry, if.end
  %i7 = phi i64 [ 0, %entry ], [ %v.14, %if.end ]
  %v3 = phi i64 [ 38, %entry ], [ %v.13, %if.end ]
  %v1 = phi i64 [ %v.1, %entry ], [ %v1.1, %if.end ]
  %f5 = phi f64 [ -89.122, %entry ], [ %v.11, %if.end ]
  %v.2 = icmp slt i64 %i7, 2
  br i1 %v.2, label %while.body, label %while.end
while.body:                ; preds: while.cond
  %v.3 = call i64 @tid.x()
  %v.4 = add i64 %v.3, 30
  %v.5 = icmp eq i64 30, %v.4
  br i1 %v.5, label %if.then, label %if.else
while.end:                ; preds: while.cond
  %v.15 = mul i64 %v1, -7046029254386353131
  %v.16 = xor i64 %v.15, 30
  %v.17 = mul i64 %v.16, -7046029254386353131
  %v.18 = xor i64 %v.17, %v3
  %v.19 = mul i64 %v.18, 2685821657736338717
  %v.20 = fmul f32 %v, 4096.0
  %v.21 = fptosi f32 %v.20 to i64
  %v.22 = xor i64 %v.19, %v.21
  %v.23 = mul i64 %v.22, 2685821657736338717
  %v.24 = fmul f64 %f5, 4096.0
  %v.25 = fptosi f64 %v.24 to i64
  %v.26 = xor i64 %v.23, %v.25
  ret i64 %v.26
if.then:                ; preds: while.body
  %v.6 = call i64 @tid.x()
  %v.7 = sub i64 %v.6, %v3
  br label %if.end
if.end:                ; preds: if.then, if.else
  %v1.1 = phi i64 [ %v.7, %if.then ], [ %v3, %if.else ]
  %v.8 = call f32 @fmin(f32 %v, f32 %v)
  %v.9 = fptrunc f64 -74.519 to f32
  %v.10 = fsub f32 %v.8, %v.9
  %v.11 = fpext f32 %v.10 to f64
  %v.12 = mul i64 %i7, 3
  %v.13 = add i64 %v3, %v.12
  %v.14 = add i64 %i7, 1
  br label %while.cond
if.else:                ; preds: while.body
  br label %if.end
}
