; repro-fuzz: {"configs": "all", "seed": 7, "source": "generator anchor"}
; module fuzz7
define i64 @fuzz7(i64 %seed, f64 %noise) {
entry:
  %v = and i64 %seed, 1023
  %v.1 = trunc i64 %v to i32
  %v.2 = fptrunc f64 %noise to f32
  %v.3 = call i64 @tid.x()
  %v.4 = srem i64 %v.3, 2
  %v.5 = icmp slt i64 %v.4, 0
  br i1 %v.5, label %if.then, label %if.else
if.then:                ; preds: entry
  %v.6 = call i64 @tid.x()
  %v.7 = trunc i64 %v.6 to i32
  %v.8 = srem i32 %v.7, 2
  %v.9 = icmp sle i32 %v.8, 1
  br i1 %v.9, label %if.then.1, label %if.else.1
if.end:                ; preds: if.end.1, if.end.2
  %f4 = phi f32 [ %f4.1, %if.end.1 ], [ %f4.2, %if.end.2 ]
  %f5 = phi f32 [ %f5.1, %if.end.1 ], [ %f5.2, %if.end.2 ]
  %v.43 = fptosi f32 %f4 to i64
  %v.44 = trunc i64 %v.43 to i32
  %v.45 = sdiv i64 -10, -4
  %v.46 = call i64 @tid.x()
  %v.47 = xor i64 -9188169845631956885, %v.46
  %v.48 = and i64 %v.45, %v.47
  %v.49 = sext i32 -40 to i64
  %v.50 = fptosi f32 %f4 to i64
  %v.51 = sub i64 %v.49, %v.50
  %v.52 = and i64 %v.48, %v.51
  %v.53 = or i32 -6, %v.44
  %v.54 = icmp ne i32 %v.53, -7
  br i1 %v.54, label %if.then.5, label %if.else.4
if.else:                ; preds: entry
  %v.18 = call i64 @tid.x()
  %v.19 = srem i64 %v.18, 7
  %v.20 = icmp sle i64 %v.19, 4
  br i1 %v.20, label %if.then.2, label %if.else.2
if.then.1:                ; preds: if.then
  %v.10 = call f32 @exp(f32 %v.2)
  %v.11 = fptosi f64 -40.047 to i32
  %v.12 = fptosi f32 %v.10 to i32
  %v.13 = or i32 %v.11, %v.12
  %v.14 = shl i32 %v.13, 7
  %v.15 = ashr i64 -52, 7
  br label %if.end.1
if.end.1:                ; preds: if.then.1, if.else.1
  %f4.1 = phi f32 [ %v.2, %if.then.1 ], [ nan, %if.else.1 ]
  %f5.1 = phi f32 [ %v.10, %if.then.1 ], [ nan, %if.else.1 ]
  br label %if.end
if.else.1:                ; preds: if.then
  %v.16 = add i32 0, 2147483646
  %v.17 = call i64 @max(i64 3, i64 -1002750821430351451)
  br label %if.end.1
if.then.2:                ; preds: if.else
  %v.21 = frem f32 nan, nan
  br label %if.end.2
if.end.2:                ; preds: if.then.2, if.end.3
  %f4.2 = phi f32 [ %v.2, %if.then.2 ], [ %f4.3, %if.end.3 ]
  %f5.2 = phi f32 [ %v.21, %if.then.2 ], [ %f5.3, %if.end.3 ]
  br label %if.end
if.else.2:                ; preds: if.else
  %v.22 = call i64 @tid.x()
  %v.23 = trunc i64 %v.22 to i32
  %v.24 = add i32 %v.23, %v.1
  %v.25 = fptosi f64 -28.861 to i32
  %v.26 = icmp ne i32 %v.24, %v.25
  br i1 %v.26, label %if.then.3, label %if.else.3
if.then.3:                ; preds: if.else.2
  %v.27 = trunc i64 -52 to i32
  %v.28 = srem i32 -1499283267, -2
  %v.29 = call i32 @max(i32 %v.27, i32 %v.28)
  %v.30 = trunc i64 -52 to i32
  %v.31 = ashr i32 %v.30, 1
  %v.32 = srem i32 %v.29, %v.31
  br label %if.end.3
if.end.3:                ; preds: if.then.3, if.end.4
  %f4.3 = phi f32 [ %v.2, %if.then.3 ], [ %f4.4, %if.end.4 ]
  %f5.3 = phi f32 [ nan, %if.then.3 ], [ %f5.4, %if.end.4 ]
  br label %if.end.2
if.else.3:                ; preds: if.else.2
  %v.33 = call i64 @tid.x()
  %v.34 = srem i64 %v.33, 3
  %v.35 = icmp slt i64 %v.34, 1
  br i1 %v.35, label %if.then.4, label %if.end.4
if.then.4:                ; preds: if.else.3
  %v.36 = call f32 @sqrt(f32 1.0000000031710769e-30)
  %v.37 = fptrunc f64 0.5 to f32
  %v.38 = call f32 @fabs(f32 %v.37)
  %v.39 = fdiv f32 98.62100219726562, -82.822998046875
  %v.40 = fmul f32 %v.38, %v.39
  %v.41 = call i64 @tid.x()
  %v.42 = mul i64 -52, %v.41
  br label %if.end.4
if.end.4:                ; preds: if.else.3, if.then.4
  %f4.4 = phi f32 [ %v.2, %if.else.3 ], [ %v.40, %if.then.4 ]
  %f5.4 = phi f32 [ nan, %if.else.3 ], [ %v.36, %if.then.4 ]
  br label %if.end.3
if.then.5:                ; preds: if.end
  %v.55 = call i64 @tid.x()
  %v.56 = trunc i64 %v.55 to i32
  %v.57 = srem i32 %v.56, 2
  %v.58 = icmp slt i32 %v.57, 0
  br i1 %v.58, label %if.then.6, label %if.else.5
if.end.5:                ; preds: if.end.6, if.end.9
  %v1.3 = phi i32 [ %v1, %if.end.6 ], [ %v1.4, %if.end.9 ]
  %v2.5 = phi i64 [ %v.79, %if.end.6 ], [ %v2.6, %if.end.9 ]
  %v3.6 = phi i32 [ %v.78, %if.end.6 ], [ %v3.7, %if.end.9 ]
  %f4.5 = phi f32 [ %f4, %if.end.6 ], [ %f4.9, %if.end.9 ]
  %v.101 = sext i32 %v1.3 to i64
  %v.102 = mul i64 %v.101, -7046029254386353131
  %v.103 = xor i64 %v.102, %v2.5
  %v.104 = mul i64 %v.103, -7046029254386353131
  %v.105 = sext i32 %v3.6 to i64
  %v.106 = xor i64 %v.104, %v.105
  %v.107 = mul i64 %v.106, 2685821657736338717
  %v.108 = fmul f32 %f4.5, 4096.0
  %v.109 = fptosi f32 %v.108 to i64
  %v.110 = xor i64 %v.107, %v.109
  %v.111 = mul i64 %v.110, 2685821657736338717
  %v.112 = fmul f32 %f5, 4096.0
  %v.113 = fptosi f32 %v.112 to i64
  %v.114 = xor i64 %v.111, %v.113
  ret i64 %v.114
if.else.4:                ; preds: if.end
  %v.80 = call i64 @tid.x()
  %v.81 = trunc i64 %v.80 to i32
  %v.82 = srem i32 %v.81, 2
  %v.83 = icmp eq i32 %v.82, 0
  br i1 %v.83, label %if.then.9, label %if.else.8
if.then.6:                ; preds: if.then.5
  br label %if.end.6
if.end.6:                ; preds: if.then.6, if.end.7
  %v1 = phi i32 [ %v.44, %if.then.6 ], [ %v1.1, %if.end.7 ]
  %v.72 = trunc i64 %v.52 to i32
  %v.73 = call i64 @tid.x()
  %v.74 = trunc i64 %v.73 to i32
  %v.75 = sdiv i32 2147483647, %v.74
  %v.76 = shl i32 %v1, 3
  %v.77 = sdiv i32 %v.75, %v.76
  %v.78 = call i32 @min(i32 %v.72, i32 %v.77)
  %v.79 = srem i64 2245032509745296594, -1
  br label %if.end.5
if.else.5:                ; preds: if.then.5
  %v.59 = call i64 @tid.x()
  %v.60 = srem i64 %v.59, 6
  %v.61 = icmp sle i64 %v.60, 5
  br i1 %v.61, label %if.then.7, label %if.else.6
if.then.7:                ; preds: if.else.5
  br label %if.end.7
if.end.7:                ; preds: if.then.7, if.end.8
  %v1.1 = phi i32 [ 71987252, %if.then.7 ], [ %v1.2, %if.end.8 ]
  br label %if.end.6
if.else.6:                ; preds: if.else.5
  %v.62 = call i64 @tid.x()
  %v.63 = srem i64 %v.62, 6
  %v.64 = icmp sle i64 %v.63, 5
  br i1 %v.64, label %if.then.8, label %if.else.7
if.then.8:                ; preds: if.else.6
  %v.65 = fptosi f32 1.0000000031710769e-30 to i64
  %v.66 = trunc i64 %v.65 to i32
  %v.67 = frem f32 %f5, -50.30099868774414
  %v.68 = fptosi f32 %v.67 to i32
  %v.69 = add i32 %v.66, %v.68
  br label %if.end.8
if.end.8:                ; preds: if.then.8, if.else.7
  %v1.2 = phi i32 [ %v.69, %if.then.8 ], [ %v.44, %if.else.7 ]
  br label %if.end.7
if.else.7:                ; preds: if.else.6
  %v.70 = call i64 @tid.x()
  %v.71 = trunc i64 %v.70 to i32
  br label %if.end.8
if.then.9:                ; preds: if.else.4
  br label %while.cond
if.end.9:                ; preds: while.end, while.end.1
  %v1.4 = phi i32 [ %v1.5, %while.end ], [ %v.44, %while.end.1 ]
  %v2.6 = phi i64 [ %v.89, %while.end ], [ %v.100, %while.end.1 ]
  %v3.7 = phi i32 [ %v3.5, %while.end ], [ %v3.8, %while.end.1 ]
  %f4.9 = phi f32 [ %f4, %while.end ], [ %f4.11, %while.end.1 ]
  br label %if.end.5
if.else.8:                ; preds: if.else.4
  br label %while.cond.1
while.cond:                ; preds: if.then.9, while.body
  %i6 = phi i64 [ 0, %if.then.9 ], [ %v.88, %while.body ]
  %v3.5 = phi i32 [ -40, %if.then.9 ], [ %v.87, %while.body ]
  %v1.5 = phi i32 [ %v.44, %if.then.9 ], [ %v3.5, %while.body ]
  %v.84 = icmp slt i64 %i6, 2
  br i1 %v.84, label %while.body, label %while.end
while.body:                ; preds: while.cond
  %v.85 = mul i64 %i6, 4
  %v.86 = trunc i64 %v.85 to i32
  %v.87 = add i32 %v3.5, %v.86
  %v.88 = add i64 %i6, 1
  br label %while.cond
while.end:                ; preds: while.cond
  %v.89 = call i64 @min(i64 %v.52, i64 %v.52)
  br label %if.end.9
while.cond.1:                ; preds: if.else.8, while.body.1
  %i7 = phi i64 [ 0, %if.else.8 ], [ %v.99, %while.body.1 ]
  %v2.4 = phi i64 [ %v.52, %if.else.8 ], [ %v.98, %while.body.1 ]
  %v3.8 = phi i32 [ -40, %if.else.8 ], [ %v.96, %while.body.1 ]
  %f4.11 = phi f32 [ %f4, %if.else.8 ], [ %v.91, %while.body.1 ]
  %v.90 = icmp slt i64 %i7, 4
  br i1 %v.90, label %while.body.1, label %while.end.1
while.body.1:                ; preds: while.cond.1
  %v.91 = fdiv f32 -63.689998626708984, 2.0
  %v.92 = call i64 @tid.x()
  %v.93 = xor i64 -13, %v.92
  %v.94 = call i64 @tid.x()
  %v.95 = mul i64 %v.93, %v.94
  %v.96 = trunc i64 %v.95 to i32
  %v.97 = mul i64 %i7, 1
  %v.98 = add i64 %v2.4, %v.97
  %v.99 = add i64 %i7, 1
  br label %while.cond.1
while.end.1:                ; preds: while.cond.1
  %v.100 = shl i64 %v2.4, 7
  br label %if.end.9
}
