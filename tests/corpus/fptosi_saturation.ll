; repro-fuzz: {"bug": "fptosi truncated instead of saturating", "configs": "all", "source": "handwritten regression"}
; module fptosi_saturation
define i64 @fptosi_saturation(i64 %seed, f64 %noise) {
entry:
  %v = fptosi f64 3000000000000.0 to i32
  %v.1 = fptosi f64 -3000000000000.0 to i32
  %v.2 = fptosi f64 inf to i64
  %v.3 = fptosi f32 nan to i32
  %v.4 = fptosi f64 9.3e+18 to i64
  %v.5 = fptosi f64 -9.3e+18 to i64
  %v.6 = fmul f64 %noise, 1e+300
  %v.7 = fptosi f64 %v.6 to i32
  %v.8 = sext i32 %v to i64
  %v.9 = mul i64 %v.8, -7046029254386353131
  %v.10 = sext i32 %v.1 to i64
  %v.11 = xor i64 %v.9, %v.10
  %v.12 = mul i64 %v.11, -7046029254386353131
  %v.13 = xor i64 %v.12, %v.2
  %v.14 = mul i64 %v.13, -7046029254386353131
  %v.15 = sext i32 %v.3 to i64
  %v.16 = xor i64 %v.14, %v.15
  %v.17 = mul i64 %v.16, -7046029254386353131
  %v.18 = xor i64 %v.17, %v.4
  %v.19 = mul i64 %v.18, -7046029254386353131
  %v.20 = xor i64 %v.19, %v.5
  %v.21 = mul i64 %v.20, -7046029254386353131
  %v.22 = sext i32 %v.7 to i64
  %v.23 = xor i64 %v.21, %v.22
  ret i64 %v.23
}
