; repro-fuzz: {"bug": "fold_intrinsic used libm doubles, diverging from the interpreter's clamped numpy float32 kernels", "configs": "all", "source": "handwritten regression"}
; module intrinsic_const_fold
define i64 @intrinsic_const_fold(i64 %seed, f64 %noise) {
entry:
  %v = call f64 @exp(f64 -800.0)
  %v.1 = call f32 @pow(f32 -2.0, f32 3.0)
  %v.2 = call f64 @sqrt(f64 -4.0)
  %v.3 = call f32 @sin(f32 1.0000000150474662e+30)
  %v.4 = call f64 @log(f64 0.0)
  %v.5 = fmul f64 %noise, -500.0
  %v.6 = call f64 @exp(f64 %v.5)
  %v.7 = fmul f64 %v, 1e+300
  %v.8 = fptosi f64 %v.7 to i64
  %v.9 = mul i64 %v.8, -7046029254386353131
  %v.10 = fptosi f32 %v.1 to i64
  %v.11 = xor i64 %v.9, %v.10
  %v.12 = mul i64 %v.11, -7046029254386353131
  %v.13 = fptosi f64 %v.2 to i64
  %v.14 = xor i64 %v.12, %v.13
  %v.15 = mul i64 %v.14, -7046029254386353131
  %v.16 = fpext f32 %v.3 to f64
  %v.17 = fmul f64 %v.16, 4096.0
  %v.18 = fptosi f64 %v.17 to i64
  %v.19 = xor i64 %v.15, %v.18
  %v.20 = mul i64 %v.19, -7046029254386353131
  %v.21 = fptosi f64 %v.4 to i64
  %v.22 = xor i64 %v.20, %v.21
  %v.23 = mul i64 %v.22, -7046029254386353131
  %v.24 = fmul f64 %v.6, 2.0
  %v.25 = fptosi f64 %v.24 to i64
  %v.26 = xor i64 %v.23, %v.25
  ret i64 %v.26
}
