; repro-fuzz: {"bug": "fdiv by -0.0 mis-folded; frem(inf, y) crashed the folder", "configs": "all", "source": "handwritten regression"}
; module fdiv_signed_zero
define i64 @fdiv_signed_zero(i64 %seed, f64 %noise) {
entry:
  %v = fdiv f64 1.5, -0.0
  %v.1 = fdiv f64 -0.0, 5.0
  %v.2 = fdiv f32 0.0, -0.0
  %v.3 = frem f64 inf, 2.0
  %v.4 = fdiv f64 %noise, 0.0
  %v.5 = fcmp olt f64 %v.1, 1.0
  br i1 %v.5, label %if.then, label %if.end
if.then:                ; preds: entry
  %v.6 = fsub f64 %v.1, 2.0
  br label %if.end
if.end:                ; preds: entry, if.then
  %b = phi f64 [ %v.1, %entry ], [ %v.6, %if.then ]
  %v.7 = fmul f64 %v, 0.5
  %v.8 = fptosi f64 %v.7 to i64
  %v.9 = mul i64 %v.8, -7046029254386353131
  %v.10 = fmul f64 %b, 4096.0
  %v.11 = fptosi f64 %v.10 to i64
  %v.12 = xor i64 %v.9, %v.11
  %v.13 = mul i64 %v.12, -7046029254386353131
  %v.14 = fptosi f32 %v.2 to i64
  %v.15 = xor i64 %v.13, %v.14
  %v.16 = mul i64 %v.15, -7046029254386353131
  %v.17 = fptosi f64 %v.3 to i64
  %v.18 = xor i64 %v.16, %v.17
  %v.19 = mul i64 %v.18, -7046029254386353131
  %v.20 = fmul f64 %v.4, 1e-305
  %v.21 = fptosi f64 %v.20 to i64
  %v.22 = xor i64 %v.19, %v.21
  ret i64 %v.22
}
