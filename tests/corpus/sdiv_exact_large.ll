; repro-fuzz: {"bug": "interpreter sdiv/srem round-tripped through float64, corrupting quotients beyond 2^53", "configs": "all", "source": "handwritten regression"}
; module sdiv_exact_large
define i64 @sdiv_exact_large(i64 %seed, f64 %noise) {
entry:
  %v = or i64 %seed, 4611686018427400249
  %v.1 = sdiv i64 %v, -7
  %v.2 = srem i64 %v, 1000000007
  %v.3 = sdiv i64 4611686018427487895, 3
  %v.4 = sdiv i64 %v, 0
  br label %while.cond
while.cond:                ; preds: entry, while.body
  %i = phi i64 [ 0, %entry ], [ %v.9, %while.body ]
  %b = phi i64 [ %v.1, %entry ], [ %v.8, %while.body ]
  %v.5 = icmp slt i64 %i, 3
  br i1 %v.5, label %while.body, label %while.end
while.body:                ; preds: while.cond
  %v.6 = add i64 %i, 11
  %v.7 = srem i64 %v, %v.6
  %v.8 = add i64 %b, %v.7
  %v.9 = add i64 %i, 1
  br label %while.cond
while.end:                ; preds: while.cond
  %v.10 = mul i64 %b, -7046029254386353131
  %v.11 = xor i64 %v.10, %v.2
  %v.12 = mul i64 %v.11, -7046029254386353131
  %v.13 = xor i64 %v.12, %v.3
  %v.14 = mul i64 %v.13, -7046029254386353131
  %v.15 = xor i64 %v.14, %v.4
  ret i64 %v.15
}
