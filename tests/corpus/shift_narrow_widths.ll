; repro-fuzz: {"bug": "lshr at i8/i16 used the full 64-bit pattern instead of masking to the operand width", "configs": "all", "source": "handwritten regression"}
; module corpus_shift
define i64 @shift_widths(i64 %seed) {
entry:
  %v = trunc i64 %seed to i8
  %v.1 = trunc i64 %seed to i16
  %v.2 = shl i8 %v, 3
  %v.3 = lshr i8 %v, 4
  %v.4 = ashr i8 %v, 7
  %v.5 = lshr i8 -1, 4
  %v.6 = shl i16 -3, 13
  %v.7 = lshr i16 %v.1, 15
  %v.8 = ashr i1 1, 0
  %v.9 = lshr i64 %seed, 1
  %v.10 = shl i64 %seed, 63
  %v.11 = ashr i64 -1, 63
  %v.12 = sext i8 %v.2 to i64
  %v.13 = sext i8 %v.3 to i64
  %v.14 = mul i64 %v.12, -7046029254386353131
  %v.15 = xor i64 %v.14, %v.13
  %v.16 = sext i8 %v.4 to i64
  %v.17 = mul i64 %v.15, -7046029254386353131
  %v.18 = xor i64 %v.17, %v.16
  %v.19 = sext i8 %v.5 to i64
  %v.20 = mul i64 %v.18, -7046029254386353131
  %v.21 = xor i64 %v.20, %v.19
  %v.22 = sext i16 %v.6 to i64
  %v.23 = mul i64 %v.21, -7046029254386353131
  %v.24 = xor i64 %v.23, %v.22
  %v.25 = sext i16 %v.7 to i64
  %v.26 = mul i64 %v.24, -7046029254386353131
  %v.27 = xor i64 %v.26, %v.25
  %v.28 = sext i1 %v.8 to i64
  %v.29 = mul i64 %v.27, -7046029254386353131
  %v.30 = xor i64 %v.29, %v.28
  %v.31 = mul i64 %v.30, -7046029254386353131
  %v.32 = xor i64 %v.31, %v.9
  %v.33 = mul i64 %v.32, -7046029254386353131
  %v.34 = xor i64 %v.33, %v.10
  %v.35 = mul i64 %v.34, -7046029254386353131
  %v.36 = xor i64 %v.35, %v.11
  ret i64 %v.36
}
