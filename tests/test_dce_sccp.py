"""DCE and SCCP unit tests."""

import pytest

from repro.ir import ConstantInt, parse_function, verify_function
from repro.transforms import run_dce, run_sccp
from repro.transforms.simplifycfg import run_simplifycfg


class TestDCE:
    def test_unused_pure_instruction_removed(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  %dead = add i64 %x, 1
  %dead2 = mul i64 %dead, 2
  ret i64 %x
}
""")
        assert run_dce(f)
        verify_function(f)
        assert len(f.entry.instructions) == 1

    def test_chain_collapses(self):
        f = parse_function("""
define void @f(i64 %x) {
entry:
  %a = add i64 %x, 1
  %b = add i64 %a, 1
  %c = add i64 %b, 1
  ret void
}
""")
        run_dce(f)
        assert len(f.entry.instructions) == 1

    def test_stores_never_removed(self):
        f = parse_function("""
define void @f(f64* %p) {
entry:
  store f64 1.0, f64* %p
  ret void
}
""")
        assert not run_dce(f)
        assert len(f.entry.instructions) == 2

    def test_used_value_kept(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  %a = add i64 %x, 1
  ret i64 %a
}
""")
        assert not run_dce(f)

    def test_self_referential_phi_removed(self):
        f = parse_function("""
define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %dead = phi i64 [ 0, %entry ], [ %dead, %loop ]
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %out
out:
  ret i64 %i
}
""")
        assert run_dce(f)
        verify_function(f)
        assert len(f.blocks[1].phis()) == 1


class TestSCCP:
    def test_constant_chain_folds(self):
        f = parse_function("""
define i64 @f() {
entry:
  %a = add i64 2, 3
  %b = mul i64 %a, 4
  %c = sub i64 %b, 10
  ret i64 %c
}
""")
        run_sccp(f)
        run_dce(f)
        ret = f.entry.instructions[-1]
        assert isinstance(ret.value, ConstantInt)
        assert ret.value.value == 10

    def test_conditional_constant_propagation(self):
        # SCCP's signature ability: %x is 7 on both arms, so the phi is 7.
        f = parse_function("""
define i64 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %x = phi i64 [ 7, %a ], [ 7, %b ]
  %y = add i64 %x, 1
  ret i64 %y
}
""")
        run_sccp(f)
        ret = [i for b in f.blocks for i in b.instructions][-1]
        assert isinstance(ret.value, ConstantInt)
        assert ret.value.value == 8

    def test_dead_branch_not_executed(self):
        # The false edge is non-executable, so the phi only sees 1.
        f = parse_function("""
define i64 @f() {
entry:
  br i1 1, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %x = phi i64 [ 1, %a ], [ 2, %b ]
  ret i64 %x
}
""")
        run_sccp(f)
        ret = [i for b in f.blocks for i in b.instructions][-1]
        assert isinstance(ret.value, ConstantInt)
        assert ret.value.value == 1

    def test_full_unroll_chain_folds(self):
        # The pattern behind full unrolling: constants flow down a chain of
        # cloned headers.  The unroll factor exceeds the trip count (1), so
        # the back edge is never marked executable, every exit check folds,
        # and the loop dissolves.
        f = parse_function("""
define i64 @f() {
entry:
  br label %h0
h0:
  %i0 = phi i64 [ 0, %entry ], [ %i2, %l1 ]
  %c0 = icmp slt i64 %i0, 1
  br i1 %c0, label %l0, label %exit
l0:
  %i1 = add i64 %i0, 1
  br label %h1
h1:
  %c1 = icmp slt i64 %i1, 1
  br i1 %c1, label %l1, label %exit
l1:
  %i2 = add i64 %i1, 1
  br label %h0
exit:
  %r = phi i64 [ %i0, %h0 ], [ %i1, %h1 ]
  ret i64 %r
}
""")
        run_sccp(f)
        run_simplifycfg(f)
        run_dce(f)
        verify_function(f)
        # Loop dissolved: straight-line code returning 1.
        ret = [i for b in f.blocks for i in b.instructions][-1]
        assert isinstance(ret.value, ConstantInt)
        assert ret.value.value == 1

    def test_overdefined_stays(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  %a = add i64 %x, 1
  ret i64 %a
}
""")
        run_sccp(f)
        ret = f.entry.instructions[-1]
        assert not isinstance(ret.value, ConstantInt)
