"""Unit tests for cross-launch region persistence (``gpu.region_cache``).

The engine-equivalence suite proves warm replays are bit-identical; this
file pins the cache mechanics themselves: content keying, corrupt/stale
entry handling, LRU eviction, the session counters that surface in the
sweep line / ``repro summary --profile`` / serve ``/stats``, and the
compile-fallback paths of :func:`load_or_compile_regions`.
"""

from __future__ import annotations

import json

import pytest

from repro.gpu import Memory, SimtMachine
from repro.gpu.region_cache import (RegionCache, RegionSession,
                                    load_or_compile_regions, region_key,
                                    reset_region_cache, session,
                                    take_session, flush_region_feedback)
from repro.gpu.regions import extract_plan
from repro.ir.parser import parse_module
from repro.obs import session as obs_session

IR = """
define i64 @k(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ %tid, %entry ], [ %acc.next, %loop ]
  %t1 = mul i64 %acc, 7
  %t2 = add i64 %t1, %i
  %t3 = xor i64 %t2, 5
  %acc.next = and i64 %t3, 1048575
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""

IR_B = IR.replace("mul i64 %acc, 7", "mul i64 %acc, 9")


def jit_context(ir_text: str = IR):
    module = parse_module(ir_text, "m")
    func = next(iter(module.functions.values()))
    machine = SimtMachine(module, Memory(), engine="jit")
    return machine, func, machine._decode(func)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the process-wide cache at a temp dir; reset state around it."""
    monkeypatch.setenv("REPRO_REGION_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_REGION_CACHE", raising=False)
    monkeypatch.delenv("REPRO_REGION_CACHE_MAX_BYTES", raising=False)
    reset_region_cache()
    take_session()
    yield tmp_path
    reset_region_cache()
    take_session()


# -- keying -------------------------------------------------------------------

def test_key_covers_content_and_fuse_flag():
    _, func_a, _ = jit_context(IR)
    _, func_b, _ = jit_context(IR_B)
    keys = {region_key(func_a, True), region_key(func_a, False),
            region_key(func_b, True), region_key(func_b, False)}
    assert len(keys) == 4, "IR content and fuse flag must both key entries"
    # Same content hashes the same across parses (content, not identity).
    _, func_a2, _ = jit_context(IR)
    assert region_key(func_a2, True) == region_key(func_a, True)


# -- store mechanics ----------------------------------------------------------

def test_put_get_roundtrip_survives_a_new_instance(cache_dir):
    machine, func, entry = jit_context()
    regions = load_or_compile_regions(machine, func, entry)
    plan = extract_plan(regions)
    key = region_key(func, True)
    store = RegionCache(cache_dir)
    assert store.get(key) == plan       # Disk, not the other instance's memo.
    assert store.hits == 1


def test_corrupt_entry_is_deleted_and_misses(cache_dir):
    store = RegionCache(cache_dir)
    key = "ab" + "0" * 62
    store.put(key, {"regions": []})
    path = store._path(key)
    path.write_text("{not json")
    fresh = RegionCache(cache_dir)      # No memo: must read the bad file.
    assert fresh.get(key) is None
    assert fresh.misses == 1
    assert not path.exists(), "corrupt entries must be unlinked"


def test_stale_schema_is_deleted_and_misses(cache_dir):
    store = RegionCache(cache_dir)
    key = "cd" + "1" * 62
    store.put(key, {"regions": []})
    path = store._path(key)
    path.write_text(json.dumps({"schema": -1, "plan": {"regions": []}}))
    fresh = RegionCache(cache_dir)
    assert fresh.get(key) is None
    assert not path.exists()


def test_lru_eviction_respects_byte_cap(cache_dir):
    store = RegionCache(cache_dir, max_bytes=1)   # Everything over budget.
    for i in range(4):
        store.put(f"{i:02x}" + "f" * 62, {"regions": [], "pad": "x" * 64})
    assert store.evictions > 0
    n_entries, _ = store._sizes(store.entries())
    assert n_entries <= 1, "cap of 1 byte must evict down to the last put"


# -- session counters ---------------------------------------------------------

def test_session_line_is_empty_without_activity():
    assert RegionSession().line() == ""


def test_session_absorb_sums_and_maxes():
    sess = RegionSession(selections=1, fused_steps=10, max_chain=5, puts=2)
    sess.absorb({"selections": 2, "fused_steps": 3, "max_chain": 9,
                 "puts": 1, "bogus": "ignored"})
    assert sess.selections == 3
    assert sess.fused_steps == 13
    assert sess.max_chain == 9, "max_chain folds by max, not sum"
    assert sess.puts == 3


def test_take_session_snapshots_and_resets(cache_dir):
    machine, func, entry = jit_context()
    load_or_compile_regions(machine, func, entry)
    snap = take_session()
    assert snap["selections"] == 1
    assert not session().any(), "take_session must leave a fresh session"


# -- load_or_compile_regions --------------------------------------------------

def test_cold_then_warm_counts_and_plans(cache_dir):
    machine, func, entry = jit_context()
    cold = load_or_compile_regions(machine, func, entry)
    assert session().selections == 1 and session().puts == 1
    reset_region_cache()                 # Fresh process: memo gone.
    machine2, func2, entry2 = jit_context()
    warm = load_or_compile_regions(machine2, func2, entry2)
    assert session().replays == 1
    assert session().selections == 1, "warm launch must not re-select"
    assert extract_plan(warm) == extract_plan(cold)


def test_invalid_persisted_plan_falls_back_to_compile(cache_dir):
    machine, func, entry = jit_context()
    load_or_compile_regions(machine, func, entry)
    key = region_key(func, True)
    # Mangle the persisted plan so replay validation rejects it.
    store = RegionCache(cache_dir)
    store.put(key, {"regions": [{"head": "no-such-block", "ops": []}]})
    reset_region_cache()
    take_session()
    machine2, func2, entry2 = jit_context()
    regions = load_or_compile_regions(machine2, func2, entry2)
    assert session().invalid == 1
    assert session().selections == 1, "fallback must compile fresh"
    assert regions, "fallback produced no regions"
    # The fresh compile overwrote the bad entry: next launch replays.
    reset_region_cache()
    take_session()
    machine3, func3, entry3 = jit_context()
    load_or_compile_regions(machine3, func3, entry3)
    assert session().replays == 1 and session().invalid == 0


def test_profile_and_obs_bypass_the_cache(cache_dir, monkeypatch):
    machine, func, entry = jit_context()
    load_or_compile_regions(machine, func, entry)   # Populate.
    take_session()
    # Observability enabled: fresh selection, no cache traffic, so cold
    # and warm runs emit identical remark streams.
    monkeypatch.setenv(obs_session.ENV_VAR, "1")
    machine2, func2, entry2 = jit_context()
    load_or_compile_regions(machine2, func2, entry2)
    snap = take_session()
    assert snap["selections"] == 1
    assert snap["hits"] == snap["misses"] == snap["puts"] == 0
    monkeypatch.delenv(obs_session.ENV_VAR)
    # A live execution profile must also see exact, profile-seeded
    # selection rather than a profile-free cached plan.
    machine3, func3, entry3 = jit_context()
    machine3.profile = object()
    try:
        load_or_compile_regions(machine3, func3, entry3)
    except Exception:
        pass  # Fake profile may break selection; the counters still tell.
    snap = take_session()
    assert snap["hits"] == snap["misses"] == 0


def test_disabled_cache_still_compiles(cache_dir, monkeypatch):
    monkeypatch.setenv("REPRO_REGION_CACHE", "0")
    machine, func, entry = jit_context()
    regions = load_or_compile_regions(machine, func, entry)
    assert regions
    snap = take_session()
    assert snap["selections"] == 1
    assert snap["puts"] == 0, "disabled cache must not write"


def test_flush_region_feedback_repersists_dirty_plans(cache_dir):
    machine, func, entry = jit_context()
    regions = load_or_compile_regions(machine, func, entry)
    puts_before = session().puts
    flush_region_feedback(regions)      # Clean map: no-op.
    assert session().puts == puts_before
    regions.dirty = True                # As demote_guard/drop_cold do.
    flush_region_feedback(regions)
    assert session().puts == puts_before + 1
    assert not regions.dirty, "a successful flush must clear the flag"
