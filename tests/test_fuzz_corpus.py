"""Regression corpus replay (tier-1).

Every entry in ``tests/corpus/`` is a previously-reduced (or
handwritten) kernel guarding a specific semantic contract between the
folder, the pipeline, and the interpreter.  Each must pass the full
differential oracle: re-running it is cheap insurance that a fixed
miscompile stays fixed.
"""

import json

import pytest

from repro.fuzz.corpus import (META_PREFIX, default_corpus_dir, load_corpus,
                               save_regression)
from repro.fuzz.oracle import run_differential, subject_from_text

ENTRIES = load_corpus()


def test_corpus_is_not_empty():
    assert len(ENTRIES) >= 5


def test_entries_carry_metadata():
    for entry in ENTRIES:
        assert entry.meta, f"{entry.path.name}: missing {META_PREFIX} header"
        assert "source" in entry.meta, entry.path.name


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_corpus_entry_passes_differential(entry):
    report = run_differential(subject_from_text(entry.text, entry.name))
    assert report.ok, "\n".join(o.describe() for o in report.failures)


def test_save_regression_round_trips(tmp_path):
    meta = {"seed": 42, "config": "baseline"}
    path = save_regression(ENTRIES[0].text, "roundtrip", meta, tmp_path)
    assert path.name == "roundtrip.ll"
    loaded = load_corpus(tmp_path)
    assert len(loaded) == 1
    assert loaded[0].meta == meta
    assert loaded[0].text.strip() == ENTRIES[0].text.strip()
    # The header really is the first line, as JSON.
    first = path.read_text().splitlines()[0]
    assert first.startswith(META_PREFIX)
    assert json.loads(first[len(META_PREFIX):]) == meta


def test_default_corpus_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path))
    assert default_corpus_dir() == tmp_path
