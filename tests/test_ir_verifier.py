"""Verifier tests: each structural invariant is individually violated."""

import pytest

from repro.ir import (BranchInst, IRBuilder, Module, PhiInst, RetInst,
                      VerificationError, const, parse_function,
                      verify_function)
from repro.ir import types as T


def simple_func():
    m = Module("t")
    f = m.add_function("f", T.FunctionType(T.I64, (T.I64,)), ["x"])
    entry = f.add_block("entry")
    b = IRBuilder(entry)
    y = b.add(f.args[0], 1, "y")
    b.ret(y)
    return f, entry, y


class TestStructure:
    def test_valid_function_passes(self):
        f, _, _ = simple_func()
        verify_function(f)

    def test_missing_terminator(self):
        f, entry, y = simple_func()
        entry.instructions[-1].erase_from_parent()
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(f)

    def test_empty_block(self):
        f, entry, _ = simple_func()
        f.add_block("empty")
        with pytest.raises(VerificationError, match="empty"):
            verify_function(f)

    def test_terminator_mid_block(self):
        f, entry, y = simple_func()
        ret = entry.instructions[-1]
        entry.remove_instruction(ret)
        entry.insert(0, ret)
        with pytest.raises(VerificationError):
            verify_function(f)

    def test_phi_after_non_phi(self):
        f, entry, y = simple_func()
        phi = PhiInst(T.I64)
        entry.insert(1, phi)  # After the add.
        with pytest.raises(VerificationError):
            verify_function(f)


class TestPhis:
    def test_phi_incoming_must_match_preds(self):
        f = parse_function("""
define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %out
out:
  ret i64 %next
}
""")
        verify_function(f)
        phi = f.blocks[1].phis()[0]
        phi.remove_incoming(f.blocks[0])  # Drop the entry edge entry.
        with pytest.raises(VerificationError, match="incoming"):
            verify_function(f)


class TestDominance:
    def test_use_before_def_in_block(self):
        f, entry, y = simple_func()
        b = IRBuilder(entry)
        # Create z = y + 1 then move it before y.
        ret = entry.instructions[-1]
        from repro.ir import BinaryInst

        z = BinaryInst("add", y, const(T.I64, 1))
        z.name = "z"
        entry.insert(0, z)  # Before y's definition.
        with pytest.raises(VerificationError, match="before its"):
            verify_function(f)

    def test_use_not_dominated_across_blocks(self):
        f = parse_function("""
define i64 @f(i64 %n, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i64 %n, 1
  br label %join
b:
  br label %join
join:
  ret i64 %n
}
""")
        verify_function(f)
        # Now make `join` return %x, which block a does not dominate join.
        join = f.blocks[3]
        x = f.blocks[1].instructions[0]
        ret = join.instructions[-1]
        ret.set_operand(0, x)
        with pytest.raises(VerificationError, match="dominated"):
            verify_function(f)

    def test_phi_incoming_checked_at_pred_end(self):
        # A phi may use a value that dominates the predecessor even if it
        # does not dominate the phi's block through other paths.
        f = parse_function("""
define i64 @f(i64 %n, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i64 %n, 1
  br label %join
b:
  br label %join
join:
  %r = phi i64 [ %x, %a ], [ %n, %b ]
  ret i64 %r
}
""")
        verify_function(f)

    def test_unreachable_block_exempt(self):
        f = parse_function("""
define i64 @f(i64 %n) {
entry:
  ret i64 %n
dead:
  %x = add i64 %y, 1
  %y = add i64 %n, 2
  br label %dead
}
""")
        # Dominance violations inside unreachable code are tolerated.
        verify_function(f)


class TestOverShift:
    """Constant shift amounts >= the operand width are rejected: the
    folder refuses them while the interpreter would compute something,
    so letting one survive a pass is a latent differential miscompile."""

    def _shift_func(self, ty, amount):
        return parse_function(f"""
define {ty} @f({ty} %x) {{
entry:
  %r = shl {ty} %x, {amount}
  ret {ty} %r
}}
""")

    def test_over_shift_rejected(self):
        f = self._shift_func("i8", 9)
        with pytest.raises(VerificationError, match="over-shift"):
            verify_function(f)

    def test_exact_width_rejected(self):
        f = self._shift_func("i8", 8)
        with pytest.raises(VerificationError, match="over-shift"):
            verify_function(f)

    def test_width_minus_one_accepted(self):
        verify_function(self._shift_func("i8", 7))
        verify_function(self._shift_func("i64", 63))

    def test_runtime_amount_not_flagged(self):
        f = parse_function("""
define i8 @f(i8 %x, i8 %s) {
entry:
  %r = lshr i8 %x, %s
  ret i8 %r
}
""")
        verify_function(f)
