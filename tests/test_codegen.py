"""PTX-style backend tests, including the paper's Listing 4/5 shape."""

import pytest

from repro.bench import benchmark_by_name
from repro.codegen import lower_function, render
from repro.codegen.regs import RegisterFile, register_class
from repro.ir import parse_function
from repro.ir import types as T
from repro.transforms import compile_module


class TestRegisterClasses:
    def test_classes(self):
        assert register_class(T.I64) == "rd"
        assert register_class(T.PointerType(T.F64)) == "rd"
        assert register_class(T.I32) == "r"
        assert register_class(T.F64) == "fd"
        assert register_class(T.F32) == "f"
        assert register_class(T.I1) == "p"

    def test_sequential_assignment(self):
        regs = RegisterFile()

        class Fake:
            def __init__(self, t):
                self.type = t

        a, b = Fake(T.I64), Fake(T.I64)
        assert regs.get(a) == "%rd1"
        assert regs.get(b) == "%rd2"
        assert regs.get(a) == "%rd1"          # Stable.
        assert regs.fresh(T.I64) == "%rd3"
        assert regs.declarations()["rd"] == 3


SMALL = """
define i64 @f(i64 %x, i64 %y) {
entry:
  %c = icmp sgt i64 %x, %y
  %m = select i1 %c, i64 %x, i64 %y
  ret i64 %m
}
"""


class TestLowering:
    def test_setp_selp_forms(self):
        f = parse_function(SMALL)
        asm = lower_function(f)
        text = render(asm)
        assert "setp.sgt.s64" in text
        assert "selp.b64" in text
        assert "st.param.s64" in text and "ret;" in text
        assert asm.count_opcode("selp") == 1
        assert asm.count_opcode("setp") == 1

    def test_gep_lowers_to_shl_add(self):
        f = parse_function("""
define f64 @f(f64* %p, i64 %i) {
entry:
  %g = gep f64* %p, i64 %i
  %v = load f64, f64* %g
  ret f64 %v
}
""")
        text = render(lower_function(f))
        assert "shl.b64" in text          # index * 8 as in paper Listing 4.
        assert "ld.global.f64" in text

    def test_phi_becomes_edge_moves(self):
        f = parse_function("""
define i64 @f(i64 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i64 [ 1, %a ], [ 2, %b ]
  ret i64 %r
}
""")
        asm = lower_function(f)
        assert asm.count_opcode("mov") >= 2   # One mov per incoming edge.

    def test_phi_swap_uses_scratch(self):
        # Swapping phis requires a cycle-breaking scratch register.
        f = parse_function("""
define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %a = phi i64 [ 0, %entry ], [ %b, %loop ]
  %b = phi i64 [ 1, %entry ], [ %a, %loop ]
  %n1 = add i64 %a, %b
  %c = icmp slt i64 %n1, %n
  br i1 %c, label %loop, label %out
out:
  ret i64 %a
}
""")
        asm = lower_function(f)
        text = render(asm)
        # Functional smoke: renders without losing either phi.
        assert asm.count_opcode("mov") >= 3
        assert "$L_f_1" in text

    def test_special_registers(self):
        f = parse_function("""
define i64 @f() {
entry:
  %t = call i64 @tid.x()
  ret i64 %t
}
""")
        text = render(lower_function(f))
        assert "%tid.x" in text

    def test_syncthreads(self):
        f = parse_function("""
define void @f() {
entry:
  call void @syncthreads()
  ret void
}
""")
        assert "bar.sync" in render(lower_function(f))

    def test_fallthrough_branch_elided(self):
        f = parse_function("""
define i64 @f(i64 %x) {
entry:
  br label %next
next:
  ret i64 %x
}
""")
        asm = lower_function(f)
        assert asm.count_opcode("bra") == 0


class TestPaperListings:
    """The Listing 4 vs Listing 5 story at the assembly level."""

    def _asm(self, config, **kw):
        bench = benchmark_by_name("XSBench")
        module = bench.build_module()
        compile_module(module, config, max_instructions=8000, **kw)
        return lower_function(module.get_function("grid_search"))

    def test_baseline_is_selp_heavy(self):
        base = self._asm("baseline")
        # Listing 4: the predicated baseline uses selp pairs.
        assert base.count_opcode("selp") >= 2

    def test_uu_trades_selp_for_branches(self):
        base = self._asm("baseline")
        uu = self._asm("uu", loop_id="grid_search:0", factor=2)
        # Paper Section V: conditionally executed jumps replace selp
        # instructions; per loop iteration fewer selp remain.
        base_selp_density = base.count_opcode("selp") / max(
            base.instruction_count(), 1)
        uu_selp_density = uu.count_opcode("selp") / max(
            uu.instruction_count(), 1)
        assert uu_selp_density < base_selp_density
        assert uu.count_opcode("bra") > base.count_opcode("bra")

    def test_uu_eliminates_the_subtraction(self):
        base = self._asm("baseline")
        uu = self._asm("uu", loop_id="grid_search:0", factor=2)
        # Paper: "the subtraction is eliminated in our version" — fewer
        # sub instructions per loop body copy.
        base_subs = base.count_opcode("sub")
        uu_subs = uu.count_opcode("sub")
        # The baseline's runtime-unrolled loop has one sub per copy; u&u
        # keeps subs only on the false paths.
        assert uu_subs / max(uu.instruction_count(), 1) < \
            base_subs / max(base.instruction_count(), 1)
