"""Unit tests for the parallel sweep engine and the persistent cell cache."""

import json

import numpy as np
import pytest

from repro.bench import benchmark_by_name
from repro.gpu.counters import Counters
from repro.harness.cache import (SCHEMA_VERSION, CellCache, cell_from_json,
                                 cell_to_json, outputs_from_json,
                                 outputs_to_json)
from repro.harness.experiment import Cell, ExperimentRunner
from repro.harness.parallel import (CellSpec, ParallelRunner, resolve_jobs,
                                    sweep_specs)
from repro.transforms.heuristic import HeuristicParams


def make_cell(**overrides):
    kwargs = dict(app="demo", config="uu", loop_id="k/L0", factor=2,
                  cycles=1234.5, code_size=77, compile_seconds=0.25,
                  counters=Counters(cycles=1234.5, inst_executed=42),
                  outputs_match_baseline=True)
    kwargs.update(overrides)
    return Cell(**kwargs)


# -- Cell.speedup_over guards -------------------------------------------------

def test_speedup_timed_out_cell_is_zero():
    base = make_cell(config="baseline", cycles=1000.0)
    timed = make_cell(cycles=float("inf"), timed_out=True)
    assert timed.speedup_over(base) == 0.0
    # A timed-out *baseline* equally invalidates the ratio.
    assert make_cell(cycles=500.0).speedup_over(
        make_cell(config="baseline", cycles=float("inf"),
                  timed_out=True)) == 0.0


def test_speedup_nonfinite_or_zero_cycles_is_zero():
    base = make_cell(config="baseline", cycles=1000.0)
    assert make_cell(cycles=float("inf")).speedup_over(base) == 0.0
    assert make_cell(cycles=0.0).speedup_over(base) == 0.0
    assert make_cell(cycles=500.0).speedup_over(base) == 2.0


# -- cache round-trips --------------------------------------------------------

def test_cell_json_round_trip():
    cell = make_cell(error="boom", timed_out=True, cycles=float("inf"))
    back = cell_from_json(json.loads(json.dumps(cell_to_json(cell))))
    assert back == cell


def test_outputs_round_trip():
    outputs = {"a": np.arange(7, dtype=np.float64),
               "b": np.arange(6, dtype=np.int32).reshape(2, 3)}
    back = outputs_from_json(json.loads(json.dumps(outputs_to_json(outputs))))
    assert set(back) == {"a", "b"}
    for name in outputs:
        assert back[name].dtype == outputs[name].dtype
        assert np.array_equal(back[name], outputs[name])


def test_cache_put_get(tmp_path):
    cache = CellCache(tmp_path)
    key = "k" * 64
    outputs = {"out": np.linspace(0.0, 1.0, 5)}
    cache.put(key, make_cell(), outputs)
    entry = cache.get(key)
    assert entry is not None
    cell, loaded = entry
    assert cell == make_cell()
    assert np.array_equal(loaded["out"], outputs["out"])
    assert cache.get("m" * 64) is None
    assert cache.stats()["entries"] == 1


def test_cache_corrupted_entry_discarded(tmp_path):
    cache = CellCache(tmp_path)
    key = "c" * 64
    cache.put(key, make_cell())
    path = cache._path(key)

    path.write_text("{ not json")
    assert cache.get(key) is None
    assert not path.exists()          # Dropped, not left to fail again.

    cache.put(key, make_cell())
    truncated = path.read_text()[: len(path.read_text()) // 2]
    path.write_text(truncated)
    assert cache.get(key) is None

    # After discarding, a fresh put works again.
    cache.put(key, make_cell())
    assert cache.get(key) is not None


def test_cache_stale_schema_discarded(tmp_path):
    cache = CellCache(tmp_path)
    key = "s" * 64
    cache.put(key, make_cell())
    path = cache._path(key)
    data = json.loads(path.read_text())
    data["schema"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(data))
    assert cache.get(key) is None
    assert not path.exists()


def test_cache_clear(tmp_path):
    cache = CellCache(tmp_path)
    cache.put("a" * 64, make_cell())
    cache.put("b" * 64, make_cell())
    assert cache.clear() == 2
    assert cache.entries() == []
    # Emptied shard subdirectories are removed too.
    assert list(tmp_path.iterdir()) == []


# -- sharded layout -----------------------------------------------------------

def test_cache_entries_shard_by_key_prefix(tmp_path):
    cache = CellCache(tmp_path)
    key = "ab" + "0" * 62
    cache.put(key, make_cell())
    assert cache._path(key) == tmp_path / "ab" / f"{key}.json"
    assert cache._path(key).exists()
    assert cache.get(key) is not None
    assert cache.stats()["entries"] == 1


def test_cache_tune_entries_share_shard_with_plain(tmp_path):
    # The shard comes from the key, not the filename, so a tune- entry for
    # key "ab…" lives in the same subdirectory as the plain entry.
    plain = CellCache(tmp_path)
    tuner = CellCache(tmp_path, prefix="tune-")
    key = "ab" + "1" * 62
    plain.put(key, make_cell())
    tuner.put(key, make_cell(config="tuned"))
    assert plain._path(key).parent == tuner._path(key).parent
    # Prefixes still partition the namespace.
    assert plain.get(key)[0].config == "uu"
    assert tuner.get(key)[0].config == "tuned"
    stats = plain.stats()
    assert stats["entries"] == 2 and stats["tune_entries"] == 1


def test_cache_migrates_flat_entry_on_first_access(tmp_path):
    cache = CellCache(tmp_path)
    key = "cd" + "2" * 62
    # Simulate a pre-sharding cache: write the entry, then flatten it.
    cache.put(key, make_cell())
    flat = tmp_path / f"{key}.json"
    cache._path(key).rename(flat)
    (tmp_path / "cd").rmdir()
    assert cache.entries() == [flat]

    entry = cache.get(key)
    assert entry is not None and entry[0] == make_cell()
    # The flat entry moved into its shard during the lookup.
    assert not flat.exists()
    assert cache._path(key).exists()
    assert cache.get(key) is not None       # Served from the shard now.
    assert cache.stats()["entries"] == 1


def test_cache_corrupt_flat_entry_discarded(tmp_path):
    cache = CellCache(tmp_path)
    key = "ef" + "3" * 62
    flat = tmp_path / f"{key}.json"
    flat.write_text("{ not json")
    assert cache.get(key) is None
    assert not flat.exists() and not cache._path(key).exists()


# -- cache keys ---------------------------------------------------------------

def _key(heuristic, **overrides):
    kwargs = dict(baseline_ir="define @k { ... }", workload="w",
                  config="uu_heuristic", loop_id=None, factor=1,
                  heuristic=heuristic, max_instructions=8000,
                  compile_timeout=20.0, verify_each=False)
    kwargs.update(overrides)
    return CellCache.make_key(**kwargs)


def test_key_changes_with_heuristic_params():
    default = HeuristicParams()
    assert _key(default) == _key(HeuristicParams())
    tweaked = HeuristicParams(c=default.c + 1)
    assert _key(default) != _key(tweaked)


def test_key_changes_with_ir_and_config():
    h = HeuristicParams()
    assert _key(h) != _key(h, baseline_ir="define @k { ret }")
    assert _key(h) != _key(h, config="uu", loop_id="k/L0", factor=2)
    assert _key(h) != _key(h, max_instructions=9000)


# -- spec enumeration and jobs resolution -------------------------------------

def test_sweep_specs_cover_full_sweep():
    bench = benchmark_by_name("coordinates")
    specs = sweep_specs(bench)
    assert specs[0] == CellSpec("coordinates", "baseline", None, 1)
    assert len(specs) == len(set(specs))
    loops = bench.loop_ids()
    # baseline + heuristic + unmerge per loop + {uu,unroll} x loops x 3.
    assert len(specs) == 2 + len(loops) + 2 * len(loops) * 3
    assert CellSpec("coordinates", "uu_heuristic", None, 1) in specs


def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == 1
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    assert resolve_jobs(2) == 2
    monkeypatch.setenv("REPRO_JOBS", "nope")
    assert resolve_jobs() >= 1


# -- end-to-end: parallel + cached == serial ---------------------------------

def _cell_tuple(cell):
    import dataclasses
    return (cell.app, cell.config, cell.loop_id, cell.factor, cell.cycles,
            cell.code_size, cell.outputs_match_baseline, cell.timed_out,
            tuple(getattr(cell.counters, f.name)
                  for f in dataclasses.fields(Counters)))


def test_parallel_runner_matches_serial_and_persists(tmp_path):
    bench = benchmark_by_name("coordinates")
    serial = ExperimentRunner()
    expected = [_cell_tuple(serial.cell(bench, "baseline")),
                _cell_tuple(serial.cell(bench, "uu_heuristic"))]

    cache = CellCache(tmp_path)
    cold = ParallelRunner(jobs=2, cache=cache)
    got = cold.prefetch([bench], configs=("baseline", "uu_heuristic"))
    assert [_cell_tuple(c) for c in got] == expected
    assert cache.stats()["entries"] == 2

    warm = ParallelRunner(jobs=2, cache=CellCache(tmp_path))
    rerun = warm.prefetch([bench], configs=("baseline", "uu_heuristic"))
    assert [_cell_tuple(c) for c in rerun] == expected
    assert warm.cache.hits == 2
    # Warm single-cell access also hits the persistent layer.
    assert _cell_tuple(warm.heuristic_cell(bench)) == expected[1]


def test_parallel_runner_isolates_worker_failure(tmp_path, monkeypatch):
    bench = benchmark_by_name("coordinates")
    runner = ParallelRunner(jobs=2, cache=CellCache(tmp_path))
    specs = [CellSpec("coordinates", "baseline", None, 1),
             CellSpec("no-such-app", "baseline", None, 1),
             CellSpec("no-such-app", "uu", "k/L0", 2)]
    cells = runner.prefetch([bench], specs=specs)
    assert cells[0].error is None
    assert cells[1].error is not None and "no-such-app" in cells[1].error
    # Dependent cell is failed too, not computed against nothing.
    assert cells[2].error is not None
    # Failed cells never pollute the persistent cache.
    assert runner.cache.stats()["entries"] == 1
    assert cells[1].speedup_over(cells[0]) == 0.0
