"""Cell-cache lifecycle tests: LRU bounding and crash-orphan handling.

Covers the daemon-era cache contract:

* ``put`` never leaks its temp file on a soft failure, and temp files
  orphaned by a killed worker are reported by ``stats()`` and swept by
  ``clear()``;
* ``stats()`` tolerates entries vanishing between enumeration and stat
  (concurrent clear/eviction);
* the LRU bound: the cap is enforced after every put, ``get`` refreshes
  recency, survivors are deterministic across ``-j1`` vs ``-jN`` sweeps,
  and eviction spares an entry another writer just refreshed.
"""

import os

import pytest

from repro.bench import benchmark_by_name
from repro.harness.cache import CellCache, default_max_bytes
from repro.harness.parallel import CellSpec, ParallelRunner
from tests.test_parallel_cache import make_cell


def entry_size(tmp_path) -> int:
    """On-disk size of one standard test entry."""
    probe = CellCache(tmp_path / "probe")
    probe.put("p" * 64, make_cell())
    return os.path.getsize(probe.entries()[0])


# -- satellite: orphaned temp files ------------------------------------------

def test_put_failure_leaves_no_tmp_file(tmp_path, monkeypatch):
    cache = CellCache(tmp_path)

    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        cache.put("a" * 64, make_cell())
    monkeypatch.undo()
    assert cache.tmp_files() == []
    assert cache.stats()["tmp_files"] == 0


def test_orphaned_tmp_reported_and_swept(tmp_path):
    cache = CellCache(tmp_path)
    cache.put("a" * 64, make_cell())
    # A worker SIGKILLed between write_text and os.replace leaves these.
    shard = tmp_path / "bb"
    shard.mkdir()
    orphans = [tmp_path / f"{'b' * 64}.json.tmp.123-0",
               shard / f"{'b' * 64}.json.tmp.124-7"]
    for path in orphans:
        path.write_text("half-written garbage")

    stats = cache.stats()
    assert stats["entries"] == 1          # Orphans are not entries.
    assert stats["tmp_files"] == 2
    assert stats["tmp_bytes"] > 0

    # clear() sweeps entries *and* orphans.
    assert cache.clear() == 3
    assert cache.entries() == [] and cache.tmp_files() == []
    assert not any(path.exists() for path in orphans)


def test_concurrent_same_process_puts_use_distinct_tmp_names(tmp_path,
                                                             monkeypatch):
    # Two threads of one process writing the same key must not share a
    # temp path; the name carries a per-process sequence, not just a pid.
    cache = CellCache(tmp_path)
    seen = []
    real_replace = os.replace

    def recording(src, dst):
        seen.append(str(src))
        real_replace(src, dst)

    monkeypatch.setattr(os, "replace", recording)
    cache.put("c" * 64, make_cell())
    cache.put("c" * 64, make_cell())
    assert len(seen) == 2 and seen[0] != seen[1]
    assert all(f".tmp.{os.getpid()}-" in name for name in seen)


# -- satellite: stats() races ------------------------------------------------

def test_stats_tolerates_vanishing_entries(tmp_path, monkeypatch):
    cache = CellCache(tmp_path)
    cache.put("a" * 64, make_cell())
    cache.put("b" * 64, make_cell())
    real = cache.entries()
    ghost = tmp_path / ("dead" * 16 + ".json")   # Never existed on disk.
    monkeypatch.setattr(CellCache, "entries", lambda self: real + [ghost])
    stats = cache.stats()                        # Must not raise.
    assert stats["entries"] == 2


def test_sizes_skips_vanished_files(tmp_path):
    live = tmp_path / "live.json"
    live.write_text("x" * 10)
    gone = tmp_path / "gone.json"
    count, total = CellCache._sizes([live, gone])
    assert count == 1 and total == 10


# -- LRU bound ---------------------------------------------------------------

def test_cap_enforced_after_puts(tmp_path):
    size = entry_size(tmp_path)
    cache = CellCache(tmp_path / "c", max_bytes=3 * size)
    for ch in "abcdef":
        cache.put(ch * 64, make_cell())
    stats = cache.stats()
    assert stats["bytes"] <= 3 * size
    assert cache.evictions == 3
    assert "evicted (LRU)" in cache.session_line()
    # Survivors are the three most recently written.
    assert cache.get("f" * 64) is not None
    assert cache.get("a" * 64) is None


def test_get_refreshes_recency(tmp_path):
    size = entry_size(tmp_path)
    cache = CellCache(tmp_path / "c", max_bytes=int(2.5 * size))
    cache.put("a" * 64, make_cell())
    cache.put("b" * 64, make_cell())
    assert cache.get("a" * 64) is not None     # a is now newer than b.
    cache.put("c" * 64, make_cell())           # Cap forces one eviction.
    assert cache.get("b" * 64) is None         # LRU victim was b, not a.
    assert cache.get("a" * 64) is not None
    assert cache.get("c" * 64) is not None


def test_explicit_evict_is_oldest_first(tmp_path):
    cache = CellCache(tmp_path)                # Unbounded during writes.
    for ch in "abcd":
        cache.put(ch * 64, make_cell())
    size = entry_size(tmp_path / "probe-root")
    removed = cache.evict(max_bytes=2 * size)
    assert len(removed) == 2
    assert cache.get("a" * 64) is None and cache.get("b" * 64) is None
    assert cache.get("c" * 64) is not None and cache.get("d" * 64) is not None


def test_eviction_spares_concurrently_refreshed_entry(tmp_path):
    cache = CellCache(tmp_path)
    cache.put("a" * 64, make_cell())
    cache.put("b" * 64, make_cell())
    scan = cache._scan_entries()
    victim_mtime, _, victim_path, size = scan[0]   # Oldest: entry "a".
    # Another process re-writes the victim between scan and unlink.
    cache.put("a" * 64, make_cell())
    assert cache._evict_one(victim_path, victim_mtime) is None
    assert victim_path.exists()                    # Spared, not removed.
    # A stale path that vanished entirely frees nothing but doesn't raise.
    victim_path.unlink()
    assert cache._evict_one(victim_path, victim_mtime) == 0


def test_monotonic_touch_orders_same_instant_accesses(tmp_path,
                                                      monkeypatch):
    import repro.harness.cache as cache_mod
    # Freeze the wall clock: every put lands at the "same" nanosecond.
    monkeypatch.setattr(cache_mod.time, "time_ns", lambda: 1_000_000_000)
    cache = CellCache(tmp_path)
    for ch in "bca":                     # Put order != name order.
        cache.put(ch * 64, make_cell())
    # The in-session monotonic clock still orders them by logical access.
    names = [name for _, name, _, _ in cache._scan_entries()]
    assert names == [f"{ch * 64}.json" for ch in "bca"]


def test_default_max_bytes_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    assert default_max_bytes() is None
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
    assert default_max_bytes() == 4096
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
    assert default_max_bytes() is None
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "nope")
    assert default_max_bytes() is None


# -- determinism across -j1 / -jN --------------------------------------------

def _survivors(tmp_path, jobs: int, cap_entries: int):
    bench = benchmark_by_name("coordinates")
    loop = bench.loop_ids()[0]
    root = tmp_path / f"j{jobs}"
    size = entry_size(tmp_path / f"probe-j{jobs}")
    cache = CellCache(root, max_bytes=cap_entries * size + size // 2)
    runner = ParallelRunner(jobs=jobs, cache=cache)
    specs = [CellSpec("coordinates", "baseline", None, 1),
             CellSpec("coordinates", "uu_heuristic", None, 1),
             CellSpec("coordinates", "uu", loop, 2),
             CellSpec("coordinates", "unroll", loop, 2)]
    runner.prefetch([bench], specs=specs)
    return sorted(path.name for path in cache.entries())


def test_lru_survivors_identical_j1_vs_jN(tmp_path):
    serial = _survivors(tmp_path, jobs=1, cap_entries=2)
    parallel = _survivors(tmp_path, jobs=4, cap_entries=2)
    assert serial == parallel
    assert 0 < len(serial) <= 3   # Cells differ in size; cap ~2 entries.
