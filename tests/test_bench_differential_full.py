"""Full differential sweep: every benchmark, every loop, core configs.

This is the heavyweight correctness net promised in DESIGN.md Section 5:
transforms must be semantics-preserving on every benchmark workload.  To
keep the default test run fast it checks u&u at factor 2 plus unmerge for
*all* apps; the benchmarks/ harness covers factors 4/8 on everything as a
side effect of regenerating the figures.
"""

import numpy as np
import pytest

from repro.bench import all_benchmarks
from repro.harness import ExperimentRunner

BENCHES = all_benchmarks()


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(max_instructions=4000, compile_timeout=30)


@pytest.mark.parametrize("bench", BENCHES, ids=[b.name for b in BENCHES])
def test_uu_factor2_all_loops(bench, runner):
    base = runner.baseline(bench)
    assert base.outputs_match_baseline, "baseline diverged from raw module"
    for loop_id in bench.loop_ids():
        cell = runner.cell(bench, "uu", loop_id, 2)
        if cell.timed_out:
            continue
        assert cell.outputs_match_baseline, f"{bench.name} {loop_id}"


@pytest.mark.parametrize("bench", BENCHES, ids=[b.name for b in BENCHES])
def test_unmerge_all_loops(bench, runner):
    runner.baseline(bench)
    for loop_id in bench.loop_ids():
        cell = runner.cell(bench, "unmerge", loop_id, 1)
        if cell.timed_out:
            continue
        assert cell.outputs_match_baseline, f"{bench.name} {loop_id}"


@pytest.mark.parametrize("bench", BENCHES, ids=[b.name for b in BENCHES])
def test_heuristic_all_apps(bench, runner):
    runner.baseline(bench)
    cell = runner.heuristic_cell(bench)
    assert not cell.timed_out
    assert cell.outputs_match_baseline, bench.name
