"""Golden-model tests: every benchmark kernel vs a NumPy reference.

Differential testing (baseline vs transformed) catches transform bugs but
would miss a benchmark whose kernel computes nonsense from the start.  Each
test here re-derives the workload with the benchmark's own seed and checks
the *unoptimized* simulated outputs against an independent NumPy/Python
model of what the kernel's docstring promises.
"""

import numpy as np
import pytest

from repro.bench import benchmark_by_name
from repro.bench import (bezier_surface, bn, bspline_vgh, ccs, clink,
                         complex_bench, contract, coordinates, haccmk,
                         lavamd, libor, mandelbrot, qtclustering, quicksort,
                         rainflow, xsbench)


def outputs_of(name):
    bench = benchmark_by_name(name)
    module = bench.build_module()
    outputs, _ = bench.run(module)
    rng = np.random.default_rng(bench.seed)
    return bench, outputs, rng


class TestXSBench:
    def test_grid_search_matches_searchsorted(self):
        bench, outputs, rng = outputs_of("XSBench")
        egrid = np.sort(rng.random(xsbench.GRIDPOINTS))
        rng.random(xsbench.GRIDPOINTS * xsbench.NUCLIDES)  # xs draw.
        quarries = rng.random(xsbench.LOOKUPS) * 0.98 + 0.01
        # The loop computes the classic lower-bound binary search with
        # while(length > 1); reproduce it exactly.
        for q, got in zip(quarries, outputs["found"]):
            lower, upper, length = 0, xsbench.GRIDPOINTS, xsbench.GRIDPOINTS
            while length > 1:
                mid = lower + length // 2
                if egrid[mid] > q:
                    upper = mid
                else:
                    lower = mid
                length = upper - lower
            assert got == lower

    def test_macro_accumulation(self):
        bench, outputs, rng = outputs_of("XSBench")
        egrid = np.sort(rng.random(xsbench.GRIDPOINTS))
        xs = rng.random(xsbench.GRIDPOINTS * xsbench.NUCLIDES)
        quarries = rng.random(xsbench.LOOKUPS) * 0.98 + 0.01
        found = outputs["found"]
        for gid in range(xsbench.LOOKUPS):
            idx = found[gid]
            e0, e1 = egrid[idx], egrid[idx + 1]
            frac = (quarries[gid] - e0) / (e1 - e0)
            acc = 0.0
            for nuc in range(xsbench.NUCLIDES):
                base = nuc * xsbench.GRIDPOINTS + idx
                micro = xs[base] + frac * (xs[base + 1] - xs[base])
                acc += micro if micro > 0.5 else micro * 0.5
            assert outputs["macro"][gid] == pytest.approx(acc, rel=1e-12)


class TestComplex:
    def test_binary_exponentiation(self):
        bench, outputs, rng = outputs_of("complex")
        a0 = rng.random(complex_bench.THREADS) * 0.2 + 0.9
        for gid in range(complex_bench.THREADS):
            n, a, c = gid, a0[gid], 1.0
            a_new, c_new = 1.0, 0.0
            while n > 0:
                if n & 1:
                    a_new *= a
                    c_new = c_new * a + c
                c *= (a + 1.0)
                a *= a
                n >>= 1
            assert outputs["out"][gid] == pytest.approx(a_new + c_new,
                                                        rel=1e-12)


class TestMandelbrot:
    def test_escape_counts(self):
        bench, outputs, rng = outputs_of("mandelbrot")
        cr = rng.random(mandelbrot.THREADS) * 3.0 - 2.0
        ci = rng.random(mandelbrot.THREADS) * 2.4 - 1.2
        for gid in range(mandelbrot.THREADS):
            x = y = 0.0
            esc = 0
            count = 0
            for _ in range(mandelbrot.MAX_ITER):
                x2, y2 = x * x, y * y
                if esc == 0 and x2 + y2 > 4.0:
                    esc = 1
                if esc == 0:
                    y = 2.0 * x * y + ci[gid]
                    x = x2 - y2 + cr[gid]
                    count += 1
            assert outputs["iters"][gid] == count


class TestQuicksort:
    def test_partition_invariant(self):
        bench, outputs, rng = outputs_of("quicksort")
        original = rng.random(quicksort.SEGMENT * quicksort.THREADS)
        data = outputs["data"]
        for t in range(quicksort.THREADS):
            seg_before = original[t * quicksort.SEGMENT:
                                  (t + 1) * quicksort.SEGMENT]
            seg_after = data[t * quicksort.SEGMENT:
                             (t + 1) * quicksort.SEGMENT]
            # The segment is a permutation of the input (swaps + the
            # insertion pass over the first 12 elements preserve content).
            assert np.allclose(np.sort(seg_before), np.sort(seg_after))
            pivot_pos = outputs["pivots"][t]
            assert 0 <= pivot_pos <= quicksort.SEGMENT


class TestCCS:
    def test_correlation_is_sum_of_squares(self):
        bench, outputs, rng = outputs_of("ccs")
        expr = rng.random(ccs.GENES * ccs.SAMPLES)
        mat = expr.reshape(ccs.GENES, ccs.SAMPLES)
        for gid in range(ccs.THREADS):
            row = mat[gid]
            mean = row.sum() / 16.0
            var = ((row - mean) ** 2).sum()
            assert outputs["corr"][gid] == pytest.approx(var, rel=1e-9)


class TestContract:
    def test_contraction_is_row_dot(self):
        bench, outputs, rng = outputs_of("contract")
        a = (rng.random(contract.DIM * contract.DIM) - 0.5)
        b = (rng.random(contract.DIM * contract.DIM) - 0.5)
        A = a.reshape(contract.DIM, contract.DIM)
        B = b.reshape(contract.DIM, contract.DIM)
        for gid in range(contract.THREADS):
            row = gid % contract.DIM
            expected = sum(A[row, i] * B[i, j]
                           for i in range(contract.DIM)
                           for j in range(contract.DIM))
            assert outputs["out"][gid] == pytest.approx(expected, rel=1e-9)


class TestBezier:
    def test_blend_is_binomialish_product(self):
        bench, outputs, rng = outputs_of("bezier-surface")
        k_of = rng.integers(2, bezier_surface.DEGREE - 1,
                            bezier_surface.THREADS)
        for gid in range(bezier_surface.THREADS):
            nn = bezier_surface.DEGREE
            kn = int(k_of[gid])
            nkn = bezier_surface.DEGREE - kn
            blend = 1.0
            while nn >= 1:
                blend *= nn
                nn -= 1
                if kn > 1:
                    blend /= kn
                    kn -= 1
                if nkn > 1:
                    blend /= nkn
                    nkn -= 1
            assert outputs["blends"][gid] == pytest.approx(blend, rel=1e-9)


class TestRainflow:
    def test_turning_point_extraction(self):
        bench, outputs, rng = outputs_of("rainflow")
        x = rng.random(rainflow.SIGNAL_LEN * rainflow.THREADS)
        for t in range(rainflow.THREADS):
            sig = x[t * rainflow.SIGNAL_LEN:(t + 1) * rainflow.SIGNAL_LEN]
            y = np.zeros(rainflow.SIGNAL_LEN)
            y[0] = sig[0]
            j = 0
            i = 1
            while i < rainflow.SIGNAL_LEN - 1:
                if sig[i] > y[j] and sig[i] > sig[i + 1]:
                    j += 1
                    y[j] = sig[i]
                if sig[i] < y[j] and sig[i] < sig[i + 1]:
                    j += 1
                    y[j] = sig[i]
                i += 1
            assert outputs["counts"][t] == j
            assert np.allclose(outputs["y"][t * rainflow.SIGNAL_LEN:
                                            t * rainflow.SIGNAL_LEN + j + 1],
                               y[:j + 1])


class TestCoordinates:
    def test_iterative_refinement(self):
        bench, outputs, rng = outputs_of("coordinates")
        xs = rng.random(coordinates.THREADS) * 180 - 90
        ys = rng.random(coordinates.THREADS) * 360 - 180
        for gid in range(coordinates.THREADS):
            phi = ys[gid] * 0.5
            for _ in range(coordinates.ITERS):
                s = phi * 0.9 + xs[gid] * 0.01
                phi = phi * 0.98 + s * 0.015 + ys[gid] * 0.001
            assert outputs["lat"][gid] == pytest.approx(phi, rel=1e-9)


class TestHaccmk:
    def test_force_accumulation(self):
        bench, outputs, rng = outputs_of("haccmk")
        px = rng.random(haccmk.NEIGHBOURS)
        py = rng.random(haccmk.NEIGHBOURS)
        mass = rng.random(haccmk.NEIGHBOURS) + 0.5
        for gid in range(4):  # Spot-check a few threads.
            x0, y0 = px[gid], py[gid]
            f = 0.0
            for j in range(haccmk.NEIGHBOURS):
                dx, dy = px[j] - x0, py[j] - y0
                r2 = dx * dx + dy * dy
                if r2 < 1.0:
                    f += mass[j] * (1.0 / (r2 + 0.01)) * dx
                else:
                    f += 0.0001 * dx
            assert outputs["fx"][gid] == pytest.approx(f, rel=1e-9)


class TestLibor:
    def test_knockout_payoff(self):
        bench, outputs, rng = outputs_of("libor")
        z = rng.standard_normal(libor.THREADS * libor.MATURITIES) * 0.5
        rates0 = rng.random(libor.THREADS) * 0.05 + 0.02
        for gid in range(8):
            rate, disc = rates0[gid], 1.0
            dead, acc = 0, 0.0
            for m in range(libor.MATURITIES):
                shock = z[gid * libor.MATURITIES + m]
                rate = rate * (1.0 + shock * 0.1)
                disc = disc / (1.0 + rate * 0.25)
                if dead == 0:
                    if disc < 0.82:
                        dead = 1
                    else:
                        acc += disc * (rate - 0.04)
            assert outputs["payoff"][gid] == pytest.approx(acc, rel=1e-9)


class TestBN:
    def test_count_kernel(self):
        bench, outputs, rng = outputs_of("bn")
        data = rng.integers(0, 6, bn.NODES * bn.STATES)
        data[rng.random(bn.NODES * bn.STATES) < 0.4] = 0
        mat = data.reshape(bn.NODES, bn.STATES)
        for gid in range(bn.THREADS):
            total, zero_run = 0, 0
            for v in mat[gid]:
                if v > 0:
                    total += v
                    zero_run = 0
                else:
                    zero_run += 1
            assert outputs["counts"][gid] == total + zero_run


class TestClink:
    def test_sticky_saturation(self):
        bench, outputs, rng = outputs_of("clink")
        xs = rng.random(clink.THREADS * clink.STEPS) * 2.0
        w = rng.random(clink.THREADS) + 0.5
        for gid in range(8):
            h = cell = 0.0
            sat = 0
            for t in range(clink.STEPS):
                xin = xs[gid * clink.STEPS + t]
                gate = xin * w[gid] + h * 0.5
                if sat != 0:
                    cell *= 0.9
                elif gate > 2.5:
                    sat = 1
                    cell *= 0.9
                else:
                    cell += gate * 0.25
                h = cell * 0.5
            assert outputs["hidden"][gid] == pytest.approx(h, rel=1e-9)


class TestQTClustering:
    def test_membership_counts(self):
        bench, outputs, rng = outputs_of("qtclustering")
        px = rng.random(qtclustering.POINTS)
        py = rng.random(qtclustering.POINTS)
        for gid in range(qtclustering.THREADS):
            cx = px[gid % qtclustering.POINTS]
            cy = py[gid % qtclustering.POINTS]
            count, full = 0, 0
            for j in range(qtclustering.POINTS):
                if full:
                    continue
                d2 = (px[j] - cx) ** 2 + (py[j] - cy) ** 2
                if d2 < 0.1:
                    count += 1
                    if count >= qtclustering.CAPACITY:
                        full = 1
            assert outputs["members"][gid] == count


class TestLavaMD:
    def test_pair_accumulation(self):
        bench, outputs, rng = outputs_of("lavaMD")
        qx = rng.random(lavamd.PER_BOX)
        qv = rng.random(lavamd.PER_BOX) - 0.5
        for gid in range(8):
            x0 = qx[gid % lavamd.PER_BOX]
            a, near = 0.0, 0
            for j in range(lavamd.PER_BOX):
                dx = qx[j] - x0
                r2 = dx * dx
                if r2 < 0.25:
                    a += np.exp(-r2 * 2.0) * qv[j]
                    near += 1
                elif near > 8:
                    a += 0.0001
                else:
                    a += dx * 0.001
            assert outputs["acc"][gid] == pytest.approx(a, rel=1e-9)


class TestBspline:
    def test_weight_recurrence(self):
        bench, outputs, rng = outputs_of("bspline-vgh")
        coefs = rng.random(bspline_vgh.GRID)
        pos = rng.random(bspline_vgh.THREADS) * (bspline_vgh.GRID - 8) + 2
        for gid in range(8):
            x = pos[gid]
            ix = int(x)
            fx = x - ix
            c0 = coefs[gid % bspline_vgh.GRID]
            val = grad = 0.0
            w = 1
            while w <= 8:
                if 0 <= ix < bspline_vgh.GRID - 4:
                    val = val * fx + c0 * w
                    grad = grad + c0 * fx
                else:
                    val *= 0.5
                    grad += 0.125
                w <<= 1
            assert outputs["vals"][gid] == pytest.approx(val, rel=1e-9)
            assert outputs["grads"][gid] == pytest.approx(grad, rel=1e-9)
