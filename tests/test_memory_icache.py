"""Memory subsystem and instruction-cache model tests."""

import numpy as np
import pytest

from repro.gpu.icache import InstructionCache
from repro.gpu.memory import Memory, SEGMENT_BYTES
from repro.gpu.timing import charge, cycles_to_ms, issue_cost, load_latency


class TestMemoryAllocation:
    def test_alloc_alignment_and_disjointness(self):
        mem = Memory()
        a = mem.alloc("a", "f64", 10)
        b = mem.alloc("b", "i64", 10)
        assert a % 256 == 0
        assert b >= a + 10 * 8

    def test_initializer_copied(self):
        mem = Memory()
        data = np.ones(4)
        mem.alloc("a", "f64", 4, data)
        data[0] = 99.0  # Host-side mutation must not leak into the device.
        assert mem.read_back("a")[0] == 1.0

    def test_initializer_size_checked(self):
        mem = Memory()
        with pytest.raises(ValueError):
            mem.alloc("a", "f64", 4, np.ones(5))

    def test_dtypes(self):
        mem = Memory()
        mem.alloc("a", "i32", 4, np.array([1, 2, 3, 4]))
        assert mem.buffer("a").elem_size == 4
        mem.alloc("b", "f32", 4)
        assert mem.buffer("b").elem_size == 4


class TestLoadStore:
    def test_masked_lanes_untouched(self):
        mem = Memory()
        base = mem.alloc("a", "f64", 32, np.arange(32, dtype=np.float64))
        addrs = base + np.arange(32, dtype=np.int64) * 8
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        vals, _ = mem.load(addrs, mask, 8)
        assert list(vals[:4]) == [0.0, 1.0, 2.0, 3.0]
        assert not vals[4:].any()  # Inactive lanes read as zero fill.

    def test_store_masked(self):
        mem = Memory()
        base = mem.alloc("a", "f64", 8)
        addrs = base + np.arange(8, dtype=np.int64) * 8
        mask = np.array([True, False] * 4)
        mem.store(addrs, np.full(8, 7.0), mask, 8)
        out = mem.read_back("a")
        assert list(out) == [7.0, 0.0] * 4

    def test_traffic_stats(self):
        mem = Memory()
        base = mem.alloc("a", "f64", 32)
        addrs = base + np.arange(32, dtype=np.int64) * 8
        mask = np.ones(32, dtype=bool)
        mem.load(addrs, mask, 8)
        mem.store(addrs, np.zeros(32), mask, 8)
        assert mem.stats.load_requests == 1
        assert mem.stats.store_requests == 1
        assert mem.stats.bytes_loaded == 32 * 8
        assert mem.stats.bytes_stored == 32 * 8

    def test_empty_mask_is_free(self):
        mem = Memory()
        base = mem.alloc("a", "f64", 4)
        addrs = np.full(32, base, dtype=np.int64)
        _, tx = mem.load(addrs, np.zeros(32, dtype=bool), 8)
        assert tx == 0
        assert mem.stats.load_requests == 0


class TestICache:
    def test_hit_after_miss(self):
        ic = InstructionCache(capacity=100)
        first = ic.access(1, 20)
        second = ic.access(1, 20)
        assert first > 0
        assert second == 0
        assert ic.hits == 1 and ic.misses == 1

    def test_lru_eviction(self):
        ic = InstructionCache(capacity=40)
        ic.access(1, 20)
        ic.access(2, 20)
        ic.access(3, 20)   # Evicts 1.
        assert ic.access(1, 20) > 0
        assert ic.misses == 4

    def test_stall_scales_with_block_size(self):
        ic = InstructionCache(capacity=10_000)
        small = ic.access(1, 4)
        big = ic.access(2, 400)
        assert big > small

    def test_thrash_accumulates_stalls(self):
        ic = InstructionCache(capacity=64)
        for _ in range(10):
            for block in range(8):
                ic.access(block, 32)
        assert ic.misses >= 40  # Working set 256 > 64: constant misses.


class TestTiming:
    def test_issue_cost_tiers(self):
        assert issue_cost("int", "add") < issue_cost("int", "sdiv")
        assert issue_cost("fp", "fdiv") > issue_cost("fp", "fadd")
        assert issue_cost("special", "call", "exp") > \
            issue_cost("special", "call", "fabs")

    def test_load_latency_grows_with_transactions(self):
        assert load_latency(1) < load_latency(8) < load_latency(32)
        assert load_latency(0) == 0

    def test_cycles_to_ms(self):
        assert cycles_to_ms(1.38e9) == pytest.approx(1000.0)

    def test_full_warp_charge_is_cost(self):
        assert charge(10, 32) == pytest.approx(10.0)
