"""Tests for the combined u&u pass and the selection heuristic."""

import pytest

from repro.analysis import LoopInfo
from repro.ir import Module, parse_function, verify_function
from repro.transforms import (HeuristicParams, HeuristicUU, apply_uu,
                              choose_factor, select_loops, uu_applicable)
from repro.transforms.heuristic import LoopDecision

BRANCHY_LOOP = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %merge ]
  %acc = phi i64 [ 0, %entry ], [ %nacc, %merge ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %bit = and i64 %i, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %a, label %b
a:
  br label %merge
b:
  br label %merge
merge:
  %v = phi i64 [ 3, %a ], [ 5, %b ]
  %nacc = add i64 %acc, %v
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"""

CONVERGENT_LOOP = """
define void @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  call void @syncthreads()
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %header, label %exit
exit:
  ret void
}
"""


class TestChooseFactor:
    def test_largest_factor_within_budget(self):
        params = HeuristicParams(c=1024, u_max=8)
        # p=2, s=10: f(2,10,u) = 10*(2^u - 1); u=6 -> 630 < 1024 < u=7.
        assert choose_factor(2, 10, params) == 6

    def test_none_when_even_factor_two_too_big(self):
        params = HeuristicParams(c=100, u_max=8)
        # p=4, s=30: f(4,30,2) = 150 >= 100.
        assert choose_factor(4, 30, params) is None

    def test_u_max_respected(self):
        params = HeuristicParams(c=10**9, u_max=4)
        assert choose_factor(1, 10, params) == 4

    def test_single_path_loops_grow_linearly(self):
        params = HeuristicParams(c=100, u_max=8)
        # p=1: f(1,s,u) = u*s; s=20 -> u=4 (80 < 100 <= 100 at u=5).
        assert choose_factor(1, 20, params) == 4


class TestApplicability:
    def test_convergent_loop_rejected(self):
        f = parse_function(CONVERGENT_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        assert not uu_applicable(f, loop)

    def test_pragma_loop_rejected(self):
        f = parse_function(BRANCHY_LOOP)
        f.attributes["loop_pragmas"] = {"f:0": "unroll"}
        loop = LoopInfo.compute(f).loops[0]
        assert not uu_applicable(f, loop)

    def test_normal_loop_accepted(self):
        f = parse_function(BRANCHY_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        assert uu_applicable(f, loop)


class TestSelectLoops:
    def test_selects_and_reports(self):
        f = parse_function(BRANCHY_LOOP)
        info = LoopInfo.compute(f)
        decisions = select_loops(f, info, HeuristicParams())
        assert len(decisions) == 1
        d = decisions[0]
        assert d.loop_id == "f:0"
        assert d.factor is not None and d.factor >= 2
        assert d.paths == 2

    def test_inner_selected_blocks_outer(self):
        text = """
define i64 @f(i64 %n, i64 %m) {
entry:
  br label %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %inext, %olatch ]
  %ci = icmp slt i64 %i, %n
  br i1 %ci, label %inner, label %exit
inner:
  %j = phi i64 [ 0, %outer ], [ %jnext, %inner ]
  %jnext = add i64 %j, 1
  %cj = icmp slt i64 %jnext, %m
  br i1 %cj, label %inner, label %olatch
olatch:
  %inext = add i64 %i, 1
  br label %outer
exit:
  ret i64 %i
}
"""
        f = parse_function(text)
        info = LoopInfo.compute(f)
        decisions = {d.loop_id: d for d in
                     select_loops(f, info, HeuristicParams())}
        assert decisions["f:1"].factor is not None      # Inner selected.
        assert decisions["f:0"].factor is None          # Outer blocked.
        assert "inner" in decisions["f:0"].reason

    def test_oversized_loop_rejected_with_reason(self):
        f = parse_function(BRANCHY_LOOP)
        info = LoopInfo.compute(f)
        decisions = select_loops(f, info, HeuristicParams(c=5))
        assert decisions[0].factor is None
        assert "c=5" in decisions[0].reason

    def test_convergent_reported(self):
        f = parse_function(CONVERGENT_LOOP)
        info = LoopInfo.compute(f)
        decisions = select_loops(f, info, HeuristicParams())
        assert decisions[0].factor is None
        assert "convergent" in decisions[0].reason


class TestApplyUU:
    def test_claims_loop(self):
        f = parse_function(BRANCHY_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        assert apply_uu(f, loop, 2)
        assert "f:0" in f.attributes["uu_claimed_loops"]
        verify_function(f)

    def test_convergent_loop_untouched(self):
        f = parse_function(CONVERGENT_LOOP)
        before = len(f.blocks)
        loop = LoopInfo.compute(f).loops[0]
        assert not apply_uu(f, loop, 4)
        assert len(f.blocks) == before

    def test_factor_one_unmerges_only(self):
        f = parse_function(BRANCHY_LOOP)
        loop = LoopInfo.compute(f).loops[0]
        assert apply_uu(f, loop, 1)
        verify_function(f)
        fresh = LoopInfo.compute(f).loops[0]
        # Unmerged but not unrolled: 2 latch paths, one body copy.
        assert len(fresh.latches()) == 2


class TestHeuristicPass:
    def test_runs_and_records_decisions(self):
        f = parse_function(BRANCHY_LOOP)
        pass_ = HeuristicUU(HeuristicParams())
        assert pass_.run(f)
        verify_function(f)
        assert any(d.factor for d in pass_.decisions)

    def test_divergence_filter(self):
        # With the (extension) taint filter on, a tid-dependent branch
        # disqualifies the loop — the paper's `complex` avoidance.
        text = """
define i64 @f(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %merge ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %bit = and i64 %tid, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %a, label %b
a:
  br label %merge
b:
  br label %merge
merge:
  %v = phi i64 [ 3, %a ], [ 5, %b ]
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %i
}
"""
        f = parse_function(text)
        info = LoopInfo.compute(f)
        on = select_loops(f, info, HeuristicParams(avoid_divergent=True))
        off = select_loops(f, info, HeuristicParams(avoid_divergent=False))
        assert on[0].factor is None and "divergent" in on[0].reason
        assert off[0].factor is not None


class TestAppliedFlag:
    """LoopDecision.applied distinguishes planned from executed u&u."""

    def test_selected_loops_report_applied(self):
        f = parse_function(BRANCHY_LOOP)
        pass_ = HeuristicUU(HeuristicParams())
        assert pass_.run(f)
        selected = [d for d in pass_.decisions if d.factor is not None]
        assert selected
        assert all(d.applied is True for d in selected)

    def test_unselected_loops_stay_unmarked(self):
        f = parse_function(CONVERGENT_LOOP)
        pass_ = HeuristicUU(HeuristicParams())
        pass_.run(f)
        assert pass_.decisions
        assert all(d.factor is None and d.applied is None
                   for d in pass_.decisions)

    def test_header_not_refound_marks_skip(self, monkeypatch):
        """If relayout loses a selected header, the decision says so."""
        from types import SimpleNamespace

        f = parse_function(BRANCHY_LOOP)
        real_compute = LoopInfo.compute
        calls = {"n": 0}

        def fake_compute(func):
            calls["n"] += 1
            if calls["n"] == 1:
                return real_compute(func)   # selection sees the real loop
            return SimpleNamespace(loops=[])  # re-find comes up empty

        monkeypatch.setattr("repro.transforms.heuristic.LoopInfo",
                            SimpleNamespace(compute=fake_compute))
        pass_ = HeuristicUU(HeuristicParams())
        assert pass_.run(f) is False        # nothing actually changed
        selected = [d for d in pass_.decisions if d.factor is not None]
        assert selected
        assert all(d.applied is False for d in selected)
        verify_function(f)                  # and the function is untouched
