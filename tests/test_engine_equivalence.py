"""Bit-identicality contract between the execution engines.

The launch-vectorized ("batched") engine and the superblock trace-jit
("jit") tier on top of it exist purely for wall-clock: each must produce
byte-for-byte the same outputs and *exactly* the same Counters — cycles
included, which are float sums and therefore sensitive to accumulation
order — as the per-warp ("warp") engine.  That contract is what lets the
persistent cell cache omit the engine from its keys and lets the fuzz
oracle treat the engines as interchangeable.

Coverage here is deliberately broad rather than deep:

* every benchmark analog's full workload (real multi-launch geometry),
* the same workloads after the heuristic u&u pipeline and after the
  tuned pipeline (optimized CFGs stress unmerged/unrolled control flow),
* every regression kernel in ``tests/corpus/`` at a multi-warp geometry
  with a boundary warp (block_dim not a multiple of 32),
* freshly fuzz-generated kernels, again multi-warp, so data-dependent
  divergence exercises the demotion path,
* a guard-storm kernel engineered so every jit deopt kind fires (diamond
  divergent arms, diamond mixed-class deopt, guard failure with
  truncation to a side exit, loop-region exits, demotion splits),
* profiling on vs. off (the execution profile must be strictly
  observational).
"""

from __future__ import annotations

import contextlib
import dataclasses
import math
import os

import pytest

from repro.bench import all_benchmarks
from repro.frontend.lower import lower_kernels
from repro.fuzz.corpus import load_corpus
from repro.fuzz.generator import generate_kernel
from repro.fuzz.oracle import default_args
from repro.gpu import Counters, Memory, SimtMachine
from repro.gpu.fuser import FUSE_ENV
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.transforms.pipeline import compile_module

#: Multi-warp geometry with a boundary warp: 2 blocks x 3 warps, the
#: last warp of each block only 16 lanes active.
GRID_DIM = 2
BLOCK_DIM = 80

#: Engines measured against the per-warp reference.
FAST_ENGINES = ("batched", "jit")

BENCHMARKS = all_benchmarks()
CORPUS = load_corpus()
FUZZ_SEEDS = (3, 11, 27)

#: The jit's expression fuser must be invisible in results: every matrix
#: cell runs once with fusion on (the default) and once forced off.
FUSE_MODES = (True, False)
FUSE_IDS = ("fuse", "nofuse")


@contextlib.contextmanager
def fusion(enabled: bool):
    """Scope ``REPRO_JIT_FUSE`` to one check (only the jit reads it)."""
    prev = os.environ.get(FUSE_ENV)
    os.environ[FUSE_ENV] = "1" if enabled else "0"
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(FUSE_ENV, None)
        else:
            os.environ[FUSE_ENV] = prev


def assert_counters_identical(batched: Counters, warp: Counters,
                              label: str) -> None:
    """Every field — float cycle accumulators included — must be equal."""
    for f in dataclasses.fields(Counters):
        b, w = getattr(batched, f.name), getattr(warp, f.name)
        assert b == w, (f"{label}: Counters.{f.name} differs between "
                        f"engines: batched={b!r} warp={w!r}")


def assert_category_invariant(counters: Counters, label: str) -> None:
    """cat_cycles + fetch stalls re-sum to total cycles (up to fp order)."""
    total = sum(counters.cat_cycles) + counters.fetch_stall_cycles
    assert math.isclose(total, counters.cycles, rel_tol=1e-9, abs_tol=1e-6), \
        f"{label}: sum(cat_cycles)+fetch {total} != cycles {counters.cycles}"


def launch_engine(ir_text: str, name: str, engine: str,
                  grid_dim: int = GRID_DIM, block_dim: int = BLOCK_DIM,
                  args=None):
    """Launch every function of ``ir_text`` under one engine."""
    module = parse_module(ir_text, name)
    machine = SimtMachine(module, Memory(), engine=engine)
    per_func = {}
    for fname, func in module.functions.items():
        result = machine.launch(func, grid_dim, block_dim,
                                default_args(func) if args is None else args)
        ret = result.return_values
        per_func[fname] = (None if ret is None else ret.tobytes(),
                           result.counters)
    return per_func


def check_text_kernel(ir_text: str, name: str,
                      grid_dim: int = GRID_DIM,
                      block_dim: int = BLOCK_DIM, args=None) -> None:
    reference = launch_engine(ir_text, name, "warp", grid_dim, block_dim,
                              args)
    for engine in FAST_ENGINES:
        results = launch_engine(ir_text, name, engine, grid_dim, block_dim,
                                args)
        assert results.keys() == reference.keys()
        for fname in results:
            ret_e, counters_e = results[fname]
            ret_w, counters_w = reference[fname]
            label = f"{name}:@{fname}/{engine}"
            assert ret_e == ret_w, f"{label}: return values differ"
            assert_counters_identical(counters_e, counters_w, label)
            assert_category_invariant(counters_e, label)


def _check_bench_engines(bench, config, prepare):
    """Run ``bench`` under every engine and pin outputs + Counters."""
    outs, counters = {}, {}
    for engine in ("warp",) + FAST_ENGINES:
        module = prepare()
        outs[engine], counters[engine] = bench.run(module, engine=engine)
    for engine in FAST_ENGINES:
        label = f"{bench.name}/{config}/{engine}"
        assert outs[engine].keys() == outs["warp"].keys()
        for buf_name in outs[engine]:
            assert outs[engine][buf_name].tobytes() == \
                outs["warp"][buf_name].tobytes(), \
                f"{label}: output buffer {buf_name} differs vs warp"
        assert_counters_identical(counters[engine], counters["warp"], label)
        assert_category_invariant(counters[engine], label)


@pytest.mark.parametrize("fuse", FUSE_MODES, ids=FUSE_IDS)
@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_benchmark_baseline_bit_identical(bench, fuse):
    with fusion(fuse):
        _check_bench_engines(bench, "baseline", bench.build_module)


@pytest.mark.parametrize("fuse", FUSE_MODES, ids=FUSE_IDS)
@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_benchmark_heuristic_bit_identical(bench, fuse):
    def prepare():
        module = bench.build_module()
        compile_module(module, "uu_heuristic")
        return module
    with fusion(fuse):
        _check_bench_engines(bench, "uu_heuristic", prepare)


@pytest.mark.parametrize("fuse", FUSE_MODES, ids=FUSE_IDS)
@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_benchmark_tuned_bit_identical(bench, fuse):
    from repro.tune import resolve_decisions

    decisions, _reason = resolve_decisions(bench.name)

    def prepare():
        module = bench.build_module()
        compile_module(module, "tuned", tuned=decisions)
        return module
    with fusion(fuse):
        _check_bench_engines(bench, "tuned", prepare)


@pytest.mark.skipif(not CORPUS, reason="no corpus entries")
@pytest.mark.parametrize("fuse", FUSE_MODES, ids=FUSE_IDS)
@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_corpus_bit_identical(entry, fuse):
    with fusion(fuse):
        check_text_kernel(entry.text, entry.name)


@pytest.mark.parametrize("fuse", FUSE_MODES, ids=FUSE_IDS)
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzzed_kernels_bit_identical(seed, fuse):
    kernel = generate_kernel(seed)
    module = lower_kernels([kernel], f"fuzz{seed}")
    with fusion(fuse):
        check_text_kernel(print_module(module), f"fuzz{seed}")


# -- guard storm: every jit deopt kind on one kernel --------------------------

#: Crafted so a single hot loop trips every jit bail-out in one run:
#:
#: * ``%laneodd`` diamond (dodd/deven)  — intra-warp divergent condition,
#:   both arms execute masked in-region (R_DIAMOND, divergent class);
#: * ``%warpodd`` diamond (wodd/weven)  — condition uniform per warp but
#:   disagreeing across warps, so the lattice classes are mixed and the
#:   region deopts with both edges pending;
#: * ``%laneodd`` asymmetric branch (ga/gb) — ``gb`` detours through
#:   ``gc`` so the arms do NOT form a diamond; the resulting R_GUARD
#:   fails on every entry (intra-warp divergence), crossing the
#:   guard-demotion threshold so the region is truncated to a side exit
#:   (R_EXIT_CONDBR) that later entries then take;
#: * ``%trip`` depends on the warp index, so warps exit the loop on
#:   different iterations — loop-region exits plus demotion splits.
STORM_IR = """
define i64 @storm(i64 %n) {
entry:
  %tid = call i64 @tid.x()
  %ctaid = call i64 @ctaid.x()
  %ntid = call i64 @ntid.x()
  %base = mul i64 %ctaid, %ntid
  %gid = add i64 %base, %tid
  %warp = lshr i64 %gid, 5
  %wbit = and i64 %warp, 1
  %warpodd = icmp eq i64 %wbit, 1
  %lbit = and i64 %tid, 1
  %laneodd = icmp eq i64 %lbit, 1
  %extra = and i64 %warp, 3
  %trip = add i64 %n, %extra
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %acc = phi i64 [ %gid, %entry ], [ %acc.next, %latch ]
  br i1 %laneodd, label %dodd, label %deven
dodd:
  %a = mul i64 %acc, 3
  br label %djoin
deven:
  %b = add i64 %acc, 7
  br label %djoin
djoin:
  %dacc = phi i64 [ %a, %dodd ], [ %b, %deven ]
  br i1 %warpodd, label %wodd, label %weven
wodd:
  %c = add i64 %dacc, %i
  br label %wjoin
weven:
  %d = mul i64 %dacc, 5
  br label %wjoin
wjoin:
  %wacc = phi i64 [ %c, %wodd ], [ %d, %weven ]
  %wred = and i64 %wacc, 1048575
  br i1 %laneodd, label %ga, label %gb
ga:
  %e = add i64 %wred, 11
  br label %latch
gb:
  %f0 = mul i64 %wred, 9
  br label %gc
gc:
  %f = add i64 %f0, 1
  br label %latch
latch:
  %racc = phi i64 [ %e, %ga ], [ %f, %gc ]
  %acc.next = and i64 %racc, 524287
  %i.next = add i64 %i, 1
  %done = icmp sge i64 %i.next, %trip
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}
"""

#: Enough loop trips to cross GUARD_DEMOTE_FAILS and then keep running
#: through the truncated region's side exit.
STORM_TRIPS = 40


def test_guard_storm_bit_identical_multi_warp():
    check_text_kernel(STORM_IR, "storm", args=[STORM_TRIPS])


def test_guard_storm_bit_identical_single_warp():
    # One 32-lane warp: the lattice is a single row, so uniform regions
    # run in scalar mode and the intra-warp divergent guard still fails.
    check_text_kernel(STORM_IR, "storm", grid_dim=1, block_dim=32,
                      args=[STORM_TRIPS])


def test_guard_storm_exercises_every_deopt_kind():
    """The storm kernel must actually hit the paths it claims to hit.

    Runs under a live obs session so the jit's region remarks are
    observable, then asserts the remark stream records diamond
    compilation plus guard-driven truncation or dropping — without
    those, the two bit-identicality tests above would be vacuous.
    """
    from repro.obs import session as obs_session

    assert obs_session.active() is None, "a test leaked a live session"
    session = obs_session.install()
    try:
        launch_engine(STORM_IR, "storm", "jit", args=[STORM_TRIPS])
    finally:
        obs_session.uninstall()
    jit_remarks = [r for r in session.remarks if r.pass_name == "jit"]
    assert jit_remarks, "jit engine emitted no region remarks"
    diamonds = sum(int(r.args.get("diamonds", 0)) for r in jit_remarks)
    assert diamonds > 0, "no diamond was compiled — kernel shape drifted?"
    actions = {r.args.get("action") for r in jit_remarks
               if r.args.get("action")}
    assert actions & {"truncated", "dropped"}, (
        f"no guard demotion happened (actions seen: {sorted(actions)}) — "
        f"the asymmetric divergent branch is supposed to storm its guard")


# -- profiling must be strictly observational ---------------------------------

def test_profiling_on_vs_off_bit_identical():
    """Execution profiling may never perturb outputs or Counters.

    The profile hooks sit inside the engines' hot loops (including the
    jit's compiled regions and deopt paths), so this runs the storm
    kernel — every deopt kind live — plus a real benchmark under a live
    session and pins the results against the unprofiled ones.
    """
    from repro.obs import session as obs_session

    assert obs_session.active() is None, "a test leaked a live session"
    plain = {engine: launch_engine(STORM_IR, "storm", engine,
                                   args=[STORM_TRIPS])
             for engine in ("warp",) + FAST_ENGINES}
    session = obs_session.install()
    try:
        profiled = {engine: launch_engine(STORM_IR, "storm", engine,
                                          args=[STORM_TRIPS])
                    for engine in ("warp",) + FAST_ENGINES}
    finally:
        obs_session.uninstall()
    assert session.profile.block_hits, "profiling was on but recorded nothing"
    for engine, per_func in plain.items():
        for fname, (ret, counters) in per_func.items():
            ret_p, counters_p = profiled[engine][fname]
            label = f"storm:@{fname}/{engine}/profiled"
            assert ret_p == ret, f"{label}: return values differ"
            assert_counters_identical(counters_p, counters, label)

    bench = next(b for b in BENCHMARKS if b.name == "bspline-vgh")
    out_plain, counters_plain = bench.run(bench.build_module(), engine="jit")
    session = obs_session.install()
    try:
        out_prof, counters_prof = bench.run(bench.build_module(),
                                            engine="jit")
    finally:
        obs_session.uninstall()
    for buf_name in out_plain:
        assert out_plain[buf_name].tobytes() == out_prof[buf_name].tobytes()
    assert_counters_identical(counters_prof, counters_plain,
                              "bspline-vgh/jit/profiled")


# -- cross-launch region persistence must be strictly observational -----------

def _compare_runs(label, got, reference):
    assert got.keys() == reference.keys()
    for fname in got:
        ret_g, counters_g = got[fname]
        ret_r, counters_r = reference[fname]
        assert ret_g == ret_r, f"{label}:@{fname}: return values differ"
        assert_counters_identical(counters_g, counters_r,
                                  f"{label}:@{fname}")


@pytest.mark.parametrize("fuse", FUSE_MODES, ids=FUSE_IDS)
def test_region_cache_cold_vs_warm_bit_identical(tmp_path, monkeypatch, fuse):
    """A warm launch replays persisted plans and must change nothing.

    The storm kernel is the adversarial case: its cold run truncates a
    guard-storming region and drops a cold one, and that *reshaped* plan
    is what guard feedback persists — so the warm run starts from the
    truncated shape rather than rediscovering the deopts, takes different
    internal paths to the same replay, and still has to be bit-identical
    to both the cold run and the per-warp reference.
    """
    from repro.gpu.region_cache import reset_region_cache, take_session

    monkeypatch.setenv("REPRO_REGION_CACHE_DIR", str(tmp_path))
    reset_region_cache()
    take_session()
    try:
        reference = launch_engine(STORM_IR, "storm", "warp",
                                  args=[STORM_TRIPS])
        with fusion(fuse):
            cold = launch_engine(STORM_IR, "storm", "jit",
                                 args=[STORM_TRIPS])
        cold_sess = take_session()
        assert cold_sess["selections"] > 0, "cold run did not select regions"
        assert cold_sess["replays"] == 0
        assert cold_sess["puts"] > cold_sess["selections"], (
            "guard feedback (truncation/drop) was not re-persisted — the "
            "warm run below would not start from the reshaped plan")

        # New process simulation: drop the in-process instance (and its
        # plan memo) so the warm run must replay from disk.
        reset_region_cache()
        with fusion(fuse):
            warm = launch_engine(STORM_IR, "storm", "jit",
                                 args=[STORM_TRIPS])
        warm_sess = take_session()
        assert warm_sess["selections"] == 0, (
            f"warm launch re-selected {warm_sess['selections']} regions "
            "instead of replaying persisted plans")
        assert warm_sess["replays"] > 0

        _compare_runs(f"storm/cold/fuse={fuse}", cold, reference)
        _compare_runs(f"storm/warm/fuse={fuse}", warm, reference)
    finally:
        reset_region_cache()  # Do not leak the tmp-rooted instance.


def test_region_cache_fuse_flag_is_part_of_the_key(tmp_path, monkeypatch):
    """Toggling ``REPRO_JIT_FUSE`` must never replay the other mode's plan."""
    from repro.gpu.region_cache import reset_region_cache, take_session

    monkeypatch.setenv("REPRO_REGION_CACHE_DIR", str(tmp_path))
    reset_region_cache()
    take_session()
    try:
        reference = launch_engine(STORM_IR, "storm", "warp",
                                  args=[STORM_TRIPS])
        with fusion(True):
            launch_engine(STORM_IR, "storm", "jit", args=[STORM_TRIPS])
        take_session()
        with fusion(False):
            nofuse = launch_engine(STORM_IR, "storm", "jit",
                                   args=[STORM_TRIPS])
        sess = take_session()
        assert sess["replays"] == 0 and sess["selections"] > 0, (
            "a fusion-enabled plan was replayed for a fusion-disabled "
            "launch — the fuse flag fell out of the cache key")
        _compare_runs("storm/nofuse-after-fuse", nofuse, reference)
    finally:
        reset_region_cache()
