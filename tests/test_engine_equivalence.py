"""Bit-identicality contract between the two execution engines.

The launch-vectorized ("batched") engine exists purely for wall-clock:
it must produce byte-for-byte the same outputs and *exactly* the same
Counters — cycles included, which are float sums and therefore sensitive
to accumulation order — as the per-warp ("warp") engine.  That contract
is what lets the persistent cell cache omit the engine from its keys and
lets the fuzz oracle treat the engines as interchangeable.

Coverage here is deliberately broad rather than deep:

* every benchmark analog's full workload (real multi-launch geometry),
* the same workloads after the heuristic u&u pipeline (optimized CFGs
  stress unmerged/unrolled control flow),
* every regression kernel in ``tests/corpus/`` at a multi-warp geometry
  with a boundary warp (block_dim not a multiple of 32),
* freshly fuzz-generated kernels, again multi-warp, so data-dependent
  divergence exercises the demotion path.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.bench import all_benchmarks
from repro.frontend.lower import lower_kernels
from repro.fuzz.corpus import load_corpus
from repro.fuzz.generator import generate_kernel
from repro.fuzz.oracle import default_args
from repro.gpu import Counters, Memory, SimtMachine
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.transforms.pipeline import compile_module

#: Multi-warp geometry with a boundary warp: 2 blocks x 3 warps, the
#: last warp of each block only 16 lanes active.
GRID_DIM = 2
BLOCK_DIM = 80

BENCHMARKS = all_benchmarks()
CORPUS = load_corpus()
FUZZ_SEEDS = (3, 11, 27)


def assert_counters_identical(batched: Counters, warp: Counters,
                              label: str) -> None:
    """Every field — float cycle accumulators included — must be equal."""
    for f in dataclasses.fields(Counters):
        b, w = getattr(batched, f.name), getattr(warp, f.name)
        assert b == w, (f"{label}: Counters.{f.name} differs between "
                        f"engines: batched={b!r} warp={w!r}")


def assert_category_invariant(counters: Counters, label: str) -> None:
    """cat_cycles + fetch stalls re-sum to total cycles (up to fp order)."""
    total = sum(counters.cat_cycles) + counters.fetch_stall_cycles
    assert math.isclose(total, counters.cycles, rel_tol=1e-9, abs_tol=1e-6), \
        f"{label}: sum(cat_cycles)+fetch {total} != cycles {counters.cycles}"


def launch_both(ir_text: str, name: str):
    """Launch every function of ``ir_text`` under both engines."""
    results = {}
    for engine in ("batched", "warp"):
        module = parse_module(ir_text, name)
        machine = SimtMachine(module, Memory(), engine=engine)
        per_func = {}
        for fname, func in module.functions.items():
            result = machine.launch(func, GRID_DIM, BLOCK_DIM,
                                    default_args(func))
            ret = result.return_values
            per_func[fname] = (None if ret is None else ret.tobytes(),
                               result.counters)
        results[engine] = per_func
    return results


def check_text_kernel(ir_text: str, name: str) -> None:
    results = launch_both(ir_text, name)
    assert results["batched"].keys() == results["warp"].keys()
    for fname in results["batched"]:
        ret_b, counters_b = results["batched"][fname]
        ret_w, counters_w = results["warp"][fname]
        label = f"{name}:@{fname}"
        assert ret_b == ret_w, f"{label}: return values differ"
        assert_counters_identical(counters_b, counters_w, label)
        assert_category_invariant(counters_b, label)


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_benchmark_baseline_bit_identical(bench):
    out_b, counters_b = bench.run(bench.build_module(), engine="batched")
    out_w, counters_w = bench.run(bench.build_module(), engine="warp")
    assert out_b.keys() == out_w.keys()
    for buf_name in out_b:
        assert out_b[buf_name].tobytes() == out_w[buf_name].tobytes(), \
            f"{bench.name}: output buffer {buf_name} differs between engines"
    assert_counters_identical(counters_b, counters_w, bench.name)
    assert_category_invariant(counters_b, bench.name)


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_benchmark_heuristic_bit_identical(bench):
    outs, counters = {}, {}
    for engine in ("batched", "warp"):
        module = bench.build_module()
        compile_module(module, "uu_heuristic")
        outs[engine], counters[engine] = bench.run(module, engine=engine)
    for buf_name in outs["batched"]:
        assert outs["batched"][buf_name].tobytes() == \
            outs["warp"][buf_name].tobytes(), \
            f"{bench.name}/uu_heuristic: buffer {buf_name} differs"
    assert_counters_identical(counters["batched"], counters["warp"],
                              f"{bench.name}/uu_heuristic")


@pytest.mark.skipif(not CORPUS, reason="no corpus entries")
@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
def test_corpus_bit_identical(entry):
    check_text_kernel(entry.text, entry.name)


@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzzed_kernels_bit_identical(seed):
    kernel = generate_kernel(seed)
    module = lower_kernels([kernel], f"fuzz{seed}")
    check_text_kernel(print_module(module), f"fuzz{seed}")
