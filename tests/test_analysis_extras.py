"""Additional analysis coverage: cost model, paths, CFG utilities."""

import pytest

from repro.analysis import (LoopInfo, block_cost, count_paths, function_size,
                            instruction_cost, loop_size, postorder,
                            reverse_postorder, split_edge, topological_order)
from repro.analysis.cfg_utils import blocks_reaching, predecessor_map
from repro.ir import parse_function, verify_function


class TestCostModel:
    def test_phis_and_plain_branches_are_free(self):
        f = parse_function("""
define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %out
out:
  ret i64 %i
}
""")
        loop_block = f.blocks[1]
        phi = loop_block.phis()[0]
        assert instruction_cost(phi) == 0
        entry_br = f.entry.instructions[-1]
        assert instruction_cost(entry_br) == 0

    def test_expensive_ops_cost_more(self):
        f = parse_function("""
define i64 @f(i64 %a, i64 %b) {
entry:
  %s = add i64 %a, %b
  %d = sdiv i64 %a, %b
  ret i64 %d
}
""")
        add, div = f.entry.instructions[0], f.entry.instructions[1]
        assert instruction_cost(div) > instruction_cost(add)

    def test_loop_size_sums_blocks(self):
        f = parse_function("""
define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %next, %loop ]
  %sq = mul i64 %i, %i
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %loop, label %out
out:
  ret i64 %sq
}
""")
        loop = LoopInfo.compute(f).loops[0]
        assert loop_size(loop) == sum(block_cost(b) for b in loop.blocks)
        assert function_size(f) >= loop_size(loop)


class TestPathCounting:
    def test_nested_branches_multiply(self):
        f = parse_function("""
define i64 @f(i64 %n, i1 %c1, i1 %c2) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %next, %m2 ]
  %cc = icmp slt i64 %i, %n
  br i1 %cc, label %b1, label %x
b1:
  br i1 %c1, label %a1, label %a2
a1:
  br label %m1
a2:
  br label %m1
m1:
  br i1 %c2, label %d1, label %d2
d1:
  br label %m2
d2:
  br label %m2
m2:
  %next = add i64 %i, 1
  br label %h
x:
  ret i64 %i
}
""")
        info = LoopInfo.compute(f)
        assert count_paths(info.loops[0], info) == 4

    def test_limit_caps_explosion(self):
        f = parse_function("""
define i64 @f(i64 %n, i1 %c) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %next, %m ]
  %cc = icmp slt i64 %i, %n
  br i1 %cc, label %b, label %x
b:
  br i1 %c, label %a1, label %a2
a1:
  br label %m
a2:
  br label %m
m:
  %next = add i64 %i, 1
  br label %h
x:
  ret i64 %i
}
""")
        info = LoopInfo.compute(f)
        assert count_paths(info.loops[0], info, limit=1) == 1


class TestCFGUtils:
    FUNC = """
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  ret void
}
"""

    def test_orders(self):
        f = parse_function(self.FUNC)
        rpo = reverse_postorder(f)
        po = postorder(f)
        assert rpo[0] is f.entry
        assert po[-1] is f.entry
        assert list(reversed(po)) == rpo

    def test_topological_order(self):
        f = parse_function(self.FUNC)
        order = topological_order(list(f.blocks))
        pos = {id(b): i for i, b in enumerate(order)}
        for block in f.blocks:
            for succ in block.successors():
                assert pos[id(block)] < pos[id(succ)]

    def test_topological_rejects_cycles(self):
        f = parse_function("""
define void @f() {
entry:
  br label %a
a:
  br label %b
b:
  br label %a
}
""")
        with pytest.raises(ValueError):
            topological_order(list(f.blocks))

    def test_blocks_reaching(self):
        f = parse_function(self.FUNC)
        bb = {b.name: b for b in f.blocks}
        preds = predecessor_map(f)
        reaching = blocks_reaching([bb["join"]], preds)
        assert {id(b) for b in f.blocks} == reaching
        reaching_a = blocks_reaching([bb["a"]], preds)
        assert id(bb["b"]) not in reaching_a

    def test_split_edge(self):
        f = parse_function("""
define i64 @f(i1 %c) {
entry:
  br i1 %c, label %t, label %join
t:
  br label %join
join:
  %r = phi i64 [ 1, %t ], [ 2, %entry ]
  ret i64 %r
}
""")
        bb = {b.name: b for b in f.blocks}
        mid = split_edge(bb["entry"], bb["join"])
        verify_function(f)
        phi = bb["join"].phis()[0]
        assert phi.has_incoming_for(mid)
        assert not phi.has_incoming_for(bb["entry"])
