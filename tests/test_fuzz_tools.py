"""Fuzz tooling tests: oracle, bisector, and reducer on a known miscompile.

The miscompile is *injected*: ``repro.transforms.fold.fptosi_const`` is
monkeypatched back to the pre-fix truncating behavior (C-cast wrapping
instead of the interpreter's saturating contract).  Constant folding then
disagrees with runtime execution on out-of-range ``fptosi`` — exactly the
class of bug the fuzzing subsystem exists to catch — and the tools must
(a) flag it, (b) name the folding pass, and (c) shrink the repro.
"""

import math

import pytest

from repro.frontend.ast import (Assign, BinOp, Call, Cast, Cmp, For, If,
                                KernelDef, Lit, Param, Return, V)
from repro.fuzz.bisect import bisect_divergence
from repro.fuzz.oracle import (ConfigSpec, run_differential,
                               subject_from_kernel)
from repro.fuzz.reduce import (block_count, first_failure, reduce_failure,
                               statement_count)

#: The poisoned constant: far outside i32 range, so the saturating
#: interpreter clamps to INT32_MAX while the buggy folder wraps.
BIG = 3.0e12


def _broken_fptosi(value, to_type):
    """Pre-fix fold_cast behavior: truncate and wrap, no saturation."""
    if math.isnan(value) or math.isinf(value):
        return 0
    return int(value)  # ConstantInt wraps the overflow to the width


def _poison_kernel() -> KernelDef:
    """Small structured kernel whose only bug is the poisoned constant."""
    body = [
        Assign("a", Cast("i32", BinOp("&", V("seed"), Lit(255)))),
        For("i", Lit(0), Lit(4),
            [Assign("a", BinOp("+", V("a"), Cast("i32", V("i"))))]),
        If(Cmp("<", Cast("i32", Call("tid.x")), Lit(7)),
           [Assign("a", BinOp("*", V("a"), Lit(3)))],
           [Assign("a", BinOp("-", V("a"), Lit(1)))]),
        Assign("x", Cast("i32", Lit(BIG, "f64"))),
        Return(BinOp("^", Cast("i64", V("a")), Cast("i64", V("x")))),
    ]
    return KernelDef("poison", [Param("seed", "i64"), Param("noise", "f64")],
                     body, "i64")


@pytest.fixture
def broken_fold(monkeypatch):
    monkeypatch.setattr("repro.transforms.fold.fptosi_const",
                        _broken_fptosi)


class TestOracleCatchesInjectedBug:
    def test_clean_without_injection(self):
        report = run_differential(subject_from_kernel(_poison_kernel()))
        assert report.ok, "\n".join(o.describe() for o in report.failures)

    def test_all_configs_mismatch_with_injection(self, broken_fold):
        report = run_differential(subject_from_kernel(_poison_kernel()))
        assert not report.ok
        # The cleanup battery folds the constant in every configuration,
        # including baseline: the unoptimized reference is the anchor.
        baseline = next(o for o in report.outcomes
                        if o.spec.config == "baseline")
        assert not baseline.ok
        assert baseline.kind == "mismatch"
        assert "lane" in baseline.detail


class TestBisector:
    def test_names_the_folding_pass(self, broken_fold):
        subject = subject_from_kernel(_poison_kernel())
        result = bisect_divergence(subject, ConfigSpec("baseline"))
        assert result is not None
        assert result.kind == "mismatch"
        # Both instcombine and SCCP fold casts; whichever runs first on
        # the poisoned constant is the honest culprit.
        assert result.culprit in ("instcombine", "sccp")
        assert result.step >= 1
        assert result.trail[result.step - 1] == result.culprit

    def test_returns_none_when_clean(self):
        subject = subject_from_kernel(_poison_kernel())
        assert bisect_divergence(subject, ConfigSpec("baseline")) is None


class TestReducer:
    def test_shrinks_to_minimal_repro(self, broken_fold):
        kernel = _poison_kernel()
        report = run_differential(subject_from_kernel(kernel))
        spec = first_failure(report)
        assert spec is not None

        reduced = reduce_failure(kernel, spec)
        # The loop and the divergent branch are noise; only the poisoned
        # cast and the return can remain interesting.
        assert statement_count(reduced.body) < statement_count(kernel.body)
        assert statement_count(reduced.body) <= 3
        assert block_count(reduced) <= 15

        # The reduced kernel still reproduces the failure...
        failing = run_differential(subject_from_kernel(reduced))
        assert not failing.ok
        # ...and the bisector still names the same culprit on it.
        found = bisect_divergence(subject_from_kernel(reduced), spec)
        assert found is not None
        assert found.culprit in ("instcombine", "sccp")

    def test_reduction_is_deterministic(self, broken_fold):
        kernel_a = _poison_kernel()
        spec = first_failure(run_differential(subject_from_kernel(kernel_a)))
        reduced_a = reduce_failure(kernel_a, spec)
        reduced_b = reduce_failure(_poison_kernel(), spec)
        assert statement_count(reduced_a.body) == \
            statement_count(reduced_b.body)
