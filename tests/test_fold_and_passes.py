"""Tests for constant folding primitives, pass manager, and pipelines."""

import math
import time

import pytest

from repro.gpu.machine import SimtMachine
from repro.ir import (ConstantFloat, ConstantInt, Module, parse_function,
                      parse_module, verify_module)
from repro.ir import types as T
from repro.transforms import (CONFIGS, CompileTimeout, DeadCodeElimination,
                              FixpointPassManager, PassManager, SimplifyCFG,
                              build_pipeline, compile_module)
from repro.transforms.fold import (fold_cast, fold_fcmp, fold_icmp,
                                   fold_int_binop, fold_float_binop)


class TestIntFold:
    def test_wrapping_add(self):
        a = ConstantInt(T.I8, 120)
        b = ConstantInt(T.I8, 10)
        assert fold_int_binop("add", a, b).value == -126

    def test_sdiv_truncates(self):
        a = ConstantInt(T.I64, -7)
        b = ConstantInt(T.I64, 2)
        assert fold_int_binop("sdiv", a, b).value == -3

    def test_srem_sign(self):
        a = ConstantInt(T.I64, -7)
        b = ConstantInt(T.I64, 3)
        assert fold_int_binop("srem", a, b).value == -1

    def test_division_by_zero_not_folded(self):
        a = ConstantInt(T.I64, 1)
        z = ConstantInt(T.I64, 0)
        assert fold_int_binop("sdiv", a, z) is None
        assert fold_int_binop("urem", a, z) is None

    def test_unsigned_ops(self):
        a = ConstantInt(T.I8, -1)     # 255 unsigned.
        b = ConstantInt(T.I8, 2)
        assert fold_int_binop("udiv", a, b).value == 127
        assert fold_int_binop("lshr", a, ConstantInt(T.I8, 4)).value == 15

    def test_oversized_shift_not_folded(self):
        a = ConstantInt(T.I8, 1)
        assert fold_int_binop("shl", a, ConstantInt(T.I8, 9)) is None

    @pytest.mark.parametrize("pred,expected", [
        ("slt", True), ("sgt", False), ("eq", False), ("ne", True),
        ("ult", False), ("ugt", True),  # -1 is huge unsigned.
    ])
    def test_icmp(self, pred, expected):
        a = ConstantInt(T.I64, -1)
        b = ConstantInt(T.I64, 1)
        assert fold_icmp(pred, a, b).value == (1 if expected else 0)


class TestFloatFold:
    def test_arith(self):
        a = ConstantFloat(T.F64, 1.5)
        b = ConstantFloat(T.F64, 2.0)
        assert fold_float_binop("fmul", a, b).value == 3.0

    def test_nan_unordered_compare(self):
        nan = ConstantFloat(T.F64, float("nan"))
        one = ConstantFloat(T.F64, 1.0)
        assert fold_fcmp("olt", nan, one).value == 0
        assert fold_fcmp("ult", nan, one).value == 1
        assert fold_fcmp("une", nan, nan).value == 1


SIMPLE = """
define i64 @f(i64 %x) {
entry:
  %dead = add i64 %x, 0
  ret i64 %x
}
"""


class TestPassManager:
    def test_stats_recorded(self):
        f = parse_function(SIMPLE)
        pm = PassManager([DeadCodeElimination(), SimplifyCFG()])
        pm.run_function(f)
        assert pm.stats.runs["dce"] == 1
        assert pm.stats.times["dce"] >= 0
        assert pm.stats.changes.get("dce") == 1
        assert pm.stats.dominant_pass() in ("dce", "simplifycfg")

    def test_fixpoint_stops(self):
        f = parse_function(SIMPLE)
        pm = FixpointPassManager([DeadCodeElimination()], max_iterations=8)
        pm.run_function(f)
        # First round removes the dead add, second confirms no change.
        assert pm.stats.runs["dce"] == 2

    def test_deadline_raises(self):
        f = parse_function(SIMPLE)
        pm = PassManager([DeadCodeElimination()])
        pm.deadline = time.perf_counter() - 1.0
        with pytest.raises(CompileTimeout):
            pm.run_function(f)

    def test_verify_each_catches_breakage(self):
        class Vandal:
            name = "vandal"

            def run(self, func):
                func.entry.instructions[-1].erase_from_parent()
                return True

        f = parse_function(SIMPLE)
        pm = PassManager([Vandal()], verify_each=True)
        with pytest.raises(AssertionError, match="vandal"):
            pm.run_function(f)


class TestPipelines:
    def test_all_configs_buildable(self):
        for config in CONFIGS:
            pipeline = build_pipeline(config, loop_id="f:0", factor=2)
            assert pipeline.passes

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            build_pipeline("o9000")

    def test_per_loop_configs_require_loop_id(self):
        for config in ("uu", "unroll", "unmerge"):
            with pytest.raises(ValueError):
                build_pipeline(config)

    def test_compile_module_reports(self):
        module = parse_module(SIMPLE, "m")
        result = compile_module(module, "baseline")
        assert result.config == "baseline"
        assert result.code_size > 0
        assert result.compile_seconds > 0
        assert not result.timed_out

    def test_compile_timeout_flag(self):
        module = parse_module(SIMPLE, "m")
        result = compile_module(module, "baseline", timeout_seconds=-1.0)
        assert result.timed_out
        verify_module(module)  # Timed-out modules stay structurally valid.


def _fdiv(a, b):
    return fold_float_binop("fdiv", ConstantFloat(T.F64, a),
                            ConstantFloat(T.F64, b)).value


class TestIEEEDivisionFold:
    """fdiv/frem folds follow IEEE 754, zero divisors included — the
    interpreter's numpy semantics, not Python's ZeroDivisionError."""

    def test_sign_of_zero_divisor_selects_infinity(self):
        assert _fdiv(1.5, -0.0) == float("-inf")
        assert _fdiv(1.5, 0.0) == float("inf")
        assert _fdiv(-2.0, 0.0) == float("-inf")

    def test_negative_zero_result_keeps_its_sign(self):
        r = _fdiv(-0.0, 5.0)
        assert r == 0.0
        assert math.copysign(1.0, r) == -1.0

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(_fdiv(0.0, -0.0))
        assert math.isnan(_fdiv(-0.0, 0.0))
        assert math.isnan(_fdiv(float("nan"), 2.0))

    def test_frem_is_total_on_infinite_numerator(self):
        r = fold_float_binop("frem", ConstantFloat(T.F64, float("inf")),
                             ConstantFloat(T.F64, 2.0)).value
        assert math.isnan(r)


class TestFptosiSaturation:
    """fptosi folds saturate exactly like the interpreter."""

    def _cast(self, value, to_type):
        return fold_cast("fptosi", ConstantFloat(T.F64, value), to_type).value

    def test_nan_is_zero(self):
        assert self._cast(float("nan"), T.I32) == 0

    def test_infinities_clamp(self):
        assert self._cast(float("inf"), T.I32) == 2**31 - 1
        assert self._cast(float("-inf"), T.I32) == -(2**31)

    def test_out_of_range_clamps(self):
        assert self._cast(3.0e12, T.I32) == 2**31 - 1
        assert self._cast(-3.0e12, T.I32) == -(2**31)
        assert self._cast(9.3e18, T.I64) == 2**63 - 1
        assert self._cast(-9.3e18, T.I64) == -(2**63)

    def test_int64_max_rounding_edge(self):
        # float(2**63 - 1) rounds *up* to 2**63; the clamp must still
        # produce INT64_MAX, not wrap.
        assert self._cast(float(2**63 - 1), T.I64) == 2**63 - 1

    def test_in_range_truncates_toward_zero(self):
        assert self._cast(-123.9, T.I32) == -123
        assert self._cast(123.9, T.I32) == 123


SHIFT_KERNEL = """
define {ty} @f({ty} %x, {ty} %s) {{
entry:
  %r = {op} {ty} %x, %s
  ret {ty} %r
}}
"""


def _signed(value, bits):
    mask = (1 << bits) - 1
    value &= mask
    return value - (1 << bits) if value >> (bits - 1) else value


class TestShiftAgreement:
    """Folder and interpreter agree on shifts at every supported width.

    Shift amounts arrive as runtime arguments so nothing folds in the
    kernel; the folder is consulted directly on matching constants.
    """

    WIDTHS = [("i1", T.I1, 1), ("i8", T.I8, 8),
              ("i32", T.I32, 32), ("i64", T.I64, 64)]

    @pytest.mark.parametrize("op", ["shl", "lshr", "ashr"])
    @pytest.mark.parametrize("ty,itype,bits", WIDTHS,
                             ids=[w[0] for w in WIDTHS])
    def test_machine_matches_folder(self, op, ty, itype, bits):
        module = parse_module(SHIFT_KERNEL.format(ty=ty, op=op), "shift")
        machine = SimtMachine(module)
        func = module.functions["f"]
        mask = (1 << bits) - 1
        values = sorted({_signed(v, bits) for v in
                         (0, 1, -1, 5, -7, (1 << (bits - 1)) - 1,
                          -(1 << (bits - 1)))})
        amounts = sorted({a for a in (0, 1, bits // 2, bits - 1)
                          if a < bits})
        for x in values:
            for s in amounts:
                ret, _ = machine.run_function(func, [x, s], 1)
                folded = fold_int_binop(op, ConstantInt(itype, x),
                                        ConstantInt(itype, s))
                assert folded is not None, (ty, op, x, s)
                assert int(ret[0]) & mask == folded.value & mask, \
                    (ty, op, x, s, int(ret[0]), folded.value)
