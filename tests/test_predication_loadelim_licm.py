"""Predication (if-conversion), load elimination and LICM tests."""

import pytest

from repro.ir import parse_function, verify_function
from repro.transforms import (run_dce, run_licm, run_load_elim,
                              run_predication, run_simplifycfg)


def count_op(func, opcode):
    return sum(1 for i in func.instructions() if i.opcode == opcode)


class TestPredication:
    def test_diamond_becomes_selects(self):
        # The XSBench baseline shape: both selp instructions of Listing 4.
        f = parse_function("""
define i64 @f(i64 %mid, i64 %upper, i64 %lower, i1 %gt) {
entry:
  br i1 %gt, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  %nu = phi i64 [ %mid, %t ], [ %upper, %e ]
  %nl = phi i64 [ %lower, %t ], [ %mid, %e ]
  %r = sub i64 %nu, %nl
  ret i64 %r
}
""")
        assert run_predication(f)
        run_simplifycfg(f)
        verify_function(f)
        assert len(f.blocks) == 1
        assert count_op(f, "select") == 2

    def test_triangle_with_speculatable_body(self):
        # The `complex` baseline shape (paper Listing 7): the conditional
        # multiply-adds become selects.
        f = parse_function("""
define f64 @f(f64 %a_new, f64 %a, f64 %c_new, f64 %c, i1 %odd) {
entry:
  br i1 %odd, label %t, label %join
t:
  %an = fmul f64 %a_new, %a
  %cn0 = fmul f64 %c_new, %a
  %cn = fadd f64 %cn0, %c
  br label %join
join:
  %ra = phi f64 [ %an, %t ], [ %a_new, %entry ]
  %rc = phi f64 [ %cn, %t ], [ %c_new, %entry ]
  %r = fadd f64 %ra, %rc
  ret f64 %r
}
""")
        assert run_predication(f)
        verify_function(f)
        run_simplifycfg(f)
        assert len(f.blocks) == 1
        assert count_op(f, "select") == 2

    def test_loads_not_speculated(self):
        f = parse_function("""
define f64 @f(f64* %p, f64 %x, i1 %c) {
entry:
  br i1 %c, label %t, label %join
t:
  %v = load f64, f64* %p
  br label %join
join:
  %r = phi f64 [ %v, %t ], [ %x, %entry ]
  ret f64 %r
}
""")
        assert not run_predication(f)
        assert len(f.blocks) == 3

    def test_stores_not_speculated(self):
        f = parse_function("""
define void @f(f64* %p, i1 %c) {
entry:
  br i1 %c, label %t, label %join
t:
  store f64 1.0, f64* %p
  br label %join
join:
  ret void
}
""")
        assert not run_predication(f)

    def test_division_not_speculated(self):
        f = parse_function("""
define i64 @f(i64 %x, i64 %y, i1 %c) {
entry:
  br i1 %c, label %t, label %join
t:
  %d = sdiv i64 %x, %y
  br label %join
join:
  %r = phi i64 [ %d, %t ], [ %x, %entry ]
  ret i64 %r
}
""")
        assert not run_predication(f)

    def test_cost_threshold_respected(self):
        body = "\n".join(
            f"  %v{i} = fadd f64 %x, {float(i)}" for i in range(20))
        uses = " ".join("")
        f = parse_function(f"""
define f64 @f(f64 %x, i1 %c) {{
entry:
  br i1 %c, label %t, label %join
t:
{body}
  %sum = fadd f64 %v0, %v19
  br label %join
join:
  %r = phi f64 [ %sum, %t ], [ %x, %entry ]
  ret f64 %r
}}
""")
        from repro.transforms import Predication

        assert not Predication(threshold=16).run(f)
        assert Predication(threshold=1000).run(f)


class TestLoadElimination:
    def test_repeated_load_removed(self):
        f = parse_function("""
define f64 @f(f64* %p) {
entry:
  %a = load f64, f64* %p
  %b = load f64, f64* %p
  %r = fadd f64 %a, %b
  ret f64 %r
}
""")
        assert run_load_elim(f)
        assert count_op(f, "load") == 1

    def test_store_forwarding(self):
        f = parse_function("""
define f64 @f(f64* %p, f64 %x) {
entry:
  store f64 %x, f64* %p
  %v = load f64, f64* %p
  ret f64 %v
}
""")
        assert run_load_elim(f)
        ret = f.entry.terminator
        assert ret.value is f.args[1]

    def test_aliasing_store_invalidates(self):
        f = parse_function("""
define f64 @f(f64* %p, f64* %q) {
entry:
  %a = load f64, f64* %p
  store f64 0.0, f64* %q
  %b = load f64, f64* %p
  %r = fadd f64 %a, %b
  ret f64 %r
}
""")
        assert not run_load_elim(f)
        assert count_op(f, "load") == 2

    def test_restrict_args_do_not_alias(self):
        f = parse_function("""
define f64 @f(f64* %p, f64* %q) {
entry:
  %a = load f64, f64* %p
  store f64 0.0, f64* %q
  %b = load f64, f64* %p
  %r = fadd f64 %a, %b
  ret f64 %r
}
""")
        f.attributes["restrict_args"] = ("p", "q")
        assert run_load_elim(f)
        assert count_op(f, "load") == 1

    def test_availability_flows_single_pred_only(self):
        # Availability dies at merges: the paper's motivation for unmerging.
        f = parse_function("""
define f64 @f(f64* %p, i1 %c) {
entry:
  %a = load f64, f64* %p
  br i1 %c, label %t, label %e
t:
  %x = load f64, f64* %p
  br label %join
e:
  br label %join
join:
  %y = load f64, f64* %p
  %r = fadd f64 %x, %y
  ret f64 %r
}
""")
        run_load_elim(f)
        # %x (single-pred chain from entry) eliminated, %y (merge) kept.
        assert count_op(f, "load") == 2
        join = [b for b in f.blocks if b.name == "join"][0]
        assert any(i.opcode == "load" for i in join.instructions)


class TestLICM:
    def test_invariant_computation_hoisted(self):
        f = parse_function("""
define i64 @f(i64 %n, i64 %a, i64 %b) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %inv = mul i64 %a, %b
  %next = add i64 %i, %inv
  %c = icmp slt i64 %next, %n
  br i1 %c, label %header, label %exit
exit:
  ret i64 %next
}
""")
        assert run_licm(f)
        verify_function(f)
        header = [b for b in f.blocks if b.name == "header"][0]
        assert not any(i.opcode == "mul" for i in header.instructions)

    def test_variant_not_hoisted(self):
        f = parse_function("""
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %sq = mul i64 %i, %i
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %header, label %exit
exit:
  ret i64 %sq
}
""")
        assert not run_licm(f)

    def test_trapping_op_not_hoisted(self):
        f = parse_function("""
define i64 @f(i64 %n, i64 %a, i64 %b) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %inv = sdiv i64 %a, %b
  %next = add i64 %i, %inv
  %c = icmp slt i64 %next, %n
  br i1 %c, label %header, label %exit
exit:
  ret i64 %next
}
""")
        assert not run_licm(f)

    def test_invariant_load_hoisted_without_stores(self):
        f = parse_function("""
define f64 @f(f64* %p, i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %acc = phi f64 [ 0.0, %entry ], [ %nacc, %header ]
  %v = load f64, f64* %p
  %nacc = fadd f64 %acc, %v
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %header, label %exit
exit:
  ret f64 %nacc
}
""")
        assert run_licm(f)
        header = [b for b in f.blocks if b.name == "header"][0]
        assert not any(i.opcode == "load" for i in header.instructions)

    def test_load_not_hoisted_past_aliasing_store(self):
        f = parse_function("""
define f64 @f(f64* %p, f64* %q, i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %header ]
  %v = load f64, f64* %p
  %g = gep f64* %q, i64 %i
  store f64 %v, f64* %g
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  br i1 %c, label %header, label %exit
exit:
  ret f64 %v
}
""")
        # p and q may alias (no restrict): the load stays put.
        run_licm(f)
        header = [b for b in f.blocks if b.name == "header"][0]
        assert any(i.opcode == "load" for i in header.instructions)

    def test_conditional_code_not_hoisted(self):
        f = parse_function("""
define i64 @f(i64 %n, i64 %a, i1 %c) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %latch ]
  br i1 %c, label %maybe, label %latch
maybe:
  %inv = mul i64 %a, %a
  br label %latch
latch:
  %x = phi i64 [ %inv, %maybe ], [ 0, %header ]
  %next = add i64 %i, 1
  %cc = icmp slt i64 %next, %n
  br i1 %cc, label %header, label %exit
exit:
  ret i64 %x
}
""")
        # %inv is in a block that does not dominate the latch: kept inside.
        assert not run_licm(f)
