"""Partial (selective) unmerging tests — the paper's Section VI extension."""

import numpy as np
import pytest

from repro.analysis import LoopInfo
from repro.gpu import SimtMachine
from repro.ir import Module, parse_function, verify_function
from repro.transforms import merge_is_profitable, unmerge_loop, unroll_loop
from repro.transforms.unmerge import _tail_blocks

# A loop whose merge feeds a re-evaluated comparison: profitable.
PROFITABLE = """
define i64 @f(i64 %kn0, i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %merge ]
  %kn = phi i64 [ %kn0, %entry ], [ %nkn, %merge ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %big = icmp sgt i64 %kn, 1
  br i1 %big, label %dec, label %keep
dec:
  %knm1 = sub i64 %kn, 1
  br label %merge
keep:
  br label %merge
merge:
  %nkn = phi i64 [ %knm1, %dec ], [ %kn, %keep ]
  %recheck = icmp sgt i64 %nkn, 1
  %bonus = select i1 %recheck, i64 1, i64 0
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %kn
}
"""

# Pure accumulation in the merge tail: nothing for the cleanup passes.
UNPROFITABLE = """
define i64 @f(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %next, %merge ]
  %acc = phi i64 [ 0, %entry ], [ %nacc2, %merge ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %bit = and i64 %i, 1
  %odd = icmp eq i64 %bit, 1
  br i1 %odd, label %a, label %b
a:
  br label %merge
b:
  br label %merge
merge:
  %v = phi i64 [ 3, %a ], [ 5, %b ]
  %nacc = add i64 %acc, %v
  %nacc2 = add i64 %nacc, %i
  %next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"""


def _loop_and_tail(text):
    mod = Module("t")
    f = parse_function(text, mod)
    loop = LoopInfo.compute(f).loops[0]
    merge = [b for b in f.blocks if b.name == "merge"][0]
    region = {id(b) for b in loop.blocks}
    tail = _tail_blocks(loop.header, merge, region)
    return mod, f, loop, merge, tail


class TestProfitability:
    def test_reevaluated_comparison_profitable(self):
        _, f, loop, merge, tail = _loop_and_tail(PROFITABLE)
        assert merge_is_profitable(loop.blocks, merge, tail)

    def test_pure_accumulation_unprofitable(self):
        _, f, loop, merge, tail = _loop_and_tail(UNPROFITABLE)
        # %v feeds only adds: no comparison/select/memory in the slice.
        assert not merge_is_profitable(loop.blocks, merge, tail)


class TestSelectiveUnmerge:
    def test_unprofitable_merge_left_alone(self):
        mod = Module("t")
        f = parse_function(UNPROFITABLE, mod)
        loop = LoopInfo.compute(f).loops[0]
        before = len(f.blocks)
        changed = unmerge_loop(f, loop, selective=True)
        assert not changed
        assert len(f.blocks) == before

    def test_profitable_merge_still_duplicated(self):
        mod = Module("t")
        f = parse_function(PROFITABLE, mod)
        loop = LoopInfo.compute(f).loops[0]
        assert unmerge_loop(f, loop, selective=True)
        verify_function(f)
        fresh = LoopInfo.compute(f).loops[0]
        assert len(fresh.latches()) == 2

    @pytest.mark.parametrize("text,n", [(PROFITABLE, 7), (UNPROFITABLE, 6)])
    def test_semantics_preserved(self, text, n):
        mod0 = Module("t0")
        parse_function(text, mod0)
        args = [5, n] if "kn0" in text else [n]
        expected, _ = SimtMachine(mod0).run_function("f", args, lanes=1)

        mod = Module("t")
        f = parse_function(text, mod)
        loop = LoopInfo.compute(f).loops[0]
        unroll_loop(f, loop, 3)
        fresh = [l for l in LoopInfo.compute(f).loops
                 if l.header.name == "header"][0]
        unmerge_loop(f, fresh, selective=True)
        verify_function(f)
        got, _ = SimtMachine(mod).run_function("f", args, lanes=1)
        assert int(got[0]) == int(expected[0])

    def test_selective_produces_less_code(self):
        def size(selective):
            mod = Module("t")
            f = parse_function(UNPROFITABLE, mod)
            loop = LoopInfo.compute(f).loops[0]
            unroll_loop(f, loop, 4)
            fresh = [l for l in LoopInfo.compute(f).loops
                     if l.header.name == "header"][0]
            unmerge_loop(f, fresh, selective=selective)
            verify_function(f)
            return f.instruction_count()

        assert size(selective=True) < size(selective=False)
