"""Tuning transfer via kernel similarity (ROADMAP "Tuning transfer").

The empirical autotuner (:mod:`repro.tune`) finds per-loop decision sets
worth geomean 1.198x, but needs a fresh search per kernel.  This package
makes those wins *transferable*: every tuned kernel contributes its loops
— as deterministic static feature vectors — to a nearest-neighbor index,
and an unseen kernel gets a predicted decision set by voting over its K
nearest tuned loops, with zero empirical evaluations.  The tuner is
demoted to a background refiner (``repro serve`` enqueues it at low
priority; completed refinements upgrade the index).

Layers:

* :mod:`repro.similarity.features` — per-loop + whole-kernel feature
  vectors, versioned by :data:`FEATURE_SCHEMA_VERSION`;
* :mod:`repro.similarity.index` — content-addressed on-disk index under
  ``results/.simindex`` (ShardedLRUStore discipline);
* :mod:`repro.similarity.corpus` — fuzz-generated kernels wrapped as
  benchmarks so the existing ``repro tune`` machinery can grow the index
  offline (``repro similarity build --fuzz-count N``);
* :mod:`repro.similarity.predict` — K-NN vote with a below-confidence
  fallback to the static heuristic, surfaced as the ``predicted``
  pipeline configuration.
"""

from .corpus import FuzzBenchmark, build_from_fuzz, fuzz_corpus
from .features import (FEATURE_SCHEMA_VERSION, KernelFeatures, LoopFeatures,
                       combined_vector, distance, kernel_features)
from .index import (SIMINDEX_DIR_ENV, SimilarityIndex, build_index,
                    default_index_dir, entry_from_tuned)
from .predict import (Prediction, emit_prediction_telemetry, predict_bench,
                      predict_module, prediction_fingerprint)

__all__ = [
    "FuzzBenchmark", "build_from_fuzz", "fuzz_corpus",
    "FEATURE_SCHEMA_VERSION", "KernelFeatures", "LoopFeatures",
    "combined_vector", "distance", "kernel_features",
    "SIMINDEX_DIR_ENV", "SimilarityIndex", "build_index",
    "default_index_dir", "entry_from_tuned",
    "Prediction", "emit_prediction_telemetry", "predict_bench",
    "predict_module", "prediction_fingerprint",
]
