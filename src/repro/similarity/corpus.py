"""Growing the similarity index with fuzz-generated tuned kernels.

The 16 committed apps give the index one loop-shape per benchmark
category; :func:`build_from_fuzz` densifies the corpus by wrapping
deterministic fuzz kernels (:mod:`repro.fuzz.generator`) as benchmarks,
running the *existing* ``repro tune`` search over each, and indexing
every verified winner.  Fuzz entries carry ``source="fuzz"`` so
``repro similarity stats`` can report the committed and generated
populations separately.

Fuzz kernels are scalar (no buffers); :class:`FuzzBenchmark` runs them
oracle-style — every function on one warp with
:func:`repro.fuzz.oracle.default_args` — and exposes the per-lane return
values as the observable outputs, which is exactly what the differential
oracle itself compares.  The tuner runs with ``jobs=1`` and
``persist=False``: fuzz benches are not in the benchmark registry, so
pool workers could not rebuild them by name, and their tunings belong in
the index, not in ``results/tuned/``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..fuzz.generator import GeneratorConfig, generate_kernel
from ..gpu.counters import Counters
from ..gpu.machine import SimtMachine
from ..ir.module import Module
from ..obs import session as obs
from .index import SimilarityIndex

#: Lanes per fuzz run (one full warp, like the differential oracle).
LANES = 32

#: Growth cap for fuzz-kernel pipelines (tens of input instructions).
MAX_INSTRUCTIONS = 3_000


class FuzzBenchmark:
    """One deterministic fuzz kernel wearing the Benchmark interface.

    Satisfies everything the tuner and the feature extractor touch:
    ``name``/``seed``, ``build_module()``, ``loop_ids()``, ``run()``,
    plus empty ``launches()``/``output_buffers()`` so
    :func:`repro.harness.parallel.workload_fingerprint` still produces a
    stable cache identity.
    """

    category = "fuzz"

    def __init__(self, seed: int,
                 config: GeneratorConfig = GeneratorConfig()) -> None:
        self.seed = seed
        self.name = f"fuzz-{seed}"
        self._kernel = generate_kernel(seed, config)

    def kernels(self):
        return [self._kernel]

    def launches(self):
        return []

    def output_buffers(self):
        return []

    def build_module(self) -> Module:
        from ..frontend.lower import lower_kernels
        return lower_kernels([self._kernel], self.name)

    def loop_ids(self) -> List[str]:
        from ..analysis.loops import LoopInfo
        module = self.build_module()
        ids: List[str] = []
        for func in module.functions.values():
            ids.extend(l.loop_id for l in LoopInfo.compute(func).loops)
        return ids

    def run(self, module: Module, icache_capacity=None,
            engine: Optional[str] = None, scale: int = 1):
        """Oracle-style execution: per-lane return values of every function.

        ``scale`` is accepted for interface compatibility but ignored —
        a single warp is already the minimal geometry, and scaling would
        change intra-warp divergence behaviour.
        """
        from ..fuzz.oracle import default_args

        machine = SimtMachine(module, engine=engine)
        outputs: Dict[str, np.ndarray] = {}
        total = Counters()
        for name, func in module.functions.items():
            ret, counters = machine.run_function(func, default_args(func),
                                                 LANES)
            outputs[name] = (np.zeros(0) if ret is None
                             else np.ascontiguousarray(ret))
            total.merge(counters)
        return outputs, total

    def __repr__(self) -> str:
        return f"<FuzzBenchmark {self.name}>"


def fuzz_corpus(count: int, start_seed: int = 0,
                config: GeneratorConfig = GeneratorConfig()
                ) -> List[FuzzBenchmark]:
    """The first ``count`` fuzz benches (by seed) that contain a loop.

    Loop-free kernels carry no transferable evidence; skipping them keeps
    ``--fuzz-count N`` meaning "N useful corpus kernels", deterministic
    in ``start_seed``.
    """
    benches: List[FuzzBenchmark] = []
    seed = start_seed
    while len(benches) < count:
        bench = FuzzBenchmark(seed, config)
        if bench.loop_ids():
            benches.append(bench)
        seed += 1
    return benches


def build_from_fuzz(count: int, *,
                    start_seed: int = 0,
                    index: Optional[SimilarityIndex] = None,
                    budget: Optional[int] = 64,
                    use_cache: bool = True) -> Dict[str, object]:
    """Tune ``count`` fuzz kernels and index every verified winner.

    Returns a summary dict (``indexed``/``unverified`` app lists plus the
    resulting index size).  ``budget`` truncates each kernel's candidate
    enumeration — fuzz kernels have 1-2 loops, so a modest budget already
    measures every candidate.
    """
    from ..tune.search import tune_benchmark
    from ..tune.space import TuneParams

    index = index if index is not None else SimilarityIndex()
    params = TuneParams(budget=budget)
    indexed: List[str] = []
    unverified: List[str] = []
    for bench in fuzz_corpus(count, start_seed):
        result = tune_benchmark(
            bench, params=params, max_instructions=MAX_INSTRUCTIONS,
            jobs=1, use_cache=use_cache, persist=False)
        if not result.verified:
            unverified.append(bench.name)
            obs.remark("missed", "similarity-build", bench.name,
                       f"fuzz tuning unverified ({result.verify_detail}); "
                       "not indexed")
            continue
        index.add_tuned(bench.build_module(), result.config, source="fuzz")
        indexed.append(bench.name)
    return {"indexed": indexed, "unverified": unverified,
            "entries": index.stats()["entries"]}
