"""Content-addressed nearest-neighbor index of tuned loops.

One entry per tuned kernel: its per-loop feature vectors paired with the
decision the empirical search settled on for each loop (untransformed
loops carry the explicit identity decision ``u=1, unmerge=off`` — "leave
it alone" is evidence too), plus the whole-kernel summary vector and the
tuned provenance (source, measured speedups).

The on-disk discipline is :class:`~repro.harness.cache.ShardedLRUStore`
verbatim — 256 two-hex shards under ``results/.simindex``, atomic
temp-file+rename puts, monotonic-mtime recency, safe LRU eviction — so
the index obeys the same operational contracts as the cell and region
caches (``repro similarity stats`` mirrors ``repro cache stats``).

Invalidation is the triple product the DESIGN doc spells out:
:data:`~repro.similarity.features.FEATURE_SCHEMA_VERSION` ×
:data:`~repro.gpu.timing.TIMING_MODEL_VERSION` ×
:data:`~repro.tune.store.TUNE_SCHEMA_VERSION`.  All three are folded
into every entry key *and* recorded in the entry body; a version bump
orphans old entries (rebuilt by ``repro similarity build``), and stale
entries read back are deleted as misses, never served.

Entries are keyed by content (printed IR + decisions), so rebuilding the
index is idempotent and two corpora built in different orders converge
to identical on-disk states.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..gpu.timing import TIMING_MODEL_VERSION
from ..harness.cache import ShardedLRUStore
from ..ir.module import Module
from ..ir.printer import print_module
from ..obs import metrics as obs_metrics
from ..tune.store import TUNE_SCHEMA_VERSION, TunedConfig, load_tuned
from .features import FEATURE_SCHEMA_VERSION, kernel_features

#: Environment override for the index directory.
SIMINDEX_DIR_ENV = "REPRO_SIMINDEX_DIR"


def default_index_dir() -> Path:
    """``results/.simindex`` at the repository root (env-overridable)."""
    env = os.environ.get(SIMINDEX_DIR_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / ".simindex"


def _schema_stamp() -> Dict[str, object]:
    return {
        "feature": FEATURE_SCHEMA_VERSION,
        "timing": TIMING_MODEL_VERSION,
        "tune": TUNE_SCHEMA_VERSION,
    }


def entry_key(app: str, baseline_ir: str, decisions: Sequence[Dict]) -> str:
    """SHA-256 over everything that determines an entry's content."""
    payload = {
        "schema": _schema_stamp(),
        "app": app,
        "ir": baseline_ir,
        "decisions": sorted(
            (json.dumps(d, sort_keys=True) for d in decisions)),
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


def entry_from_tuned(module: Module, config: TunedConfig,
                     source: str = "tuned") -> Dict[str, object]:
    """Build one index entry from a tuned config and its (raw) module.

    Loops absent from ``config.decisions`` get the explicit identity
    label — the search measured them and chose to leave them alone.
    """
    features = kernel_features(module)
    decided = {d.loop_id: d for d in config.decisions}
    loops: List[Dict[str, object]] = []
    for lf in features.loops:
        decision = decided.get(lf.loop_id)
        loops.append({
            "loop_id": lf.loop_id,
            "vector": list(lf.vector),
            "paths": lf.paths,
            "size": lf.size,
            "factor": decision.factor if decision is not None else 1,
            "unmerge": decision.unmerge if decision is not None else False,
        })
    return {
        "schema": _schema_stamp(),
        "app": config.app,
        "source": source,
        "tuned_source": config.source,
        "kernel_vector": list(features.vector),
        "loops": loops,
        "speedup_over_baseline": config.speedup_over_baseline,
        "speedup_over_heuristic": config.speedup_over_heuristic,
    }


class SimilarityIndex(ShardedLRUStore):
    """On-disk store of tuned-kernel entries (ShardedLRUStore discipline)."""

    metrics_label = "simindex"

    def __init__(self, root: Optional[Path] = None,
                 max_bytes: Optional[int] = None) -> None:
        super().__init__(root if root is not None else default_index_dir(),
                         max_bytes)

    def _path(self, key: str) -> Path:
        return self.shard_path(key, f"{key}.json")

    # -- storage -------------------------------------------------------------
    def get_entry(self, key: str) -> Optional[Dict[str, object]]:
        """Load one entry; stale/corrupt entries are deleted as misses."""
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            self._metric("misses")
            return None
        try:
            data = json.loads(raw)
            if data.get("schema") != _schema_stamp():
                raise ValueError("stale index schema")
            if not isinstance(data.get("loops"), list):
                raise ValueError("malformed entry")
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            self._metric("misses")
            return None
        self.hits += 1
        self._metric("hits")
        self._touch(path)
        return data

    def put_entry(self, key: str, entry: Dict[str, object]) -> None:
        """Store one entry (canonical JSON, atomic replace)."""
        path = self._path(key)
        text = json.dumps(entry, sort_keys=True)
        self._atomic_write(path, text)
        self.puts += 1
        self._metric("puts")
        self._metric("bytes_written", len(text))
        self._touch(path)
        if self.max_bytes is not None:
            self.evict()

    def add_tuned(self, module: Module, config: TunedConfig,
                  source: str = "tuned") -> str:
        """Index one tuned kernel; returns the entry key (idempotent)."""
        ir = print_module(module)
        decisions = [{"loop_id": d.loop_id, "factor": d.factor,
                      "unmerge": d.unmerge} for d in config.decisions]
        key = entry_key(config.app, ir, decisions)
        self.put_entry(key, entry_from_tuned(module, config, source=source))
        return key

    def load_entries(self) -> List[Dict[str, object]]:
        """Every valid entry, deterministically ordered by (app, key).

        Brute-force neighbor search reads the whole corpus; at the
        intended scale (tens to hundreds of kernels) that is cheaper
        than maintaining any sublinear structure, and keeps the store
        trivially correct under concurrent writers.
        """
        entries: List[Dict[str, object]] = []
        for path in self.entries():
            key = path.stem
            entry = self.get_entry(key)
            if entry is not None:
                entry["_key"] = key
                entries.append(entry)
        entries.sort(key=lambda e: (str(e.get("app", "")), e["_key"]))
        obs_metrics.set_gauge("repro_similarity_index_entries", len(entries))
        return entries

    # -- reporting -----------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        files = self.entries()
        n_files, files_bytes = self._sizes(files)
        n_tmp, tmp_bytes = self._sizes(self.tmp_files())
        return {
            "root": str(self.root),
            "entries": n_files,
            "bytes": files_bytes,
            "tmp_files": n_tmp,
            "tmp_bytes": tmp_bytes,
            "max_bytes": self.max_bytes,
            "schema": _schema_stamp(),
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_puts": self.puts,
            "session_evictions": self.evictions,
        }


def build_index(benches: Optional[Sequence] = None,
                tuned_dir: Optional[Path] = None,
                index: Optional[SimilarityIndex] = None
                ) -> Dict[str, object]:
    """Populate the index from persisted tuned configs.

    For every benchmark with a usable ``results/tuned/<app>.json`` an
    entry is (re)written; benchmarks whose tuned file is missing or
    stale are skipped and reported.  Returns a summary dict.
    """
    from ..bench import all_benchmarks

    index = index if index is not None else SimilarityIndex()
    benches = list(benches) if benches is not None else all_benchmarks()
    added: List[str] = []
    skipped: Dict[str, str] = {}
    for bench in benches:
        config, why = load_tuned(bench.name, tuned_dir)
        if config is None:
            skipped[bench.name] = why
            continue
        index.add_tuned(bench.build_module(), config, source="tuned")
        added.append(bench.name)
    return {"added": added, "skipped": skipped,
            "entries": index.stats()["entries"]}
