"""K-nearest-neighbor decision transfer for unseen kernels.

Given a query kernel, every loop is mapped to its K nearest tuned loops
in the similarity index (normalized-distance brute force over the whole
corpus — deterministic: ties break on ``(distance, app, loop_id)``), and
the neighbors vote a ``(factor, unmerge)`` label with weight
``1/(eps + distance)``.  The result is an instant decision set in the
exact shape the ``tuned`` pipeline replays — zero empirical evaluations.

Safety rails, in order:

* **corpus exclusion** — entries of the query app itself never vote, so
  the leave-one-out acceptance gate measures the production semantics
  (an already-tuned kernel is served its tuned file, not a prediction);
* **confidence fallback** — a loop whose nearest neighbor is farther
  than ``max_distance`` falls back to the static heuristic's decision
  for that loop;
* **feasibility check** — a transferred decision whose cost-model size
  estimate exceeds the tuner's own enumeration cap
  (:data:`repro.tune.space.TuneParams.size_cap`) is demoted to the
  heuristic decision rather than replayed blindly;
* **nesting rule** — innermost loops are decided first and an outer
  loop is left alone when any descendant was transformed, mirroring
  both the heuristic and the tuner's per-loop composition.

Every per-loop outcome is surfaced as a typed ``analysis`` remark
(neighbors, distances, confidence) and counted in the metrics plane
(``repro_similarity_predictions_total`` by outcome, neighbor-distance
histogram).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.paths import estimate_unmerged_size
from ..ir.module import Module
from ..obs import metrics as obs_metrics
from ..obs import session as obs
from ..transforms.heuristic import HeuristicParams, choose_factor
from ..tune.space import TuneParams
from ..tune.store import TunedLoopDecision
from .features import (KernelFeatures, LoopFeatures, combined_vector,
                       distance, kernel_features)

#: Neighbors consulted per query loop.
DEFAULT_K = 3

#: Nearest-neighbor distance beyond which a loop falls back to the
#: static heuristic.  The normalized distance is ~0 for near-identical
#: loops and climbs past 0.5 for structurally unrelated ones.
DEFAULT_MAX_DISTANCE = 0.35

#: Keeps an exact-match neighbor (distance 0) from having infinite vote
#: weight while still dominating any non-exact neighbor.
_EPS = 1e-6


@dataclass(frozen=True)
class NeighborVote:
    """One corpus loop's contribution to a query loop's vote."""

    app: str
    loop_id: str
    distance: float
    factor: int
    unmerge: bool

    @property
    def label(self) -> str:
        return f"{self.app}/{self.loop_id}@{self.distance:.4f}"


@dataclass(frozen=True)
class LoopPrediction:
    """The decided transform for one query loop, with its evidence.

    ``source`` is ``transfer`` (neighbors voted), ``heuristic`` (nearest
    neighbor too far — static fallback), ``infeasible`` (transferred
    decision failed the cost-model cap — static fallback),
    ``divergence-clamped`` (the decided unroll factor was reset to 1
    because an in-body branch is tid-divergent by data flow — the
    paper's `complex` worst case), or ``inner-selected`` (nesting rule:
    a descendant was transformed).
    """

    loop_id: str
    factor: int
    unmerge: bool
    source: str
    confidence: float
    neighbors: Tuple[NeighborVote, ...]

    @property
    def is_identity(self) -> bool:
        return self.factor <= 1 and not self.unmerge


@dataclass(frozen=True)
class Prediction:
    """A whole-kernel predicted decision set.

    ``fallback`` is True when the corpus held no usable evidence at all
    (empty index, or only entries of the query app itself); the caller
    then runs the plain heuristic pipeline instead of a replay.
    """

    app: str
    decisions: Tuple[TunedLoopDecision, ...]
    loops: Tuple[LoopPrediction, ...]
    fallback: bool
    corpus_loops: int


def prediction_fingerprint(prediction: Optional[Prediction]) -> str:
    """Cache-key fingerprint of the resolved predicted pipeline.

    Mirrors :func:`repro.tune.store.decisions_fingerprint`: the heuristic
    fallback shares one ``fallback`` fingerprint, and any change to the
    predicted decision set (index growth, schema bump, k/threshold
    change) re-keys every ``predicted`` cell compiled from it.
    """
    if prediction is None or prediction.fallback:
        return "fallback"
    return json.dumps(
        [{"loop_id": d.loop_id, "factor": d.factor, "unmerge": d.unmerge}
         for d in prediction.decisions], sort_keys=True)


def _corpus_loops(entries: Sequence[Dict], exclude_app: Optional[str]
                  ) -> List[Tuple[Tuple[float, ...], NeighborVote]]:
    """Flatten index entries into votable (vector, provenance) rows."""
    rows: List[Tuple[Tuple[float, ...], NeighborVote]] = []
    for entry in entries:
        app = str(entry.get("app", ""))
        if exclude_app is not None and app == exclude_app:
            continue
        kernel_vec = tuple(entry.get("kernel_vector", ()))
        for loop in entry.get("loops", ()):
            vec = tuple(loop.get("vector", ())) + kernel_vec
            rows.append((vec, NeighborVote(
                app=app, loop_id=str(loop.get("loop_id", "")),
                distance=0.0, factor=int(loop.get("factor", 1)),
                unmerge=bool(loop.get("unmerge", False)))))
    return rows


def _nearest(query: Tuple[float, ...],
             corpus: Sequence[Tuple[Tuple[float, ...], NeighborVote]],
             k: int) -> List[NeighborVote]:
    scored: List[NeighborVote] = []
    for vec, vote in corpus:
        try:
            d = distance(query, vec)
        except ValueError:
            continue  # Foreign-schema row: never comparable, never votes.
        scored.append(NeighborVote(vote.app, vote.loop_id, d,
                                   vote.factor, vote.unmerge))
    scored.sort(key=lambda v: (v.distance, v.app, v.loop_id))
    return scored[:k]


def _vote(neighbors: Sequence[NeighborVote]) -> Tuple[int, bool, float]:
    """Weighted majority over (factor, unmerge); returns its confidence."""
    weights: Dict[Tuple[int, bool], float] = {}
    for vote in neighbors:
        label = (vote.factor, vote.unmerge)
        weights[label] = weights.get(label, 0.0) + 1.0 / (_EPS + vote.distance)
    total = sum(weights.values())
    # Deterministic winner: heaviest label, ties to the smaller label.
    (factor, unmerge), weight = sorted(
        weights.items(), key=lambda kv: (-kv[1], kv[0]))[0]
    return factor, unmerge, (weight / total if total > 0 else 0.0)


def _heuristic_decision(lf: LoopFeatures, params: HeuristicParams
                        ) -> Tuple[int, bool]:
    """What the static heuristic would do with this loop (identity if
    unselected) — the per-loop fallback target."""
    factor = choose_factor(lf.paths, lf.size, params)
    if factor is None:
        return 1, False
    return factor, True


def _feasible(lf: LoopFeatures, factor: int, unmerge: bool,
              size_cap: int) -> bool:
    if unmerge:
        return estimate_unmerged_size(lf.paths, lf.size,
                                      max(1, factor)) <= size_cap
    return lf.size * max(1, factor) <= size_cap


def predict_module(module: Module, entries: Sequence[Dict], *,
                   app: Optional[str] = None,
                   exclude_app: Optional[str] = None,
                   k: int = DEFAULT_K,
                   max_distance: float = DEFAULT_MAX_DISTANCE,
                   heuristic: Optional[HeuristicParams] = None
                   ) -> Prediction:
    """Predict a decision set for ``module`` from index ``entries``.

    Pure given its inputs: the same module text and corpus produce the
    same prediction regardless of engine, worker count, or cache state.
    """
    params = heuristic or HeuristicParams()
    size_cap = TuneParams().size_cap
    name = app if app is not None else module.name
    features = kernel_features(module)
    corpus = _corpus_loops(entries, exclude_app)
    if not corpus or not features.loops:
        return Prediction(app=name, decisions=(), loops=(),
                          fallback=not corpus, corpus_loops=len(corpus))

    # Innermost-first (fewest descendants first, loop_id tie-break) so the
    # nesting rule below sees inner decisions before their enclosing loops
    # — the same composition order as the heuristic and the tuner.
    order = sorted(features.loops,
                   key=lambda lf: (len(lf.descendants), lf.loop_id))
    transformed: set = set()
    predictions: List[LoopPrediction] = []
    for lf in order:
        query = combined_vector(features, lf)
        neighbors = tuple(_nearest(query, corpus, k))
        nearest_d = neighbors[0].distance if neighbors else float("inf")
        if any(d in transformed for d in lf.descendants):
            predictions.append(LoopPrediction(
                lf.loop_id, 1, False, "inner-selected", 0.0, neighbors))
            continue
        if not neighbors or nearest_d > max_distance:
            factor, unmerge = _heuristic_decision(lf, params)
            source, confidence = "heuristic", 0.0
        else:
            factor, unmerge, confidence = _vote(neighbors)
            source = "transfer"
            if (factor > 1 or unmerge) and \
                    not _feasible(lf, factor, unmerge, size_cap):
                factor, unmerge = _heuristic_decision(lf, params)
                source = "infeasible"
        if lf.tid_branch and factor > 1:
            # Divergence clamp (paper Section V, the `complex` case): an
            # in-body branch re-diverges every iteration by construction
            # — its condition is a pure data-flow function of the thread
            # id — so unrolling multiplies the serialized divergent body.
            # Unmerging alone is kept: with no unroll there is no path
            # product to amplify, and `complex`'s own empirical optimum
            # is exactly u=1 + unmerge.
            factor = 1
            source = "divergence-clamped"
        if factor > 1 or unmerge:
            transformed.add(lf.loop_id)
        predictions.append(LoopPrediction(
            lf.loop_id, factor, unmerge, source, confidence, neighbors))

    predictions.sort(key=lambda p: p.loop_id)
    decisions = tuple(
        TunedLoopDecision(p.loop_id, max(1, p.factor), p.unmerge)
        for p in predictions if not p.is_identity)
    return Prediction(app=name, decisions=decisions,
                      loops=tuple(predictions), fallback=False,
                      corpus_loops=len(corpus))


def emit_prediction_telemetry(prediction: Prediction) -> None:
    """Remarks + metrics for one prediction (no-ops when planes are off).

    Split from :func:`predict_bench` so the harness can resolve a
    prediction silently for cache-key fingerprinting and emit exactly
    once, on the measurement path (keeping ``-j1``/``-jN`` remark
    streams identical).
    """
    outcome = "fallback" if prediction.fallback else "transfer"
    obs_metrics.inc("repro_similarity_predictions_total", outcome=outcome)
    if obs.active() is not None and prediction.fallback:
        obs.remark("missed", "predict", prediction.app,
                   "no usable index entries; heuristic fallback",
                   reason="empty-index",
                   corpus_loops=prediction.corpus_loops)
    for lp in prediction.loops:
        if lp.neighbors:
            obs_metrics.observe("repro_similarity_neighbor_distance",
                                lp.neighbors[0].distance,
                                buckets=obs_metrics.DISTANCE_BUCKETS)
        if obs.active() is None:
            continue
        func = lp.loop_id.split(":", 1)[0]
        what = (f"u={lp.factor}, unmerge="
                f"{'on' if lp.unmerge else 'off'}")
        obs.remark(
            "analysis", "predict", func,
            f"predicted {what} via {lp.source} "
            f"(confidence {lp.confidence:.2f})",
            loop_id=lp.loop_id, u=lp.factor, unmerge=lp.unmerge,
            source=lp.source, confidence=round(lp.confidence, 4),
            neighbors=",".join(v.label for v in lp.neighbors))


def predict_bench(bench, index=None, *,
                  k: int = DEFAULT_K,
                  max_distance: float = DEFAULT_MAX_DISTANCE,
                  heuristic: Optional[HeuristicParams] = None,
                  exclude_self: bool = True,
                  emit: bool = True) -> Prediction:
    """Predict a decision set for a benchmark from the on-disk index.

    ``exclude_self`` (the default) keeps the benchmark's own entries out
    of the vote, so predicting an already-indexed app measures genuine
    transfer — the same semantics as the leave-one-out perf gate.
    ``emit=False`` suppresses remarks/metrics (fingerprint-only callers).
    """
    from .index import SimilarityIndex

    store = index if index is not None else SimilarityIndex()
    entries = store.load_entries()
    prediction = predict_module(
        bench.build_module(), entries, app=bench.name,
        exclude_app=bench.name if exclude_self else None,
        k=k, max_distance=max_distance, heuristic=heuristic)
    if emit:
        emit_prediction_telemetry(prediction)
    return prediction
