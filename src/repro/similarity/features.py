"""Deterministic kernel/loop feature vectors for tuning transfer.

A loop's vector is computed purely from the *unoptimized* module — the
same artifact the cell cache fingerprints — using the analyses the
heuristic and the tuner already trust: path counts, the cost model,
trip-count analysis, divergence, and the per-opcode-category breakdown
the timing model charges (:data:`repro.gpu.counters.CATEGORIES`).
Nothing is simulated and nothing depends on the execution engine, the
worker count, or any cache state, so vectors are bit-identical across
``-j1``/``-jN``, across the warp/batched/jit engines, and across
cold-versus-warm region caches (tests/test_similarity.py pins all
three).

Each dimension carries a fixed normalization scale — *data-independent*,
never fitted to the corpus — so distances between two kernels do not
drift as the index grows.  :data:`FEATURE_SCHEMA_VERSION` versions the
layout; the index folds it into every entry key, so changing a feature
definition orphans (rather than silently corrupts) old entries.

Trip counts come in a static and a "profiled" slot: the static slot is
:func:`repro.analysis.tripcount.constant_trip_count`; the profiled slot
defaults to the static value but callers holding measured trip counts
(e.g. from counters of an earlier run) may supply them via
``trip_profile`` — the slot is part of the schema so profiled corpora
and static corpora stay distance-comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.cost_model import instruction_cost, loop_size
from ..analysis.divergence import (DivergenceInfo, dataflow_tid_tainted,
                                   loop_has_divergent_branch,
                                   loop_has_tid_dataflow_branch)
from ..analysis.loops import LoopInfo
from ..analysis.paths import count_paths
from ..analysis.tripcount import constant_trip_count
from ..gpu.counters import CATEGORIES
from ..ir.module import Module

#: Bump when a feature definition, the dimension order, or a
#: normalization scale changes.  Folded (together with the timing-model
#: and tune-schema versions) into every similarity-index entry key.
FEATURE_SCHEMA_VERSION = 1

#: Per-loop dimensions as ``(name, normalization scale)``.  Count-like
#: dimensions are log2-compressed first so a 1000-path loop and a
#: 2000-path loop are near neighbors while both stay far from a
#: straight-line loop.
LOOP_FEATURE_SPECS: Tuple[Tuple[str, float], ...] = (
    ("log_paths", 8.0),
    ("log_size", 10.0),
    ("log_trip_static", 6.0),
    ("trip_known", 1.0),
    ("log_trip_profile", 6.0),
    ("depth", 3.0),
    ("innermost", 1.0),
    ("divergent", 1.0),
    ("tid_branch", 1.0),
) + tuple((f"cat_{name}", 1.0) for name in CATEGORIES)

#: Whole-kernel summary dimensions (appended to every loop vector for
#: distance purposes: two identical loops in very different kernels are
#: *not* interchangeable evidence).
KERNEL_FEATURE_SPECS: Tuple[Tuple[str, float], ...] = (
    ("k_log_size", 12.0),
    ("k_log_loops", 4.0),
    ("k_max_depth", 3.0),
) + tuple((f"k_cat_{name}", 1.0) for name in CATEGORIES)

LOOP_FEATURE_NAMES = tuple(name for name, _ in LOOP_FEATURE_SPECS)
KERNEL_FEATURE_NAMES = tuple(name for name, _ in KERNEL_FEATURE_SPECS)

#: Normalization scales of the combined (loop ++ kernel) vector, in
#: dimension order — the denominator of :func:`distance`.
COMBINED_SCALES: Tuple[float, ...] = tuple(
    scale for _, scale in LOOP_FEATURE_SPECS + KERNEL_FEATURE_SPECS)


def _log2p1(value: float) -> float:
    return math.log2(1.0 + max(0.0, float(value)))


def _category_fractions(blocks) -> List[float]:
    """Cost-weighted opcode-category histogram, normalized to sum 1.

    Mirrors how the timing model splits cycle charges by category
    (``Counters.cat_cycles``), but statically: each instruction
    contributes its cost-model weight to its ``category`` bucket.
    """
    totals = [0.0] * len(CATEGORIES)
    index = {name: i for i, name in enumerate(CATEGORIES)}
    for block in blocks:
        for inst in block.instructions:
            slot = index.get(inst.category, index["misc"])
            totals[slot] += float(instruction_cost(inst))
    grand = sum(totals)
    if grand <= 0:
        return totals
    return [t / grand for t in totals]


@dataclass(frozen=True)
class LoopFeatures:
    """One loop's feature vector plus the raw facts behind it.

    ``paths``/``size`` are kept un-encoded so the predictor can re-check
    transferred decisions against the cost model without re-running any
    analysis.
    """

    loop_id: str
    vector: Tuple[float, ...]
    paths: int
    size: int
    trip: Optional[int]
    depth: int
    descendants: Tuple[str, ...]
    #: An in-body branch condition is data-flow tid-tainted — the
    #: paper's `complex` signature; unrolling such a loop multiplies its
    #: serialized divergent body (see predict's divergence clamp).
    tid_branch: bool = False


@dataclass(frozen=True)
class KernelFeatures:
    """Whole-kernel summary vector plus every loop's features."""

    name: str
    vector: Tuple[float, ...]
    loops: Tuple[LoopFeatures, ...]


def kernel_features(module: Module,
                    trip_profile: Optional[Dict[str, float]] = None
                    ) -> KernelFeatures:
    """Extract the feature vectors of every loop in ``module``.

    ``trip_profile`` optionally maps ``loop_id`` to a measured trip
    count; absent entries fall back to the static trip count (or 0 when
    unknown).  Extraction is pure and deterministic: same module text,
    same vectors.
    """
    profile = trip_profile or {}
    loops: List[LoopFeatures] = []
    total_size = 0
    max_depth = 0
    all_blocks = []
    for func in module.functions.values():
        info = LoopInfo.compute(func)
        divergence = DivergenceInfo.compute(func, set())
        tid_tainted = dataflow_tid_tainted(func)
        all_blocks.extend(func.blocks)
        total_size += sum(int(instruction_cost(inst))
                          for block in func.blocks
                          for inst in block.instructions)
        for loop in info.loops:
            paths = count_paths(loop, info)
            size = loop_size(loop)
            trip = constant_trip_count(loop)
            depth = loop.depth
            max_depth = max(max_depth, depth)
            profiled = profile.get(loop.loop_id,
                                   float(trip) if trip is not None else 0.0)
            stack = list(loop.children)
            descendants: List[str] = []
            while stack:
                child = stack.pop()
                descendants.append(child.loop_id)
                stack.extend(child.children)
            tid_branch = loop_has_tid_dataflow_branch(loop, tid_tainted)
            values = [
                _log2p1(paths),
                _log2p1(size),
                _log2p1(trip if trip is not None else 0.0),
                1.0 if trip is not None else 0.0,
                _log2p1(profiled),
                float(depth),
                1.0 if loop.is_innermost else 0.0,
                1.0 if loop_has_divergent_branch(loop, divergence) else 0.0,
                1.0 if tid_branch else 0.0,
            ]
            values.extend(_category_fractions(loop.blocks))
            loops.append(LoopFeatures(
                loop_id=loop.loop_id, vector=tuple(values), paths=paths,
                size=size, trip=trip, depth=depth,
                descendants=tuple(sorted(descendants)),
                tid_branch=tid_branch))
    kernel_values = [
        _log2p1(total_size),
        _log2p1(len(loops)),
        float(max_depth),
    ]
    kernel_values.extend(_category_fractions(all_blocks))
    loops.sort(key=lambda lf: lf.loop_id)
    return KernelFeatures(name=module.name, vector=tuple(kernel_values),
                          loops=tuple(loops))


def combined_vector(kernel: KernelFeatures, loop: LoopFeatures
                    ) -> Tuple[float, ...]:
    """The distance-bearing vector: loop dimensions ++ kernel context."""
    return loop.vector + kernel.vector


def distance(u: Sequence[float], v: Sequence[float]) -> float:
    """Normalized Euclidean distance between two combined vectors.

    Each dimension is divided by its fixed scale before squaring, and
    the sum is averaged over the dimension count, so the result is
    roughly in [0, 1] for plausibly-related kernels regardless of how
    many dimensions a future schema adds.
    """
    if len(u) != len(v) or len(u) != len(COMBINED_SCALES):
        raise ValueError(
            f"vector arity mismatch: {len(u)} vs {len(v)} "
            f"(schema wants {len(COMBINED_SCALES)})")
    acc = 0.0
    for a, b, scale in zip(u, v, COMBINED_SCALES):
        d = (a - b) / scale
        acc += d * d
    return math.sqrt(acc / len(COMBINED_SCALES))
