"""Command-line driver, mirroring the paper artifact's run scripts.

The paper's artifact exposes ``run_uu.sh <factor>``, ``run_unroll.sh``,
``run_unmerge.sh``, ``run_heuristic.sh`` and the plot scripts; this module
provides the same operations:

    python -m repro list                      # benchmarks + their loops
    python -m repro run-uu --factor 2         # per-loop u&u sweep
    python -m repro run-uu --app XSBench --factor 4
    python -m repro run-unroll --factor 2
    python -m repro run-unmerge
    python -m repro run-heuristic             # Table I's heuristic column
    python -m repro table1                    # regenerate Table I
    python -m repro fig6 | fig7 | fig8        # regenerate the figures
    python -m repro indepth                   # Section V counter analyses
    python -m repro ptx --app XSBench --kernel grid_search [--config uu ...]
    python -m repro cache stats|clear         # persistent cell cache
    python -m repro summary [--profile]       # headline geomeans (+profile)
    python -m repro bench-interp [--json] [--compare]   # engine micro-bench
    python -m repro tune bspline-vgh          # empirical per-loop autotuning
    python -m repro tune --all --budget 16    # tune every benchmark, capped
    python -m repro tune show                 # tuned vs heuristic decisions
    python -m repro run-tuned                 # tuned pipeline per app
    python -m repro remarks --app XSBench     # optimization-remark stream
    python -m repro trace --app XSBench --out run.trace.json
    python -m repro trace --in daemon.trace.json --request <id>
    python -m repro metrics [--url URL]       # Prometheus metrics text
    python -m repro perf record|report|check  # perf-regression sentinel
    python -m repro fuzz run --seed 0 --count 200   # differential fuzzing
    python -m repro fuzz reduce --seed 41           # shrink one failure
    python -m repro fuzz corpus                     # re-check tests/corpus/
    python -m repro serve                     # optimization service daemon
    python -m repro submit --app XSBench --url http://127.0.0.1:PORT
    python -m repro submit --ir kernel.ll --config uu --loop-id k/L0
    python -m repro serve-status --url http://127.0.0.1:PORT

Sweeps fan out over worker processes (``--jobs/-j``, default all cores)
and reuse cells from the persistent cache under ``results/.cellcache/``
(``--no-cache`` bypasses it).  ``--engine {batched,warp,jit}`` (or
``REPRO_ENGINE``) selects the SIMT execution engine; the engines are
bit-identical, so this only affects wall-clock.

Observability (see :mod:`repro.obs`): every sweep command accepts
``--trace-out run.trace.json`` (Chrome trace-event JSON, load in Perfetto
or ``chrome://tracing``) and ``--remarks-out run.remarks.jsonl`` (the
typed optimization-remark stream).  Traced runs bypass the persistent
cache — a cache hit skips compilation, and an empty trace would lie.
``repro serve --trace-out/--remarks-out`` exports the daemon's merged
streams at shutdown; ``repro trace/remarks --in <file> --request <id>``
then isolates one service request's story.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from . import obs
from .bench import all_benchmarks, benchmark_by_name
from .gpu.machine import ENGINES
from .harness import ExperimentRunner
from .harness import fig6, fig7, fig8, indepth, table1
from .harness.cache import CellCache
from .harness.parallel import ParallelRunner

ALL_CONFIG_CHOICES = ("baseline", "uu", "unroll", "unmerge", "uu_heuristic",
                      "tuned", "predicted")


@contextlib.contextmanager
def _obs_session():
    """Install an observability session for the duration of a command.

    Sets ``REPRO_TRACE`` in the environment *before* yielding so pool
    workers forked during the command opt in and ship their remarks,
    trace events, and profiles home.  Nested use (e.g. ``repro remarks
    --trace-out t.json``) folds the inner session into the outer one on
    exit, so both consumers see the full stream.
    """
    prior_env = os.environ.get(obs.ENV_VAR)
    prior = obs.active()
    os.environ[obs.ENV_VAR] = "1"
    session = obs.install()
    try:
        yield session
    finally:
        if prior is not None:
            obs.install(prior)
            prior.merge_payload(session.export_payload())
        else:
            obs.uninstall()
        if prior_env is None:
            os.environ.pop(obs.ENV_VAR, None)
        else:
            os.environ[obs.ENV_VAR] = prior_env


def _default_remarks_path(trace_out: str) -> str:
    """``run.trace.json`` -> ``run.trace.remarks.jsonl``."""
    return str(Path(trace_out).with_suffix(".remarks.jsonl"))


def _export_session(session, trace_out: Optional[str],
                    remarks_out: Optional[str]) -> None:
    if trace_out:
        session.tracer.write(trace_out)
        print(f"trace: {len(session.tracer.events)} events -> {trace_out}")
        if remarks_out is None:
            remarks_out = _default_remarks_path(trace_out)
    if remarks_out:
        count = obs.write_jsonl(session.remarks, remarks_out)
        print(f"remarks: {count} -> {remarks_out}")
    if not session.profile.is_empty():
        print(session.profile.format())


def _finish_sweep(runner) -> None:
    """Per-sweep cache telemetry (hits/misses/puts this session).

    Two lines can print: the cell-cache line (always, for cache-enabled
    runners) and the jit region-cache line (only when the sweep actually
    touched compiled regions — for non-jit engines it is empty and the
    output stays byte-identical to pre-region-cache builds).  Worker
    counters were already folded in via ``_absorb_extras``, so ``-j1``
    and ``-jN`` print the same totals.
    """
    cache = getattr(runner, "cache", None)
    if cache is not None:
        print(cache.session_line())
    from .gpu.region_cache import session as region_session
    line = region_session().line()
    if line:
        print(line)


def _runner(args) -> ExperimentRunner:
    return ParallelRunner(max_instructions=args.max_instructions,
                          compile_timeout=args.timeout,
                          jobs=getattr(args, "jobs", None),
                          use_cache=not getattr(args, "no_cache", False),
                          engine=getattr(args, "engine", None))


def _benches(args) -> List:
    if args.app:
        return [benchmark_by_name(args.app)]
    return all_benchmarks()


def cmd_list(args) -> int:
    for bench in _benches(args):
        loops = bench.loop_ids()
        print(f"{bench.name:<16} [{bench.category}]  {len(loops)} loops")
        for loop_id in loops:
            print(f"    {loop_id}")
    return 0


def _per_loop_sweep(args, config: str, factor: int) -> int:
    runner = _runner(args)
    runner.prefetch(_benches(args), configs=("baseline", config),
                    factors=(factor,))
    print(f"{'app':<16} {'loop':<24} {'u':>3} {'speedup':>8} "
          f"{'size':>7} {'ok':>4}")
    print("-" * 68)
    for bench in _benches(args):
        base = runner.baseline(bench)
        for loop_id in bench.loop_ids():
            cell = runner.cell(bench, config, loop_id, factor)
            if cell.timed_out:
                print(f"{bench.name:<16} {loop_id:<24} {factor:>3} "
                      f"{'timeout':>8}")
                continue
            ok = "yes" if cell.outputs_match_baseline else "NO"
            print(f"{bench.name:<16} {loop_id:<24} {factor:>3} "
                  f"{cell.speedup_over(base):>7.3f}x "
                  f"{cell.size_ratio_over(base):>6.2f}x {ok:>4}")
    _finish_sweep(runner)
    return 0


def cmd_run_uu(args) -> int:
    return _per_loop_sweep(args, "uu", args.factor)


def cmd_run_unroll(args) -> int:
    return _per_loop_sweep(args, "unroll", args.factor)


def cmd_run_unmerge(args) -> int:
    return _per_loop_sweep(args, "unmerge", 1)


def cmd_run_heuristic(args) -> int:
    runner = _runner(args)
    runner.prefetch(_benches(args), configs=("baseline", "uu_heuristic"))
    print(f"{'app':<16} {'speedup':>8} {'size':>7} {'compile':>8} {'ok':>4}")
    print("-" * 50)
    for bench in _benches(args):
        base = runner.baseline(bench)
        cell = runner.heuristic_cell(bench)
        ok = "yes" if cell.outputs_match_baseline else "NO"
        print(f"{bench.name:<16} {cell.speedup_over(base):>7.3f}x "
              f"{cell.size_ratio_over(base):>6.2f}x "
              f"{cell.compile_ratio_over(base):>7.2f}x {ok:>4}")
        if args.verbose or args.report:
            # The report *is* the remark stream: the very same
            # heuristic_remarks() that feeds --remarks-out renders each
            # LoopDecision here, so the two can never drift apart.
            for remark in obs.heuristic_remarks(cell.heuristic_decisions,
                                                function=bench.name):
                print("    " + obs.render_remark(remark))
            skipped = [d for d in cell.heuristic_decisions
                       if d.factor is not None and d.applied is False]
            if skipped:
                print(f"    ! {len(skipped)} selected loop(s) were skipped")
    _finish_sweep(runner)
    return 0


def cmd_table1(args) -> int:
    runner = _runner(args)
    rows = table1.build_table(runner, _benches(args))
    print(table1.format_table(rows))
    _finish_sweep(runner)
    return 0


def cmd_fig6(args) -> int:
    runner = _runner(args)
    points = fig6.series(runner, _benches(args))
    for metric in ("speedup", "size_ratio", "compile_ratio"):
        print(fig6.format_figure(points, metric))
        print()
    _finish_sweep(runner)
    return 0


def cmd_fig7(args) -> int:
    runner = _runner(args)
    print(fig7.format_figure(fig7.series(runner, _benches(args))))
    _finish_sweep(runner)
    return 0


def cmd_fig8(args) -> int:
    runner = _runner(args)
    benches = _benches(args)
    for comparator in ("unroll", "unmerge"):
        print(fig8.format_figure(
            fig8.series(comparator, runner, benches), comparator))
        print()
    _finish_sweep(runner)
    return 0


def cmd_indepth(args) -> int:
    runner = _runner(args)
    for fn in (indepth.xsbench_analysis, indepth.rainflow_analysis,
               indepth.complex_analysis, indepth.bezier_analysis):
        print(indepth.format_comparison(fn(runner)))
        print()
    return 0


def cmd_cache(args) -> int:
    from .gpu.region_cache import (RegionCache, region_cache_enabled)
    cache = CellCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached files (entries + orphaned tmp) "
              f"from {cache.root}")
        regions = RegionCache()
        removed = regions.clear()
        print(f"removed {removed} cached region plans from {regions.root}")
        return 0
    stats = cache.stats()
    sweep_entries = stats["entries"] - stats["tune_entries"]
    sweep_bytes = stats["bytes"] - stats["tune_bytes"]
    print(f"cell cache at {stats['root']}")
    print(f"  entries: {stats['entries']}")
    print(f"    sweep: {sweep_entries} ({sweep_bytes / 1024:.1f} KiB)")
    print(f"    tuner: {stats['tune_entries']} "
          f"({stats['tune_bytes'] / 1024:.1f} KiB)")
    print(f"  size:    {stats['bytes'] / 1024:.1f} KiB")
    if stats["max_bytes"] is not None:
        print(f"  cap:     {stats['max_bytes'] / 1024:.1f} KiB (LRU; set "
              f"via --cache-cap or REPRO_CACHE_MAX_BYTES)")
    if stats["tmp_files"]:
        print(f"  orphans: {stats['tmp_files']} tmp file(s) "
              f"({stats['tmp_bytes'] / 1024:.1f} KiB) from writers that "
              "died mid-put; `repro cache clear` sweeps them")
    rstats = RegionCache().stats()
    state = "" if region_cache_enabled() else " (disabled: REPRO_REGION_CACHE=0)"
    print(f"region cache at {rstats['root']}{state}")
    print(f"  entries: {rstats['entries']} "
          f"({rstats['bytes'] / 1024:.1f} KiB)")
    if rstats["max_bytes"] is not None:
        print(f"  cap:     {rstats['max_bytes'] / 1024:.1f} KiB (LRU; set "
              f"via REPRO_REGION_CACHE_MAX_BYTES)")
    if rstats["tmp_files"]:
        print(f"  orphans: {rstats['tmp_files']} tmp file(s) "
              f"({rstats['tmp_bytes'] / 1024:.1f} KiB); "
              "`repro cache clear` sweeps them")
    return 0


def cmd_ptx(args) -> int:
    from .codegen import lower_function, render
    from .transforms import compile_module

    bench = benchmark_by_name(args.app)
    module = bench.build_module()
    tuned = None
    if args.config == "tuned":
        from .tune.store import resolve_decisions
        tuned, why = resolve_decisions(bench.name)
        if tuned is None:
            print(f"note: {bench.name}: no usable tuned config ({why}); "
                  "falling back to the static heuristic", file=sys.stderr)
    compile_module(module, args.config, loop_id=args.loop,
                   factor=args.factor,
                   max_instructions=args.max_instructions,
                   tuned=tuned)
    kernels = [args.kernel] if args.kernel else list(module.functions)
    for name in kernels:
        print(render(lower_function(module.get_function(name))))
        print()
    return 0


def _fuzz_reduce_and_save(seed: int, lanes: int, out_dir,
                          name: Optional[str] = None) -> int:
    """Shared reduce flow: regenerate, reduce, bisect, persist, report."""
    from .fuzz.bisect import bisect_divergence
    from .fuzz.corpus import save_regression
    from .fuzz.generator import generate_kernel
    from .fuzz.oracle import run_differential, subject_from_kernel
    from .fuzz.reduce import block_count, first_failure, reduce_failure

    kernel = generate_kernel(seed)
    report = run_differential(subject_from_kernel(kernel, seed=seed),
                              lanes=lanes)
    spec = first_failure(report)
    if spec is None:
        print(f"seed {seed}: no divergence across "
              f"{len(report.outcomes)} configs — nothing to reduce")
        return 0
    print(f"seed {seed}: reducing {spec.label} failure "
          f"({block_count(kernel)} blocks)...")
    reduced = reduce_failure(kernel, spec)
    subject = subject_from_kernel(reduced, seed=seed)
    found = bisect_divergence(subject, spec, lanes=lanes)
    outcome = next(iter(run_differential(subject, lanes=lanes).failures),
                   None)
    meta = {
        "seed": seed,
        "config": spec.config,
        "loop_id": spec.loop_id,
        "factor": spec.factor,
        "kind": outcome.kind if outcome else "unknown",
        "detail": outcome.detail if outcome else "",
        "culprit": found.culprit if found else None,
        "culprit_remarks": found.remarks if found else [],
        "blocks": block_count(reduced),
        "source": "repro fuzz reduce",
    }
    stem = name or f"fuzz_seed{seed}_{spec.config}"
    path = save_regression(subject.ir, stem, meta, out_dir)
    culprit = f", culprit pass: {found.culprit}" if found else ""
    print(f"reduced to {meta['blocks']} blocks{culprit}")
    print(f"saved {path}")
    return 1


def cmd_fuzz_run(args) -> int:
    from .fuzz.campaign import run_campaign

    result = run_campaign(args.seed, args.count, jobs=args.jobs,
                          lanes=args.lanes, bisect=not args.no_bisect,
                          progress=print)
    last = args.seed + args.count - 1
    print(f"fuzzed {args.count} kernels (seeds {args.seed}..{last}): "
          f"{result.checked_configs} config runs, "
          f"{len(result.failures)} divergences, "
          f"{len(result.errors)} harness errors")
    if result.ok:
        print("no divergences found")
        return 0
    for failure in result.failures:
        print(f"  {failure.describe()}")
    for error in result.errors:
        print(f"  {error.splitlines()[0]} ...")
    if args.save_corpus:
        for seed in result.failing_seeds:
            _fuzz_reduce_and_save(seed, args.lanes, args.out)
    return 1


def cmd_fuzz_reduce(args) -> int:
    return _fuzz_reduce_and_save(args.seed, args.lanes, args.out, args.name)


def cmd_fuzz_corpus(args) -> int:
    from .fuzz.corpus import check_corpus, default_corpus_dir

    directory = args.dir or default_corpus_dir()
    reports = check_corpus(directory, lanes=args.lanes)
    if not reports:
        print(f"no corpus entries under {directory}")
        return 0
    failed = 0
    for report in reports:
        status = "ok" if report.ok else "FAIL"
        print(f"{report.name:<40} {len(report.outcomes):>3} configs  "
              f"{status}")
        for outcome in report.failures:
            failed += 1
            print(f"    {outcome.describe()}")
    return 1 if failed else 0


def cmd_summary(args) -> int:
    from .harness.summary import (format_profile, heuristic_summary,
                                  tuned_summary)

    if args.profile:
        # --profile disables the cache (a cache hit skips compilation, so
        # its cell would contribute nothing to the timing breakdown) but
        # keeps the parallel fan-out: workers ship their pass statistics
        # and phase timings home with every result.
        runner: ExperimentRunner = ParallelRunner(
            max_instructions=args.max_instructions,
            compile_timeout=args.timeout,
            jobs=getattr(args, "jobs", None),
            use_cache=False,
            engine=getattr(args, "engine", None))
    else:
        runner = _runner(args)
    print(heuristic_summary(runner, _benches(args)).format())
    print()
    print(tuned_summary(runner, _benches(args)).format())
    if args.profile:
        print()
        print(format_profile(runner))
    _finish_sweep(runner)
    return 0


def cmd_run_tuned(args) -> int:
    from .harness.summary import tuned_summary

    runner = _runner(args)
    print(tuned_summary(runner, _benches(args)).format())
    _finish_sweep(runner)
    return 0


def cmd_tune(args) -> int:
    from .tune import (BUDGET_ENV, TuneParams, render_tuned, tune_benchmark)

    out = Path(args.out) if args.out else None
    if args.target == "show":
        for bench in _benches(args):
            print(render_tuned(bench, out))
            print()
        return 0
    if args.target:
        benches = [benchmark_by_name(args.target)]
    elif args.all:
        benches = all_benchmarks()
    elif args.app:
        benches = [benchmark_by_name(args.app)]
    else:
        print("repro tune: name a benchmark, pass --all, or use "
              "`repro tune show`", file=sys.stderr)
        return 2
    budget = args.budget
    if budget is None:
        env = os.environ.get(BUDGET_ENV)
        if env:
            try:
                budget = max(0, int(env))
            except ValueError:
                pass
    params = TuneParams(u_max=args.u_max, budget=budget)
    rc = 0
    for bench in benches:
        result = tune_benchmark(
            bench, params=params,
            max_instructions=args.max_instructions,
            compile_timeout=args.timeout,
            jobs=getattr(args, "jobs", None),
            engine=getattr(args, "engine", None),
            use_cache=not getattr(args, "no_cache", False),
            tuned_dir=out)
        c = result.config
        print(f"{bench.name:<16} winner {c.source:<20} "
              f"{c.speedup_over_baseline:>6.3f}x vs baseline  "
              f"{c.speedup_over_heuristic:>6.3f}x vs heuristic  "
              f"[{result.candidates_total} candidates, "
              f"{result.candidates_pruned} pruned, "
              f"{result.candidates_truncated} over budget, "
              f"{result.fresh_evaluations} fresh evaluations]")
        if result.persisted:
            print(f"    -> {result.path}")
        elif not result.verified:
            rc = 1
            print(f"    NOT persisted — oracle verification failed: "
                  f"{result.verify_detail}")
    return rc


def cmd_predict(args) -> int:
    from .similarity.index import SimilarityIndex
    from .similarity.predict import (DEFAULT_K, DEFAULT_MAX_DISTANCE,
                                     predict_bench)

    k = args.k if args.k is not None else DEFAULT_K
    max_distance = (args.max_distance if args.max_distance is not None
                    else DEFAULT_MAX_DISTANCE)
    if args.target is None:
        # No target: the transfer scoreboard (predicted is leave-one-out,
        # so this is the EXPERIMENTS.md "tuning transfer" recipe).
        from .harness.summary import transfer_summary
        runner = _runner(args)
        print(transfer_summary(runner, _benches(args)).format())
        _finish_sweep(runner)
        return 0
    bench = benchmark_by_name(args.target)
    index = SimilarityIndex(Path(args.index_dir) if args.index_dir else None)
    prediction = predict_bench(bench, index, k=k, max_distance=max_distance,
                               emit=False)
    print(f"{bench.name}: predicted from {prediction.corpus_loops} corpus "
          f"loops (k={k}, max distance {max_distance:g}, leave-one-out)")
    if prediction.fallback:
        print("  no usable index entries — the predicted pipeline would "
              "fall back to the static heuristic\n"
              "  (populate with `repro similarity build`)")
        return 1
    for lp in prediction.loops:
        onoff = "on" if lp.unmerge else "off"
        print(f"  {lp.loop_id:<28} u={lp.factor} unmerge={onoff:<3} "
              f"[{lp.source}, confidence {lp.confidence:.2f}]")
        for v in lp.neighbors:
            v_onoff = "on" if v.unmerge else "off"
            print(f"      <- {v.app}/{v.loop_id}  distance {v.distance:.4f}"
                  f"  (u={v.factor} unmerge={v_onoff})")
    if not prediction.decisions:
        print("  (identity prediction: leave every loop alone)")
    return 0


def cmd_similarity(args) -> int:
    from .similarity.index import SimilarityIndex, build_index

    index = SimilarityIndex(Path(args.index_dir) if args.index_dir else None)
    if args.sim_action == "build":
        summary = build_index(index=index)
        print(f"indexed {len(summary['added'])} tuned apps")
        for app, why in sorted(summary["skipped"].items()):
            print(f"  skipped {app}: {why}")
        if args.fuzz_count:
            from .similarity.corpus import build_from_fuzz
            fz = build_from_fuzz(
                args.fuzz_count, start_seed=args.start_seed, index=index,
                budget=args.budget,
                use_cache=not getattr(args, "no_cache", False))
            print(f"fuzz corpus: {len(fz['indexed'])} tuned+indexed, "
                  f"{len(fz['unverified'])} unverified (skipped)")
        print(f"index: {index.stats()['entries']} entries at {index.root}")
        return 0

    # stats
    stats = index.stats()
    entries = index.load_entries()
    if args.json:
        by_source: dict = {}
        for entry in entries:
            source = str(entry.get("source", "?"))
            by_source[source] = by_source.get(source, 0) + 1
        stats["by_source"] = by_source
        stats["loops"] = sum(len(e.get("loops", [])) for e in entries)
        print(json.dumps(stats, sort_keys=True))
        return 0
    schema = stats["schema"]
    print(f"similarity index at {stats['root']}")
    print(f"  entries:  {stats['entries']} kernels, "
          f"{sum(len(e.get('loops', [])) for e in entries)} loops, "
          f"{stats['bytes']} bytes")
    by_source: dict = {}
    for entry in entries:
        source = str(entry.get("source", "?"))
        by_source[source] = by_source.get(source, 0) + 1
    for source in sorted(by_source):
        print(f"    {source:<10} {by_source[source]}")
    print(f"  schema:   feature v{schema['feature']} x timing "
          f"v{schema['timing']} x tune v{schema['tune']}")
    if stats["tmp_files"]:
        print(f"  tmp:      {stats['tmp_files']} files, "
              f"{stats['tmp_bytes']} bytes")
    return 0


def _traced_sweep(args) -> None:
    """Compute the requested app x config cells under the live session."""
    args.no_cache = True  # Cached cells skip compilation: nothing to trace.
    runner = _runner(args)
    runner.prefetch(_benches(args), configs=("baseline", args.config))


def _load_remarks(path: str):
    from .obs.remarks import Remark
    remarks = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            remarks.append(Remark.from_json(json.loads(line)))
    return remarks


def _load_trace_events(path: str) -> List[dict]:
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        return list(data.get("traceEvents", []))
    return list(data)


def cmd_remarks(args) -> int:
    """Print a remark stream: a fresh traced run, or a saved JSONL."""
    src = getattr(args, "in_path", None)
    if src:
        remarks = _load_remarks(src)
    else:
        with _obs_session() as session:
            _traced_sweep(args)
        remarks = session.remarks
    request = getattr(args, "request", None)
    if request:
        # Service requests stamp their remarks' context (see
        # obs.session.request_capture); local sweeps carry no ids.
        remarks = [r for r in remarks
                   if r.context.get("request") == request]
    kind = getattr(args, "kind", None)
    if kind:
        # A remark stream mixes transform decisions (kind applied/missed)
        # with analysis notes whose origin is the pass name, so the filter
        # matches either axis: `--kind jit` selects the execution-engine
        # remarks, `--kind missed` the not-applied transform decisions.
        remarks = [r for r in remarks
                   if r.kind == kind or r.pass_name == kind]
    for remark in remarks:
        if args.json:
            print(json.dumps(remark.to_json(), sort_keys=True))
        else:
            print(obs.render_remark(remark))
    if not args.json:
        suffix = f" matching {kind!r}" if kind else ""
        if request:
            suffix += f" for request {request}"
        print(f"({len(remarks)} remarks{suffix}; rerun with --json for "
              "the machine-readable stream)")
    return 0


def cmd_trace(args) -> int:
    """Export a Chrome trace: from a fresh run, or filter a saved one."""
    src = getattr(args, "in_path", None)
    request = getattr(args, "request", None)
    if src:
        events = _load_trace_events(src)
        if request:
            # Spans fold the serving request id into args (see
            # obs.session.span); metadata rows carry none and drop out.
            events = [e for e in events
                      if e.get("args", {}).get("request") == request]
        Path(args.out).write_text(json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}))
        print(f"trace: {len(events)} events -> {args.out}")
        return 0
    with _obs_session() as session:
        _traced_sweep(args)
    if request:
        session.tracer.events[:] = [
            e for e in session.tracer.events
            if e.get("args", {}).get("request") == request]
    _export_session(session, args.out, getattr(args, "remarks_out", None))
    return 0


def cmd_metrics(args) -> int:
    """Prometheus text: scrape a daemon, or meter a local sweep."""
    from .obs import metrics as obs_metrics

    if args.url:
        from .serve import ServeClient
        from .serve.client import ServeError
        try:
            text = ServeClient(args.url).metrics_text()
        except ServeError as exc:
            print(f"repro metrics: {exc}", file=sys.stderr)
            return 1
        sys.stdout.write(text)
        return 0
    # Local mode: install a registry (and set REPRO_METRICS so forked
    # pool workers ship their snapshots home), run one sweep, render.
    prior_env = os.environ.get(obs_metrics.ENV_VAR)
    prior = obs_metrics.active()
    os.environ[obs_metrics.ENV_VAR] = "1"
    registry = obs_metrics.install()
    try:
        runner = _runner(args)
        runner.prefetch(_benches(args), configs=("baseline", args.config))
    finally:
        if prior is not None:
            obs_metrics.install(prior)
        else:
            obs_metrics.uninstall()
        if prior_env is None:
            os.environ.pop(obs_metrics.ENV_VAR, None)
        else:
            os.environ[obs_metrics.ENV_VAR] = prior_env
    sys.stdout.write(registry.render())
    return 0


def _sweep_geomeans(args) -> dict:
    """Sweep geomeans folded into a perf record by ``perf record --sweep``."""
    from .harness.summary import (heuristic_summary, transfer_summary,
                                  tuned_summary)

    runner = _runner(args)
    benches = _benches(args)
    heur = heuristic_summary(runner, benches)
    tuned = tuned_summary(runner, benches)
    transfer = transfer_summary(runner, benches)
    return {
        "sweep/heuristic_speedup": heur.speedup,
        "sweep/tuned_speedup": tuned.geomean_tuned,
        "sweep/predicted_speedup": transfer.geomean_predicted,
    }


def cmd_perf(args) -> int:
    """Perf-regression sentinel: record/report/check the history."""
    from .harness import perfhistory

    history = Path(args.history) if getattr(args, "history", None) else None
    if args.perf_action == "record":
        source = args.from_path
        if source is None:
            results = perfhistory.default_history_path().parent.parent
            candidates = sorted(results.glob("BENCH_*.json"))
            if not candidates:
                print("repro perf record: no results/BENCH_*.json found; "
                      "run `repro bench-interp --json` first or pass "
                      "--from", file=sys.stderr)
                return 2
            source = str(candidates[-1])
        try:
            payload = json.loads(Path(source).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro perf record: cannot read {source}: {exc}",
                  file=sys.stderr)
            return 2
        extra = _sweep_geomeans(args) if args.sweep else None
        record = perfhistory.record_from_bench(
            payload, source=Path(source).name, extra_metrics=extra)
        target = perfhistory.append_record(record, history)
        print(f"recorded {len(record['metrics'])} metrics "
              f"from {source} -> {target}")
        return 0

    records = perfhistory.read_history(history)
    prefix = getattr(args, "metrics", None)
    if args.perf_action == "report":
        print(perfhistory.format_report(records, last=args.last,
                                        prefix=prefix))
        return 0

    # check
    if os.environ.get(perfhistory.CHECK_ENV, "") == "0":
        print(f"perf check: skipped ({perfhistory.CHECK_ENV}=0)")
        return 0
    if not records:
        print("repro perf check: no history records; run "
              "`repro perf record` first", file=sys.stderr)
        return 2
    current = records[-1]
    if args.baseline == "-2" and len(records) == 1:
        # Default baseline on a freshly-seeded history: there is no
        # previous record yet, which is a clean slate, not a failure.
        print("perf check: only one record in history; nothing to "
              "compare yet")
        return 0
    baseline = perfhistory.load_baseline(args.baseline, history)
    if baseline is None:
        print(f"repro perf check: cannot resolve baseline "
              f"{args.baseline!r}", file=sys.stderr)
        return 2
    if baseline == current:
        print("perf check: baseline is the newest record; "
              "nothing to compare")
        return 0
    threshold = (args.threshold if args.threshold is not None
                 else perfhistory.DEFAULT_THRESHOLD)
    regressions = perfhistory.check_regression(
        baseline, current, threshold=threshold, prefix=prefix)
    shared = [name for name in baseline.get("metrics", {})
              if name in current.get("metrics", {})
              and (not prefix or name.startswith(prefix))]
    if regressions:
        print(f"perf check: {len(regressions)} of {len(shared)} tracked "
              f"metric(s) regressed beyond {threshold:.0%} "
              f"(baseline {baseline.get('source', '?')} "
              f"@ {baseline.get('recorded_at', '?')}):")
        for reg in regressions:
            print("  " + reg.describe())
        return 1
    print(f"perf check: ok — {len(shared)} metric(s) within "
          f"{threshold:.0%} of baseline "
          f"{baseline.get('source', '?')} "
          f"@ {baseline.get('recorded_at', '?')}")
    return 0


def cmd_bench_interp(args) -> int:
    from .harness.benchinterp import (DEFAULT_TRIPS, bench_all,
                                      format_compare, format_report,
                                      write_bench_json)

    rows = bench_all(warps=args.warps, repeats=args.repeats)
    if getattr(args, "compare", False):
        print(format_compare(rows, args.warps))
    else:
        print(format_report(rows, args.warps))
    if args.json or args.json_out:
        path = write_bench_json(rows, args.warps, DEFAULT_TRIPS,
                                args.json_out)
        print(f"wrote {path}")
    return 0


def cmd_serve(args) -> int:
    from .serve import ServeDaemon

    daemon = ServeDaemon(host=args.host, port=args.port,
                         workers=args.serve_workers,
                         cache_max_bytes=args.cache_cap,
                         use_cache=not getattr(args, "no_cache", False))
    daemon.install_signal_handlers()
    daemon.start()
    cache = daemon.runner.cache
    cap = (f", cache cap {cache.max_bytes} bytes"
           if cache is not None and cache.max_bytes is not None else "")
    print(f"repro serve listening on {daemon.url} "
          f"({args.serve_workers} workers{cap}); SIGTERM/Ctrl-C to stop")
    daemon.wait()
    if cache is not None:
        print(cache.session_line())
    trace_out = getattr(args, "serve_trace_out", None)
    remarks_out = getattr(args, "serve_remarks_out", None)
    if trace_out or remarks_out:
        written = daemon.export_obs(trace_out, remarks_out)
        if trace_out:
            print(f"trace: {written.get('events', 0)} events -> "
                  f"{trace_out}")
        if remarks_out:
            print(f"remarks: {written.get('remarks', 0)} -> {remarks_out}")
    return 0


def _submit_request(args):
    from .serve import OptimizeRequest

    ir = None
    if args.ir:
        ir = (sys.stdin.read() if args.ir == "-"
              else Path(args.ir).read_text())
    return OptimizeRequest(
        app=args.app, ir=ir, config=args.config, loop_id=args.loop_id,
        factor=args.factor, engine=getattr(args, "engine", None),
        lanes=args.lanes, include_ir=not args.no_ir,
        priority=args.priority, refine=getattr(args, "refine", False),
        directives=tuple(args.directive or ())).validate()


def cmd_submit(args) -> int:
    from .serve import ServeClient
    from .serve.client import ServeError
    from .serve.protocol import ProtocolError

    try:
        request = _submit_request(args)
    except ProtocolError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 2
    client = ServeClient(args.url) if args.url else ServeClient()
    try:
        if args.no_wait:
            ticket = client.submit(request)
            print(json.dumps(ticket, sort_keys=True))
            return 0
        result = client.submit_and_wait(request, timeout=args.wait)
    except ServeError as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.to_json(), sort_keys=True))
    else:
        if result.status != "ok":
            print(f"error: {result.error}", file=sys.stderr)
            return 1
        ok = "yes" if result.outputs_match_baseline else "NO"
        print(f"{result.name}  config={result.config}  "
              f"{result.speedup:.3f}x  cycles {result.cycles:.1f} "
              f"(baseline {result.baseline_cycles:.1f})  ok={ok}  "
              f"{len(result.remarks)} remarks")
        if args.show_ir and result.optimized_ir:
            print(result.optimized_ir)
    if args.out:
        Path(args.out).write_text(
            json.dumps(result.to_json(), sort_keys=True, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0 if result.status == "ok" else 1


def cmd_serve_status(args) -> int:
    from .serve import ServeClient
    from .serve.client import ServeError

    client = ServeClient(args.url) if args.url else ServeClient()
    try:
        stats = client.stats()
    except ServeError as exc:
        print(f"repro serve-status: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(stats, sort_keys=True))
        return 0
    queue = stats["queue"]
    print(f"daemon at {stats['url']} (schema {stats['schema']})")
    print(f"  workers:   {queue['alive_workers']}/{queue['workers']} alive")
    print(f"  submitted: {queue['submitted']} "
          f"({queue['deduped']} deduped: {queue['deduped_inflight']} "
          f"in-flight, {queue['deduped_memo']} memo)")
    print(f"  executed:  {queue['executed']}  failed: {queue['failed']}  "
          f"cancelled: {queue['cancelled']}")
    cache = stats.get("cache")
    if cache:
        cap = (f" / cap {cache['max_bytes']}" if cache.get("max_bytes")
               else "")
        print(f"  cache:     {cache['entries']} entries, "
              f"{cache['bytes']} bytes{cap}; this session "
              f"{cache['session_hits']} hits, {cache['session_misses']} "
              f"misses, {cache['session_evictions']} evictions")
    region = stats.get("region_cache")
    if region:
        store = region.get("store")
        sess = region.get("session") or {}
        if store:
            print(f"  regions:   {store['entries']} plans, "
                  f"{store['bytes']} bytes; this session "
                  f"{sess.get('replays', 0)} replayed, "
                  f"{sess.get('selections', 0)} selected, "
                  f"{sess.get('fused_steps', 0)} steps fused")
        else:
            print("  regions:   persistent cache disabled "
                  "(REPRO_REGION_CACHE=0)")
    similarity = stats.get("similarity")
    if similarity:
        index = similarity.get("index") or {}
        print(f"  predicted: {similarity['predictions_served']} served; "
              f"index {index.get('entries', 0)} entries "
              f"({index.get('bytes', 0)} bytes)")
        print(f"  refine:    {similarity['refinements_pending']} pending, "
              f"{similarity['refinements_completed']} completed, "
              f"{similarity['refinements_failed']} failed "
              f"(of {similarity['refinements_submitted']} submitted)")
    metrics = stats.get("metrics")
    if metrics:
        print(f"  metrics:   {metrics['families']} families, "
              f"{metrics['series']} series (scrape GET /metrics)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--max-instructions", type=int, default=8000,
                        help="unmerge growth cap (compile 'timeout' proxy)")
    common.add_argument("--timeout", type=float, default=20.0,
                        help="per-compilation wall-clock budget in seconds")
    common.add_argument("--app", help="restrict to one benchmark")
    common.add_argument("-j", "--jobs", type=int, default=None,
                        help="worker processes for sweeps "
                             "(default: REPRO_JOBS or all cores)")
    common.add_argument("--no-cache", action="store_true",
                        help="ignore the persistent cell cache")
    common.add_argument("--engine", choices=list(ENGINES), default=None,
                        help="SIMT execution engine (default: REPRO_ENGINE "
                             "or 'batched'); engines are bit-identical, "
                             "this only affects wall-clock")
    common.add_argument("--trace-out", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON of this run "
                             "(open in Perfetto); also writes "
                             "PATH-with-.remarks.jsonl unless --remarks-out "
                             "is given.  Implies --no-cache.")
    common.add_argument("--remarks-out", metavar="PATH", default=None,
                        help="write the optimization-remark stream as "
                             "JSONL.  Implies --no-cache.")

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction driver for 'Control-Flow Unmerging and "
                    "Loop Unrolling on GPUs' (CGO 2024)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", parents=[common],
                   help="list benchmarks and loop ids") \
        .set_defaults(fn=cmd_list)

    p = sub.add_parser("run-uu", parents=[common], help="per-loop u&u sweep")
    p.add_argument("--factor", type=int, default=2)
    p.set_defaults(fn=cmd_run_uu)

    p = sub.add_parser("run-unroll", parents=[common],
                       help="per-loop plain-unroll sweep")
    p.add_argument("--factor", type=int, default=2)
    p.set_defaults(fn=cmd_run_unroll)

    sub.add_parser("run-unmerge", parents=[common],
                   help="per-loop unmerge sweep") \
        .set_defaults(fn=cmd_run_unmerge)

    p = sub.add_parser("run-heuristic", parents=[common],
                       help="heuristic u&u per app")
    p.add_argument("--verbose", action="store_true",
                   help="print per-loop heuristic decisions")
    p.add_argument("--report", action="store_true",
                   help="like --verbose, and flag selected loops whose "
                        "transform was skipped (header not re-found)")
    p.set_defaults(fn=cmd_run_heuristic)

    sub.add_parser("table1", parents=[common],
                   help="regenerate Table I").set_defaults(fn=cmd_table1)
    sub.add_parser("fig6", parents=[common],
                   help="regenerate Figures 6a/6b/6c") \
        .set_defaults(fn=cmd_fig6)
    sub.add_parser("fig7", parents=[common],
                   help="regenerate Figure 7").set_defaults(fn=cmd_fig7)
    sub.add_parser("fig8", parents=[common],
                   help="regenerate Figures 8a/8b").set_defaults(fn=cmd_fig8)
    sub.add_parser("indepth", parents=[common],
                   help="Section V counter analyses") \
        .set_defaults(fn=cmd_indepth)

    p = sub.add_parser("summary", parents=[common],
                       help="headline heuristic geomeans (paper Section IV)")
    p.add_argument("--profile", action="store_true",
                   help="also print phase/per-pass timing and the simulated "
                        "cycle breakdown by opcode category (runs serially "
                        "so the timings are honest wall clock)")
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("remarks", parents=[common],
                       help="run one config under tracing and print the "
                            "optimization-remark stream")
    p.add_argument("--config", default="uu_heuristic",
                   choices=list(ALL_CONFIG_CHOICES),
                   help="pipeline configuration to trace "
                        "(default: uu_heuristic)")
    p.add_argument("--json", action="store_true",
                   help="print raw JSONL instead of rendered lines")
    p.add_argument("--kind", metavar="NAME", default=None,
                   help="only remarks whose kind or pass name matches "
                        "NAME (e.g. `--kind jit` for execution-engine "
                        "region remarks, `--kind missed` for not-applied "
                        "transform decisions)")
    p.add_argument("--in", dest="in_path", metavar="PATH", default=None,
                   help="read a saved remarks JSONL (e.g. from `repro "
                        "serve --remarks-out`) instead of running a sweep")
    p.add_argument("--request", metavar="ID", default=None,
                   help="only remarks stamped with this service "
                        "request id (the content hash `repro submit` "
                        "tickets carry)")
    p.set_defaults(fn=cmd_remarks)

    p = sub.add_parser("trace", parents=[common],
                       help="run one config under tracing and write a "
                            "Chrome trace-event JSON (Perfetto-loadable)")
    p.add_argument("--config", default="uu_heuristic",
                   choices=list(ALL_CONFIG_CHOICES),
                   help="pipeline configuration to trace "
                        "(default: uu_heuristic)")
    p.add_argument("--out", default="run.trace.json",
                   help="trace file path (default: run.trace.json)")
    p.add_argument("--in", dest="in_path", metavar="PATH", default=None,
                   help="filter a saved trace (e.g. from `repro serve "
                        "--trace-out`) instead of running a sweep")
    p.add_argument("--request", metavar="ID", default=None,
                   help="only spans stamped with this service request id")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("bench-interp",
                       help="micro-benchmark the batched vs per-warp "
                            "execution engines (warp-steps/sec)")
    p.add_argument("--warps", type=int, default=8,
                   help="warps per launch for the micro-kernels (default 8)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timed repeats per engine; the median is reported "
                        "(default 3)")
    p.add_argument("--json", action="store_true",
                   help="also write the machine-readable payload to "
                        "results/BENCH_<date>.json")
    p.add_argument("--json-out", metavar="PATH", default=None,
                   help="write the machine-readable payload to PATH "
                        "(implies --json)")
    p.add_argument("--compare", action="store_true",
                   help="print per-engine wall times side by side "
                        "(warp/batched/jit rows per kernel) instead of "
                        "the throughput table")
    p.set_defaults(fn=cmd_bench_interp)

    p = sub.add_parser("run-tuned", parents=[common],
                       help="tuned pipeline vs static heuristic per app")
    p.set_defaults(fn=cmd_run_tuned)

    p = sub.add_parser("tune", parents=[common],
                       help="empirical per-loop autotuning "
                            "(searches unroll x unmerge per loop)")
    p.add_argument("target", nargs="?", default=None,
                   help="benchmark to tune, or `show` to render persisted "
                        "decisions vs the static heuristic")
    p.add_argument("--all", action="store_true",
                   help="tune every benchmark")
    p.add_argument("--budget", type=int, default=None,
                   help="max per-loop candidates measured per benchmark "
                        "(default: REPRO_TUNE_BUDGET or unlimited)")
    p.add_argument("--u-max", type=int, default=8,
                   help="largest unroll factor searched (default 8)")
    p.add_argument("--out", metavar="DIR", default=None,
                   help="tuned-config directory "
                        "(default: results/tuned or REPRO_TUNED_DIR)")
    p.set_defaults(fn=cmd_tune)

    p = sub.add_parser("predict", parents=[common],
                       help="instant predicted config from the similarity "
                            "index (zero empirical evaluations)")
    p.add_argument("target", nargs="?", default=None,
                   help="benchmark to predict; omit for the "
                        "predicted-vs-tuned-vs-heuristic scoreboard over "
                        "all apps (leave-one-out)")
    p.add_argument("--k", type=int, default=None,
                   help="neighbors voting per loop (default 3)")
    p.add_argument("--max-distance", type=float, default=None,
                   help="nearest-neighbor distance beyond which a loop "
                        "falls back to the heuristic (default 0.35)")
    p.add_argument("--index-dir", metavar="DIR", default=None,
                   help="similarity-index directory (default: "
                        "results/.simindex or REPRO_SIMINDEX_DIR)")
    p.set_defaults(fn=cmd_predict)

    p = sub.add_parser("similarity",
                       help="tuning-transfer index maintenance")
    ssub = p.add_subparsers(dest="sim_action", required=True)
    sb = ssub.add_parser("build",
                         help="(re)index every persisted tuned config, "
                              "optionally densified with tuned fuzz "
                              "kernels")
    sb.add_argument("--fuzz-count", type=int, default=0, metavar="N",
                    help="also tune N fuzz-generated kernels offline and "
                         "index the verified winners (default 0)")
    sb.add_argument("--start-seed", type=int, default=0,
                    help="first fuzz seed (default 0)")
    sb.add_argument("--budget", type=int, default=64,
                    help="per-kernel candidate budget for fuzz tuning "
                         "(default 64)")
    sb.add_argument("--no-cache", action="store_true",
                    help="ignore the persistent cell cache while tuning "
                         "fuzz kernels")
    sb.add_argument("--index-dir", metavar="DIR", default=None,
                    help="similarity-index directory (default: "
                         "results/.simindex or REPRO_SIMINDEX_DIR)")
    sb.set_defaults(fn=cmd_similarity)
    st = ssub.add_parser("stats", help="index population and store health")
    st.add_argument("--json", action="store_true")
    st.add_argument("--index-dir", metavar="DIR", default=None,
                    help="similarity-index directory (default: "
                         "results/.simindex or REPRO_SIMINDEX_DIR)")
    st.set_defaults(fn=cmd_similarity)

    p = sub.add_parser("cache", help="persistent cell-cache maintenance")
    p.add_argument("action", choices=["stats", "clear"],
                   help="show cache statistics or delete every entry")
    p.set_defaults(fn=cmd_cache)

    p = sub.add_parser("fuzz", help="differential fuzzing of the pipelines")
    fsub = p.add_subparsers(dest="fuzz_action", required=True)
    fr = fsub.add_parser("run", help="fuzz a seed range under every config")
    fr.add_argument("--seed", type=int, default=0, help="first seed")
    fr.add_argument("--count", type=int, default=100,
                    help="number of kernels to generate")
    fr.add_argument("-j", "--jobs", type=int, default=None,
                    help="worker processes (default: REPRO_JOBS or cores)")
    fr.add_argument("--lanes", type=int, default=32)
    fr.add_argument("--no-bisect", action="store_true",
                    help="skip pass-prefix bisection of failures")
    fr.add_argument("--save-corpus", action="store_true",
                    help="reduce each failure and persist it as a "
                         "regression kernel")
    fr.add_argument("--out", default=None,
                    help="corpus directory (default: tests/corpus)")
    fr.set_defaults(fn=cmd_fuzz_run)
    fd = fsub.add_parser("reduce",
                         help="shrink one failing seed to a minimal repro")
    fd.add_argument("--seed", type=int, required=True)
    fd.add_argument("--lanes", type=int, default=32)
    fd.add_argument("--out", default=None,
                    help="corpus directory (default: tests/corpus)")
    fd.add_argument("--name", default=None, help="corpus entry name")
    fd.set_defaults(fn=cmd_fuzz_reduce)
    fc = fsub.add_parser("corpus",
                         help="re-run the oracle over the corpus")
    fc.add_argument("--dir", default=None)
    fc.add_argument("--lanes", type=int, default=32)
    fc.set_defaults(fn=cmd_fuzz_corpus)

    p = sub.add_parser("serve",
                       help="optimization-as-a-service daemon "
                            "(HTTP over localhost)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (default: ephemeral; the chosen "
                        "port is printed)")
    p.add_argument("--serve-workers", type=int, default=2, metavar="N",
                   help="concurrent job-queue workers (default 2)")
    p.add_argument("--cache-cap", type=int, default=None, metavar="BYTES",
                   help="LRU total-bytes cap for the persistent cell "
                        "cache (default: REPRO_CACHE_MAX_BYTES or "
                        "unbounded)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without the persistent cell cache")
    p.add_argument("--trace-out", dest="serve_trace_out", metavar="PATH",
                   default=None,
                   help="at shutdown, write the daemon's merged Chrome "
                        "trace (every job's spans, stamped with their "
                        "request ids) to PATH")
    p.add_argument("--remarks-out", dest="serve_remarks_out",
                   metavar="PATH", default=None,
                   help="at shutdown, write the daemon's merged remark "
                        "stream as JSONL to PATH")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit one kernel to a running daemon")
    p.add_argument("--url", default=None,
                   help="daemon URL (default: REPRO_SERVE_URL or "
                        "http://127.0.0.1:8377)")
    p.add_argument("--app", help="registered benchmark to optimize")
    p.add_argument("--ir", metavar="FILE",
                   help="textual-IR module to optimize ('-' for stdin)")
    p.add_argument("--config", default="uu_heuristic",
                   choices=list(ALL_CONFIG_CHOICES))
    p.add_argument("--loop-id", default=None,
                   help="loop id for per-loop configs (uu/unroll/unmerge)")
    p.add_argument("--factor", type=int, default=2)
    p.add_argument("--engine", choices=list(ENGINES), default=None)
    p.add_argument("--lanes", type=int, default=32,
                   help="warp width for ir submissions (default 32)")
    p.add_argument("--priority", type=int, default=0,
                   help="larger runs first (default 0)")
    p.add_argument("--directive", action="append", metavar="DIRECTIVE",
                   help="pragma-style transformation directive, e.g. "
                        "'unroll(4)@k/L0' (schema-reserved; repeatable)")
    p.add_argument("--refine", action="store_true",
                   help="for --config predicted app submissions: also "
                        "enqueue a background tune refinement at idle "
                        "priority; its verified winner upgrades the "
                        "daemon's similarity index")
    p.add_argument("--no-ir", action="store_true",
                   help="omit the optimized IR from the result")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job ticket instead of waiting")
    p.add_argument("--wait", type=float, default=600.0,
                   help="seconds to wait for the result (default 600)")
    p.add_argument("--json", action="store_true",
                   help="print the full result as JSON")
    p.add_argument("--show-ir", action="store_true",
                   help="print the optimized IR after the summary line")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="also write the full result JSON to PATH")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("serve-status",
                       help="counters of a running daemon (queue, dedup, "
                            "cache, metrics)")
    p.add_argument("--url", default=None,
                   help="daemon URL (default: REPRO_SERVE_URL or "
                        "http://127.0.0.1:8377)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_serve_status)

    p = sub.add_parser("metrics", parents=[common],
                       help="Prometheus metrics text: scrape a running "
                            "daemon, or meter one local sweep")
    p.add_argument("--url", default=None,
                   help="scrape GET /metrics from a daemon instead of "
                        "sweeping locally")
    p.add_argument("--config", default="uu_heuristic",
                   choices=list(ALL_CONFIG_CHOICES),
                   help="config for the local metered sweep "
                        "(default: uu_heuristic)")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("perf",
                       help="perf-regression sentinel over "
                            "results/perf/history.jsonl")
    psub = p.add_subparsers(dest="perf_action", required=True)
    pr = psub.add_parser("record", parents=[common],
                         help="append one history record from a "
                              "BENCH_*.json payload")
    pr.add_argument("--from", dest="from_path", metavar="BENCH.json",
                    default=None,
                    help="bench payload to ingest (default: newest "
                         "results/BENCH_*.json)")
    pr.add_argument("--sweep", action="store_true",
                    help="also fold the sweep geomeans "
                         "(sweep/heuristic_speedup, sweep/tuned_speedup) "
                         "into the record; reuses cached cells")
    pr.add_argument("--history", metavar="PATH", default=None,
                    help="history file "
                         "(default: results/perf/history.jsonl)")
    pr.set_defaults(fn=cmd_perf)
    pp = psub.add_parser("report", help="render the per-metric trend table")
    pp.add_argument("--history", metavar="PATH", default=None)
    pp.add_argument("--last", type=int, default=8,
                    help="records shown (default 8)")
    pp.add_argument("--metrics", metavar="PREFIX", default=None,
                    help="only metrics starting with PREFIX "
                         "(e.g. geomean/)")
    pp.set_defaults(fn=cmd_perf)
    pc = psub.add_parser("check",
                         help="exit nonzero when the newest record "
                              "regressed beyond the noise threshold")
    pc.add_argument("--baseline", default="-2",
                    help="negative history index, a history JSONL, or a "
                         "BENCH json (default: -2, the previous record)")
    pc.add_argument("--threshold", type=float, default=None,
                    help="relative drop treated as a regression "
                         "(default 0.08)")
    pc.add_argument("--history", metavar="PATH", default=None)
    pc.add_argument("--metrics", metavar="PREFIX", default=None,
                    help="only compare metrics starting with PREFIX")
    pc.set_defaults(fn=cmd_perf)

    p = sub.add_parser("ptx", parents=[common],
                       help="print PTX-style assembly for a kernel")
    p.add_argument("--kernel", help="kernel name (default: all)")
    p.add_argument("--config", default="baseline",
                   choices=["baseline", "unroll", "unmerge", "uu",
                            "uu_heuristic", "tuned", "predicted"])
    p.add_argument("--loop", help="loop id for per-loop configs")
    p.add_argument("--factor", type=int, default=2)
    p.set_defaults(fn=cmd_ptx)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "ptx" and not args.app:
        parser.error("ptx requires --app")
    if args.command != "ptx" and getattr(args, "loop", None):
        parser.error("--loop only applies to the ptx command")
    trace_out = getattr(args, "trace_out", None)
    remarks_out = getattr(args, "remarks_out", None)
    if not (trace_out or remarks_out):
        return args.fn(args)
    # Tracing observes compilation; a cache hit skips compilation
    # entirely, so traced runs bypass the persistent cache.
    args.no_cache = True
    with _obs_session() as session:
        rc = args.fn(args)
    _export_session(session, trace_out, remarks_out)
    return rc


if __name__ == "__main__":
    sys.exit(main())
