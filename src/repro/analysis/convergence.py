"""Convergence analysis.

The paper (Section III-C) skips loops containing *convergent* operations
such as ``__syncthreads()``: duplicating them onto divergent paths is
unsound because every thread of the block must reach the same barrier.  Our
IR marks convergence on intrinsics; this module answers the per-loop query.
"""

from __future__ import annotations

from typing import List

from ..ir.function import Function
from ..ir.instructions import CallInst, Instruction
from .loops import Loop


def is_convergent(inst: Instruction) -> bool:
    return inst.is_convergent


def convergent_instructions(loop: Loop) -> List[Instruction]:
    """All convergent instructions inside the loop (empty when safe)."""
    result = []
    for block in loop.blocks:
        for inst in block.instructions:
            if inst.is_convergent:
                result.append(inst)
    return result


def loop_is_convergent(loop: Loop) -> bool:
    """True if the loop contains any convergent operation."""
    return bool(convergent_instructions(loop))


def function_has_convergent(func: Function) -> bool:
    return any(inst.is_convergent for inst in func.instructions())
