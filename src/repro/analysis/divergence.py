"""Divergence (tid-taint) analysis.

The paper's Section V traces the `complex` slowdown to a branch whose
condition depends on the thread id ("We could avoid such cases by employing
a taint analysis that checks whether a condition depends on the values of
e.g. threadIdx") and lists divergence analysis as future work.  We implement
that taint analysis: a value is *divergent* if it (transitively) depends on
``tid.x`` through data flow, or is a phi whose incoming values differ across
divergent control flow.

This is a sound-but-simple forward data-flow taint; it intentionally over-
approximates (loads are treated as uniform unless their address is used to
read data written divergently within the same kernel — cross-memory taint is
out of scope, as in the paper's sketch).
"""

from __future__ import annotations

from typing import Dict, Set

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (CallInst, CondBranchInst, Instruction,
                               LoadInst, PhiInst)
from ..ir.values import Argument, Value
from .loops import Loop

#: Intrinsics whose result differs between lanes of a warp.
DIVERGENT_SOURCES = ("tid.x",)
#: Intrinsics uniform across a block/warp.
UNIFORM_SOURCES = ("ctaid.x", "ntid.x", "nctaid.x")


class DivergenceInfo:
    """Set of values known (transitively) divergent in a function."""

    def __init__(self, func: Function,
                 divergent_args: Set[str] = frozenset()) -> None:
        self.function = func
        self.divergent_args = set(divergent_args)
        self._divergent: Set[int] = set()
        self._run()

    @classmethod
    def compute(cls, func: Function,
                divergent_args: Set[str] = frozenset()) -> "DivergenceInfo":
        return cls(func, divergent_args)

    def is_divergent(self, value: Value) -> bool:
        return id(value) in self._divergent

    def divergent_branches(self) -> Dict[BasicBlock, Instruction]:
        """Blocks whose conditional branch condition is divergent."""
        result = {}
        for block in self.function.blocks:
            term = block.terminator
            if isinstance(term, CondBranchInst) and self.is_divergent(term.condition):
                result[block] = term
        return result

    def _run(self) -> None:
        from .dominators import DominatorTree

        # Seed: divergent intrinsics and explicitly divergent arguments
        # (kernel arguments derived from the global thread id, as in the
        # paper's `complex` where `n = threadIdx.x + blockIdx.x * blockDim.x`).
        for arg in self.function.args:
            if arg.name in self.divergent_args:
                self._divergent.add(id(arg))
        self._domtree = DominatorTree.compute(self.function)
        changed = True
        while changed:
            changed = False
            for inst in self.function.instructions():
                if id(inst) in self._divergent or inst.type.is_void:
                    continue
                if self._transfer(inst):
                    self._divergent.add(id(inst))
                    changed = True

    def _transfer(self, inst: Instruction) -> bool:
        if isinstance(inst, CallInst):
            if inst.intrinsic.name in DIVERGENT_SOURCES:
                return True
            if inst.intrinsic.name in UNIFORM_SOURCES:
                return any(id(op) in self._divergent for op in inst.operands)
        if isinstance(inst, PhiInst):
            # A phi is divergent if any incoming value is divergent, or if
            # a branch controlling the merge is divergent (sync dependence).
            # Controlling branches: the predecessors' terminators and the
            # terminator of the merge's immediate dominator (the branch at
            # the top of the diamond).
            if any(id(v) in self._divergent for v in inst.operands):
                return True
            control_blocks = list(inst.incoming_blocks)
            if inst.parent is not None:
                idom = self._domtree.idom(inst.parent)
                if idom is not None:
                    control_blocks.append(idom)
            for block in control_blocks:
                term = block.terminator
                if isinstance(term, CondBranchInst) and \
                        id(term.condition) in self._divergent:
                    return True
            return False
        return any(id(op) in self._divergent for op in inst.operands)


def dataflow_tid_tainted(func: Function) -> Set[int]:
    """Value ids tainted by ``tid.x`` through *data flow only*.

    A deliberately sharper variant of :class:`DivergenceInfo` for feature
    extraction: the phi sync-dependence rule is dropped (under a
    ``gid < n`` thread guard it taints every loop phi in the kernel, so
    the full analysis saturates to "everything divergent" and carries no
    signal), and loads are uniform regardless of their address, exactly
    as in the full analysis.  What remains is the paper's Section V
    sketch verbatim: "a condition [that] depends on the values of e.g.
    threadIdx" — arithmetic chains rooted at the thread id itself.
    """
    tainted: Set[int] = set()
    changed = True
    while changed:
        changed = False
        for inst in func.instructions():
            if id(inst) in tainted or isinstance(inst, LoadInst):
                continue
            if isinstance(inst, CallInst) and \
                    inst.intrinsic.name in DIVERGENT_SOURCES:
                hit = True
            else:
                hit = any(id(op) in tainted for op in inst.operands)
            if hit:
                tainted.add(id(inst))
                changed = True
    return tainted


def loop_has_tid_dataflow_branch(loop: Loop, tainted: Set[int]) -> bool:
    """True if an in-body branch condition is data-flow tid-tainted.

    This is the `complex` signature (paper Listing 7, ``n & 1`` with
    ``n`` seeded from the global thread id): every iteration re-diverges
    on a value that differs per lane *by construction*, so unrolling
    multiplies the serialized divergent body with no redundancy for the
    cleanup passes to remove.  Loops whose in-body conditions come from
    loaded data do not flag — their divergence is an input property, not
    a structural one.
    """
    for block in loop.blocks:
        term = block.terminator
        if isinstance(term, CondBranchInst) and \
                id(term.condition) in tainted:
            if all(loop.contains(s) for s in term.successors()):
                return True
    return False


def loop_has_divergent_branch(loop: Loop, info: DivergenceInfo) -> bool:
    """True if any conditional branch inside the loop is divergent.

    This implements the avoidance filter the paper proposes in Section V for
    cases like `complex`.
    """
    for block in loop.blocks:
        term = block.terminator
        if isinstance(term, CondBranchInst) and info.is_divergent(term.condition):
            # Only branches that stay inside the loop body cause the
            # serialization u&u amplifies; exit checks diverge at most once.
            if all(loop.contains(s) for s in term.successors()):
                return True
    return False
