"""Instruction cost model.

Mirrors the role of LLVM's TargetTransformInfo cost model as used by the
loop-unroll pass and by the paper's heuristic ("The size of the loop is
calculated by using LLVM's cost model", Section III-C): each instruction has
an abstract size/cost; free instructions (bitcasts, unconditional branches to
the next block) cost zero.
"""

from __future__ import annotations

from typing import Iterable

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (BranchInst, Instruction, PhiInst)
from .loops import Loop


def instruction_cost(inst: Instruction) -> int:
    """Abstract cost of one instruction (LLVM's CodeSize-flavoured)."""
    if isinstance(inst, PhiInst):
        return 0  # Phis lower to copies the allocator usually coalesces.
    if isinstance(inst, BranchInst):
        return 0  # Unconditional fallthrough branches are free in size.
    return inst.cost


def block_cost(block: BasicBlock) -> int:
    return sum(instruction_cost(i) for i in block.instructions)


def loop_size(loop: Loop) -> int:
    """Cost-model size ``s`` of the loop used by ``f(p, s, u)``."""
    return sum(block_cost(b) for b in loop.blocks)


def function_size(func: Function) -> int:
    return sum(block_cost(b) for b in func.blocks)


def region_size(blocks: Iterable[BasicBlock]) -> int:
    return sum(block_cost(b) for b in blocks)
