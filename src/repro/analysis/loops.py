"""Natural loop detection and loop-nest construction.

Loops are discovered from back edges of the dominator tree (edge ``latch ->
header`` where the header dominates the latch), exactly as LLVM's LoopInfo
does.  Each loop gets a deterministic id ``<function>:<index>`` (index in
header reverse-postorder), mirroring the paper's "consistent, deterministic
unique ids to loops" that users pass on the command line (Section III-C).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import BranchInst
from .cfg_utils import predecessor_map, reverse_postorder
from .dominators import DominatorTree


class Loop:
    """One natural loop: header plus the body blocks that reach a latch."""

    def __init__(self, header: BasicBlock) -> None:
        self.header = header
        self.blocks: List[BasicBlock] = [header]
        self._block_ids: Set[int] = {id(header)}
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        self.loop_id: str = ""

    # -- membership -----------------------------------------------------------
    def contains(self, block: BasicBlock) -> bool:
        return id(block) in self._block_ids

    def add_block(self, block: BasicBlock) -> None:
        if id(block) not in self._block_ids:
            self._block_ids.add(id(block))
            self.blocks.append(block)

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    @property
    def is_innermost(self) -> bool:
        return not self.children

    # -- structure queries ----------------------------------------------------
    def latches(self) -> List[BasicBlock]:
        """Blocks inside the loop that branch back to the header."""
        result = []
        for block in self.blocks:
            for succ in block.successors():
                if succ is self.header:
                    result.append(block)
                    break
        return result

    def single_latch(self) -> Optional[BasicBlock]:
        latches = self.latches()
        return latches[0] if len(latches) == 1 else None

    def exiting_blocks(self) -> List[BasicBlock]:
        """Blocks inside the loop with a successor outside it."""
        result = []
        for block in self.blocks:
            if any(not self.contains(s) for s in block.successors()):
                result.append(block)
        return result

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are targets of exiting edges."""
        seen: Set[int] = set()
        result = []
        for block in self.blocks:
            for succ in block.successors():
                if not self.contains(succ) and id(succ) not in seen:
                    seen.add(id(succ))
                    result.append(succ)
        return result

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in self.header.predecessors() if not self.contains(p)]
        if len(outside) == 1:
            return outside[0]
        return None

    def ensure_preheader(self) -> BasicBlock:
        """Return the preheader, creating a dedicated one if needed."""
        pre = self.preheader()
        if pre is not None and len(pre.successors()) == 1:
            return pre
        func = self.header.parent
        assert func is not None
        outside = [p for p in self.header.predecessors() if not self.contains(p)]
        new_pre = func.add_block(f"{self.header.name}.preheader")
        new_pre.append(BranchInst(self.header))
        for pred in outside:
            term = pred.terminator
            assert term is not None
            term.replace_successor(self.header, new_pre)
        for phi in self.header.phis():
            # Fold all outside-incoming entries into one entry via the new
            # preheader; multiple entries merge through a preheader phi.
            entries = [(v, b) for v, b in phi.incoming() if not self.contains(b)]
            if len(entries) == 1:
                for i, blk in enumerate(phi.incoming_blocks):
                    if blk is entries[0][1]:
                        phi.set_incoming_block(i, new_pre)
            elif len(entries) > 1:
                from ..ir.instructions import PhiInst

                pre_phi = PhiInst(phi.type)
                pre_phi.name = func.unique_name(f"{phi.name or 'v'}.pre")
                for value, block in entries:
                    pre_phi.add_incoming(value, block)
                new_pre.insert(new_pre.first_non_phi_index(), pre_phi)
                for value, block in entries:
                    phi.remove_incoming(block)
                phi.add_incoming(pre_phi, new_pre)
        return new_pre

    def body_blocks(self) -> List[BasicBlock]:
        """Loop blocks except the header."""
        return [b for b in self.blocks if b is not self.header]

    def contains_convergent(self) -> bool:
        return any(b.contains_convergent() for b in self.blocks)

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def __repr__(self) -> str:
        return (f"<Loop {self.loop_id or self.header.name} "
                f"[{len(self.blocks)} blocks, depth {self.depth}]>")


class LoopInfo:
    """All loops of one function, organised as a forest."""

    def __init__(self, func: Function) -> None:
        self.function = func
        self.top_level: List[Loop] = []
        self.loops: List[Loop] = []
        self._loop_of_block: Dict[int, Loop] = {}
        self._analyze()

    @classmethod
    def compute(cls, func: Function) -> "LoopInfo":
        return cls(func)

    # -- queries -----------------------------------------------------------
    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """Innermost loop containing ``block``."""
        return self._loop_of_block.get(id(block))

    def by_id(self, loop_id: str) -> Optional[Loop]:
        for loop in self.loops:
            if loop.loop_id == loop_id:
                return loop
        return None

    def innermost_first(self) -> List[Loop]:
        """Loops ordered deepest-first (paper: try innermost loops first)."""
        return sorted(self.loops, key=lambda l: -l.depth)

    # -- construction -----------------------------------------------------------
    def _analyze(self) -> None:
        func = self.function
        domtree = DominatorTree.compute(func)
        preds = predecessor_map(func)
        rpo = reverse_postorder(func)
        rpo_index = {id(b): i for i, b in enumerate(rpo)}

        # Collect back edges grouped by header, in deterministic RPO order.
        headers: Dict[int, BasicBlock] = {}
        back_edges: Dict[int, List[BasicBlock]] = {}
        for block in rpo:
            for succ in block.successors():
                if domtree.dominates_block(succ, block):
                    headers[id(succ)] = succ
                    back_edges.setdefault(id(succ), []).append(block)

        # Build each loop body by walking predecessors from the latches.
        header_list = sorted(headers.values(), key=lambda b: rpo_index[id(b)])
        for index, header in enumerate(header_list):
            loop = Loop(header)
            loop.loop_id = f"{func.name}:{index}"
            work = [l for l in back_edges[id(header)]]
            visited = {id(header)}
            while work:
                block = work.pop()
                if id(block) in visited:
                    continue
                visited.add(id(block))
                loop.add_block(block)
                for pred in preds[block]:
                    if id(pred) not in visited and id(pred) in rpo_index:
                        work.append(pred)
            self.loops.append(loop)

        # Nest loops: a loop is a child of the smallest loop strictly
        # containing its header (headers are unique per loop).
        by_size = sorted(self.loops, key=lambda l: len(l.blocks))
        for loop in by_size:
            candidates = [other for other in by_size
                          if other is not loop
                          and other.contains(loop.header)
                          and len(other.blocks) > len(loop.blocks)]
            if candidates:
                parent = min(candidates, key=lambda l: len(l.blocks))
                loop.parent = parent
                parent.children.append(loop)
            else:
                self.top_level.append(loop)

        # Innermost-loop map for blocks.
        for loop in sorted(self.loops, key=lambda l: -len(l.blocks)):
            for block in loop.blocks:
                self._loop_of_block[id(block)] = loop

    def __repr__(self) -> str:
        return f"<LoopInfo {self.function.name}: {len(self.loops)} loops>"
