"""Path counting through loop bodies.

The paper's heuristic needs ``p``, the number of control-flow paths through
one iteration of the loop (Section III-A: worst-case unmerged size is
``f(p, s, u) = sum_{i=0}^{u-1} p^i * s``).  We count the distinct paths from
the loop header to a back edge through the loop's body DAG (back edges
removed); loop exits terminate a path and are not counted as body paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.block import BasicBlock
from .loops import Loop, LoopInfo


def count_paths(loop: Loop, loop_info: Optional[LoopInfo] = None,
                limit: int = 1 << 20) -> int:
    """Number of header-to-latch paths through the loop body.

    Edges into headers of the loop itself (back edges) terminate a path.
    Inner loops are traversed as if their back edges were absent — i.e. an
    inner loop contributes its own acyclic path diversity, matching how
    unmerging duplicates inner-loop bodies once per enclosing path.
    Counting is capped at ``limit`` to bound heuristic work.

    A loop whose body is straight-line has exactly one path.
    """
    memo: Dict[int, int] = {}

    def walk(block: BasicBlock) -> int:
        cached = memo.get(id(block))
        if cached is not None:
            return cached
        total = 0
        for succ in block.successors():
            if succ is loop.header:
                total += 1          # Back edge: one completed path.
            elif not loop.contains(succ):
                continue            # Loop exit: not a body path.
            elif _is_back_edge_within(loop, loop_info, block, succ):
                total += 1          # Inner-loop back edge: cut the cycle.
            else:
                total += walk(succ)
            if total >= limit:
                total = limit
                break
        memo[id(block)] = total
        return total

    paths = 0
    for succ in loop.header.successors():
        if succ is loop.header:
            paths += 1
        elif loop.contains(succ):
            paths += walk(succ)
        if paths >= limit:
            return limit
    return max(paths, 1)


def _is_back_edge_within(loop: Loop, loop_info: Optional[LoopInfo],
                         src: BasicBlock, dst: BasicBlock) -> bool:
    """True if ``src -> dst`` is a back edge of an inner loop."""
    if loop_info is None:
        return False
    inner = loop_info.loop_for(dst)
    while inner is not None and inner is not loop:
        if inner.header is dst and inner.contains(src):
            return True
        inner = inner.parent
    return False


def estimate_unmerged_size(num_paths: int, size: int, unroll_factor: int,
                           cap: int = 1 << 30) -> int:
    """The paper's ``f(p, s, u) = sum_{i=0}^{u-1} p^i * s`` (capped)."""
    if unroll_factor < 1:
        raise ValueError("unroll factor must be >= 1")
    total = 0
    power = 1
    for _ in range(unroll_factor):
        total += power * size
        if total >= cap:
            return cap
        power *= num_paths
    return total
