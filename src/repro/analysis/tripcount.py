"""Trip-count analysis (scalar-evolution lite).

Recognises canonical counted loops — a header induction phi
``i = phi [init, preheader], [i + step, latch]`` tested by an ``icmp``
against a bound that controls the loop exit — and computes a constant trip
count when ``init``, ``step`` and ``bound`` are constants.  This powers full
unrolling (the paper's bspline-vgh has trip count 4, so unroll factors 4 and
8 produce identical code, Section IV RQ2) and the baseline unroller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.constants import ConstantInt
from ..ir.instructions import BinaryInst, CondBranchInst, ICmpInst, PhiInst
from ..ir.values import Value
from .loops import Loop


@dataclass
class InductionInfo:
    """A recognised induction variable ``i := init; i += step`` per iteration."""

    phi: PhiInst
    init: Value
    step: ConstantInt
    negated: bool  # True when the update is ``i - step``.


def find_induction(loop: Loop) -> Optional[InductionInfo]:
    """Find the canonical induction phi of ``loop``, if one exists."""
    preheader = loop.preheader()
    latch = loop.single_latch()
    if latch is None:
        return None
    for phi in loop.header.phis():
        init: Optional[Value] = None
        update: Optional[Value] = None
        for value, block in phi.incoming():
            if loop.contains(block):
                if block is latch:
                    update = value
            else:
                init = value
        if init is None or update is None:
            continue
        if not isinstance(update, BinaryInst):
            continue
        if update.opcode == "add":
            lhs, rhs = update.lhs, update.rhs
            if lhs is phi and isinstance(rhs, ConstantInt):
                return InductionInfo(phi, init, rhs, negated=False)
            if rhs is phi and isinstance(lhs, ConstantInt):
                return InductionInfo(phi, init, lhs, negated=False)
        elif update.opcode == "sub":
            if update.lhs is phi and isinstance(update.rhs, ConstantInt):
                return InductionInfo(phi, init, update.rhs, negated=True)
    return None


def constant_trip_count(loop: Loop) -> Optional[int]:
    """Exact trip count if the loop is counted with constant bounds.

    Returns the number of times the body executes, or ``None`` when it
    cannot be determined.  Handles the exit comparison living in the header
    (while-style) with predicates ``slt/sle/sgt/sge/ne/ult/ule``.
    """
    ind = find_induction(loop)
    if ind is None or not isinstance(ind.init, ConstantInt):
        return None
    term = loop.header.terminator
    if not isinstance(term, CondBranchInst):
        return None
    cond = term.condition
    if not isinstance(cond, ICmpInst):
        return None
    # One successor must leave the loop, the other continue it.
    t_in = loop.contains(term.true_target)
    f_in = loop.contains(term.false_target)
    if t_in == f_in:
        return None
    continue_on_true = t_in

    # Normalise to: continue while `phi <pred> bound`.
    if cond.lhs is ind.phi and isinstance(cond.rhs, ConstantInt):
        pred, bound = cond.predicate, cond.rhs.value
    elif cond.rhs is ind.phi and isinstance(cond.lhs, ConstantInt):
        from ..ir.instructions import ICMP_SWAPPED

        pred, bound = ICMP_SWAPPED[cond.predicate], cond.lhs.value
    else:
        return None
    if not continue_on_true:
        from ..ir.instructions import ICMP_NEGATED

        pred = ICMP_NEGATED[pred]

    start = ind.init.value
    step = -ind.step.value if ind.negated else ind.step.value
    if step == 0:
        return None
    return _count(start, step, pred, bound)


def _count(start: int, step: int, pred: str, bound: int) -> Optional[int]:
    """Iterations of ``for (i = start; i <pred> bound; i += step)``."""
    def cont(i: int) -> bool:
        if pred in ("slt", "ult"):
            return i < bound
        if pred in ("sle", "ule"):
            return i <= bound
        if pred in ("sgt", "ugt"):
            return i > bound
        if pred in ("sge", "uge"):
            return i >= bound
        if pred == "ne":
            return i != bound
        if pred == "eq":
            return i == bound
        return False

    # Closed forms, guarding against non-terminating combinations.
    if pred in ("slt", "ult", "sle", "ule"):
        if step <= 0:
            return None
        limit = bound + (1 if pred in ("sle", "ule") else 0)
        if start >= limit:
            return 0
        return (limit - start + step - 1) // step
    if pred in ("sgt", "ugt", "sge", "uge"):
        if step >= 0:
            return None
        limit = bound - (1 if pred in ("sge", "uge") else 0)
        if start <= limit:
            return 0
        return (start - limit + (-step) - 1) // (-step)
    if pred == "ne":
        if (bound - start) % step != 0:
            return None
        count = (bound - start) // step
        return count if count >= 0 else None
    return None
