"""CFG traversal utilities shared by analyses and transforms."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..ir.block import BasicBlock
from ..ir.function import Function


def predecessor_map(func: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Compute predecessors for every block in one pass over the function.

    A predecessor appears once even if it has two edges to the block (a
    conditional branch with identical targets), matching phi semantics where
    one incoming entry covers all edges from the same block.
    """
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in func.blocks}
    for block in func.blocks:
        seen = set()
        for succ in block.successors():
            if id(succ) not in seen:
                seen.add(id(succ))
                preds[succ].append(block)
    return preds


def reverse_postorder(func: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder from the entry (unreachable ones excluded)."""
    order: List[BasicBlock] = []
    visited: Set[int] = set()

    # Iterative DFS: (block, successor-iterator) stack avoids recursion limits
    # on the long chains u&u produces.
    stack = [(func.entry, iter(func.entry.successors()))]
    visited.add(id(func.entry))
    while stack:
        block, it = stack[-1]
        advanced = False
        for succ in it:
            if id(succ) not in visited:
                visited.add(id(succ))
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


def postorder(func: Function) -> List[BasicBlock]:
    order = reverse_postorder(func)
    order.reverse()
    return order


def reachable_blocks(func: Function) -> Set[int]:
    """ids of blocks reachable from the entry."""
    return {id(b) for b in reverse_postorder(func)}


def blocks_reaching(targets: Iterable[BasicBlock],
                    preds: Dict[BasicBlock, List[BasicBlock]]) -> Set[int]:
    """ids of blocks that can reach any of ``targets`` (inclusive)."""
    work = list(targets)
    seen = {id(b) for b in work}
    while work:
        block = work.pop()
        for pred in preds.get(block, []):
            if id(pred) not in seen:
                seen.add(id(pred))
                work.append(pred)
    return seen


def topological_order(blocks: List[BasicBlock],
                      region: Optional[Set[int]] = None) -> List[BasicBlock]:
    """Topological order of an acyclic sub-CFG (raises on cycles).

    ``region`` restricts edges to blocks whose id is in the set; when
    omitted, the set of ``blocks`` defines the region.
    """
    if region is None:
        region = {id(b) for b in blocks}
    indegree: Dict[int, int] = {id(b): 0 for b in blocks}
    by_id = {id(b): b for b in blocks}
    for block in blocks:
        for succ in block.successors():
            if id(succ) in region and id(succ) in indegree:
                indegree[id(succ)] += 1
    ready = [b for b in blocks if indegree[id(b)] == 0]
    order: List[BasicBlock] = []
    while ready:
        block = ready.pop(0)
        order.append(block)
        for succ in block.successors():
            if id(succ) in region and id(succ) in indegree:
                indegree[id(succ)] -= 1
                if indegree[id(succ)] == 0:
                    ready.append(by_id[id(succ)])
    if len(order) != len(blocks):
        raise ValueError("sub-CFG contains a cycle")
    return order


def split_edge(pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
    """Insert a fresh block on the edge ``pred -> succ`` and return it.

    Phis in ``succ`` are updated to route their ``pred`` incoming entries
    through the new block.
    """
    from ..ir.instructions import BranchInst

    func = pred.parent
    if func is None:
        raise ValueError("cannot split edge of a detached block")
    mid = func.add_block(f"{pred.name}.{succ.name}.split", after=pred)
    mid.append(BranchInst(succ))
    term = pred.terminator
    assert term is not None
    term.replace_successor(succ, mid)
    for phi in succ.phis():
        for i, blk in enumerate(phi.incoming_blocks):
            if blk is pred:
                phi.set_incoming_block(i, mid)
    return mid
