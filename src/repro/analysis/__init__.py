"""Static analyses over the IR: CFG, dominators, loops, costs, divergence."""

from .cfg_utils import (blocks_reaching, postorder, predecessor_map,
                        reachable_blocks, reverse_postorder, split_edge,
                        topological_order)
from .convergence import (convergent_instructions, function_has_convergent,
                          loop_is_convergent)
from .cost_model import (block_cost, function_size, instruction_cost,
                         loop_size, region_size)
from .divergence import DivergenceInfo, loop_has_divergent_branch
from .dominators import DominatorTree, PostDominatorTree
from .loops import Loop, LoopInfo
from .paths import count_paths, estimate_unmerged_size
from .tripcount import InductionInfo, constant_trip_count, find_induction

__all__ = [
    "predecessor_map", "reverse_postorder", "postorder", "reachable_blocks",
    "blocks_reaching", "topological_order", "split_edge",
    "DominatorTree", "PostDominatorTree",
    "Loop", "LoopInfo",
    "count_paths", "estimate_unmerged_size",
    "instruction_cost", "block_cost", "loop_size", "function_size",
    "region_size",
    "loop_is_convergent", "convergent_instructions", "function_has_convergent",
    "DivergenceInfo", "loop_has_divergent_branch",
    "InductionInfo", "find_induction", "constant_trip_count",
]
