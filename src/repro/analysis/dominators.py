"""Dominator and post-dominator trees.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm").  The post-dominator tree treats every exit block
(``ret``/``unreachable``) as a predecessor of a virtual exit, which is what
the SIMT simulator uses to pick warp reconvergence points (immediate
post-dominator reconvergence, the hardware model the paper assumes).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..ir.block import BasicBlock
from ..ir.function import Function
from .cfg_utils import predecessor_map, reverse_postorder


class DominatorTree:
    """Immediate-dominator tree over the reachable CFG."""

    def __init__(self, idom: Dict[int, Optional[BasicBlock]],
                 order_index: Dict[int, int],
                 blocks: List[BasicBlock]) -> None:
        self._idom = idom
        self._order_index = order_index
        self._blocks = blocks
        self._children: Dict[int, List[BasicBlock]] = {}
        for block in blocks:
            parent = idom.get(id(block))
            if parent is not None and parent is not block:
                self._children.setdefault(id(parent), []).append(block)

    # -- construction -----------------------------------------------------
    @classmethod
    def compute(cls, func: Function) -> "DominatorTree":
        rpo = reverse_postorder(func)
        preds = predecessor_map(func)
        return cls._run(rpo, lambda b: preds[b], rpo[0])

    @classmethod
    def compute_post(cls, func: Function) -> "PostDominatorTree":
        return PostDominatorTree.compute(func)

    @classmethod
    def _run(cls, rpo: List[BasicBlock], preds_fn, root: BasicBlock
             ) -> "DominatorTree":
        order_index = {id(b): i for i, b in enumerate(rpo)}
        idom: Dict[int, Optional[BasicBlock]] = {id(root): root}

        def intersect(b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
            while b1 is not b2:
                while order_index[id(b1)] > order_index[id(b2)]:
                    b1 = idom[id(b1)]  # type: ignore[assignment]
                while order_index[id(b2)] > order_index[id(b1)]:
                    b2 = idom[id(b2)]  # type: ignore[assignment]
            return b1

        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is root:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in preds_fn(block):
                    if id(pred) not in order_index:
                        continue  # Unreachable predecessor.
                    if id(pred) in idom:
                        if new_idom is None:
                            new_idom = pred
                        else:
                            new_idom = intersect(pred, new_idom)
                if new_idom is not None and idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True
        tree = cls(idom, order_index, rpo)
        tree._root = root
        return tree

    _root: BasicBlock

    # -- queries -----------------------------------------------------------
    @property
    def root(self) -> BasicBlock:
        return self._root

    def reachable_ids(self) -> Iterable[int]:
        return self._order_index.keys()

    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self._order_index

    def idom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate dominator (None for the root or unreachable blocks)."""
        parent = self._idom.get(id(block))
        if parent is block:
            return None
        return parent

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return self._children.get(id(block), [])

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        if id(a) not in self._order_index or id(b) not in self._order_index:
            return False
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            parent = self._idom.get(id(node))
            node = None if parent is node else parent
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def dominance_frontier(self) -> Dict[int, Set[BasicBlock]]:
        """Dominance frontiers (Cooper et al. §4), keyed by block id."""
        frontier: Dict[int, Set[BasicBlock]] = {id(b): set() for b in self._blocks}
        preds = None
        func = self._blocks[0].parent
        assert func is not None
        preds = predecessor_map(func)
        for block in self._blocks:
            block_preds = [p for p in preds[block] if self.is_reachable(p)]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom(block):
                    frontier[id(runner)].add(block)
                    runner = self.idom(runner)
        return frontier

    def preorder(self) -> List[BasicBlock]:
        """Dominator-tree preorder (parents before children)."""
        order: List[BasicBlock] = []
        stack = [self._root]
        while stack:
            block = stack.pop()
            order.append(block)
            children = self.children(block)
            stack.extend(reversed(children))
        return order


class PostDominatorTree:
    """Post-dominator tree over a CFG with a virtual unified exit."""

    def __init__(self, ipdom: Dict[int, Optional[BasicBlock]],
                 blocks: List[BasicBlock]) -> None:
        self._ipdom = ipdom
        self._blocks = blocks

    @classmethod
    def compute(cls, func: Function) -> "PostDominatorTree":
        # Build the reverse CFG restricted to blocks that reach an exit;
        # infinite loops post-dominate nothing and get no ipdom entry.
        exits = [b for b in func.blocks
                 if b.terminator is not None and not b.successors()]
        if not exits:
            return cls({}, list(func.blocks))

        succs: Dict[int, List[BasicBlock]] = {
            id(b): b.successors() for b in func.blocks}

        # Reverse postorder of the reverse CFG, starting from a virtual exit.
        # In the reverse graph an edge runs succ -> pred, so the "preds" of a
        # node are its forward successors and vice versa.
        virtual = BasicBlock("__virtual_exit__")

        forward_preds: Dict[int, List[BasicBlock]] = {}
        for block in func.blocks:
            for succ in succs[id(block)]:
                forward_preds.setdefault(id(succ), []).append(block)
        exit_ids = {id(b) for b in exits}

        def r_successors(block: BasicBlock) -> List[BasicBlock]:
            # Edges out of a node in the reverse graph.
            if block is virtual:
                return exits
            return forward_preds.get(id(block), [])

        def r_predecessors(block: BasicBlock) -> List[BasicBlock]:
            # Edges into a node in the reverse graph.
            if block is virtual:
                return []
            result = list(succs[id(block)])
            if id(block) in exit_ids:
                result.append(virtual)
            return result

        # Postorder DFS over the reverse CFG from the virtual exit.
        order: List[BasicBlock] = []
        visited = {id(virtual)}
        stack = [(virtual, iter(r_successors(virtual)))]
        while stack:
            block, it = stack[-1]
            advanced = False
            for nxt in it:
                if id(nxt) not in visited:
                    visited.add(id(nxt))
                    stack.append((nxt, iter(r_successors(nxt))))
                    advanced = True
                    break
            if not advanced:
                order.append(block)
                stack.pop()
        order.reverse()  # Reverse postorder of reverse CFG.

        tree = DominatorTree._run(order, r_predecessors, virtual)
        ipdom: Dict[int, Optional[BasicBlock]] = {}
        for block in func.blocks:
            if not tree.is_reachable(block):
                continue
            parent = tree.idom(block)
            ipdom[id(block)] = None if parent is virtual else parent
        return cls(ipdom, list(func.blocks))

    def ipdom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate post-dominator (None if the virtual exit)."""
        return self._ipdom.get(id(block))

    def post_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` post-dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        seen: Set[int] = set()
        while node is not None and id(node) not in seen:
            if node is a:
                return True
            seen.add(id(node))
            node = self._ipdom.get(id(node))
        return False
