"""Request/result schemas for the optimization service.

A submission names its kernel **source** one of three ways:

* ``app`` — a registered benchmark (the full workload: launches, device
  buffers, differential check against the baseline pipeline);
* ``ir`` — a textual-IR module, measured the way the fuzz oracle
  measures subjects (every function runs one warp of ``lanes`` threads
  with deterministic scalar arguments);
* ``kernel`` — a frontend-AST kernel as JSON (see :func:`ast_to_json`),
  lowered and then measured like ``ir``.

plus a pipeline ``config``, an optional per-loop coordinate
(``loop_id``/``factor``), and the execution ``engine``.

**Dedup** keys submissions by :func:`content_hash` — the SHA-256 of
every request field that determines the result.  The engine is
deliberately excluded: engines are bit-identical by contract
(tests/test_engine_equivalence.py), so two submissions differing only in
engine share one computation, exactly as the cell cache shares their
cells.  Priority is excluded too (it affects scheduling, never results).
Hashing kernels by content rather than by name is also the hook for
similarity-based tuning transfer ("A Similarity Measure for GPU Kernel
Subgraph Matching"): the hash identifies the kernel, a future feature
vector will identify its neighborhood.

**Directives** anticipate pragma-style transformation scripts (Kruse &
Finkel, "Loop Optimization Framework"): the schema carries an ordered
``directives`` list like ``["unroll(4)@k/L0", "unmerge@k/L0"]`` instead
of hardwiring one pipeline name.  :func:`parse_directive` validates the
syntax today; execution is reserved for the transformation-script layer
(see ROADMAP "User-directed transformation scripts") and submissions
using directives are rejected explicitly rather than silently ignored.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..frontend import ast as front
from ..gpu.timing import TIMING_MODEL_VERSION

#: Bump when the request or result wire shape changes incompatibly.
#: v2: requests grow ``include_profile``; results grow ``trace_events``
#: and ``profile`` (per-request correlated observability streams).
#: v3: requests may ask for the ``predicted`` config (similarity-index
#: tuning transfer) and grow ``refine`` — opt-in background empirical
#: refinement of a predicted app at low priority.
SERVE_SCHEMA_VERSION = 3

#: Pipeline configurations a submission may request.
CONFIGS = ("baseline", "uu", "unroll", "unmerge", "uu_heuristic", "tuned",
           "predicted")

#: Configs that address one loop at a time and therefore need a loop_id.
PER_LOOP_CONFIGS = ("uu", "unroll", "unmerge")


class ProtocolError(ValueError):
    """A malformed request (bad schema, unknown node, bad directive)."""


# ---------------------------------------------------------------------------
# Frontend-AST JSON codec
# ---------------------------------------------------------------------------

#: Every serializable frontend node, keyed by class name.  The codec is
#: generic over dataclass fields, so a new AST node only needs listing.
_AST_NODES = {
    cls.__name__: cls
    for cls in (front.Var, front.Lit, front.BinOp, front.Cmp, front.And,
                front.Or, front.Not, front.Index, front.AddrOf, front.Call,
                front.Cast, front.Assign, front.Store, front.If, front.While,
                front.For, front.Return, front.ExprStmt, front.Break,
                front.Param, front.KernelDef)
}


def ast_to_json(node):
    """Recursively encode a frontend AST node (or plain value) as JSON."""
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    if isinstance(node, (list, tuple)):
        return [ast_to_json(item) for item in node]
    if isinstance(node, dict):
        return {str(key): ast_to_json(value) for key, value in node.items()}
    name = type(node).__name__
    if name not in _AST_NODES:
        raise ProtocolError(f"unserializable AST node {name!r}")
    data = {"node": name}
    for f in dataclasses.fields(node):
        data[f.name] = ast_to_json(getattr(node, f.name))
    return data


def ast_from_json(data):
    """Inverse of :func:`ast_to_json`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [ast_from_json(item) for item in data]
    if not isinstance(data, dict):
        raise ProtocolError(f"unexpected AST payload {type(data).__name__}")
    if "node" not in data:      # a plain mapping field (e.g. loop_pragmas)
        return {key: ast_from_json(value) for key, value in data.items()}
    name = data.get("node")
    cls = _AST_NODES.get(name)
    if cls is None:
        raise ProtocolError(f"unknown AST node {name!r}")
    kwargs = {f.name: ast_from_json(data.get(f.name))
              for f in dataclasses.fields(cls)
              if f.name in data}
    if cls is front.Call and "args" in kwargs:
        kwargs["args"] = tuple(kwargs["args"])
    if cls is front.KernelDef:
        # JSON stringifies the pragma dict's integer loop indices.
        kwargs["loop_pragmas"] = {int(k): v for k, v in
                                  (kwargs.get("loop_pragmas") or {}).items()}
    return cls(**kwargs)


# ---------------------------------------------------------------------------
# Transformation directives (reserved schema surface)
# ---------------------------------------------------------------------------

_DIRECTIVE_RE = re.compile(
    r"^(?P<name>[a-z_]+)"
    r"(?:\((?P<args>[^()]*)\))?"
    r"(?:@(?P<loop>\S+))?$")


def parse_directive(text: str) -> Dict[str, object]:
    """Parse one pragma-style directive, e.g. ``unroll(4)@kernel/L0``.

    Grammar: ``name[(arg,...)][@loop_id]``.  Returns ``{"name", "args",
    "loop"}``; raises :class:`ProtocolError` on malformed input.
    """
    match = _DIRECTIVE_RE.match(text.strip())
    if match is None:
        raise ProtocolError(
            f"malformed directive {text!r}; expected name[(args)][@loop]")
    raw_args = match.group("args")
    args: List[object] = []
    if raw_args:
        for part in raw_args.split(","):
            part = part.strip()
            try:
                args.append(int(part))
            except ValueError:
                args.append(part)
    return {"name": match.group("name"), "args": args,
            "loop": match.group("loop")}


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OptimizeRequest:
    """One kernel submission.  Exactly one of app/ir/kernel is set."""

    config: str = "uu_heuristic"
    app: Optional[str] = None
    ir: Optional[str] = None
    #: Frontend-AST kernel, already JSON-encoded (:func:`ast_to_json`).
    kernel: Optional[Dict] = None
    loop_id: Optional[str] = None
    factor: int = 1
    engine: Optional[str] = None
    #: Warp width for ir/kernel subjects (apps run their full workload).
    lanes: int = 32
    #: Include the printed optimized IR in the result.
    include_ir: bool = True
    #: Include the request-tagged execution profile in the result
    #: (ir/kernel subjects only; occupancy timelines can be large).
    include_profile: bool = False
    #: Larger runs first; ties FIFO.
    priority: int = 0
    #: For ``config == "predicted"`` app submissions: also enqueue a
    #: background ``repro tune`` refinement job at low priority whose
    #: verified winner upgrades the similarity index on completion.
    refine: bool = False
    #: Reserved pragma-style transformation script (validated, not yet
    #: executed — see module docstring).
    directives: Tuple[str, ...] = ()

    def validate(self) -> "OptimizeRequest":
        sources = [s for s in (self.app, self.ir, self.kernel)
                   if s is not None]
        if len(sources) != 1:
            raise ProtocolError(
                "request needs exactly one of app/ir/kernel "
                f"(got {len(sources)})")
        if self.config not in CONFIGS:
            raise ProtocolError(
                f"unknown config {self.config!r}; expected one of {CONFIGS}")
        if self.config in PER_LOOP_CONFIGS and self.loop_id is None:
            raise ProtocolError(
                f"config {self.config!r} addresses one loop at a time; "
                "set loop_id")
        if self.lanes < 1 or self.lanes > 32:
            raise ProtocolError(f"lanes must be in 1..32, got {self.lanes}")
        for directive in self.directives:
            parse_directive(directive)
        return self

    def to_json(self) -> Dict[str, object]:
        data = {"schema": SERVE_SCHEMA_VERSION}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            data[f.name] = value
        return data

    @classmethod
    def from_json(cls, data: Dict) -> "OptimizeRequest":
        if not isinstance(data, dict):
            raise ProtocolError("request body must be a JSON object")
        schema = data.get("schema", SERVE_SCHEMA_VERSION)
        if schema != SERVE_SCHEMA_VERSION:
            raise ProtocolError(
                f"request schema {schema} != {SERVE_SCHEMA_VERSION}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known - {"schema"}
        if unknown:
            raise ProtocolError(
                f"unknown request fields: {sorted(unknown)}")
        kwargs = {name: data[name] for name in known if name in data}
        if "directives" in kwargs:
            kwargs["directives"] = tuple(kwargs["directives"] or ())
        return cls(**kwargs).validate()


def content_hash(request: OptimizeRequest) -> str:
    """SHA-256 over every request field that determines the result.

    Folds the serve schema and the timing-model version (a timing-model
    bump must not serve stale memoized results), and excludes ``engine``
    and ``priority`` (see module docstring).
    """
    payload = {
        "schema": SERVE_SCHEMA_VERSION,
        "timing": TIMING_MODEL_VERSION,
        "config": request.config,
        "app": request.app,
        "ir": request.ir,
        "kernel": request.kernel,
        "loop_id": request.loop_id,
        "factor": request.factor,
        "lanes": request.lanes,
        "include_ir": request.include_ir,
        "include_profile": request.include_profile,
        "directives": list(request.directives),
    }
    # ``refine`` is excluded like ``priority``: it schedules extra
    # background work but never changes this request's own result, so a
    # predicted submission with refinement dedups against one without.
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class OptimizeResult:
    """What the service returns for one submission."""

    status: str                    # "ok" | "error"
    content_hash: str
    name: str = ""                 # app or kernel/module name
    config: str = ""
    engine: Optional[str] = None
    error: Optional[str] = None
    baseline_cycles: float = 0.0
    cycles: float = 0.0
    speedup: float = 0.0
    code_size: int = 0
    compile_seconds: float = 0.0
    outputs_match_baseline: bool = False
    timed_out: bool = False
    counters: Dict[str, object] = field(default_factory=dict)
    decisions: List[Dict] = field(default_factory=list)
    remarks: List[Dict] = field(default_factory=list)
    #: Chrome trace events captured under the request's obs session;
    #: every span carries ``args.request = content_hash`` so merged
    #: daemon streams stay filterable per job.
    trace_events: List[Dict] = field(default_factory=list)
    #: Request-tagged :class:`~repro.obs.ExecutionProfile` JSON, present
    #: only when the request set ``include_profile``.
    profile: Optional[Dict] = None
    optimized_ir: Optional[str] = None
    #: Per-function return lattices for ir/kernel subjects (base64 numpy,
    #: the cell cache's encoding) — empty for app submissions, whose
    #: outputs live in the differential check instead.
    outputs: Dict[str, Dict] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        data = {"schema": SERVE_SCHEMA_VERSION}
        data.update(dataclasses.asdict(self))
        return data

    @classmethod
    def from_json(cls, data: Dict) -> "OptimizeResult":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{name: value for name, value in data.items()
                      if name in known})
