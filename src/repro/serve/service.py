"""The service's execution core: optimize one submission.

One function, :func:`execute_request`, shared verbatim by the daemon's
queue workers and by any direct in-process caller — which is what makes
"served results are bit-identical to direct runs" a construction rather
than a hope (tests/test_serve.py pins it end to end anyway).

* **app** submissions reuse the harness: cycles/speedup/decisions come
  from :class:`ExperimentRunner` cells (a shared
  :class:`~repro.harness.parallel.ParallelRunner` gives the daemon
  persistent-cache reuse across requests), and the optimized IR plus the
  typed remark stream come from one fresh compile of the same module
  under a request-scoped observability capture.
* **ir**/**kernel** submissions are measured the way the fuzz oracle
  measures subjects: every function runs one warp of ``lanes`` threads
  with deterministic scalar arguments; the baseline anchor is the
  ``baseline``-config compilation of the same source, and outputs are
  compared bitwise against it.

Every remark in the result is stamped with ``request=<content hash>``
(:func:`repro.obs.request_capture`), so merged streams keep per-request
provenance; the hash — not a job id — keeps identical submissions'
streams bit-identical wherever they were computed.
"""

from __future__ import annotations

import dataclasses
import traceback
from typing import Dict, Optional, Tuple

import numpy as np

from ..bench import benchmark_by_name
from ..frontend.lower import lower_kernels
from ..gpu.counters import Counters
from ..gpu.machine import ENGINES, SimtMachine
from ..harness.cache import cell_to_json, outputs_to_json
from ..harness.experiment import ExperimentRunner
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..obs import session as obs
from ..transforms.pipeline import compile_module
from .protocol import (OptimizeRequest, OptimizeResult, ProtocolError,
                       content_hash)

#: Growth cap for ir/kernel subjects — the fuzz oracle's, for the same
#: reason: submitted kernels are small and the cleanup fixpoint must stay
#: tractable per request.  App submissions use the runner's cap.
SUBJECT_MAX_INSTRUCTIONS = 3_000


def _resolve_engine(engine: Optional[str]) -> Optional[str]:
    if engine is not None and engine not in ENGINES:
        raise ProtocolError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


def _default_args(func) -> list:
    from ..fuzz.oracle import default_args
    return default_args(func)


def _run_subject(module: Module, lanes: int,
                 engine: Optional[str]) -> Tuple[Dict[str, np.ndarray],
                                                 Counters]:
    """Per-function return lattices plus summed counters, oracle-style."""
    machine = SimtMachine(module, engine=engine)
    outputs: Dict[str, np.ndarray] = {}
    total = Counters()
    for name, func in module.functions.items():
        ret, counters = machine.run_function(func, _default_args(func), lanes)
        outputs[name] = (np.zeros(0) if ret is None
                         else np.ascontiguousarray(ret))
        total.merge(counters)
    return outputs, total


def _counters_json(counters: Counters) -> Dict[str, object]:
    return {f.name: getattr(counters, f.name)
            for f in dataclasses.fields(Counters)}


def _execute_subject(request: OptimizeRequest, req_hash: str,
                     result: OptimizeResult) -> None:
    """ir/kernel submission: compile + one-warp differential measurement."""
    if request.ir is not None:
        def build() -> Module:
            return parse_module(request.ir, "submission")
    else:
        from .protocol import ast_from_json
        kernel = ast_from_json(request.kernel)
        def build() -> Module:
            return lower_kernels([kernel], kernel.name)

    module = build()
    verify_module(module)  # A broken submission is the client's bug.
    result.name = module.name

    # Baseline anchor: same source through the baseline pipeline.
    base_module = build()
    compile_module(base_module, "baseline",
                   max_instructions=SUBJECT_MAX_INSTRUCTIONS)
    base_outputs, base_counters = _run_subject(base_module, request.lanes,
                                               request.engine)
    result.baseline_cycles = base_counters.cycles

    with obs.request_capture(req_hash) as session:
        with obs.context(config=request.config), \
                obs.span(f"serve/{request.config}", cat="cell"):
            compiled = compile_module(
                module, request.config, loop_id=request.loop_id,
                factor=request.factor,
                max_instructions=SUBJECT_MAX_INSTRUCTIONS)
            outputs, counters = _run_subject(module, request.lanes,
                                             request.engine)
    result.remarks = [r.to_json() for r in session.remarks]
    result.trace_events = list(session.tracer.events)
    if request.include_profile and not session.profile.is_empty():
        result.profile = session.profile.to_json()
    result.decisions = _decision_dicts(compiled)
    result.cycles = counters.cycles
    result.counters = _counters_json(counters)
    result.code_size = compiled.code_size
    result.compile_seconds = compiled.compile_seconds
    result.timed_out = compiled.timed_out
    result.speedup = (base_counters.cycles / counters.cycles
                      if counters.cycles > 0 else 0.0)
    result.outputs_match_baseline = all(
        base_outputs[name].tobytes() == outputs.get(
            name, np.zeros(0)).tobytes()
        and base_outputs[name].dtype == outputs[name].dtype
        for name in base_outputs)
    result.outputs = outputs_to_json(outputs)
    if request.include_ir:
        result.optimized_ir = print_module(module)


def _decision_dicts(compiled) -> list:
    return [dataclasses.asdict(d) for d in compiled.heuristic_decisions]


def _execute_app(request: OptimizeRequest, req_hash: str,
                 result: OptimizeResult,
                 runner: Optional[ExperimentRunner]) -> None:
    """Benchmark submission: harness cells + one captured compile."""
    bench = benchmark_by_name(request.app)
    result.name = bench.name
    if runner is None:
        runner = ExperimentRunner(engine=request.engine)
    if request.loop_id is not None and \
            request.loop_id not in bench.loop_ids():
        raise ProtocolError(
            f"unknown loop {request.loop_id!r} for {bench.name}; "
            f"loops: {bench.loop_ids()}")

    base = runner.baseline(bench)
    cell = runner.cell(bench, request.config, request.loop_id,
                       request.factor)
    result.baseline_cycles = base.cycles
    result.cycles = cell.cycles
    result.speedup = cell.speedup_over(base)
    result.code_size = cell.code_size
    result.compile_seconds = cell.compile_seconds
    result.timed_out = cell.timed_out
    result.outputs_match_baseline = cell.outputs_match_baseline
    result.counters = cell_to_json(cell)["counters"]
    result.decisions = [dataclasses.asdict(d)
                        for d in cell.heuristic_decisions]
    if cell.error is not None:
        raise RuntimeError(cell.error)

    # Optimized IR + typed remarks: one fresh compile of the same module
    # under the request's capture, with the harness's provenance context
    # so the stream matches a traced sweep's for this cell.
    if request.include_ir:
        tuned = None
        if request.config == "tuned":
            from ..tune.store import resolve_decisions
            tuned, _why = resolve_decisions(bench.name, runner.tuned_dir)
        elif request.config == "predicted":
            # Silent resolve: the measured cell above already emitted the
            # prediction telemetry; this recompile only needs the decisions.
            prediction = runner._predict(bench)
            tuned = (None if prediction.fallback
                     else list(prediction.decisions))
        module = bench.build_module()
        with obs.request_capture(req_hash) as session:
            with obs.context(app=bench.name, config=request.config,
                             sweep_loop=request.loop_id,
                             sweep_factor=(request.factor
                                           if request.loop_id else None)), \
                    obs.span(f"serve/{bench.name}/{request.config}",
                             cat="cell"):
                compile_module(module, request.config,
                               loop_id=request.loop_id,
                               factor=request.factor,
                               heuristic=runner.heuristic,
                               max_instructions=runner.max_instructions,
                               timeout_seconds=runner.compile_timeout,
                               tuned=tuned)
        result.remarks = [r.to_json() for r in session.remarks]
        result.trace_events = list(session.tracer.events)
        result.optimized_ir = print_module(module)
    else:
        # No recompile: render the decision stream the way the CLI's
        # --report does, so the result still carries typed remarks.
        from ..obs import heuristic_remarks
        result.remarks = [
            r.to_json() for r in heuristic_remarks(cell.heuristic_decisions,
                                                   function=bench.name)]


def execute_request(request: OptimizeRequest,
                    runner: Optional[ExperimentRunner] = None
                    ) -> OptimizeResult:
    """Optimize one submission; never raises — errors become the result.

    ``runner`` lets the daemon share one (cache-backed) runner across
    requests; a direct caller can omit it for a self-contained run.
    """
    req_hash = content_hash(request)
    result = OptimizeResult(status="ok", content_hash=req_hash,
                            config=request.config, engine=request.engine)
    try:
        request.validate()
        _resolve_engine(request.engine)
        if request.directives:
            raise ProtocolError(
                "transformation directives are accepted by the schema but "
                f"not executed yet (got {list(request.directives)}); see "
                "ROADMAP 'User-directed transformation scripts'")
        if request.app is not None:
            _execute_app(request, req_hash, result, runner)
        else:
            _execute_subject(request, req_hash, result)
    except ProtocolError as exc:
        result.status = "error"
        result.error = str(exc)
    except Exception:
        result.status = "error"
        result.error = traceback.format_exc()
    return result
