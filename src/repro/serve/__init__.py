"""repro.serve — optimization-as-a-service daemon and client.

The batch harness turned into infrastructure: a persistent local daemon
(``repro serve``) accepts kernel submissions — a registered benchmark, a
textual-IR module, or a frontend-AST kernel — plus a pipeline config and
execution engine, and returns the optimized IR, the applied decisions,
the typed optimization-remark stream, and simulated cycles/speedups.
The CLI is just one client of the service.

* :mod:`repro.serve.protocol` — request/result schemas, the content hash
  that powers request dedup, the frontend-AST JSON codec, and the
  (reserved) pragma-style transformation-directive syntax;
* :mod:`repro.serve.service` — the pure "optimize one submission"
  function shared by the daemon and the direct in-process path, so
  served and direct results are bit-identical by construction;
* :mod:`repro.serve.jobs` — priority job queue with in-flight dedup;
* :mod:`repro.serve.daemon` — the stdlib HTTP server and its endpoints;
* :mod:`repro.serve.client` — thin urllib client (``repro submit``).
"""

from .client import DEFAULT_URL, ServeClient
from .daemon import ServeDaemon
from .jobs import Job, JobQueue, JobState
from .protocol import (SERVE_SCHEMA_VERSION, OptimizeRequest, OptimizeResult,
                       ast_from_json, ast_to_json, content_hash,
                       parse_directive)
from .service import execute_request

__all__ = [
    "DEFAULT_URL", "Job", "JobQueue", "JobState", "OptimizeRequest",
    "OptimizeResult", "SERVE_SCHEMA_VERSION", "ServeClient", "ServeDaemon",
    "ast_from_json", "ast_to_json", "content_hash", "execute_request",
    "parse_directive",
]
