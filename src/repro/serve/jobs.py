"""Priority job queue with content-hash dedup for the service daemon.

Submissions become :class:`Job` objects executed by a small pool of
worker threads.  Three properties the daemon's contract needs:

* **Priorities.**  Jobs are ordered by ``(-priority, sequence)`` — higher
  priority first, FIFO among equals — so an interactive client can jump
  a long batch sweep.
* **Dedup.**  A submission whose :func:`~repro.serve.protocol.content_hash`
  matches a queued, running, *or retained finished* job attaches to that
  job instead of enqueuing a new one: N identical concurrent submissions
  perform exactly one computation, and the result is shared.  (Engines
  are excluded from the hash — they are bit-identical by contract.)
* **Clean shutdown.**  :meth:`JobQueue.shutdown` wakes every worker,
  joins the threads, and fails still-queued jobs, so a SIGTERM'd daemon
  leaves no runaway computation behind (pinned by tests/test_serve.py).

Finished jobs are retained (bounded by ``retain``) both for result
pickup and as a memo: re-submitting an identical request returns the
completed job immediately.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..obs import metrics


class JobState:
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a dedup hit may attach to (cancelled/failed jobs re-run).
    SHAREABLE = (QUEUED, RUNNING, DONE)
    FINISHED = (DONE, FAILED, CANCELLED)


@dataclass
class Job:
    """One submission's lifecycle."""

    id: str
    request: Dict
    content_hash: str
    priority: int = 0
    state: str = JobState.QUEUED
    result: Optional[Dict] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: How many submissions this job serves (1 + dedup attachments).
    clients: int = 1
    done_event: threading.Event = field(default_factory=threading.Event,
                                        repr=False)

    def status_json(self) -> Dict[str, object]:
        return {
            "job_id": self.id,
            "state": self.state,
            "content_hash": self.content_hash,
            "priority": self.priority,
            "clients": self.clients,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


class JobQueue:
    """Thread-pool executor with priorities, dedup, and a result memo."""

    def __init__(self, executor: Callable[[Dict], Dict], workers: int = 2,
                 autostart: bool = True, retain: int = 256) -> None:
        self.executor = executor
        self.workers = max(1, workers)
        self.retain = retain
        self._cv = threading.Condition()
        self._heap: List = []           # (-priority, seq, job)
        self._seq = itertools.count()
        self._jobs: Dict[str, Job] = {}
        self._by_hash: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._threads: List[threading.Thread] = []
        self._stopping = False
        # Session counters (reported by /stats).
        self.submitted = 0
        self.deduped_inflight = 0
        self.deduped_memo = 0
        self.executed = 0
        self.failed = 0
        self.cancelled = 0
        #: Jobs queued and not yet running (mirrored to the depth gauge).
        self.queued = 0
        if autostart:
            self.start()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        with self._cv:
            if self._threads or self._stopping:
                return
            for i in range(self.workers):
                thread = threading.Thread(target=self._worker,
                                          name=f"repro-serve-worker-{i}",
                                          daemon=True)
                thread.start()
                self._threads.append(thread)

    def shutdown(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting work, fail queued jobs, join the workers."""
        with self._cv:
            if self._stopping:
                threads = list(self._threads)
            else:
                self._stopping = True
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state == JobState.QUEUED:
                        self._finish(job, JobState.CANCELLED,
                                     error="daemon shutting down")
                threads = list(self._threads)
            self._cv.notify_all()
        if wait:
            deadline = time.time() + timeout
            for thread in threads:
                thread.join(max(0.0, deadline - time.time()))

    @property
    def alive_workers(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    # -- submission ----------------------------------------------------------
    def submit(self, request: Dict, content_hash: str,
               priority: int = 0) -> tuple:
        """Enqueue (or dedup-attach); returns ``(job, deduped)``."""
        with self._cv:
            if self._stopping:
                raise RuntimeError("job queue is shutting down")
            self.submitted += 1
            existing = self._by_hash.get(content_hash)
            if existing is not None and existing.state in JobState.SHAREABLE:
                existing.clients += 1
                if existing.state == JobState.DONE:
                    self.deduped_memo += 1
                    metrics.inc("repro_serve_dedup_hits_total", kind="memo")
                else:
                    self.deduped_inflight += 1
                    metrics.inc("repro_serve_dedup_hits_total",
                                kind="inflight")
                return existing, True
            job = Job(id=f"j{next(self._seq):06d}", request=request,
                      content_hash=content_hash, priority=priority)
            self._jobs[job.id] = job
            self._by_hash[content_hash] = job
            heapq.heappush(self._heap, (-priority, int(job.id[1:]), job))
            self.queued += 1
            metrics.set_gauge("repro_serve_queue_depth", self.queued)
            self._cv.notify()
            return job, False

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; running jobs run to completion."""
        with self._cv:
            job = self._jobs.get(job_id)
            if job is None or job.state != JobState.QUEUED:
                return False
            self._finish(job, JobState.CANCELLED, error="cancelled")
            self.cancelled += 1
            metrics.inc("repro_serve_cancelled_total")
            return True

    def get(self, job_id: str) -> Optional[Job]:
        with self._cv:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None
             ) -> Optional[Job]:
        """Block until ``job_id`` finishes (or timeout); returns the job."""
        job = self.get(job_id)
        if job is None:
            return None
        job.done_event.wait(timeout)
        return job

    # -- worker side ---------------------------------------------------------
    def _pop(self) -> Optional[Job]:
        """Next runnable job, blocking; None when shutting down."""
        with self._cv:
            while True:
                while self._heap:
                    _, _, job = heapq.heappop(self._heap)
                    if job.state == JobState.QUEUED:
                        job.state = JobState.RUNNING
                        job.started_at = time.time()
                        self.queued -= 1
                        metrics.set_gauge("repro_serve_queue_depth",
                                          self.queued)
                        metrics.observe("repro_serve_queue_wait_seconds",
                                        job.started_at - job.submitted_at)
                        return job
                if self._stopping:
                    return None
                self._cv.wait()

    def _worker(self) -> None:
        while True:
            job = self._pop()
            if job is None:
                return
            try:
                result = self.executor(job.request)
            except Exception:
                with self._cv:
                    self._finish(job, JobState.FAILED,
                                 error=traceback.format_exc())
                    self.failed += 1
                    metrics.inc("repro_serve_jobs_total", state="failed")
                    metrics.observe("repro_serve_execute_seconds",
                                    job.finished_at - job.started_at)
                continue
            with self._cv:
                self.executed += 1
                job.result = result
                self._finish(job, JobState.DONE)
                metrics.inc("repro_serve_jobs_total", state="done")
                metrics.observe("repro_serve_execute_seconds",
                                job.finished_at - job.started_at)

    def _finish(self, job: Job, state: str,
                error: Optional[str] = None) -> None:
        """Transition to a terminal state (caller holds the lock)."""
        if job.state == JobState.QUEUED:
            self.queued -= 1
            metrics.set_gauge("repro_serve_queue_depth", self.queued)
        job.state = state
        job.error = error if error is not None else job.error
        job.finished_at = time.time()
        job.done_event.set()
        self._finished_order.append(job.id)
        # Terminal non-DONE jobs must not serve future dedup hits.
        if state != JobState.DONE and \
                self._by_hash.get(job.content_hash) is job:
            del self._by_hash[job.content_hash]
        self._trim()

    def _trim(self) -> None:
        """Bound retained finished jobs (and the memo) to ``retain``."""
        while len(self._finished_order) > self.retain:
            job_id = self._finished_order.pop(0)
            job = self._jobs.pop(job_id, None)
            if job is not None and \
                    self._by_hash.get(job.content_hash) is job:
                del self._by_hash[job.content_hash]

    # -- reporting -----------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._cv:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "workers": self.workers,
                "alive_workers": self.alive_workers,
                "queued": self.queued,
                "submitted": self.submitted,
                "deduped": self.deduped_inflight + self.deduped_memo,
                "deduped_inflight": self.deduped_inflight,
                "deduped_memo": self.deduped_memo,
                "executed": self.executed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "jobs": states,
            }
