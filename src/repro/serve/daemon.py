"""The optimization service's HTTP daemon (``repro serve``).

Stdlib only: a :class:`http.server.ThreadingHTTPServer` bound to
localhost fronting a :class:`~repro.serve.jobs.JobQueue`.  App
submissions share one cache-backed :class:`ParallelRunner` (guarded by a
lock — the runner's memo dicts are not thread-safe), so repeated
requests hit the persistent cell cache exactly like repeated CLI runs;
ir/kernel subjects are self-contained and run fully concurrently on the
queue workers.

Endpoints (JSON in, JSON out)::

    POST /submit            OptimizeRequest body -> {job_id, deduped, ...}
    GET  /status/<job_id>   -> job lifecycle snapshot
    GET  /result/<job_id>   [?wait=seconds] -> OptimizeResult (202 while
                            pending, so pollers can distinguish "not
                            done" from "gone")
    POST /cancel/<job_id>   -> {cancelled: bool} (queued jobs only)
    GET  /stats             -> queue counters + cell-cache stats
    GET  /health            -> {ok, schema, url, uptime_seconds}
    GET  /metrics           -> Prometheus text exposition (queue, cache,
                            JIT counter families; see repro.obs.metrics)

A request to a *known* route with the wrong verb gets 405 (with an
``Allow`` header), not 404 — clients can tell "wrong method" from "no
such endpoint".

Shutdown is idempotent and signal-friendly: SIGTERM/SIGINT (see
:meth:`ServeDaemon.install_signal_handlers`) stop the HTTP listener,
cancel still-queued jobs, and join the queue workers, leaving no
background thread behind.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..harness.cache import CellCache
from ..harness.parallel import ParallelRunner
from ..obs import ObsSession
from ..obs import metrics as obs_metrics
from .jobs import JobQueue, JobState
from .protocol import (SERVE_SCHEMA_VERSION, OptimizeRequest, ProtocolError,
                       content_hash)
from .service import execute_request

#: Queue priority of background refinement jobs: far below any user
#: submission (user priorities default to 0), so refinement only runs
#: when the queue is otherwise idle.
REFINE_PRIORITY = -100


def refine_app(app: str, sim_index_dir=None) -> Dict:
    """Empirically tune ``app`` and upgrade the similarity index.

    The background half of the serve fast path: a ``predicted`` result is
    returned instantly, and this job later replaces transferred evidence
    with a verified empirical tuning (``source="refined"`` in the index).
    The tuning is *not* persisted to ``results/tuned/`` — the daemon owns
    the index, not the committed corpus.
    """
    from ..bench import benchmark_by_name
    from ..similarity.index import SimilarityIndex
    from ..tune.search import tune_benchmark

    bench = benchmark_by_name(app)
    result = tune_benchmark(bench, jobs=1, persist=False)
    if not result.verified:
        return {"status": "error", "app": app, "indexed": False,
                "error": f"refinement unverified: {result.verify_detail}"}
    index = SimilarityIndex(sim_index_dir)
    key = index.add_tuned(bench.build_module(), result.config,
                          source="refined")
    return {"status": "ok", "app": app, "indexed": True, "entry_key": key,
            "source": result.config.source,
            "tuned_cycles": result.config.tuned_cycles}


#: Routes by verb; anything here answered with the other verb is a 405.
GET_ROUTES = ("health", "stats", "metrics", "status", "result")
POST_ROUTES = ("submit", "cancel")

#: Cap on ``?wait=`` so a dead client cannot pin a handler thread forever.
MAX_RESULT_WAIT_SECONDS = 300.0


class ServeDaemon:
    """Own the queue, the shared runner, and the HTTP listener."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2,
                 runner: Optional[ParallelRunner] = None,
                 cache_max_bytes: Optional[int] = None,
                 use_cache: bool = True) -> None:
        self.host = host
        self._requested_port = port
        if runner is None:
            cache = (CellCache(max_bytes=cache_max_bytes) if use_cache
                     else None)
            runner = ParallelRunner(cache=cache, use_cache=use_cache)
        self.runner = runner
        #: Serializes app jobs on the shared runner; ir/kernel jobs
        #: never take it.
        self._runner_lock = threading.RLock()
        #: The daemon's metric registry.  Installed into the process
        #: slot (unless one is already live, e.g. an embedding test's)
        #: so queue/cache/JIT hooks all aggregate here; pre-registered
        #: at zero so a scrape of an idle daemon still shows every
        #: family.
        self._owns_metrics = obs_metrics.active() is None
        self.metrics = obs_metrics.active() or obs_metrics.install()
        obs_metrics.preregister(self.metrics)
        #: Master observability stream: every job's remarks and trace
        #: events, folded under a lock as jobs finish.  Spans carry
        #: ``args.request``, so one request's story is recoverable with
        #: ``repro trace --request`` after :meth:`export_obs`.
        self.obs = ObsSession()
        self._obs_lock = threading.Lock()
        #: Background-refinement entry point (tests monkeypatch this to
        #: avoid a real tuning search inside a unit test).
        self.refine_fn = refine_app
        #: Similarity-plane session counters, guarded by their own lock
        #: (bumped from queue workers and read by /stats).
        self._similarity_lock = threading.Lock()
        self._similarity = {"predictions_served": 0,
                            "refinements_submitted": 0,
                            "refinements_completed": 0,
                            "refinements_failed": 0}
        #: Monotonic anchor for /health's ``uptime_seconds``.
        self.started_at = time.monotonic()
        self.queue = JobQueue(self._execute, workers=workers)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._shutdown_lock = threading.Lock()
        self._stopped = False

    # -- job execution -------------------------------------------------------
    def _execute(self, request_json: Dict) -> Dict:
        """Queue-worker entry point: one submission -> one result dict."""
        if request_json.get("internal") == "refine":
            return self._execute_refine(request_json)
        request = OptimizeRequest.from_json(request_json)
        if request.app is not None:
            with self._runner_lock:
                result = execute_request(request, runner=self.runner)
        else:
            result = execute_request(request)
        data = result.to_json()
        if request.config == "predicted" and data.get("status") == "ok":
            with self._similarity_lock:
                self._similarity["predictions_served"] += 1
        self._fold_obs(data)
        return data

    def _execute_refine(self, request_json: Dict) -> Dict:
        """Run one background refinement (daemon-internal job shape)."""
        app = str(request_json.get("app", ""))
        # The runner lock keeps a refinement search from contending with
        # interactive app jobs for the shared cell cache and the CPU.
        with self._runner_lock:
            try:
                data = self.refine_fn(app,
                                      getattr(self.runner, "sim_index_dir",
                                              None))
            except Exception as exc:  # noqa: BLE001 — job must terminate
                data = {"status": "error", "app": app, "indexed": False,
                        "error": f"{type(exc).__name__}: {exc}"}
        with self._similarity_lock:
            if data.get("status") == "ok":
                self._similarity["refinements_completed"] += 1
            else:
                self._similarity["refinements_failed"] += 1
        return data

    def submit_refinement(self, app: str):
        """Enqueue a background refinement for ``app`` at idle priority.

        Dedups on ``refine:<app>`` — the second predicted submission for
        an app does not schedule a second tuning search.  Returns the
        (job, deduped) pair, like :meth:`JobQueue.submit`.
        """
        job, deduped = self.queue.submit(
            {"internal": "refine", "app": app},
            f"refine:{app}", priority=REFINE_PRIORITY)
        if not deduped:
            with self._similarity_lock:
                self._similarity["refinements_submitted"] += 1
        return job, deduped

    def _fold_obs(self, result_json: Dict) -> None:
        """Merge one finished job's captured streams into the master."""
        payload = {"remarks": result_json.get("remarks") or [],
                   "events": result_json.get("trace_events") or [],
                   "profile": result_json.get("profile")}
        if not (payload["remarks"] or payload["events"]
                or payload["profile"]):
            return
        with self._obs_lock:
            self.obs.merge_payload(payload)

    def export_obs(self, trace_out=None, remarks_out=None) -> Dict[str, int]:
        """Write the merged trace/remark streams; returns event counts."""
        from ..obs import write_jsonl
        written = {}
        with self._obs_lock:
            if trace_out is not None:
                written["events"] = self.obs.tracer.write(trace_out)
            if remarks_out is not None:
                written["remarks"] = write_jsonl(self.obs.remarks,
                                                 remarks_out)
        return written

    # -- HTTP lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> str:
        """Bind and serve in a background thread; returns the URL."""
        self._bind()
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http",
            daemon=True)
        self._http_thread.start()
        return self.url

    def serve(self) -> None:
        """Bind and serve on the calling thread until :meth:`shutdown`."""
        self._bind()
        try:
            self._httpd.serve_forever()
        finally:
            self.shutdown()

    def _bind(self) -> None:
        if self._httpd is not None:
            return
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self._requested_port),
                                          handler)
        self._httpd.daemon_threads = True

    def wait(self) -> None:
        """Block until the HTTP thread exits (short joins so SIGTERM's
        handler gets a prompt turn on the main thread)."""
        thread = self._http_thread
        while thread is not None and thread.is_alive():
            thread.join(timeout=0.5)

    def shutdown(self) -> None:
        """Stop listening, drain/cancel the queue, join every thread."""
        with self._shutdown_lock:
            if self._stopped:
                return
            self._stopped = True
        httpd = self._httpd
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)
        self.queue.shutdown(wait=True)
        # Don't leak the daemon's registry into the process slot: later
        # code in this process expects the disabled path back.
        if self._owns_metrics and obs_metrics.active() is self.metrics:
            obs_metrics.uninstall()

    def install_signal_handlers(self) -> Dict[int, object]:
        """Route SIGTERM/SIGINT to :meth:`shutdown`; returns the handlers
        that were previously installed (so tests can restore them)."""
        previous = {}

        def _handle(signum, _frame):
            self.shutdown()

        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _handle)
        return previous

    # -- reporting -----------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema": SERVE_SCHEMA_VERSION,
            "url": self.url,
            "queue": self.queue.stats(),
        }
        cache = self.runner.cache
        data["cache"] = cache.stats() if cache is not None else None
        from ..gpu.region_cache import region_cache
        from ..gpu.region_cache import session as region_session
        regions = region_cache()
        region_data: Dict[str, object] = {
            "session": region_session().snapshot(),
        }
        region_data["store"] = regions.stats() if regions is not None else None
        data["region_cache"] = region_data
        from ..similarity.index import SimilarityIndex
        index = SimilarityIndex(getattr(self.runner, "sim_index_dir", None))
        with self._similarity_lock:
            counters = dict(self._similarity)
        counters["refinements_pending"] = max(
            0, counters["refinements_submitted"]
            - counters["refinements_completed"]
            - counters["refinements_failed"])
        counters["index"] = index.stats()
        data["similarity"] = counters
        data["metrics"] = self.metrics.summary()
        return data


# ---------------------------------------------------------------------------
# HTTP plumbing
# ---------------------------------------------------------------------------

def _make_handler(daemon: ServeDaemon):
    """Bind a request-handler class to one daemon instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = f"repro-serve/{SERVE_SCHEMA_VERSION}"

        # Keep the daemon's stdout clean; tests assert on it.
        def log_message(self, fmt, *args):  # noqa: D102
            pass

        def _reply(self, code: int, payload: Dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _reply_text(self, code: int, text: str,
                        content_type: str) -> None:
            body = text.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _method_not_allowed(self, head: str, current_routes,
                                allow: str) -> bool:
            """405 for a known route addressed with the wrong verb."""
            if head in current_routes or head not in (
                    GET_ROUTES + POST_ROUTES):
                return False
            body = json.dumps(
                {"error": f"method not allowed on {head!r}"}
            ).encode("utf-8")
            self.send_response(405)
            self.send_header("Allow", allow)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return True

        def _read_json(self) -> Dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                return json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"request body is not JSON: {exc}")

        def _route(self) -> Tuple[str, Optional[str], Dict[str, str]]:
            path, _, query = self.path.partition("?")
            parts = [p for p in path.split("/") if p]
            params = {}
            for pair in query.split("&"):
                key, _, value = pair.partition("=")
                if key:
                    params[key] = value
            head = parts[0] if parts else ""
            arg = parts[1] if len(parts) > 1 else None
            return head, arg, params

        # -- verbs ----------------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802
            head, arg, _params = self._route()
            obs_metrics.inc("repro_serve_requests_total",
                            endpoint=head or "/", method="POST")
            if self._method_not_allowed(head, POST_ROUTES, "GET"):
                return
            try:
                if head == "submit" and arg is None:
                    self._submit()
                elif head == "cancel" and arg:
                    self._reply(200, {"job_id": arg,
                                      "cancelled": daemon.queue.cancel(arg)})
                else:
                    self._reply(404, {"error": f"no such endpoint {head!r}"})
            except ProtocolError as exc:
                self._reply(400, {"error": str(exc)})
            except RuntimeError as exc:       # queue shutting down
                self._reply(503, {"error": str(exc)})

        def do_GET(self) -> None:  # noqa: N802
            head, arg, params = self._route()
            obs_metrics.inc("repro_serve_requests_total",
                            endpoint=head or "/", method="GET")
            if self._method_not_allowed(head, GET_ROUTES, "POST"):
                return
            if head == "health":
                uptime = time.monotonic() - daemon.started_at
                self._reply(200, {"ok": True,
                                  "schema": SERVE_SCHEMA_VERSION,
                                  "url": daemon.url,
                                  "uptime_seconds": round(uptime, 3)})
            elif head == "metrics":
                self._reply_text(200, daemon.metrics.render(),
                                 "text/plain; version=0.0.4; charset=utf-8")
            elif head == "stats":
                self._reply(200, daemon.stats())
            elif head == "status" and arg:
                job = daemon.queue.get(arg)
                if job is None:
                    self._reply(404, {"error": f"unknown job {arg!r}"})
                else:
                    self._reply(200, job.status_json())
            elif head == "result" and arg:
                self._result(arg, params)
            else:
                self._reply(404, {"error": f"no such endpoint {head!r}"})

        # -- endpoint bodies -------------------------------------------------
        def _submit(self) -> None:
            body = self._read_json()
            request = OptimizeRequest.from_json(body)
            job, deduped = daemon.queue.submit(
                request.to_json(), content_hash(request),
                priority=request.priority)
            reply = {"job_id": job.id,
                     "content_hash": job.content_hash,
                     "state": job.state,
                     "deduped": deduped}
            if (request.refine and request.app is not None
                    and request.config == "predicted"):
                refine_job, _refine_deduped = daemon.submit_refinement(
                    request.app)
                reply["refine_job_id"] = refine_job.id
            self._reply(200, reply)

        def _result(self, job_id: str, params: Dict[str, str]) -> None:
            job = daemon.queue.get(job_id)
            if job is None:
                self._reply(404, {"error": f"unknown job {job_id!r}"})
                return
            wait = 0.0
            if "wait" in params:
                try:
                    wait = min(float(params["wait"]),
                               MAX_RESULT_WAIT_SECONDS)
                except ValueError:
                    self._reply(400, {"error": "wait must be a number"})
                    return
            if wait > 0:
                job.done_event.wait(wait)
            if job.state == JobState.DONE:
                self._reply(200, job.result)
            elif job.state in JobState.FINISHED:
                self._reply(200, {"status": "error",
                                  "content_hash": job.content_hash,
                                  "job_id": job.id,
                                  "state": job.state,
                                  "error": job.error})
            else:
                self._reply(202, job.status_json())

    return Handler
