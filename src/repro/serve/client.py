"""Thin urllib client for the optimization service.

``repro submit`` and ``repro serve-status`` are built on this; nothing
here knows about benchmarks or IR — it just moves JSON and raises
:class:`ServeError` with the server's message when the daemon replies
with an error status.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

from .protocol import OptimizeRequest, OptimizeResult

#: Default daemon endpoint; ``repro serve`` with no ``--port`` picks an
#: ephemeral port and prints its URL instead.
DEFAULT_PORT = 8377
DEFAULT_URL = os.environ.get("REPRO_SERVE_URL",
                             f"http://127.0.0.1:{DEFAULT_PORT}")


class ServeError(RuntimeError):
    """The daemon replied with an error (or is unreachable)."""

    def __init__(self, message: str, code: Optional[int] = None) -> None:
        super().__init__(message)
        self.code = code


class ServeClient:
    """JSON-over-HTTP client; one instance per daemon URL."""

    def __init__(self, url: str = DEFAULT_URL,
                 timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _call(self, path: str, payload: Optional[Dict] = None,
              timeout: Optional[float] = None) -> Dict:
        req = urllib.request.Request(
            f"{self.url}{path}",
            data=(json.dumps(payload).encode("utf-8")
                  if payload is not None else None),
            headers={"Content-Type": "application/json"},
            method="POST" if payload is not None else "GET")
        try:
            with urllib.request.urlopen(
                    req, timeout=timeout or self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
            except Exception:
                detail = {}
            raise ServeError(detail.get("error", str(exc)), code=exc.code)
        except urllib.error.URLError as exc:
            raise ServeError(
                f"daemon unreachable at {self.url}: {exc.reason}")

    # -- endpoints -----------------------------------------------------------
    def submit(self, request: OptimizeRequest) -> Dict:
        return self._call("/submit", request.to_json())

    def status(self, job_id: str) -> Dict:
        return self._call(f"/status/{job_id}")

    def result(self, job_id: str,
               wait: Optional[float] = None) -> Dict:
        path = f"/result/{job_id}"
        if wait is not None:
            path += f"?wait={wait}"
        return self._call(path, timeout=(wait or 0) + self.timeout)

    def cancel(self, job_id: str) -> Dict:
        return self._call(f"/cancel/{job_id}", payload={})

    def stats(self) -> Dict:
        return self._call("/stats")

    def health(self) -> Dict:
        return self._call("/health")

    def metrics_text(self) -> str:
        """Raw Prometheus text from ``GET /metrics`` (not JSON)."""
        req = urllib.request.Request(f"{self.url}/metrics", method="GET")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServeError(str(exc), code=exc.code)
        except urllib.error.URLError as exc:
            raise ServeError(
                f"daemon unreachable at {self.url}: {exc.reason}")

    # -- conveniences --------------------------------------------------------
    def submit_and_wait(self, request: OptimizeRequest,
                        timeout: float = 600.0) -> OptimizeResult:
        """Submit and block until the result is ready (or timeout)."""
        ticket = self.submit(request)
        job_id = ticket["job_id"]
        deadline = time.time() + timeout
        while True:
            remaining = deadline - time.time()
            if remaining <= 0:
                raise ServeError(
                    f"timed out after {timeout:.0f}s waiting for {job_id}")
            data = self.result(job_id, wait=min(remaining, 30.0))
            if "status" in data:       # a result (ok or error), not a ticket
                return OptimizeResult.from_json(data)
            if data.get("state") in ("failed", "cancelled"):
                raise ServeError(data.get("error") or data["state"])
