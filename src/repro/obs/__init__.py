"""repro.obs — unified tracing, remarks, and execution profiling.

One instrumentation layer for the whole reproduction:

* :mod:`repro.obs.remarks` — typed applied/missed/analysis optimization
  remarks with a JSONL stream format;
* :mod:`repro.obs.trace` — Chrome trace-event (Perfetto) span export;
* :mod:`repro.obs.profile` — per-block engine counters, occupancy
  timeline, batched split/demote events;
* :mod:`repro.obs.session` — the process-wide session slot, the
  ``REPRO_TRACE`` opt-in, and cross-process payload aggregation;
* :mod:`repro.obs.metrics` — the deterministic service-grade metric
  registry (counters/gauges/histograms, Prometheus text export, the
  ``REPRO_METRICS`` opt-in).

Everything is a no-op (one global ``is None`` test per hook) until a
session is installed.
"""

from . import metrics
from .metrics import MetricsRegistry
from .profile import ExecutionProfile, OCCUPANCY_CAP
from .remarks import (KINDS, Remark, heuristic_remarks, read_jsonl,
                      render_remark, write_jsonl)
from .session import (ENV_VAR, ObsSession, active, begin_worker, capture,
                      context, emit, enabled, end_worker, install,
                      maybe_install_from_env, profile, remark,
                      request_capture, span, tracer, uninstall)
from .trace import Tracer

__all__ = [
    "ENV_VAR", "KINDS", "MetricsRegistry", "OCCUPANCY_CAP",
    "ExecutionProfile", "ObsSession", "metrics",
    "Remark", "Tracer", "active", "begin_worker", "capture", "context",
    "emit", "enabled", "end_worker", "heuristic_remarks", "install",
    "maybe_install_from_env", "profile", "read_jsonl", "remark",
    "render_remark", "request_capture", "span", "tracer", "uninstall",
    "write_jsonl",
]
