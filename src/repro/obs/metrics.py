"""Deterministic service-grade metrics plane.

A process-global registry of counters, gauges, and fixed-bucket
histograms, exported in Prometheus text exposition format (``GET
/metrics`` on the serve daemon, ``repro metrics`` on the CLI).  Three
contracts keep it aligned with the rest of the observability layer:

* **Disabled path is one ``is None`` test.**  Like the trace slot
  (:mod:`repro.obs.session`), every hook — :func:`inc`,
  :func:`set_gauge`, :func:`observe` — loads the module slot and returns
  when no registry is installed.  No metric objects are constructed, no
  label tuples built (pinned by benchmarks/test_perf_smoke.py).
* **Deterministic registry.**  No wall-clock anywhere in the data model:
  series are keyed ``(name, sorted label items)``, histogram buckets are
  fixed at family creation, and :meth:`MetricsRegistry.render` emits
  families and series in sorted order.  Two registries that absorbed the
  same observations render byte-identically.
* **take/absorb fold.**  Pool workers ship a :func:`end_worker` snapshot
  home with their result tuple; the parent folds snapshots with
  :meth:`MetricsRegistry.absorb` in task-enumeration order — the same
  discipline as :class:`~repro.gpu.region_cache.RegionSession`.  Folds
  are order-independent (counters and histograms sum, gauges fold by
  max), so ``-j1`` and ``-jN`` sweeps of the same cells render the same
  bytes.

The slot is process-global (not thread-local like the trace slot): the
daemon's queue workers must aggregate into one registry, and every
metric mutation takes the registry lock.  ``REPRO_METRICS=1`` opts a
process in from the environment; the CLI sets it before fanning out so
forked pool workers inherit the flag (see :func:`begin_worker`).
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Environment opt-in; checked by :func:`enabled` and :func:`begin_worker`.
ENV_VAR = "REPRO_METRICS"

#: Default buckets for service latency histograms, in seconds.  Fixed —
#: never derived from observed data — so folds and renders are stable.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)

#: Buckets for normalized feature-space distances (similarity index).
#: The distance metric is roughly [0, 1] for related kernels; the tail
#: bucket catches structurally unrelated neighbors.
DISTANCE_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 1.0, 2.0)

#: Central help text, so instrumentation sites stay one-liners.
HELP: Dict[str, str] = {
    "repro_serve_queue_depth":
        "Jobs currently queued (not yet running) in the serve daemon.",
    "repro_serve_queue_wait_seconds":
        "Time from submit to a worker picking the job up.",
    "repro_serve_execute_seconds":
        "Time a worker spent executing one job.",
    "repro_serve_dedup_hits_total":
        "Submissions served by an existing job (kind=inflight|memo).",
    "repro_serve_cancelled_total":
        "Queued jobs cancelled before running.",
    "repro_serve_jobs_total":
        "Jobs reaching a terminal state (state=done|failed).",
    "repro_serve_requests_total":
        "HTTP requests by endpoint and method.",
    "repro_cache_hits_total":
        "Cache lookups that hit (cache=cell|region|simindex).",
    "repro_cache_misses_total":
        "Cache lookups that missed (cache=cell|region|simindex).",
    "repro_cache_puts_total":
        "Cache writes (cache=cell|region|simindex).",
    "repro_cache_evictions_total":
        "Entries evicted by the LRU bound (cache=cell|region|simindex).",
    "repro_cache_bytes_written_total":
        "Payload bytes written into the cache (cache=cell|region|simindex).",
    "repro_sweep_cells_total":
        "Experiment cells computed by ParallelRunner (cache misses only).",
    "repro_sweep_worker_failures_total":
        "Pool worker tasks that raised instead of returning a cell.",
    "repro_jit_regions_total":
        "JIT region compilation outcomes "
        "(result=compiled|rejected|truncated|dropped).",
    "repro_jit_guard_failures_total":
        "JIT guard failures by site (kind=loop|scalar|lattice).",
    "repro_jit_deopts_total":
        "Region executions that deoptimized back to the interpreter.",
    "repro_jit_fused_segments_total":
        "Fused multi-expression segments baked into compiled regions.",
    "repro_jit_fused_steps_total":
        "Expression steps covered by fused segments.",
    "repro_similarity_predictions_total":
        "Similarity predictions resolved (outcome=transfer|fallback).",
    "repro_similarity_neighbor_distance":
        "Nearest-neighbor distance per predicted loop (normalized).",
    "repro_similarity_index_entries":
        "Entries currently readable in the similarity index.",
}


def _labels_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats render without '.0'."""
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


class Counter:
    """Monotonic sum; folds by addition."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """Last-set level; folds by max (order-independent)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket cumulative histogram; folds by bucket-wise addition."""

    __slots__ = ("buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)   # per upper bound, non-cum.
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        # Values above the last bound only land in the implicit +Inf
        # bucket, which is ``count``.


class _Family:
    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.series: Dict[Tuple[Tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """All metric families of one process, behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- series access (callers must hold the lock) --------------------------
    def _family(self, name: str, kind: str,
                buckets: Optional[Sequence[float]] = None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, HELP.get(name, ""),
                             tuple(float(b) for b in buckets)
                             if buckets is not None else None)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}")
        elif kind == "histogram" and buckets is not None and \
                family.buckets != tuple(float(b) for b in buckets):
            raise ValueError(f"metric {name!r} bucket mismatch")
        return family

    def _series(self, name: str, kind: str, labels: Dict[str, object],
                buckets: Optional[Sequence[float]] = None):
        family = self._family(name, kind, buckets)
        key = _labels_key(labels)
        metric = family.series.get(key)
        if metric is None:
            if kind == "counter":
                metric = Counter()
            elif kind == "gauge":
                metric = Gauge()
            else:
                metric = Histogram(family.buckets)
            family.series[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        with self._lock:
            return self._series(name, "counter", labels)

    def gauge(self, name: str, **labels) -> Gauge:
        with self._lock:
            return self._series(name, "gauge", labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = LATENCY_BUCKETS_S,
                  **labels) -> Histogram:
        with self._lock:
            return self._series(name, "histogram", labels, buckets)

    # -- mutation (used by the module-level hooks; one lock acquisition) -----
    def inc(self, name: str, n: float = 1.0, **labels) -> None:
        with self._lock:
            self._series(name, "counter", labels).inc(n)

    def set(self, name: str, value: float, **labels) -> None:
        with self._lock:
            self._series(name, "gauge", labels).set(value)

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = LATENCY_BUCKETS_S,
                **labels) -> None:
        with self._lock:
            self._series(name, "histogram", labels, buckets).observe(value)

    # -- fold ----------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-able export, deterministically ordered."""
        with self._lock:
            families = []
            for name in sorted(self._families):
                family = self._families[name]
                series = []
                for key in sorted(family.series):
                    metric = family.series[key]
                    entry: Dict[str, object] = {"labels": list(key)}
                    if family.kind == "histogram":
                        entry["counts"] = list(metric.counts)
                        entry["sum"] = metric.sum
                        entry["count"] = metric.count
                    else:
                        entry["value"] = metric.value
                    series.append(entry)
                data: Dict[str, object] = {"name": name, "kind": family.kind,
                                           "series": series}
                if family.buckets is not None:
                    data["buckets"] = list(family.buckets)
                families.append(data)
            return {"families": families}

    def absorb(self, snap: Optional[Dict[str, object]]) -> None:
        """Fold another registry's snapshot in; order-independent."""
        if not snap:
            return
        with self._lock:
            for data in snap.get("families", []):
                name, kind = data["name"], data["kind"]
                for entry in data.get("series", []):
                    labels = dict(entry["labels"])
                    metric = self._series(name, kind, labels,
                                          data.get("buckets"))
                    if kind == "counter":
                        metric.inc(entry["value"])
                    elif kind == "gauge":
                        metric.value = max(metric.value, entry["value"])
                    else:
                        for i, n in enumerate(entry["counts"]):
                            metric.counts[i] += n
                        metric.sum += entry["sum"]
                        metric.count += entry["count"]

    # -- export --------------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition format, deterministically sorted."""
        lines: List[str] = []
        snap = self.snapshot()
        for data in snap["families"]:
            name = data["name"]
            help_text = self._families[name].help
            if help_text:
                lines.append(f"# HELP {name} {_escape(help_text)}")
            lines.append(f"# TYPE {name} {data['kind']}")
            for entry in data["series"]:
                labels = [(k, v) for k, v in entry["labels"]]
                if data["kind"] == "histogram":
                    cumulative = 0
                    for bound, count in zip(data["buckets"],
                                            entry["counts"]):
                        cumulative += count
                        lines.append(_sample(f"{name}_bucket",
                                             labels + [("le", _fmt(bound))],
                                             cumulative))
                    lines.append(_sample(f"{name}_bucket",
                                         labels + [("le", "+Inf")],
                                         entry["count"]))
                    lines.append(_sample(f"{name}_sum", labels,
                                         entry["sum"]))
                    lines.append(_sample(f"{name}_count", labels,
                                         entry["count"]))
                else:
                    lines.append(_sample(name, labels, entry["value"]))
        return "\n".join(lines) + ("\n" if lines else "")

    def summary(self) -> Dict[str, int]:
        """One row for ``repro serve-status``: family/series counts."""
        with self._lock:
            return {
                "families": len(self._families),
                "series": sum(len(f.series)
                              for f in self._families.values()),
            }


def _sample(name: str, labels: List[Tuple[str, str]], value: float) -> str:
    if labels:
        body = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
        return f"{name}{{{body}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def preregister(registry: MetricsRegistry) -> None:
    """Create the core families at zero so a scrape of an idle daemon
    still exposes the queue, cache, and JIT surfaces."""
    registry.gauge("repro_serve_queue_depth")
    registry.histogram("repro_serve_queue_wait_seconds")
    registry.histogram("repro_serve_execute_seconds")
    for kind in ("inflight", "memo"):
        registry.counter("repro_serve_dedup_hits_total", kind=kind)
    registry.counter("repro_serve_cancelled_total")
    for state in ("done", "failed"):
        registry.counter("repro_serve_jobs_total", state=state)
    for cache in ("cell", "region", "simindex"):
        registry.counter("repro_cache_hits_total", cache=cache)
        registry.counter("repro_cache_misses_total", cache=cache)
        registry.counter("repro_cache_puts_total", cache=cache)
        registry.counter("repro_cache_evictions_total", cache=cache)
        registry.counter("repro_cache_bytes_written_total", cache=cache)
    for result in ("compiled", "rejected", "truncated", "dropped"):
        registry.counter("repro_jit_regions_total", result=result)
    for kind in ("loop", "scalar", "lattice"):
        registry.counter("repro_jit_guard_failures_total", kind=kind)
    registry.counter("repro_jit_deopts_total")
    for outcome in ("transfer", "fallback"):
        registry.counter("repro_similarity_predictions_total",
                         outcome=outcome)
    registry.histogram("repro_similarity_neighbor_distance",
                       buckets=DISTANCE_BUCKETS)
    registry.gauge("repro_similarity_index_entries")


# ---------------------------------------------------------------------------
# The slot (process-global, unlike the thread-local trace slot)
# ---------------------------------------------------------------------------

_registry: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    return _registry


def enabled() -> bool:
    """Are metrics requested by the environment?"""
    return bool(os.environ.get(ENV_VAR))


def install(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    global _registry
    registry = registry if registry is not None else MetricsRegistry()
    _registry = registry
    return registry


def uninstall() -> Optional[MetricsRegistry]:
    global _registry
    registry = _registry
    _registry = None
    return registry


def maybe_install_from_env() -> Optional[MetricsRegistry]:
    """Install a registry iff ``REPRO_METRICS`` asks for one."""
    if _registry is None and enabled():
        return install()
    return _registry


# -- fast-path hooks (the only calls on instrumented code paths) -------------

def inc(name: str, n: float = 1.0, **labels) -> None:
    registry = _registry
    if registry is None:
        return
    registry.inc(name, n, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    registry = _registry
    if registry is None:
        return
    registry.set(name, value, **labels)


def observe(name: str, value: float,
            buckets: Sequence[float] = LATENCY_BUCKETS_S, **labels) -> None:
    registry = _registry
    if registry is None:
        return
    registry.observe(name, value, buckets, **labels)


# -- pool-worker lifecycle (mirrors obs.session.begin/end_worker) ------------

def begin_worker() -> Optional[MetricsRegistry]:
    """Reset the slot at worker-task start.

    fork()-based pools hand children a copy of the parent's registry;
    exporting that would double-count everything the parent already
    holds.  Drop it and start fresh (or empty, if metrics are off).
    """
    global _registry
    _registry = MetricsRegistry() if enabled() else None
    return _registry


def end_worker() -> Optional[Dict[str, object]]:
    """Snapshot and clear the worker's registry; None when metrics off."""
    global _registry
    registry = _registry
    _registry = None
    return registry.snapshot() if registry is not None else None


def absorb(snap: Optional[Dict[str, object]]) -> None:
    """Fold a worker snapshot into the live registry (no-op when off)."""
    registry = _registry
    if registry is None or not snap:
        return
    registry.absorb(snap)
