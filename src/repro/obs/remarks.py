"""Structured optimization remarks.

A :class:`Remark` is the unit of optimizer telemetry: one typed record per
transform decision, in the spirit of LLVM's ``-Rpass`` /
``--pass-remarks-output`` machinery.  Three kinds exist:

``applied``
    A transform fired.  Carries the inputs that justified it (for u&u:
    the heuristic triple ``(p, s, u')`` and the predicted unmerged cost).
``missed``
    A transform considered a candidate and declined.  Carries the skip
    reason verbatim (``"divergent branch"``, ``f(p,s,2) >= c``, ...).
``analysis``
    A fact worth surfacing that is neither: per-pass elimination counts,
    unmerge budget exhaustion, and similar.

Remarks serialize to JSON Lines — one object per line — so streams from
parallel workers concatenate trivially and ``repro remarks`` can re-read
them without a framing parser.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

#: The closed set of remark kinds; :func:`Remark.validate` rejects others.
KINDS = ("applied", "missed", "analysis")


@dataclasses.dataclass
class Remark:
    """One optimizer decision, serializable through JSONL."""

    kind: str                     # one of KINDS
    pass_name: str                # emitting pass ("uu", "gvn", "dce", ...)
    function: str                 # kernel/function name
    message: str                  # human-oriented one-liner
    loop_id: Optional[str] = None  # "func:idx" when loop-scoped
    #: Pass-specific payload: heuristic inputs, elimination counts, ...
    args: Dict[str, object] = dataclasses.field(default_factory=dict)
    #: Harness-stamped provenance: app, config, sweep loop_id/factor.
    context: Dict[str, object] = dataclasses.field(default_factory=dict)

    def validate(self) -> "Remark":
        if self.kind not in KINDS:
            raise ValueError(f"unknown remark kind {self.kind!r}")
        return self

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind,
            "pass": self.pass_name,
            "function": self.function,
            "message": self.message,
        }
        if self.loop_id is not None:
            data["loop_id"] = self.loop_id
        if self.args:
            data["args"] = self.args
        if self.context:
            data["context"] = self.context
        return data

    @staticmethod
    def from_json(data: Dict[str, object]) -> "Remark":
        return Remark(
            kind=data["kind"],
            pass_name=data["pass"],
            function=data["function"],
            message=data["message"],
            loop_id=data.get("loop_id"),
            args=dict(data.get("args", {})),
            context=dict(data.get("context", {})),
        ).validate()


# -- JSONL stream ------------------------------------------------------------

def write_jsonl(remarks: Iterable[Remark], path) -> int:
    """Write one JSON object per line; returns the number written."""
    count = 0
    with Path(path).open("w") as fh:
        for remark in remarks:
            fh.write(json.dumps(remark.to_json(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path) -> List[Remark]:
    remarks = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                remarks.append(Remark.from_json(json.loads(line)))
    return remarks


# -- rendering ---------------------------------------------------------------

_KIND_TAGS = {"applied": "applied", "missed": "missed ", "analysis": "note   "}


def render_remark(remark: Remark) -> str:
    """One-line human rendering, stable enough to grep."""
    tag = _KIND_TAGS.get(remark.kind, remark.kind)
    where = remark.loop_id or remark.function
    line = f"[{tag}] {remark.pass_name:<12} {where:<24} {remark.message}"
    if remark.args:
        detail = " ".join(f"{k}={remark.args[k]}"
                          for k in sorted(remark.args))
        line += f"  ({detail})"
    return line


# -- heuristic bridging ------------------------------------------------------

def _unmerged_cost(paths: int, size: int, factor: int,
                   cap: int = 1 << 30) -> int:
    """``f(p, s, u) = sum_{i=0}^{u-1} p^i * s`` — the paper's Eq. cost.

    Mirrors ``repro.analysis.paths.estimate_unmerged_size`` without
    importing it (obs must stay import-light so transforms can depend on
    it without cycles).
    """
    total = 0
    term = size
    for _ in range(max(factor, 0)):
        total += term
        if total >= cap:
            return cap
        term *= paths
    return total


def heuristic_remarks(decisions: Sequence, function: Optional[str] = None
                      ) -> List[Remark]:
    """The single rendering of ``LoopDecision`` rows as remarks.

    Both the ``uu`` pass's remark emission and ``run-heuristic --report``
    go through here, so the report and the remark stream cannot drift
    apart (they are the same objects).  ``decisions`` is duck-typed over
    the ``LoopDecision`` fields (loop_id, paths, size, factor, reason,
    applied) to avoid importing ``repro.transforms``.
    """
    remarks = []
    for d in decisions:
        func = function or str(d.loop_id).split(":", 1)[0]
        if d.factor is None:
            remarks.append(Remark(
                kind="missed", pass_name="uu", function=func,
                loop_id=d.loop_id,
                message=d.reason,
                args={"p": d.paths, "s": d.size},
            ))
        elif d.applied is False:
            remarks.append(Remark(
                kind="missed", pass_name="uu", function=func,
                loop_id=d.loop_id,
                message=(f"selected u'={d.factor} but not applied "
                         "(loop vanished after relayout or transform "
                         "declined)"),
                args={"p": d.paths, "s": d.size, "u_prime": d.factor},
            ))
        else:
            remarks.append(Remark(
                kind="applied", pass_name="uu", function=func,
                loop_id=d.loop_id,
                message=f"unroll-and-unmerge with u'={d.factor}",
                args={"p": d.paths, "s": d.size, "u_prime": d.factor,
                      "cost": _unmerged_cost(d.paths, d.size, d.factor)},
            ))
    return remarks
