"""Process-wide observability session.

All instrumentation in the repo funnels through the single module-level
session slot here.  The contract that keeps the disabled path near-free:

* When no session is installed (``_active is None``) every hook reduces
  to one global load + ``is None`` test — no objects are constructed, no
  strings formatted.  Hot engine loops hoist even that check out by
  grabbing :func:`profile` once per launch.
* ``REPRO_TRACE=1`` (or any non-empty value) opts a process in; the CLI
  sets it before fanning out so forked pool workers inherit the flag.

Cross-process aggregation: ``ParallelRunner`` workers call
:func:`begin_worker` at task start — which *unconditionally* resets the
slot, because fork()ed children inherit the parent's session object and
would otherwise re-export every remark the parent had already collected —
then ship :func:`export_payload` back with their result tuple.  The
parent folds payloads in deterministic (task-enumeration) order via
:func:`merge_payload`.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Dict, List, Optional

from .profile import ExecutionProfile
from .remarks import Remark
from .trace import Tracer

#: Environment opt-in; checked by :func:`enabled` and :func:`begin_worker`.
ENV_VAR = "REPRO_TRACE"

_active: Optional["ObsSession"] = None


class ObsSession:
    """One process's collected remarks, trace events, and exec profile."""

    def __init__(self) -> None:
        self.remarks: List[Remark] = []
        self.tracer = Tracer(pid=os.getpid())
        self.profile = ExecutionProfile()
        #: Harness-owned provenance stamped onto every remark at emit
        #: time (app, config, sweep loop_id/factor).
        self.context: Dict[str, object] = {}

    # -- emission ------------------------------------------------------------
    def emit(self, remark: Remark) -> None:
        if self.context:
            merged = dict(self.context)
            merged.update(remark.context)
            remark.context = merged
        self.remarks.append(remark.validate())

    # -- cross-process transport ---------------------------------------------
    def export_payload(self) -> Dict[str, object]:
        return {
            "pid": os.getpid(),
            "remarks": [r.to_json() for r in self.remarks],
            "events": list(self.tracer.events),
            "profile": self.profile.to_json(),
        }

    def merge_payload(self, payload: Dict[str, object]) -> None:
        for data in payload.get("remarks", []):
            self.remarks.append(Remark.from_json(data))
        self.tracer.absorb(list(payload.get("events", [])),
                           pid=payload.get("pid"))
        prof = payload.get("profile")
        if prof:
            self.profile.merge(ExecutionProfile.from_json(prof))


# -- the slot ----------------------------------------------------------------

def active() -> Optional[ObsSession]:
    return _active


def enabled() -> bool:
    """Is tracing requested by the environment?"""
    return bool(os.environ.get(ENV_VAR))


def install(session: Optional[ObsSession] = None) -> ObsSession:
    global _active
    _active = session if session is not None else ObsSession()
    return _active


def uninstall() -> Optional[ObsSession]:
    global _active
    session, _active = _active, None
    return session


def maybe_install_from_env() -> Optional[ObsSession]:
    """Install a session iff ``REPRO_TRACE`` asks for one."""
    if _active is None and enabled():
        return install()
    return _active


# -- fast-path hooks (the only calls on instrumented code paths) -------------

def remark(kind: str, pass_name: str, function: str, message: str,
           loop_id: Optional[str] = None, **args) -> None:
    """Emit a remark if a session is live; a no-op global test otherwise."""
    if _active is None:
        return
    _active.emit(Remark(kind=kind, pass_name=pass_name, function=function,
                        message=message, loop_id=loop_id, args=args))


def emit(r: Remark) -> None:
    if _active is not None:
        _active.emit(r)


def tracer() -> Optional[Tracer]:
    return _active.tracer if _active is not None else None


def profile() -> Optional[ExecutionProfile]:
    """The live profile, or None — engines hoist this per launch."""
    return _active.profile if _active is not None else None


@contextlib.contextmanager
def span(name: str, cat: str = "phase", **args):
    """Record the wrapped block as a complete trace event (no-op when off)."""
    t = _active.tracer if _active is not None else None
    if t is None:
        yield
        return
    start = t.now()
    t0 = time.perf_counter()
    try:
        yield
    finally:
        t.complete(name, cat, start, time.perf_counter() - t0,
                   args=args or None)


@contextlib.contextmanager
def context(**kv):
    """Temporarily extend the session's provenance context."""
    if _active is None:
        yield
        return
    saved = dict(_active.context)
    _active.context.update({k: v for k, v in kv.items() if v is not None})
    try:
        yield
    finally:
        _active.context = saved


@contextlib.contextmanager
def capture():
    """Run a block under a fresh throwaway session and hand it back.

    Used by the fuzz bisector to attach the remarks a culprit pass
    emitted to its verdict without disturbing any outer session.
    """
    global _active
    saved = _active
    session = ObsSession()
    _active = session
    try:
        yield session
    finally:
        _active = saved


# -- pool-worker lifecycle ---------------------------------------------------

def begin_worker() -> Optional[ObsSession]:
    """Reset the slot at worker-task start.

    fork()-based pools hand children a *copy of the parent's session*,
    remarks and all; exporting that would double-count everything the
    parent already holds.  So: unconditionally drop whatever is
    installed and start fresh (or empty, if tracing is off).
    """
    global _active
    _active = ObsSession() if enabled() else None
    return _active


def end_worker() -> Optional[Dict[str, object]]:
    """Export and clear the worker's session; None when tracing is off."""
    global _active
    session, _active = _active, None
    return session.export_payload() if session is not None else None
