"""Per-thread observability session.

All instrumentation in the repo funnels through the single thread-local
session slot here.  The slot is thread-local (not process-global) so the
service daemon's queue workers can each capture their own request's
remarks concurrently without cross-talk; single-threaded consumers (the
CLI, pool workers) observe exactly the old process-wide behaviour.  The
contract that keeps the disabled path near-free:

* When no session is installed (:func:`active` returns None) every hook
  reduces to one thread-local load + ``is None`` test — no objects are
  constructed, no strings formatted.  Hot engine loops hoist even that check out by
  grabbing :func:`profile` once per launch.
* ``REPRO_TRACE=1`` (or any non-empty value) opts a process in; the CLI
  sets it before fanning out so forked pool workers inherit the flag.

Cross-process aggregation: ``ParallelRunner`` workers call
:func:`begin_worker` at task start — which *unconditionally* resets the
slot, because fork()ed children inherit the parent's session object and
would otherwise re-export every remark the parent had already collected —
then ship :func:`export_payload` back with their result tuple.  The
parent folds payloads in deterministic (task-enumeration) order via
:func:`merge_payload`.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Dict, List, Optional

from .profile import ExecutionProfile
from .remarks import Remark
from .trace import Tracer

#: Environment opt-in; checked by :func:`enabled` and :func:`begin_worker`.
ENV_VAR = "REPRO_TRACE"

#: The slot.  One session per thread; fork() preserves the forking thread
#: as the child's main thread, so pool workers inherit (and immediately
#: reset, see :func:`begin_worker`) the parent's slot as before.
_slot = threading.local()


def _get() -> Optional["ObsSession"]:
    return getattr(_slot, "session", None)


def _set(session: Optional["ObsSession"]) -> None:
    _slot.session = session


class ObsSession:
    """One process's collected remarks, trace events, and exec profile."""

    def __init__(self) -> None:
        self.remarks: List[Remark] = []
        self.tracer = Tracer(pid=os.getpid())
        self.profile = ExecutionProfile()
        #: Harness-owned provenance stamped onto every remark at emit
        #: time (app, config, sweep loop_id/factor).
        self.context: Dict[str, object] = {}

    # -- emission ------------------------------------------------------------
    def emit(self, remark: Remark) -> None:
        if self.context:
            merged = dict(self.context)
            merged.update(remark.context)
            remark.context = merged
        self.remarks.append(remark.validate())

    # -- cross-process transport ---------------------------------------------
    def export_payload(self) -> Dict[str, object]:
        return {
            "pid": os.getpid(),
            "remarks": [r.to_json() for r in self.remarks],
            "events": list(self.tracer.events),
            "profile": self.profile.to_json(),
        }

    def merge_payload(self, payload: Dict[str, object]) -> None:
        for data in payload.get("remarks", []):
            self.remarks.append(Remark.from_json(data))
        self.tracer.absorb(list(payload.get("events", [])),
                           pid=payload.get("pid"))
        prof = payload.get("profile")
        if prof:
            self.profile.merge(ExecutionProfile.from_json(prof))


# -- the slot ----------------------------------------------------------------

def active() -> Optional[ObsSession]:
    return _get()


def enabled() -> bool:
    """Is tracing requested by the environment?"""
    return bool(os.environ.get(ENV_VAR))


def install(session: Optional[ObsSession] = None) -> ObsSession:
    session = session if session is not None else ObsSession()
    _set(session)
    return session


def uninstall() -> Optional[ObsSession]:
    session = _get()
    _set(None)
    return session


def maybe_install_from_env() -> Optional[ObsSession]:
    """Install a session iff ``REPRO_TRACE`` asks for one."""
    if _get() is None and enabled():
        return install()
    return _get()


# -- fast-path hooks (the only calls on instrumented code paths) -------------

def remark(kind: str, pass_name: str, function: str, message: str,
           loop_id: Optional[str] = None, **args) -> None:
    """Emit a remark if a session is live; a no-op slot test otherwise."""
    session = _get()
    if session is None:
        return
    session.emit(Remark(kind=kind, pass_name=pass_name, function=function,
                        message=message, loop_id=loop_id, args=args))


def emit(r: Remark) -> None:
    session = _get()
    if session is not None:
        session.emit(r)


def tracer() -> Optional[Tracer]:
    session = _get()
    return session.tracer if session is not None else None


def profile() -> Optional[ExecutionProfile]:
    """The live profile, or None — engines hoist this per launch."""
    session = _get()
    return session.profile if session is not None else None


@contextlib.contextmanager
def span(name: str, cat: str = "phase", **args):
    """Record the wrapped block as a complete trace event (no-op when off).

    Request provenance (the ``request``/``job`` keys a
    :func:`request_capture` puts in the session context) is folded into
    the event args, so every span a service job produces is recoverable
    from a merged stream by request id (``repro trace --request``).
    Only those two keys are folded — harness context (app/config/sweep
    coordinates) already names the enclosing cell span and would bloat
    every pass-level event.
    """
    session = _get()
    t = session.tracer if session is not None else None
    if t is None:
        yield
        return
    for key in ("request", "job"):
        value = session.context.get(key)
        if value is not None and key not in args:
            args[key] = value
    start = t.now()
    t0 = time.perf_counter()
    try:
        yield
    finally:
        t.complete(name, cat, start, time.perf_counter() - t0,
                   args=args or None)


@contextlib.contextmanager
def context(**kv):
    """Temporarily extend the session's provenance context."""
    session = _get()
    if session is None:
        yield
        return
    saved = dict(session.context)
    session.context.update({k: v for k, v in kv.items() if v is not None})
    try:
        yield
    finally:
        session.context = saved


@contextlib.contextmanager
def capture():
    """Run a block under a fresh throwaway session and hand it back.

    Used by the fuzz bisector to attach the remarks a culprit pass
    emitted to its verdict without disturbing any outer session.  The
    slot is thread-local, so concurrent captures in different threads
    (the service daemon's queue workers) never see each other's remarks.
    """
    saved = _get()
    session = ObsSession()
    _set(session)
    try:
        yield session
    finally:
        _set(saved)


@contextlib.contextmanager
def request_capture(request_id: str, **ctx):
    """Capture one service request's remarks/trace under its own session.

    Like :func:`capture`, but every remark emitted inside the block is
    stamped with the serving ``request`` id (plus any extra provenance
    the daemon supplies, e.g. the job id), so a result's remark stream
    records which submission produced it even after streams are merged.
    """
    with capture() as session:
        session.context["request"] = request_id
        session.context.update(
            {k: v for k, v in ctx.items() if v is not None})
        session.profile.request = request_id
        # Stamp at the tracer too: pass managers record spans via
        # tracer.complete() directly (no per-pass contextmanager), so
        # the session-context fold in span() never sees those events.
        session.tracer.request = request_id
        yield session


# -- pool-worker lifecycle ---------------------------------------------------

def begin_worker() -> Optional[ObsSession]:
    """Reset the slot at worker-task start.

    fork()-based pools hand children a *copy of the parent's session*,
    remarks and all; exporting that would double-count everything the
    parent already holds.  So: unconditionally drop whatever is
    installed and start fresh (or empty, if tracing is off).
    """
    session = ObsSession() if enabled() else None
    _set(session)
    return session


def end_worker() -> Optional[Dict[str, object]]:
    """Export and clear the worker's session; None when tracing is off."""
    session = _get()
    _set(None)
    return session.export_payload() if session is not None else None
