"""Execution profiling for the SIMT engines.

An :class:`ExecutionProfile` rides alongside the architectural
:class:`repro.gpu.counters.Counters` and records *where* cycles went
rather than how many there were:

* per-block hit and cycle counters (which basic blocks dominate runtime);
* an active-mask occupancy timeline — ``(cycle, active_lanes)`` samples
  taken at every block execution, the SIMT-efficiency-over-time view
  DARM-style divergence analyses start from;
* batched-engine structural events: lattice splits (cross-warp control
  disagreement) and row demotions to the per-warp path.

The profile is strictly observational: engines consult it only through a
``profile is not None`` check, and the equivalence suite pins outputs and
cycle counts bit-identical with profiling on vs. off.

Occupancy sampling is capped (:data:`OCCUPANCY_CAP`) so pathological
kernels cannot balloon the session; the number of *dropped* samples is
recorded so a truncated timeline is never mistaken for a complete one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Maximum retained occupancy samples per profile; excess is counted in
#: ``occupancy_dropped`` rather than silently discarded.
OCCUPANCY_CAP = 65536


class ExecutionProfile:
    """Per-run engine telemetry; mergeable across warps and processes."""

    __slots__ = ("block_hits", "block_cycles", "occupancy",
                 "occupancy_dropped", "splits", "demotions", "request")

    def __init__(self) -> None:
        self.block_hits: Dict[str, int] = {}
        self.block_cycles: Dict[str, float] = {}
        #: ``[cycle_ts, active_lanes, lanes_possible]`` triples.
        self.occupancy: List[List[float]] = []
        self.occupancy_dropped = 0
        self.splits: List[Dict[str, object]] = []
        self.demotions: List[Dict[str, object]] = []
        #: Service request id (content hash) this stream belongs to, set
        #: by :func:`repro.obs.session.request_capture`; None outside the
        #: service.  Merging keeps the tag only while unambiguous.
        self.request: Optional[str] = None

    # -- recording (hot paths; keep branch-light) ----------------------------
    def note_block(self, name: str, cycles: float, active: int,
                   lanes: int, cycle_ts: float) -> None:
        self.block_hits[name] = self.block_hits.get(name, 0) + 1
        self.block_cycles[name] = self.block_cycles.get(name, 0.0) + cycles
        if len(self.occupancy) < OCCUPANCY_CAP:
            self.occupancy.append([cycle_ts, active, lanes])
        else:
            self.occupancy_dropped += 1

    def note_split(self, block: str, classes: int, rows: int) -> None:
        self.splits.append({"block": block, "classes": classes,
                            "rows": rows})

    def note_demotion(self, block: str, warp: int) -> None:
        self.demotions.append({"block": block, "warp": warp})

    # -- aggregation ---------------------------------------------------------
    def merge(self, other: "ExecutionProfile") -> None:
        if self.is_empty():
            self.request = other.request
        elif not other.is_empty() and self.request != other.request:
            self.request = None      # mixed streams: tag no longer holds
        for name, n in other.block_hits.items():
            self.block_hits[name] = self.block_hits.get(name, 0) + n
        for name, c in other.block_cycles.items():
            self.block_cycles[name] = self.block_cycles.get(name, 0.0) + c
        room = OCCUPANCY_CAP - len(self.occupancy)
        take = other.occupancy[:room] if room > 0 else []
        self.occupancy.extend(take)
        self.occupancy_dropped += (other.occupancy_dropped
                                   + len(other.occupancy) - len(take))
        self.splits.extend(other.splits)
        self.demotions.extend(other.demotions)

    def is_empty(self) -> bool:
        return not (self.block_hits or self.splits or self.demotions)

    # -- serialization -------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "block_hits": dict(self.block_hits),
            "block_cycles": dict(self.block_cycles),
            "occupancy": [list(s) for s in self.occupancy],
            "occupancy_dropped": self.occupancy_dropped,
            "splits": list(self.splits),
            "demotions": list(self.demotions),
        }
        if self.request is not None:
            data["request"] = self.request
        return data

    @staticmethod
    def from_json(data: Dict[str, object]) -> "ExecutionProfile":
        prof = ExecutionProfile()
        prof.block_hits = {k: int(v)
                           for k, v in data.get("block_hits", {}).items()}
        prof.block_cycles = {k: float(v)
                             for k, v in data.get("block_cycles", {}).items()}
        prof.occupancy = [list(s) for s in data.get("occupancy", [])]
        prof.occupancy_dropped = int(data.get("occupancy_dropped", 0))
        prof.splits = list(data.get("splits", []))
        prof.demotions = list(data.get("demotions", []))
        prof.request = data.get("request")
        return prof

    # -- reporting -----------------------------------------------------------
    def mean_occupancy(self) -> Optional[float]:
        """Mean active-lane fraction over the sampled timeline."""
        if not self.occupancy:
            return None
        num = sum(s[1] for s in self.occupancy)
        den = sum(s[2] for s in self.occupancy)
        return num / den if den else None

    def format(self, top: int = 10) -> str:
        lines = ["Execution profile"]
        total = sum(self.block_cycles.values())
        ranked = sorted(self.block_cycles.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        lines.append(f"  {'block':<28} {'hits':>8} {'cycles':>12} {'%':>6}")
        for name, cycles in ranked[:top]:
            share = 100.0 * cycles / total if total else 0.0
            lines.append(f"  {name:<28} {self.block_hits.get(name, 0):>8} "
                         f"{cycles:>12.0f} {share:>5.1f}%")
        if len(ranked) > top:
            lines.append(f"  ... {len(ranked) - top} more blocks")
        occ = self.mean_occupancy()
        if occ is not None:
            dropped = (f" ({self.occupancy_dropped} samples dropped)"
                       if self.occupancy_dropped else "")
            lines.append(f"  occupancy: {100.0 * occ:.1f}% mean active lanes "
                         f"over {len(self.occupancy)} samples{dropped}")
        if self.splits or self.demotions:
            lines.append(f"  batched: {len(self.splits)} splits, "
                         f"{len(self.demotions)} demotions")
        return "\n".join(lines)
