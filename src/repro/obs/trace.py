"""Chrome trace-event export for pipeline spans.

Spans collected by the pass managers and the harness are stored as
trace-event dicts in the format Perfetto / ``chrome://tracing`` load
natively: a top-level ``{"traceEvents": [...]}`` object whose events use
``ph: "X"`` (complete events with ``ts``/``dur`` in microseconds),
``ph: "C"`` (counters, used for the occupancy timeline), and ``ph: "M"``
(process/thread metadata).  See
https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Events from parallel workers are re-homed under the worker's own ``pid``
when merged, so a multi-process sweep renders as one process lane per
worker plus the parent's harness lane.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional


class Tracer:
    """Collects trace events against a per-process monotonic epoch."""

    def __init__(self, pid: int = 0) -> None:
        self.pid = pid
        self.epoch = time.perf_counter()
        self.events: List[Dict[str, object]] = []
        # When serving, the session's request id.  complete() folds it
        # into every event so pass-level spans recorded via the direct
        # tracer path (not obs.span) are still recoverable by request.
        self.request: Optional[str] = None

    # -- clock ---------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this tracer's epoch (pair with :meth:`complete`)."""
        return time.perf_counter() - self.epoch

    # -- event constructors --------------------------------------------------
    def complete(self, name: str, cat: str, start_s: float, dur_s: float,
                 args: Optional[Dict[str, object]] = None,
                 tid: int = 0) -> None:
        """A ``ph:"X"`` complete event; start/dur in epoch-relative seconds."""
        event: Dict[str, object] = {
            "name": name, "cat": cat, "ph": "X",
            "ts": round(start_s * 1e6, 3),
            "dur": round(dur_s * 1e6, 3),
            "pid": self.pid, "tid": tid,
        }
        if self.request is not None:
            args = dict(args) if args else {}
            args.setdefault("request", self.request)
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, ts: float, values: Dict[str, float],
                tid: int = 0) -> None:
        """A ``ph:"C"`` counter sample; ``ts`` in epoch-relative seconds."""
        self.events.append({
            "name": name, "cat": "counter", "ph": "C",
            "ts": round(ts * 1e6, 3),
            "pid": self.pid, "tid": tid, "args": dict(values),
        })

    def metadata(self, name: str, args: Dict[str, object],
                 pid: Optional[int] = None, tid: int = 0) -> None:
        """A ``ph:"M"`` metadata event (process_name / thread_name)."""
        self.events.append({
            "name": name, "ph": "M", "ts": 0,
            "pid": self.pid if pid is None else pid, "tid": tid,
            "args": dict(args),
        })

    # -- merging -------------------------------------------------------------
    def absorb(self, events: List[Dict[str, object]],
               pid: Optional[int] = None) -> None:
        """Adopt events exported by another tracer (e.g. a pool worker).

        Worker timestamps are relative to the *worker's* epoch; they are
        kept as-is but re-homed under ``pid`` so each worker renders as
        its own process lane rather than interleaving with the parent.
        """
        for event in events:
            if pid is not None:
                event = dict(event)
                event["pid"] = pid
            self.events.append(event)

    # -- export --------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        """Export payload, with a process_name lane label per distinct pid.

        Labels are synthesised at export time (not collection time) so
        absorbed worker events get lanes too and payload merging never
        duplicates metadata rows.
        """
        labels: List[Dict[str, object]] = []
        for pid in sorted({e["pid"] for e in self.events}):
            name = "repro harness" if pid == self.pid else f"worker {pid}"
            labels.append({"name": "process_name", "ph": "M", "ts": 0,
                           "pid": pid, "tid": 0,
                           "args": {"name": name}})
        return {"traceEvents": labels + list(self.events),
                "displayTimeUnit": "ms"}

    def write(self, path) -> int:
        """Write the Chrome trace JSON; returns the number of events."""
        Path(path).write_text(json.dumps(self.to_json()))
        return len(self.events)
