"""Region-level numpy expression fuser for the trace-JIT tier.

The jit engine's compiled regions (``regions.py``) removed the per-block
scheduler but still issue **one numpy dispatch per instruction**: each
value step is a decode-time closure chain (reader -> op -> dtype check ->
slot store).  This module collapses maximal *memory-free SSA chains* of
fusible value steps inside one decoded block into a single generated
Python function compiled with :func:`compile`, so N dispatches become
one call:

* constant / undef / global-address operands are hoisted once into the
  generated code's namespace as shared read-only arrays (exactly the
  arrays ``SimtMachine._reader`` would materialise);
* intermediate results live in Python locals; only *liveout* values —
  those with IR uses outside the fused segment — are stored back into
  the context's SSA slot dict, dead temporaries vanish entirely;
* integer ``add/sub/mul/and/or/xor`` whose result width needs no
  wrap-masking reuse a dead, fresh, same-dtype operand temporary via
  ``out=`` instead of allocating;
* every step keeps the engine family's value semantics *verbatim*: the
  generated expressions call (or textually mirror) the same helpers the
  per-step closures use — ``_wrap_int`` width masking, ``errstate``
  guards on float ops, unsigned compares via ``uint64`` views,
  ``semantics.INTRINSIC_IMPLS`` for math intrinsics — so fused and
  unfused execution are bit-identical by construction
  (tests/test_engine_equivalence.py pins it).

Fusion legality is deliberately narrow: only ``_K_VALUE`` steps of
binop / icmp / fcmp / select / cast / gep and intrinsic-call
instructions, never loads/stores (per-warp transaction accounting),
never allocas (context-dependent addresses), never across block
boundaries (deopt must see every liveout slot populated).  Accounting
is *folded, not changed*: the region compiler charges the same per-step
cycle sequence in the same order, so ``Counters`` stay bit-identical.

``REPRO_JIT_FUSE=0`` disables fusion (escape hatch + A/B lever for
``repro bench-interp --compare``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir.constants import ConstantFloat, ConstantInt, Undef
from ..ir.function import Function
from ..ir.instructions import (BinaryInst, CallInst, CastInst, FCmpInst,
                               GEPInst, ICmpInst, SelectInst)
from ..ir.types import IntType
from ..ir.values import Argument, GlobalVariable
from ..semantics import INTRINSIC_IMPLS, storage_dtype
from .machine import (WARP_SIZE, _K_VALUE, _binary_op, _cast_op, _fcmp_op,
                      _wrap_int)

#: Escape hatch: ``REPRO_JIT_FUSE=0`` turns the fuser off everywhere.
FUSE_ENV = "REPRO_JIT_FUSE"

#: A fused segment must replace at least this many value steps.  Short
#: chains are a wash: the generated call + liveout slot stores cost about
#: what the specialized per-step closures cost, and measured crossover on
#: the bench-interp microkernels sits between 2 and 4 — below this the
#: fused path can *lose* (the ``divergent`` kernel's 2-step latch), at or
#: above it fusion wins on every shape.
MIN_CHAIN = 4

#: Compiled code objects keyed by ``(filename, source)``.  The generated
#: source is id-free (SSA slot ids are bound through the exec namespace,
#: not embedded as literals), so re-launching the same kernel — bench
#: repeats, sweep cells, serve requests, region-cache replays — reuses
#: the ``compile()`` result and pays only an ``exec`` per segment.
_CODE_CACHE: Dict[Tuple[str, str], object] = {}

_CODE_CACHE_LIMIT = 1024

#: Launch-geometry intrinsics read precomputed read-only context arrays.
_GEOMETRY = {
    "tid.x": "ctx.lane_ids",
    "ctaid.x": "ctx.ctaid",
    "ntid.x": "ctx.ntid",
    "nctaid.x": "ctx.nctaid",
}

_SYM = {"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|",
        "xor": "^"}
_UFUNC = {"add": "np.add", "sub": "np.subtract", "mul": "np.multiply",
          "and": "np.bitwise_and", "or": "np.bitwise_or",
          "xor": "np.bitwise_xor"}
_ICMP_SYM = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=",
             "sgt": ">", "sge": ">="}
_UCMP_SYM = {"ult": "<", "ule": "<=", "ugt": ">", "uge": ">="}


def fusion_enabled() -> bool:
    """Fusion is on unless ``REPRO_JIT_FUSE=0`` (any other value: on)."""
    return os.environ.get(FUSE_ENV, "1") != "0"


# -- errstate helpers (referenced from generated code) -----------------------
# Float lattice arithmetic warns on inf/nan operands; the decode-time
# closures run it under errstate and the generated code must match.

def _fadd(lhs, rhs):
    with np.errstate(all="ignore"):
        return lhs + rhs


def _fsub(lhs, rhs):
    with np.errstate(all="ignore"):
        return lhs - rhs


def _fmul(lhs, rhs):
    with np.errstate(all="ignore"):
        return lhs * rhs


def _intr(impl, vals):
    with np.errstate(all="ignore"):
        return impl(vals)


_F_HELPER = {"fadd": "FA", "fsub": "FS", "fmul": "FM"}


# -- chain analysis ----------------------------------------------------------

def fusible(inst) -> bool:
    """Can this instruction's value step join a fused segment?"""
    if isinstance(inst, (BinaryInst, ICmpInst, FCmpInst, SelectInst,
                         CastInst, GEPInst)):
        return True
    if isinstance(inst, CallInst):
        name = inst.intrinsic.name
        return name in _GEOMETRY or name in INTRINSIC_IMPLS
    return False


def use_counts(func: Function) -> Dict[int, int]:
    """Function-wide operand use counts, keyed by ``id(value)``.

    Terminator conditions, return values, and phi incomings are all
    ``operands``, so a value with zero counted uses outside a segment
    is truly dead to the rest of the program.
    """
    counts: Dict[int, int] = {}
    for inst in func.instructions():
        for op in inst.operands:
            oid = id(op)
            counts[oid] = counts.get(oid, 0) + 1
    return counts


def _step_fusible(step) -> bool:
    meta = step[7]
    return (step[3] == _K_VALUE and meta is not None and len(meta) == 3
            and fusible(meta[2]))


def _liveouts(steps, lo: int, hi: int,
              counts: Dict[int, int]) -> Tuple[int, ...]:
    """1 per step whose value has any IR use outside ``steps[lo:hi]``."""
    inner: Dict[int, int] = {}
    for k in range(lo, hi):
        for op in steps[k][7][2].operands:
            oid = id(op)
            inner[oid] = inner.get(oid, 0) + 1
    return tuple(
        1 if counts.get(steps[k][7][0], 0) > inner.get(steps[k][7][0], 0)
        else 0
        for k in range(lo, hi))


def find_segments(steps, counts: Dict[int, int]
                  ) -> Tuple[Tuple[int, int, Tuple[int, ...]], ...]:
    """Maximal runs of >= MIN_CHAIN consecutive fusible value steps.

    Returns ``(lo, hi, liveouts)`` triples over ``steps`` indices; any
    memory / void / non-fusible step breaks the run.
    """
    segments: List[Tuple[int, int, Tuple[int, ...]]] = []
    start: Optional[int] = None
    for i, step in enumerate(steps):
        if _step_fusible(step):
            if start is None:
                start = i
            continue
        if start is not None and i - start >= MIN_CHAIN:
            segments.append((start, i, _liveouts(steps, start, i, counts)))
        start = None
    if start is not None and len(steps) - start >= MIN_CHAIN:
        segments.append((start, len(steps),
                         _liveouts(steps, start, len(steps), counts)))
    return tuple(segments)


class FuseContext:
    """Per-function fusion state threaded through region compilation.

    ``plan`` (from the region cache) short-circuits chain analysis on
    replay: it maps decoded-block *names* to the segment triples a
    previous compile found, so warm launches skip ``use_counts`` and
    ``find_segments`` entirely.
    """

    def __init__(self, machine, func: Function,
                 plan: Optional[Dict[str, Tuple]] = None) -> None:
        self.machine = machine
        self.func = func
        self.plan = plan
        self._counts: Optional[Dict[int, int]] = None

    def counts(self) -> Dict[int, int]:
        if self._counts is None:
            self._counts = use_counts(self.func)
        return self._counts

    def segments_for(self, db) -> Tuple[Tuple[int, int, Tuple[int, ...]], ...]:
        if self.plan is not None:
            return tuple(self.plan.get(db.name, ()))
        return find_segments(db.steps, self.counts())

    def compile_segment(self, db, lo: int, hi: int, live):
        return compile_segment(self.machine, self.func.name, db, lo, hi,
                               live)


# -- code generation ---------------------------------------------------------

def compile_segment(machine, func_name: str, db, lo: int, hi: int, live):
    """Generate + compile one fused segment over ``db.steps[lo:hi]``.

    Returns ``(fn, names, stored)``: the generated
    ``fn(ctx, args, values)`` callable, an ``id -> %name`` map for
    undefined-value diagnostics, and the ``(iid, dtype)`` pairs the
    function stores into the SSA slot dict (the liveouts).
    """
    steps = db.steps
    if not (0 <= lo < hi <= len(steps)) or len(live) != hi - lo:
        raise ValueError(
            f"invalid fused segment [{lo}:{hi}] for {func_name}:{db.name}")
    insts = []
    for k in range(lo, hi):
        if not _step_fusible(steps[k]):
            raise ValueError(
                f"step {k} of {func_name}:{db.name} is not fusible")
        insts.append(steps[k][7][2])

    ns: Dict[str, object] = {
        "np": np, "W": _wrap_int, "B": _binary_op, "FC": _fcmp_op,
        "CO": _cast_op, "FA": _fadd, "FS": _fsub, "FM": _fmul, "IC": _intr,
    }
    hoisted: Dict[int, str] = {}

    def hoist(obj, tag: str) -> str:
        key = id(obj)
        name = hoisted.get(key)
        if name is None:
            name = f"{tag}{len(hoisted)}"
            hoisted[key] = name
            ns[name] = obj
        return name

    # SSA slot ids are bound through the namespace (``values[s0]``), not
    # embedded as int literals, so the generated source is identical
    # across re-parses of the same kernel and _CODE_CACHE can reuse the
    # compiled code object.
    slots: Dict[int, str] = {}

    def slot(vid: int) -> str:
        name = slots.get(vid)
        if name is None:
            name = f"s{len(slots)}"
            slots[vid] = name
            ns[name] = vid
        return name

    def static_dtype(value):
        """Storage dtype of any operand — every producer normalizes.

        Value steps astype to their meta dtype, loads astype on write,
        phi moves astype, ``_bind_args`` builds argument arrays at
        storage dtype, and the hoisted constant arrays above use it
        directly — so an operand's runtime dtype *is* its IR type's
        storage dtype, statically.
        """
        try:
            return storage_dtype(value.type)
        except (ValueError, AttributeError):
            return None

    # The same read-only operand arrays _reader would materialise.
    def materialize(value) -> np.ndarray:
        if isinstance(value, (ConstantInt, ConstantFloat)):
            arr = np.full(WARP_SIZE, value.value,
                          dtype=storage_dtype(value.type))
        elif isinstance(value, Undef):
            arr = np.zeros(WARP_SIZE, dtype=storage_dtype(value.type))
        else:  # GlobalVariable
            arr = np.full(WARP_SIZE, machine._global_addrs[value.name],
                          dtype=np.int64)
        arr.setflags(write=False)
        return arr

    local: Dict[int, str] = {}      # id(inst) -> segment-local var
    fresh: Dict[int, bool] = {}     # local holds a freshly-owned array
    liveflag: Dict[int, bool] = {}  # local was stored to values[]
    dtypes: Dict[int, object] = {}
    last_read: Dict[int, int] = {}  # id(value) -> last step index reading it
    names: Dict[int, str] = {}      # values[]-read ids -> %name (diagnostics)
    for j, inst in enumerate(insts):
        for op in inst.operands:
            last_read[id(op)] = j

    def operand(value) -> str:
        vid = id(value)
        name = local.get(vid)
        if name is not None:
            return name
        if isinstance(value, (ConstantInt, ConstantFloat, Undef,
                              GlobalVariable)):
            key = hoisted.get(vid)
            if key is None:
                key = f"K{len(hoisted)}"
                hoisted[vid] = key
                ns[key] = materialize(value)
            return key
        if isinstance(value, Argument):
            return f"args[{slot(vid)}]"
        names[vid] = value.name
        return f"values[{slot(vid)}]"

    def const_clip(value, as_dtype=None) -> Optional[str]:
        """Hoist ``np.clip(const, 0, 63)`` (the shift-amount clamp) once.

        Shift amounts are almost always literals; clamping the same
        constant array on every iteration is pure loop-invariant work.
        The precomputed array is exactly what the per-iteration clip
        would produce, so values are untouched.
        """
        if not isinstance(value, (ConstantInt, Undef)):
            return None
        arr = np.clip(materialize(value), 0, 63)
        if as_dtype is not None:
            arr = arr.astype(as_dtype)
        arr.setflags(write=False)
        return hoist(arr, "P")

    def reuse_target(inst, j: int, a: str, b: str, dt) -> Optional[str]:
        # A dead (non-liveout), fresh, same-dtype operand temporary whose
        # last read is this very step can absorb the result in place.
        for val, expr in ((inst.lhs, a), (inst.rhs, b)):
            vid = id(val)
            if (local.get(vid) == expr and fresh.get(vid)
                    and not liveflag.get(vid) and last_read.get(vid) == j
                    and dtypes.get(vid) == dt):
                return expr
        return None

    def int_binop(inst, j: int, opc: str, a: str, b: str, dt) -> str:
        sym = _SYM[opc]
        tgt = reuse_target(inst, j, a, b, dt)
        if tgt is None:
            return f"({a} {sym} {b})"
        other = b if tgt == a else a
        # Guard on shape: ufunc out= cannot broadcast the output.
        return (f"({_UFUNC[opc]}({a}, {b}, out={tgt}) "
                f"if {tgt}.shape == {other}.shape else {a} {sym} {b})")

    lines: List[str] = ["def _fused(ctx, args, values):"]
    stored: List[Tuple[int, object]] = []
    for j, inst in enumerate(insts):
        meta = steps[lo + j][7]
        iid, dt = meta[0], meta[1]
        # ``rdt``: the expression's result dtype when statically provable
        # from the operands' storage dtypes; the per-step runtime dtype
        # check is emitted only when ``rdt`` is unknown or differs from
        # the storage dtype (the check would then astype, exactly like
        # the unfused executor's post-run normalization).
        rdt = None
        if isinstance(inst, BinaryInst):
            opc = inst.opcode
            a, b = operand(inst.lhs), operand(inst.rhs)
            da, db_ = static_dtype(inst.lhs), static_dtype(inst.rhs)
            bits = inst.type.bits if isinstance(inst.type, IntType) else 64
            wrap = bits < 64
            fresh_r = True
            if opc in ("add", "sub", "mul"):
                if wrap:
                    expr = f"W({a} {_SYM[opc]} {b}, {bits})"
                else:
                    expr = int_binop(inst, j, opc, a, b, dt)
                    if da is np.int64 and db_ is np.int64:
                        rdt = np.int64
            elif opc in ("fadd", "fsub", "fmul"):
                expr = f"{_F_HELPER[opc]}({a}, {b})"
                if da is db_ and da in (np.float32, np.float64):
                    rdt = da
            elif opc in ("and", "or", "xor"):
                # No wrap masking, exactly like the specialized closure.
                expr = int_binop(inst, j, opc, a, b, dt)
                if da is db_ and da in (np.int64, np.bool_):
                    rdt = da
            elif opc in ("shl", "ashr"):
                sh = "<<" if opc == "shl" else ">>"
                shift = const_clip(inst.rhs) or f"np.clip({b}, 0, 63)"
                core = f"{a} {sh} {shift}"
                expr = f"W({core}, {bits})" if wrap else f"({core})"
                if not wrap and da is np.int64 and db_ is np.int64:
                    rdt = np.int64
            elif opc == "lshr" and not wrap:
                # Inlined from _binary_op's lshr branch (the bits-64
                # case, where the operand-width mask and the final wrap
                # are both no-ops): pure integer numpy ops never warn,
                # so the errstate guard is dead weight here.
                shift = (const_clip(inst.rhs, np.uint64)
                         or f"np.clip({b}, 0, 63).astype(np.uint64)")
                expr = (f"(({a}.astype(np.uint64) >> {shift})"
                        f".astype(np.int64))")
                rdt = np.int64
            else:
                # Division family and sub-width lshr: generic path
                # (errstate and width masking self-managed).
                expr = f"B({opc!r}, {a}, {b}, {hoist(inst.type, 'T')})"
        elif isinstance(inst, ICmpInst):
            a, b = operand(inst.lhs), operand(inst.rhs)
            pred = inst.predicate
            fresh_r = True
            rdt = np.bool_
            if pred.startswith("u") and pred not in ("ueq",):
                sym = _UCMP_SYM[pred]
                expr = (f"({a}.astype(np.uint64) {sym} "
                        f"{b}.astype(np.uint64))")
            else:
                expr = f"({a} {_ICMP_SYM[pred]} {b})"
        elif isinstance(inst, FCmpInst):
            a, b = operand(inst.lhs), operand(inst.rhs)
            expr = f"FC({inst.predicate!r}, {a}, {b})"
            fresh_r = True
        elif isinstance(inst, SelectInst):
            c = operand(inst.condition)
            t, f = operand(inst.true_value), operand(inst.false_value)
            # i1 storage is np.bool_ already; astype(bool) would copy.
            cond = (c if static_dtype(inst.condition) is np.bool_
                    else f"{c}.astype(bool)")
            expr = f"np.where({cond}, {t}, {f})"
            dtt = static_dtype(inst.true_value)
            if dtt is static_dtype(inst.false_value):
                rdt = dtt
            fresh_r = True
        elif isinstance(inst, CastInst):
            v = operand(inst.value)
            expr = (f"CO({inst.opcode!r}, {v}, {hoist(inst.type, 'T')}, "
                    f"{hoist(inst.value.type, 'T')})")
            fresh_r = False  # some casts may return views
        elif isinstance(inst, GEPInst):
            b_, i_ = operand(inst.pointer), operand(inst.index)
            elem = inst.element_type.size_bytes()
            expr = f"({b_} + {i_}.astype(np.int64) * {elem})"
            if static_dtype(inst.pointer) is np.int64:
                rdt = np.int64
            fresh_r = True
        else:  # CallInst (checked fusible above)
            name = inst.intrinsic.name
            geo = _GEOMETRY.get(name)
            if geo is not None:
                expr = geo
                fresh_r = False  # shared read-only context array
            else:
                argl = ", ".join(operand(a) for a in inst.operands)
                impl = INTRINSIC_IMPLS[name]
                expr = f"IC({hoist(impl, 'I')}, [{argl}])"
                fresh_r = False  # impl may pass an input through

        var = f"v{j}"
        lines.append(f"    {var} = {expr}")
        if rdt is not dt:
            dn = hoist(dt, "D")
            lines.append(f"    if {var}.dtype != {dn}:")
            lines.append(f"        {var} = {var}.astype({dn})")
        if live[j]:
            lines.append(f"    values[{slot(iid)}] = {var}")
            stored.append((iid, dt))
        local[iid] = var
        fresh[iid] = fresh_r
        liveflag[iid] = bool(live[j])
        dtypes[iid] = dt

    src = "\n".join(lines) + "\n"
    filename = f"<fused:{func_name}:{db.name}:{lo}>"
    code = _CODE_CACHE.get((filename, src))
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
            _CODE_CACHE.clear()
        code = compile(src, filename, "exec")
        _CODE_CACHE[(filename, src)] = code
    exec(code, ns)
    return ns["_fused"], names, tuple(stored)
