"""SIMT GPU simulation substrate (the stand-in for the paper's V100)."""

from .counters import CATEGORIES, Counters
from .icache import InstructionCache
from .machine import (ENGINE_ENV, ENGINES, LaunchResult, SimtMachine,
                      SimulationError, WARP_SIZE, resolve_engine)
from .memory import Memory, MemoryStats, SEGMENT_BYTES
from .timing import CLOCK_HZ, cycles_to_ms

__all__ = [
    "SimtMachine", "LaunchResult", "SimulationError", "WARP_SIZE",
    "ENGINE_ENV", "ENGINES", "resolve_engine",
    "Memory", "MemoryStats", "SEGMENT_BYTES",
    "Counters", "CATEGORIES", "InstructionCache",
    "CLOCK_HZ", "cycles_to_ms",
]
