"""SIMT GPU simulation substrate (the stand-in for the paper's V100)."""

from .counters import Counters
from .icache import InstructionCache
from .machine import (LaunchResult, SimtMachine, SimulationError, WARP_SIZE)
from .memory import Memory, MemoryStats, SEGMENT_BYTES
from .timing import CLOCK_HZ, cycles_to_ms

__all__ = [
    "SimtMachine", "LaunchResult", "SimulationError", "WARP_SIZE",
    "Memory", "MemoryStats", "SEGMENT_BYTES",
    "Counters", "InstructionCache",
    "CLOCK_HZ", "cycles_to_ms",
]
