"""Per-opcode issue/latency timing model (V100-flavoured).

The model is deliberately simple — relative, not absolute, accuracy is the
goal (see DESIGN.md): every warp-instruction issue costs its issue cycles
regardless of how many lanes are active (the SIMT under-utilisation the
paper's *warp_execution_efficiency* measures), loads add a latency that
grows with the number of memory transactions (coalescing), and instruction
fetch stalls are charged by the icache model.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Version tag of the whole timing model.  Any change to the constants or
#: formulas in this module (or to the icache/memory latency models built on
#: them) must bump this tag: it is folded into the persistent cell-cache key
#: (:mod:`repro.harness.cache`) so stale cached measurements self-invalidate.
TIMING_MODEL_VERSION = "timing-v1"

#: Simulated SM clock (V100 boost clock, Hz) used to convert cycles to ms.
CLOCK_HZ = 1.38e9

#: Issue cycles per warp instruction, by opcode category/opcode.
ISSUE_CYCLES = {
    "int": 1,
    "fp": 2,
    "misc": 1,       # selp / mov
    "control": 1,
    "load": 2,       # Address + issue; latency added separately.
    "store": 2,
    "special": 2,
}

#: Extra issue cycles for expensive opcodes (on top of category cost).
OPCODE_EXTRA = {
    "mul": 1,
    "sdiv": 12,
    "udiv": 12,
    "srem": 12,
    "urem": 12,
    "fdiv": 14,
    "frem": 16,
}

INTRINSIC_EXTRA = {
    "sqrt": 12,
    "exp": 16,
    "log": 16,
    "sin": 16,
    "cos": 16,
    "pow": 24,
    "atan": 18,
    "syncthreads": 8,
}

#: Exposed memory latency per load (cycles); warps partially hide latency,
#: so this is far below the ~400-cycle raw DRAM latency.
LOAD_BASE_LATENCY = 12
#: Additional cycles per extra 32-byte transaction (uncoalesced penalty).
LOAD_TRANSACTION_CYCLES = 4
STORE_TRANSACTION_CYCLES = 2

#: Instruction-cache model: capacity in instruction slots and miss penalty.
ICACHE_CAPACITY = 2048
ICACHE_MISS_BASE = 2
ICACHE_FETCH_WIDTH = 4  # Instructions fetched per miss cycle.


#: How warp-instruction cost splits between a fixed per-issue component and
#: a lane-activity-proportional component.  A real SM hides most of the
#: issue cost of partially-active warps behind other resident warps: kernel
#: time tracks per-*thread* work much more closely than raw issue counts.
#: This is why the paper's XSBench gets 1.36x faster even though its warp
#: execution efficiency collapses (Section V) — and the fixed fraction plus
#: the icache model are what still punish `complex`-style divergence.
ISSUE_FIXED_FRACTION = 0.06
ACTIVITY_FRACTION = 0.94


def issue_cost(category: str, opcode: str, intrinsic: str = "") -> int:
    """Issue cycles for one warp instruction (full warp)."""
    cost = ISSUE_CYCLES.get(category, 1)
    cost += OPCODE_EXTRA.get(opcode, 0)
    if intrinsic:
        cost += INTRINSIC_EXTRA.get(intrinsic, 0)
    return cost


def charge(cost: float, active: int, warp_size: int = 32) -> float:
    """Cycle charge for issuing at ``active`` lanes out of ``warp_size``."""
    return cost * (ISSUE_FIXED_FRACTION +
                   ACTIVITY_FRACTION * active / warp_size)


def load_latency(transactions: int) -> int:
    """Exposed latency of a load touching ``transactions`` segments."""
    if transactions <= 0:
        return 0
    return LOAD_BASE_LATENCY + LOAD_TRANSACTION_CYCLES * (transactions - 1)


def store_cost(transactions: int) -> int:
    if transactions <= 0:
        return 0
    return STORE_TRANSACTION_CYCLES * transactions


def cycles_to_ms(cycles: float) -> float:
    return cycles / CLOCK_HZ * 1e3
