"""SIMT execution engine.

Executes IR functions the way a V100-class GPU would at warp granularity:

* 32 lanes per warp execute in lockstep over numpy vectors;
* a conditional branch whose lanes disagree *diverges*: the taken and
  not-taken paths run serially under sub-masks.  Reconvergence follows an
  epoch-based convergent scheduler: lane groups that arrive at the same
  basic block in the same loop iteration merge, and the group that is
  furthest behind (smallest ``(epoch, reverse-postorder)`` key) always runs
  first — modelling Volta-style opportunistic reconvergence, under which
  unrolled loop bodies re-merge at each traversal of the back edge;
* phi nodes are materialised as moves on CFG edges — the data-movement
  instructions nvprof counts in ``inst_misc`` alongside ``selp``;
* cycle charges split into a fixed per-issue part and a lane-activity part
  (see :func:`repro.gpu.timing.charge`): resident-warp overlap hides most
  of the cost of partially-active issues on a real SM, which is how the
  paper's XSBench wins despite collapsing warp-execution efficiency, while
  the fixed fraction plus instruction-fetch stalls still make tid-dependent
  divergence (`complex`) a net loss;
* loads pay a latency that grows with uncoalesced transactions, and
  entering a non-resident basic block pays instruction-fetch stalls.

Execution is driven by a *pre-decoded* program: the first launch of a
function decodes every basic block once into a flat dispatch list (operand
readers, result writers, precomputed issue costs, per-edge phi moves), so
the per-warp-step hot loop performs no isinstance chains, attribute
resolution, or cost-table lookups.  The decoded form charges cycles through
the exact same :func:`repro.gpu.timing.charge`/``issue_cost`` calls as the
original tree-walking interpreter, so counters and cycle counts are
bit-identical — only the Python interpreter overhead is removed.  Decoding
assumes the module's IR is not mutated between launches of the same
machine (fresh machines are built per compile in the harness).

Two execution engines consume the decoded form (``REPRO_ENGINE`` selects;
see :func:`resolve_engine`):

* ``warp`` — the per-warp scheduler below: every warp of a launch runs the
  decoded schedule on its own, one 32-lane numpy vector at a time;
* ``batched`` (default) — :mod:`repro.gpu.batched`: all warps of a launch
  execute as one ``(n_warps, 32)`` value lattice while their control
  decisions agree across warps, and individual warps demote to this
  module's per-warp path the moment they diverge;
* ``jit`` — :mod:`repro.gpu.jit`: the batched lattice engine plus a
  superblock trace layer (:mod:`repro.gpu.regions`): straight-line
  multi-block regions compiled once per function into fused dispatch
  sequences with guarded side exits, deoptimizing back to the batched
  block interpreter when a guard fails.

The engines are contractually **bit-identical** — same return values, same
counters, same cycle totals (``tests/test_engine_equivalence.py`` enforces
this) — which is why the persistent cell cache does not key on the engine.
"""

from __future__ import annotations

import operator
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.cfg_utils import reverse_postorder
from ..ir.block import BasicBlock
from ..ir.constants import ConstantFloat, ConstantInt, Undef
from ..ir.function import Function
from ..ir.instructions import (AllocaInst, BinaryInst, BranchInst, CallInst,
                               CastInst, CondBranchInst, FCmpInst, GEPInst,
                               ICmpInst, Instruction, LoadInst, PhiInst,
                               RetInst, SelectInst, StoreInst,
                               UnreachableInst)
from ..ir.module import Module
from ..ir.types import FloatType, IntType, PointerType, Type
from ..ir.values import Argument, GlobalVariable, Value
from ..obs import session as obs_session
from ..semantics import INTRINSIC_IMPLS, fptosi_arrays, storage_dtype
from .counters import Counters, cat_index
from .icache import InstructionCache
from .memory import Memory
from .timing import charge, issue_cost, load_latency, store_cost

WARP_SIZE = 32

ArgValue = Union[int, float]

#: Environment override for the default execution engine.
ENGINE_ENV = "REPRO_ENGINE"

#: Supported execution engines (see module docstring).
ENGINES = ("batched", "warp", "jit")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Explicit value > ``REPRO_ENGINE`` > ``batched``."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "").strip() or "batched"
    engine = engine.lower()
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine

#: Reverse-postorder index for blocks outside the computed order.
_UNKNOWN_RPO = 1 << 30

#: Pre-resolved issue costs for the fixed-cost control/phi charges.
_PHI_COST = issue_cost("misc", "phi")
_BR_COST = issue_cost("control", "br")
_CONDBR_COST = issue_cost("control", "condbr")
_RET_COST = issue_cost("control", "ret")

#: Pre-resolved category indices for the per-category cycle breakdown.
_CAT_CONTROL = cat_index("control")
_CAT_MISC = cat_index("misc")
_CAT_LOAD = cat_index("load")
_CAT_STORE = cat_index("store")

# Step kinds in a decoded block's dispatch list.
_K_VALUE = 0   # Computes a value and writes it to the destination slot.
_K_LOAD = 1    # Memory load (latency charged inside the step closure).
_K_STORE = 2   # Memory store.
_K_VOID = 3    # Timing-only (e.g. syncthreads).

# Terminator kinds.
_T_BR = 0
_T_CONDBR = 1
_T_RET = 2
_T_UNREACHABLE = 3
_T_MISSING = 4

#: numpy implementations of the math intrinsics (evaluated under
#: ``np.errstate(all="ignore")``): the shared folder/interpreter table of
#: :mod:`repro.semantics`, so constant folding is bit-identical to runtime.
_INTRINSIC_IMPLS = INTRINSIC_IMPLS


class SimulationError(Exception):
    """Raised when a kernel executes an illegal operation."""


def _storage_dtype(type_: Type):
    try:
        return storage_dtype(type_)
    except ValueError as exc:
        raise SimulationError(str(exc)) from exc


def _wrap_int(values: np.ndarray, bits: int) -> np.ndarray:
    if bits >= 64:
        return values
    mask = (np.int64(1) << bits) - 1
    wrapped = values & mask
    sign = np.int64(1) << (bits - 1)
    return (wrapped ^ sign) - sign


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    counters: Counters
    return_values: Optional[np.ndarray] = None


def _geometry_vec(value: int) -> np.ndarray:
    arr = np.full(WARP_SIZE, value, dtype=np.int64)
    arr.setflags(write=False)
    return arr


class _WarpContext:
    """Per-warp register state.

    The launch-geometry intrinsics (``ctaid``/``ntid``/``nctaid``) are
    materialised as read-only arrays on the context, so the decoded
    intrinsic readers work unchanged on both this context (``(32,)``
    arrays) and the batched engine's ``(n, 32)`` lattice context.
    """

    __slots__ = ("values", "lane_ids", "block_idx", "block_dim", "grid_dim",
                 "ctaid", "ntid", "nctaid", "active_init", "allocas",
                 "ret_values")

    def __init__(self, lane_ids: np.ndarray, block_idx: int, block_dim: int,
                 grid_dim: int, active_init: np.ndarray) -> None:
        self.values: Dict[int, np.ndarray] = {}
        self.lane_ids = lane_ids          # Thread ids within the block.
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.ctaid = _geometry_vec(block_idx)
        self.ntid = _geometry_vec(block_dim)
        self.nctaid = _geometry_vec(grid_dim)
        self.active_init = active_init
        self.allocas: Dict[int, int] = {}
        self.ret_values: Optional[np.ndarray] = None

    def alloca_addrs(self, memory: Memory, inst: AllocaInst) -> np.ndarray:
        """Per-lane base addresses of this warp's buffer for ``inst``."""
        base = self.allocas.get(id(inst))
        if base is None:
            dtype = repr(inst.element_type)
            count = inst.count * WARP_SIZE
            base = memory.alloc(
                f"__alloca_{inst.name}_{id(self):x}", dtype, count)
            self.allocas[id(inst)] = base
        elem = inst.element_type.size_bytes()
        stride = inst.count * elem
        return base + np.arange(WARP_SIZE, dtype=np.int64) * stride


class _Edge:
    """A decoded CFG edge: target block, epoch bump, and phi moves."""

    __slots__ = ("target", "bump_epoch", "moves")

    def __init__(self, target: "_DecodedBlock", bump_epoch: int,
                 moves: List) -> None:
        self.target = target
        self.bump_epoch = bump_epoch
        #: [(writer, reader, phi_id, dtype, src_id), ...] per phi — the
        #: id/dtype pair lets the region compiler rebind phi slots
        #: directly, and ``src_id`` (``id()`` of an instruction-produced
        #: incoming value, else None) lets it prove when the incoming
        #: slot is only ever rebound inside a region so the parallel
        #: copy can alias instead of copying.
        self.moves = moves


def _snapshot_reader(read):
    """Wrap a reader to copy its result, detaching it from the live slot."""
    def snapshot(ctx, args):
        return read(ctx, args).copy()
    return snapshot


class _DecodedBlock:
    """One basic block, pre-decoded into a flat dispatch list.

    ``steps`` holds ``(category, cat_idx, cost, kind, run, brun, write,
    meta)`` tuples for the non-phi, non-terminator instructions — ``run``
    is the per-warp runner, ``brun`` the batched ``(n, 32)`` lattice
    runner for memory steps (None for value/void steps, which are
    shape-generic); ``meta`` is ``(inst_id, dtype)`` for value-producing
    steps (None otherwise), consumed by the region compiler to rebind
    result slots without going through the masked writer;
    ``term``/``term_kind`` describe the terminator.  All operand readers,
    result writers, and issue costs are resolved once at decode time.
    """

    __slots__ = ("block_id", "name", "size", "rpo", "steps", "term_kind",
                 "term")

    def __init__(self, block: BasicBlock, rpo: int) -> None:
        self.block_id = id(block)
        self.name = block.name
        self.size = len(block.instructions)
        self.rpo = rpo
        self.steps: List[Tuple] = []
        self.term_kind = _T_MISSING
        self.term = None


class SimtMachine:
    """Executes kernels from a module against a simulated memory."""

    def __init__(self, module: Module, memory: Optional[Memory] = None,
                 icache_capacity: Optional[int] = None,
                 max_cycles: int = 2_000_000_000,
                 engine: Optional[str] = None) -> None:
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self._icache_capacity = icache_capacity
        self.max_cycles = max_cycles
        self.engine = resolve_engine(engine)
        #: Live execution profile, or None — resolved once here so the
        #: hot loops pay a plain attribute test, not a session lookup.
        #: Strictly observational: recording never feeds back into
        #: scheduling, cycles, or outputs (the engine-equivalence suite
        #: pins runs bit-identical with profiling on vs. off).
        self.profile = obs_session.profile()
        self._global_addrs: Dict[str, int] = {}
        self._decoded: Dict[int, _DecodedBlock] = {}
        #: Per-function compiled superblock regions (jit engine only):
        #: id(func) -> {entry block_id -> CompiledRegion}.
        self._regions: Dict[int, Dict] = {}
        self._materialize_globals()

    def _materialize_globals(self) -> None:
        for gv in self.module.globals.values():
            dtype = repr(gv.element_type)
            addr = self.memory.alloc(gv.name, dtype, gv.count,
                                     init=gv.initializer)
            self._global_addrs[gv.name] = addr

    # -- public API --------------------------------------------------------
    def launch(self, kernel: Union[str, Function],
               grid_dim: int, block_dim: int,
               args: Sequence[ArgValue]) -> LaunchResult:
        """Launch ``kernel`` over a 1-D grid; returns merged counters.

        ``args`` are per-launch scalars: Python ints/floats, or addresses
        (from :meth:`Memory.alloc`) for pointer parameters.
        """
        func = self.module.get_function(kernel) if isinstance(kernel, str) \
            else kernel
        if len(args) != len(func.args):
            raise SimulationError(
                f"@{func.name} expects {len(func.args)} args, got {len(args)}")
        total = Counters()
        entry = self._decode(func)
        warps = (block_dim + WARP_SIZE - 1) // WARP_SIZE
        if self.engine == "jit":
            # Trace-JIT tier: the batched lattice engine with compiled
            # superblock regions.  Single-warp launches still benefit
            # (regions collapse the scheduler loop), so the jit path
            # takes every launch.
            from .jit import run_launch_jit
            ret_all, fetch_stalls = run_launch_jit(
                self, func, entry, grid_dim, block_dim, args, total)
        elif self.engine == "batched" and grid_dim * warps > 1:
            # Launch-vectorized engine: all warps execute as one (n, 32)
            # lattice until their control decisions diverge (then they
            # demote to the per-warp path below).  Single-warp launches
            # gain nothing from batching and skip straight to it.
            from .batched import run_launch_batched
            ret_all, fetch_stalls = run_launch_batched(
                self, func, entry, grid_dim, block_dim, args, total)
        else:
            ret_all = []
            fetch_stalls = 0
            for block_idx in range(grid_dim):
                for warp_idx in range(warps):
                    # Per-warp icache: warps spread across SMs, so each
                    # warp streams the kernel's code through its own
                    # front end.
                    icache = InstructionCache(self._icache_capacity) \
                        if self._icache_capacity else InstructionCache()
                    base = warp_idx * WARP_SIZE
                    lane_ids = np.arange(base, base + WARP_SIZE,
                                         dtype=np.int64)
                    active = lane_ids < block_dim
                    ctx = _WarpContext(lane_ids, block_idx, block_dim,
                                       grid_dim, active)
                    counters = self._run_warp(func, entry, ctx, args,
                                              active, icache)
                    total.merge(counters)
                    fetch_stalls += icache.stall_cycles
                    if ctx.ret_values is not None:
                        ret_all.append(ctx.ret_values)
        # Fetch stalls were charged into per-warp cycles as they occurred;
        # record the aggregate for the stall_inst_fetch metric.
        total.fetch_stall_cycles = fetch_stalls
        total.bytes_loaded = self.memory.stats.bytes_loaded
        total.bytes_stored = self.memory.stats.bytes_stored
        total.load_transactions = self.memory.stats.load_transactions
        total.store_transactions = self.memory.stats.store_transactions
        ret = np.concatenate(ret_all) if ret_all else None
        return LaunchResult(counters=total, return_values=ret)

    def run_function(self, func: Union[str, Function],
                     args: Sequence[ArgValue],
                     lanes: int = 1) -> Tuple[np.ndarray, Counters]:
        """Run a function on one warp with ``lanes`` active threads.

        Convenience for differential testing: returns per-lane return
        values and the counters.
        """
        if isinstance(func, str):
            func = self.module.get_function(func)
        result = self.launch(func, grid_dim=1, block_dim=lanes, args=args)
        ret = result.return_values
        if ret is not None:
            ret = ret[:lanes]
        return ret, result.counters

    # -- decode ---------------------------------------------------------------
    def _decode(self, func: Function) -> _DecodedBlock:
        """Pre-decode ``func`` into dispatch lists; returns the entry block.

        Cached per function: the first launch decodes, later launches (and
        every warp/group step) reuse the flat form.
        """
        cached = self._decoded.get(id(func))
        if cached is not None:
            return cached
        rpo_index = {id(b): i
                     for i, b in enumerate(reverse_postorder(func))}
        dblocks: Dict[int, _DecodedBlock] = {
            id(block): _DecodedBlock(block,
                                     rpo_index.get(id(block), _UNKNOWN_RPO))
            for block in func.blocks}
        for block in func.blocks:
            self._decode_block(block, dblocks[id(block)], dblocks)
        entry = dblocks[id(func.entry)]
        self._decoded[id(func)] = entry
        return entry

    def _decode_block(self, block: BasicBlock, db: _DecodedBlock,
                      dblocks: Dict[int, _DecodedBlock]) -> None:
        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                continue  # Materialised on edges.
            if isinstance(inst, BranchInst):
                db.term_kind = _T_BR
                db.term = self._decode_edge(block, db, inst.target, dblocks)
                return
            if isinstance(inst, CondBranchInst):
                db.term_kind = _T_CONDBR
                db.term = (
                    self._reader(inst.condition),
                    self._decode_edge(block, db, inst.true_target, dblocks),
                    self._decode_edge(block, db, inst.false_target, dblocks))
                return
            if isinstance(inst, RetInst):
                db.term_kind = _T_RET
                if inst.value is not None:
                    db.term = (self._reader(inst.value),
                               _storage_dtype(inst.value.type))
                else:
                    db.term = (None, None)
                return
            if isinstance(inst, UnreachableInst):
                db.term_kind = _T_UNREACHABLE
                return
            db.steps.append(self._decode_step(inst))

    def _decode_edge(self, src: BasicBlock, src_db: _DecodedBlock,
                     dst: BasicBlock,
                     dblocks: Dict[int, _DecodedBlock]) -> _Edge:
        target = dblocks[id(dst)]
        bump = 1 if target.rpo <= src_db.rpo else 0  # Back edge.
        # Parallel-copy phi moves: one (writer, incoming reader) per phi.
        # Readers return the live value slot by reference, so when an
        # incoming value is itself a phi of ``dst`` (e.g. unmerge resolving
        # a clone's phi straight to a header phi: v1 <- v3 while the same
        # edge writes v3), the staged read must snapshot the slot or the
        # masked write to the sibling phi corrupts it mid-copy.
        dst_phis = {id(phi) for phi in dst.phis()}
        moves = []
        for phi in dst.phis():
            incoming = phi.incoming_for(src)
            read = self._reader(incoming)
            if id(incoming) in dst_phis:
                read = _snapshot_reader(read)
            src_id = id(incoming) if isinstance(incoming, Instruction) \
                else None
            moves.append((self._writer(phi), read, id(phi),
                          _storage_dtype(phi.type), src_id))
        return _Edge(target, bump, moves)

    def _decode_step(self, inst: Instruction) -> Tuple:
        category = inst.category
        cat_idx = cat_index(category)
        intrinsic = inst.intrinsic.name if isinstance(inst, CallInst) else ""
        cost = issue_cost(category, inst.opcode, intrinsic)

        if isinstance(inst, LoadInst):
            read_ptr = self._reader(inst.pointer)
            elem = inst.type.size_bytes()
            dtype = _storage_dtype(inst.type)
            write = self._writer(inst)
            memory = self.memory

            def run_load(ctx, arg_values, mask, active, counters):
                addrs = read_ptr(ctx, arg_values)
                raw, transactions = memory.load(addrs, mask, elem)
                latency = charge(load_latency(transactions), active)
                counters.cycles += latency
                counters.memory_stall_cycles += latency
                counters.cat_cycles[_CAT_LOAD] += latency
                write(ctx, raw.astype(dtype), mask)

            def brun_load(ctx, arg_values, mask, actives, state):
                # One memory.load per warp row: transaction counting (and
                # therefore the latency charge) is a per-warp-access
                # quantity the coalescing model defines on 32-lane
                # accesses, so it cannot be fused across warps.
                addrs = read_ptr(ctx, arg_values)
                if addrs.shape != mask.shape:
                    addrs = np.broadcast_to(addrs, mask.shape)
                out = np.zeros(mask.shape, dtype=dtype)
                for w in range(mask.shape[0]):
                    raw, transactions = memory.load(addrs[w], mask[w], elem)
                    latency = charge(load_latency(transactions),
                                     int(actives[w]))
                    state.cycles[w] += latency
                    state.memory_stall[w] += latency
                    state.cat_cycles[w, _CAT_LOAD] += latency
                    out[w] = raw.astype(dtype)
                write(ctx, out, mask)

            return (category, cat_idx, cost, _K_LOAD, run_load, brun_load,
                    None, (id(inst), dtype))

        if isinstance(inst, StoreInst):
            read_ptr = self._reader(inst.pointer)
            read_val = self._reader(inst.value)
            elem = inst.value.type.size_bytes()
            memory = self.memory

            def run_store(ctx, arg_values, mask, active, counters):
                addrs = read_ptr(ctx, arg_values)
                values = read_val(ctx, arg_values)
                transactions = memory.store(addrs, values, mask, elem)
                c = charge(store_cost(transactions), active)
                counters.cycles += c
                counters.cat_cycles[_CAT_STORE] += c

            def brun_store(ctx, arg_values, mask, actives, state):
                addrs = read_ptr(ctx, arg_values)
                values = read_val(ctx, arg_values)
                if addrs.shape != mask.shape:
                    addrs = np.broadcast_to(addrs, mask.shape)
                if values.shape != mask.shape:
                    values = np.broadcast_to(values, mask.shape)
                for w in range(mask.shape[0]):
                    transactions = memory.store(addrs[w], values[w],
                                                mask[w], elem)
                    c = charge(store_cost(transactions), int(actives[w]))
                    state.cycles[w] += c
                    state.cat_cycles[w, _CAT_STORE] += c

            return (category, cat_idx, cost, _K_STORE, run_store, brun_store,
                    None, None)

        if inst.type.is_void:
            # e.g. syncthreads: only the issue timing is charged.
            return (category, cat_idx, cost, _K_VOID, None, None, None, None)

        # meta carries the Instruction itself so the region fuser
        # (gpu/fuser.py) can regenerate the value expression from IR.
        return (category, cat_idx, cost, _K_VALUE, self._value_fn(inst),
                None, self._writer(inst),
                (id(inst), _storage_dtype(inst.type), inst))

    def _value_fn(self, inst: Instruction):
        """Closure computing one instruction's value (operands pre-bound)."""
        if isinstance(inst, BinaryInst):
            fn = _binop_fn(inst.opcode, inst.type)
            rl, rr = self._reader(inst.lhs), self._reader(inst.rhs)
            return lambda ctx, args: fn(rl(ctx, args), rr(ctx, args))
        if isinstance(inst, ICmpInst):
            cmp = _icmp_fn(inst.predicate)
            rl, rr = self._reader(inst.lhs), self._reader(inst.rhs)
            return lambda ctx, args: cmp(rl(ctx, args), rr(ctx, args))
        if isinstance(inst, FCmpInst):
            pred = inst.predicate
            rl, rr = self._reader(inst.lhs), self._reader(inst.rhs)
            return lambda ctx, args: _fcmp_op(pred, rl(ctx, args),
                                              rr(ctx, args))
        if isinstance(inst, SelectInst):
            rc = self._reader(inst.condition)
            rt = self._reader(inst.true_value)
            rf = self._reader(inst.false_value)
            return lambda ctx, args: np.where(
                rc(ctx, args).astype(bool), rt(ctx, args), rf(ctx, args))
        if isinstance(inst, CastInst):
            opcode, to_type = inst.opcode, inst.type
            from_type = inst.value.type
            rv = self._reader(inst.value)
            return lambda ctx, args: _cast_op(opcode, rv(ctx, args),
                                              to_type, from_type)
        if isinstance(inst, GEPInst):
            rb = self._reader(inst.pointer)
            ri = self._reader(inst.index)
            elem = inst.element_type.size_bytes()
            return lambda ctx, args: (
                rb(ctx, args) + ri(ctx, args).astype(np.int64) * elem)
        if isinstance(inst, AllocaInst):
            memory = self.memory
            return lambda ctx, args: ctx.alloca_addrs(memory, inst)
        if isinstance(inst, CallInst):
            return self._intrinsic_fn(inst)

        def bad(ctx, args, _inst=inst):
            raise SimulationError(f"cannot execute {_inst!r}")
        return bad

    def _intrinsic_fn(self, inst: CallInst):
        name = inst.intrinsic.name
        # Launch-geometry intrinsics read precomputed read-only context
        # arrays: (32,) on the per-warp context, (n, 32) on the batched one.
        if name == "tid.x":
            return lambda ctx, args: ctx.lane_ids
        if name == "ctaid.x":
            return lambda ctx, args: ctx.ctaid
        if name == "ntid.x":
            return lambda ctx, args: ctx.ntid
        if name == "nctaid.x":
            return lambda ctx, args: ctx.nctaid
        impl = _INTRINSIC_IMPLS.get(name)
        if impl is None:
            def unknown(ctx, args, _name=name):
                raise SimulationError(f"unimplemented intrinsic @{_name}")
            return unknown
        readers = tuple(self._reader(a) for a in inst.operands)

        def run(ctx, args):
            values = [r(ctx, args) for r in readers]
            with np.errstate(all="ignore"):
                return impl(values)
        return run

    def _reader(self, value: Value):
        """Closure reading one operand's per-lane vector.

        Constants, undef, and global addresses materialise once at decode
        time into shared read-only arrays (no consumer mutates operand
        vectors); arguments and SSA values resolve through the per-warp
        context exactly like the tree-walking interpreter did.
        """
        if isinstance(value, (ConstantInt, ConstantFloat)):
            arr = np.full(WARP_SIZE, value.value,
                          dtype=_storage_dtype(value.type))
            arr.setflags(write=False)
            return lambda ctx, args: arr
        if isinstance(value, Undef):
            arr = np.zeros(WARP_SIZE, dtype=_storage_dtype(value.type))
            arr.setflags(write=False)
            return lambda ctx, args: arr
        if isinstance(value, Argument):
            vid = id(value)
            return lambda ctx, args: args[vid]
        if isinstance(value, GlobalVariable):
            arr = np.full(WARP_SIZE, self._global_addrs[value.name],
                          dtype=np.int64)
            arr.setflags(write=False)
            return lambda ctx, args: arr
        vid, vname = id(value), value.name

        def read(ctx, args):
            stored = ctx.values.get(vid)
            if stored is None:
                raise SimulationError(f"use of undefined value %{vname}")
            return stored
        return read

    @staticmethod
    def _writer(inst: Value):
        """Closure writing an instruction's result under the active mask.

        Shape-generic: slots take the mask's shape — ``(32,)`` per warp,
        ``(n, 32)`` on the batched lattice — and values that come out of
        an all-uniform-operand computation (e.g. constant + argument) are
        broadcast up to it.
        """
        dtype = _storage_dtype(inst.type)
        iid = id(inst)

        def write(ctx, value, mask):
            if value.dtype != dtype:
                value = value.astype(dtype)
            if value.shape != mask.shape:
                value = np.broadcast_to(value, mask.shape)
            slot = ctx.values.get(iid)
            if slot is None:
                slot = np.zeros(mask.shape, dtype=dtype)
                ctx.values[iid] = slot
            slot[mask] = value[mask]
        return write

    # -- warp execution ------------------------------------------------------
    def _run_warp(self, func: Function, entry: _DecodedBlock,
                  ctx: _WarpContext, args: Sequence[ArgValue],
                  initial_mask: np.ndarray,
                  icache: InstructionCache) -> Counters:
        """Convergent group scheduler (see module docstring).

        A *group* is ``(epoch, block, mask)``: lanes in lockstep at a block.
        Each step merges all groups parked at the same block, then executes
        the group with the smallest ``(epoch, rpo)`` key — laggards first —
        which makes divergent paths re-merge at post-dominators and, across
        back edges, at the next loop iteration.
        """
        counters = Counters()
        arg_values = self._bind_args(func, args)
        groups: List[Tuple[int, _DecodedBlock, np.ndarray]] = [
            (0, entry, initial_mask.copy())]
        self._warp_loop(func, ctx, arg_values, groups, counters, icache)
        return counters

    def _warp_loop(self, func: Function, ctx: _WarpContext,
                   arg_values: Dict[int, np.ndarray], groups: List,
                   counters: Counters, icache: InstructionCache) -> None:
        """Drive ``groups`` to completion (the scheduler of ``_run_warp``).

        Split out so the batched engine can *demote* a warp mid-flight:
        it seeds ``counters``/``groups``/``ctx`` with the warp's state at
        the divergence point and resumes here.
        """
        profile = self.profile
        while groups:
            if counters.cycles > self.max_cycles:
                raise SimulationError(
                    f"@{func.name}: exceeded {self.max_cycles} cycles "
                    "(runaway kernel?)")
            # Merge groups standing at the same block.
            merged: Dict[int, Tuple[int, _DecodedBlock, np.ndarray]] = {}
            for epoch, db, mask in groups:
                existing = merged.get(db.block_id)
                if existing is None:
                    merged[db.block_id] = (epoch, db, mask)
                else:
                    merged[db.block_id] = (max(existing[0], epoch), db,
                                           existing[2] | mask)
            groups = list(merged.values())
            # Schedule the laggard: min (epoch, rpo).
            groups.sort(key=lambda g: (g[0], g[1].rpo), reverse=True)
            epoch, db, mask = groups.pop()
            if not mask.any():
                continue
            counters.cycles += icache.access(db.block_id, db.size)
            if profile is None:
                self._exec_decoded(func, db, epoch, mask, ctx, arg_values,
                                   counters, groups)
            else:
                start_cycles = counters.cycles
                self._exec_decoded(func, db, epoch, mask, ctx, arg_values,
                                   counters, groups)
                # Timestamps are warp-local cycle counts: samples from
                # concurrent warps interleave on the timeline, which is
                # exactly the resident-warp overlap picture an SM sees.
                profile.note_block(db.name,
                                   counters.cycles - start_cycles,
                                   int(np.count_nonzero(mask)), WARP_SIZE,
                                   start_cycles)

    def _exec_decoded(self, func: Function, db: _DecodedBlock, epoch: int,
                      mask: np.ndarray, ctx: _WarpContext,
                      arg_values: Dict[int, np.ndarray], counters: Counters,
                      groups: List) -> None:
        """Execute one decoded block for one group."""
        active = int(np.count_nonzero(mask))
        note_issue = counters.note_issue
        cat_cycles = counters.cat_cycles
        for category, cat_idx, cost, kind, run, _brun, write, _meta in db.steps:
            note_issue(category, active)
            c = charge(cost, active)
            counters.cycles += c
            cat_cycles[cat_idx] += c
            if kind == _K_VALUE:
                write(ctx, run(ctx, arg_values), mask)
            elif kind != _K_VOID:
                run(ctx, arg_values, mask, active, counters)

        term_kind = db.term_kind
        if term_kind == _T_BR:
            note_issue("control", active)
            c = charge(_BR_COST, active)
            counters.cycles += c
            cat_cycles[_CAT_CONTROL] += c
            counters.branches += 1
            self._follow(db.term, epoch, mask, ctx, arg_values, counters,
                         groups)
            return
        if term_kind == _T_CONDBR:
            note_issue("control", active)
            c = charge(_CONDBR_COST, active)
            counters.cycles += c
            cat_cycles[_CAT_CONTROL] += c
            counters.branches += 1
            read_cond, true_edge, false_edge = db.term
            cond = read_cond(ctx, arg_values).astype(bool)
            t_mask = mask & cond
            f_mask = mask & ~cond
            t_any = bool(t_mask.any())
            f_any = bool(f_mask.any())
            if t_any and f_any:
                counters.divergent_branches += 1
                self._follow(true_edge, epoch, t_mask, ctx, arg_values,
                             counters, groups)
                self._follow(false_edge, epoch, f_mask, ctx, arg_values,
                             counters, groups)
            elif t_any:
                self._follow(true_edge, epoch, t_mask, ctx, arg_values,
                             counters, groups)
            elif f_any:
                self._follow(false_edge, epoch, f_mask, ctx, arg_values,
                             counters, groups)
            return
        if term_kind == _T_RET:
            note_issue("control", active)
            c = charge(_RET_COST, active)
            counters.cycles += c
            cat_cycles[_CAT_CONTROL] += c
            read_value, dtype = db.term
            if read_value is not None:
                value = read_value(ctx, arg_values)
                if value.shape != mask.shape:
                    value = np.broadcast_to(value, mask.shape)
                if ctx.ret_values is None:
                    ctx.ret_values = np.zeros(mask.shape, dtype=dtype)
                ctx.ret_values[mask] = value[mask]
            return
        if term_kind == _T_UNREACHABLE:
            raise SimulationError(
                f"@{func.name}: executed unreachable in {db.name}")
        raise SimulationError(
            f"@{func.name}: block {db.name} has no terminator")

    def _follow(self, edge: _Edge, epoch: int, mask: np.ndarray,
                ctx: _WarpContext, arg_values: Dict[int, np.ndarray],
                counters: Counters, groups: List) -> None:
        """Run the edge's phi moves and park the group at the target."""
        moves = edge.moves
        if moves and mask.any():
            active = int(np.count_nonzero(mask))
            c = charge(_PHI_COST, active)
            # Parallel-copy semantics: read all incomings before writing.
            staged = [(write, read(ctx, arg_values))
                      for write, read, _pid, _dt, _sid in moves]
            for write, value in staged:
                counters.note_issue("misc", active)  # One mov per phi.
                counters.cycles += c
                counters.cat_cycles[_CAT_MISC] += c
                write(ctx, value, mask)
        groups.append((epoch + edge.bump_epoch, edge.target, mask))

    # -- value plumbing --------------------------------------------------------
    def _bind_args(self, func: Function,
                   args: Sequence[ArgValue]) -> Dict[int, np.ndarray]:
        bound: Dict[int, np.ndarray] = {}
        for arg, value in zip(func.args, args):
            dtype = _storage_dtype(arg.type)
            bound[id(arg)] = np.full(WARP_SIZE, value, dtype=dtype)
        return bound


# ---------------------------------------------------------------------------
# numpy semantics helpers
# ---------------------------------------------------------------------------

def _binop_fn(opcode: str, type_: Type):
    """Specialize one binary opcode into a two-argument closure.

    Decode-time resolution of what ``_binary_op`` re-derives per call:
    the opcode chain, the wrap width, and the ``errstate`` guard.  The
    numpy expressions are the generic function's verbatim, so results
    are bit-identical.  Integer lattice ops skip the errstate guard —
    numpy int64 *array* arithmetic wraps silently, never warns — while
    float ops keep it (inf/nan operands do warn).  Division and the
    unsigned shift fall back to the generic path; they are branch-heavy
    and cold.
    """
    bits = type_.bits if isinstance(type_, IntType) else 64
    wrap = bits < 64
    if opcode in ("add", "fadd"):
        base = operator.add
    elif opcode in ("sub", "fsub"):
        base = operator.sub
    elif opcode in ("mul", "fmul"):
        base = operator.mul
    elif opcode == "and":
        return operator.and_
    elif opcode == "or":
        return operator.or_
    elif opcode == "xor":
        return operator.xor
    elif opcode in ("shl", "ashr"):
        sh = operator.lshift if opcode == "shl" else operator.rshift
        if wrap:
            return lambda lhs, rhs: _wrap_int(sh(lhs, np.clip(rhs, 0, 63)),
                                              bits)
        return lambda lhs, rhs: sh(lhs, np.clip(rhs, 0, 63))
    else:
        return lambda lhs, rhs: _binary_op(opcode, lhs, rhs, type_)
    if opcode[0] == "f":
        def fop(lhs, rhs):
            with np.errstate(all="ignore"):
                return base(lhs, rhs)
        return fop
    if wrap:
        return lambda lhs, rhs: _wrap_int(base(lhs, rhs), bits)
    return base


def _icmp_fn(pred: str):
    """Specialize one icmp predicate (same comparisons as ``_icmp_op``)."""
    if pred.startswith("u") and pred not in ("ueq",):
        ucmp = {"ult": operator.lt, "ule": operator.le,
                "ugt": operator.gt, "uge": operator.ge}[pred]
        return lambda lhs, rhs: ucmp(lhs.astype(np.uint64),
                                     rhs.astype(np.uint64))
    return {"eq": operator.eq, "ne": operator.ne,
            "slt": operator.lt, "sle": operator.le,
            "sgt": operator.gt, "sge": operator.ge}[pred]


def _binary_op(opcode: str, lhs: np.ndarray, rhs: np.ndarray,
               type_: Type) -> np.ndarray:
    bits = type_.bits if isinstance(type_, IntType) else 64
    with np.errstate(all="ignore"):
        if opcode == "add":
            return _wrap_int(lhs + rhs, bits)
        if opcode == "sub":
            return _wrap_int(lhs - rhs, bits)
        if opcode == "mul":
            return _wrap_int(lhs * rhs, bits)
        if opcode in ("sdiv", "srem"):
            # Exact C-style truncating division in int64 (a float round
            # trip would corrupt quotients beyond 2^53, diverging from the
            # folder's exact arithmetic).
            safe = np.where(rhs == 0, 1, rhs)
            quo = lhs // safe
            rem = lhs - quo * safe
            quo = quo + ((rem != 0) & ((lhs ^ safe) < 0))
            quo = np.where(rhs == 0, 0, quo)
            if opcode == "sdiv":
                return _wrap_int(quo, bits)
            rem = lhs - quo * np.where(rhs == 0, 0, rhs)
            return _wrap_int(np.where(rhs == 0, 0, rem), bits)
        if opcode in ("udiv", "urem"):
            ul = lhs.astype(np.uint64)
            ur = rhs.astype(np.uint64)
            safe = np.where(ur == 0, 1, ur)
            if opcode == "udiv":
                out = np.where(ur == 0, 0, ul // safe)
            else:
                out = np.where(ur == 0, 0, ul % safe)
            return _wrap_int(out.astype(np.int64), bits)
        if opcode == "shl":
            shift = np.clip(rhs, 0, 63)
            return _wrap_int(lhs << shift, bits)
        if opcode == "lshr":
            # Reinterpret as unsigned at the *operand width*: an i8 -1 is
            # 0xff, not 2^64-1 (the folder's `unsigned()` does the same).
            shift = np.clip(rhs, 0, 63)
            u = lhs.astype(np.uint64)
            if bits < 64:
                u = u & np.uint64((1 << bits) - 1)
            return _wrap_int(
                (u >> shift.astype(np.uint64)).astype(np.int64), bits)
        if opcode == "ashr":
            shift = np.clip(rhs, 0, 63)
            return _wrap_int(lhs >> shift, bits)
        if opcode == "and":
            return lhs & rhs
        if opcode == "or":
            return lhs | rhs
        if opcode == "xor":
            return lhs ^ rhs
        if opcode == "fadd":
            return lhs + rhs
        if opcode == "fsub":
            return lhs - rhs
        if opcode == "fmul":
            return lhs * rhs
        if opcode == "fdiv":
            return np.divide(lhs, rhs)
        if opcode == "frem":
            return np.fmod(lhs, rhs)
    raise SimulationError(f"unimplemented binary op {opcode}")


def _icmp_op(pred: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    if pred.startswith("u") and pred not in ("ueq",):
        ul = lhs.astype(np.uint64)
        ur = rhs.astype(np.uint64)
        table = {"ult": ul < ur, "ule": ul <= ur,
                 "ugt": ul > ur, "uge": ul >= ur}
        return table[pred]
    table = {"eq": lhs == rhs, "ne": lhs != rhs,
             "slt": lhs < rhs, "sle": lhs <= rhs,
             "sgt": lhs > rhs, "sge": lhs >= rhs}
    return table[pred]


def _fcmp_op(pred: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    unordered = np.isnan(lhs) | np.isnan(rhs)
    with np.errstate(invalid="ignore"):
        base = {"eq": lhs == rhs, "ne": lhs != rhs,
                "lt": lhs < rhs, "le": lhs <= rhs,
                "gt": lhs > rhs, "ge": lhs >= rhs}[pred[1:]]
    if pred.startswith("o"):
        return base & ~unordered
    return base | unordered


def _cast_op(opcode: str, value: np.ndarray, to_type: Type,
             from_type: Type) -> np.ndarray:
    if opcode in ("trunc",):
        assert isinstance(to_type, IntType)
        return _wrap_int(value.astype(np.int64), to_type.bits)
    if opcode == "zext":
        if value.dtype == np.bool_:
            return value.astype(np.int64)
        # Values are stored sign-wrapped; reinterpret as unsigned at the
        # source width before widening.
        assert isinstance(from_type, IntType)
        if from_type.bits >= 64:
            return value.astype(np.int64)
        mask = (np.int64(1) << from_type.bits) - 1
        return value.astype(np.int64) & mask
    if opcode == "sext":
        return value.astype(np.int64)
    if opcode in ("sitofp", "uitofp"):
        dtype = np.float32 if isinstance(to_type, FloatType) and \
            to_type.bits == 32 else np.float64
        if opcode == "uitofp":
            # Reinterpret the sign-wrapped storage as unsigned at the
            # source width before the (single-rounding) conversion.
            assert isinstance(from_type, IntType)
            u = value.astype(np.int64).astype(np.uint64)
            if from_type.bits < 64:
                u = u & np.uint64((1 << from_type.bits) - 1)
            return u.astype(dtype)
        return value.astype(dtype)
    if opcode == "fptosi":
        # Saturating contract (repro.semantics): NaN -> 0, out-of-range
        # and ±inf clamp to the target width's signed min/max.
        assert isinstance(to_type, IntType)
        return fptosi_arrays(value, to_type)
    if opcode in ("fpext", "fptrunc"):
        dtype = np.float32 if isinstance(to_type, FloatType) and \
            to_type.bits == 32 else np.float64
        return value.astype(dtype)
    if opcode in ("bitcast", "ptrtoint", "inttoptr"):
        return value.astype(np.int64)
    raise SimulationError(f"unimplemented cast {opcode}")
