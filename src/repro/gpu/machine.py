"""SIMT execution engine.

Executes IR functions the way a V100-class GPU would at warp granularity:

* 32 lanes per warp execute in lockstep over numpy vectors;
* a conditional branch whose lanes disagree *diverges*: the taken and
  not-taken paths run serially under sub-masks.  Reconvergence follows an
  epoch-based convergent scheduler: lane groups that arrive at the same
  basic block in the same loop iteration merge, and the group that is
  furthest behind (smallest ``(epoch, reverse-postorder)`` key) always runs
  first — modelling Volta-style opportunistic reconvergence, under which
  unrolled loop bodies re-merge at each traversal of the back edge;
* phi nodes are materialised as moves on CFG edges — the data-movement
  instructions nvprof counts in ``inst_misc`` alongside ``selp``;
* cycle charges split into a fixed per-issue part and a lane-activity part
  (see :func:`repro.gpu.timing.charge`): resident-warp overlap hides most
  of the cost of partially-active issues on a real SM, which is how the
  paper's XSBench wins despite collapsing warp-execution efficiency, while
  the fixed fraction plus instruction-fetch stalls still make tid-dependent
  divergence (`complex`) a net loss;
* loads pay a latency that grows with uncoalesced transactions, and
  entering a non-resident basic block pays instruction-fetch stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.cfg_utils import reverse_postorder
from ..ir.block import BasicBlock
from ..ir.constants import ConstantFloat, ConstantInt, Undef
from ..ir.function import Function
from ..ir.instructions import (AllocaInst, BinaryInst, BranchInst, CallInst,
                               CastInst, CondBranchInst, FCmpInst, GEPInst,
                               ICmpInst, Instruction, LoadInst, PhiInst,
                               RetInst, SelectInst, StoreInst,
                               UnreachableInst)
from ..ir.module import Module
from ..ir.types import FloatType, IntType, PointerType, Type
from ..ir.values import Argument, GlobalVariable, Value
from .counters import Counters
from .icache import InstructionCache
from .memory import Memory
from .timing import charge, issue_cost, load_latency, store_cost

WARP_SIZE = 32

ArgValue = Union[int, float]


class SimulationError(Exception):
    """Raised when a kernel executes an illegal operation."""


def _storage_dtype(type_: Type):
    if isinstance(type_, IntType):
        return np.bool_ if type_.bits == 1 else np.int64
    if isinstance(type_, FloatType):
        return np.float32 if type_.bits == 32 else np.float64
    if isinstance(type_, PointerType):
        return np.int64
    raise SimulationError(f"no storage dtype for {type_!r}")


def _wrap_int(values: np.ndarray, bits: int) -> np.ndarray:
    if bits >= 64:
        return values
    mask = (np.int64(1) << bits) - 1
    wrapped = values & mask
    sign = np.int64(1) << (bits - 1)
    return (wrapped ^ sign) - sign


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    counters: Counters
    return_values: Optional[np.ndarray] = None


class _WarpContext:
    """Per-warp register state."""

    __slots__ = ("values", "lane_ids", "block_idx", "block_dim", "grid_dim",
                 "active_init", "allocas", "ret_values")

    def __init__(self, lane_ids: np.ndarray, block_idx: int, block_dim: int,
                 grid_dim: int, active_init: np.ndarray) -> None:
        self.values: Dict[int, np.ndarray] = {}
        self.lane_ids = lane_ids          # Thread ids within the block.
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.active_init = active_init
        self.allocas: Dict[int, int] = {}
        self.ret_values: Optional[np.ndarray] = None


class SimtMachine:
    """Executes kernels from a module against a simulated memory."""

    def __init__(self, module: Module, memory: Optional[Memory] = None,
                 icache_capacity: Optional[int] = None,
                 max_cycles: int = 2_000_000_000) -> None:
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self._icache_capacity = icache_capacity
        self.max_cycles = max_cycles
        self._global_addrs: Dict[str, int] = {}
        self._materialize_globals()

    def _materialize_globals(self) -> None:
        for gv in self.module.globals.values():
            dtype = repr(gv.element_type)
            addr = self.memory.alloc(gv.name, dtype, gv.count,
                                     init=gv.initializer)
            self._global_addrs[gv.name] = addr

    # -- public API --------------------------------------------------------
    def launch(self, kernel: Union[str, Function],
               grid_dim: int, block_dim: int,
               args: Sequence[ArgValue]) -> LaunchResult:
        """Launch ``kernel`` over a 1-D grid; returns merged counters.

        ``args`` are per-launch scalars: Python ints/floats, or addresses
        (from :meth:`Memory.alloc`) for pointer parameters.
        """
        func = self.module.get_function(kernel) if isinstance(kernel, str) \
            else kernel
        if len(args) != len(func.args):
            raise SimulationError(
                f"@{func.name} expects {len(func.args)} args, got {len(args)}")
        total = Counters()
        rpo_index = {id(b): i
                     for i, b in enumerate(reverse_postorder(func))}
        ret_all: List[np.ndarray] = []
        fetch_stalls = 0
        for block_idx in range(grid_dim):
            warps = (block_dim + WARP_SIZE - 1) // WARP_SIZE
            for warp_idx in range(warps):
                # Per-warp icache: warps spread across SMs, so each warp
                # streams the kernel's code through its own front end.
                icache = InstructionCache(self._icache_capacity) \
                    if self._icache_capacity else InstructionCache()
                base = warp_idx * WARP_SIZE
                lane_ids = np.arange(base, base + WARP_SIZE, dtype=np.int64)
                active = lane_ids < block_dim
                ctx = _WarpContext(lane_ids, block_idx, block_dim, grid_dim,
                                   active)
                counters = self._run_warp(func, rpo_index, ctx, args,
                                          active, icache)
                total.merge(counters)
                fetch_stalls += icache.stall_cycles
                if ctx.ret_values is not None:
                    ret_all.append(ctx.ret_values)
        # Fetch stalls were charged into per-warp cycles as they occurred;
        # record the aggregate for the stall_inst_fetch metric.
        total.fetch_stall_cycles = fetch_stalls
        total.bytes_loaded = self.memory.stats.bytes_loaded
        total.bytes_stored = self.memory.stats.bytes_stored
        total.load_transactions = self.memory.stats.load_transactions
        total.store_transactions = self.memory.stats.store_transactions
        ret = np.concatenate(ret_all) if ret_all else None
        return LaunchResult(counters=total, return_values=ret)

    def run_function(self, func: Union[str, Function],
                     args: Sequence[ArgValue],
                     lanes: int = 1) -> Tuple[np.ndarray, Counters]:
        """Run a function on one warp with ``lanes`` active threads.

        Convenience for differential testing: returns per-lane return
        values and the counters.
        """
        if isinstance(func, str):
            func = self.module.get_function(func)
        result = self.launch(func, grid_dim=1, block_dim=lanes, args=args)
        ret = result.return_values
        if ret is not None:
            ret = ret[:lanes]
        return ret, result.counters

    # -- warp execution ------------------------------------------------------
    def _run_warp(self, func: Function, rpo_index: Dict[int, int],
                  ctx: _WarpContext, args: Sequence[ArgValue],
                  initial_mask: np.ndarray,
                  icache: InstructionCache) -> Counters:
        """Convergent group scheduler (see module docstring).

        A *group* is ``(epoch, block, mask)``: lanes in lockstep at a block.
        Each step merges all groups parked at the same block, then executes
        the group with the smallest ``(epoch, rpo)`` key — laggards first —
        which makes divergent paths re-merge at post-dominators and, across
        back edges, at the next loop iteration.
        """
        counters = Counters()
        arg_values = self._bind_args(func, args)
        groups: List[Tuple[int, BasicBlock, np.ndarray]] = [
            (0, func.entry, initial_mask.copy())]

        while groups:
            if counters.cycles > self.max_cycles:
                raise SimulationError(
                    f"@{func.name}: exceeded {self.max_cycles} cycles "
                    "(runaway kernel?)")
            # Merge groups standing at the same block.
            merged: Dict[int, Tuple[int, BasicBlock, np.ndarray]] = {}
            for epoch, block, mask in groups:
                existing = merged.get(id(block))
                if existing is None:
                    merged[id(block)] = (epoch, block, mask)
                else:
                    merged[id(block)] = (max(existing[0], epoch), block,
                                         existing[2] | mask)
            groups = list(merged.values())
            # Schedule the laggard: min (epoch, rpo).
            groups.sort(key=lambda g: (g[0], rpo_index.get(id(g[1]), 1 << 30)),
                        reverse=True)
            epoch, block, mask = groups.pop()
            if not mask.any():
                continue
            counters.cycles += icache.access(
                id(block), len(block.instructions))
            self._exec_block(func, block, epoch, mask, ctx, arg_values,
                             counters, rpo_index, groups)
        return counters

    def _exec_block(self, func: Function, block: BasicBlock, epoch: int,
                    mask: np.ndarray, ctx: _WarpContext,
                    arg_values: Dict[int, np.ndarray], counters: Counters,
                    rpo_index: Dict[int, int], groups: List) -> None:
        """Execute one block for one group; successors re-enter ``groups``."""
        active = int(np.count_nonzero(mask))
        block_rpo = rpo_index.get(id(block), 1 << 30)

        def follow(target: BasicBlock, edge_mask: np.ndarray) -> None:
            self._edge_moves(block, target, edge_mask, ctx, arg_values,
                             counters)
            next_epoch = epoch
            if rpo_index.get(id(target), 1 << 30) <= block_rpo:
                next_epoch += 1  # Back edge: next loop iteration.
            groups.append((next_epoch, target, edge_mask))

        for inst in block.instructions:
            if isinstance(inst, PhiInst):
                continue  # Materialised on edges.
            if isinstance(inst, BranchInst):
                counters.note_issue("control", active)
                counters.cycles += charge(issue_cost("control", "br"), active)
                counters.branches += 1
                follow(inst.target, mask)
                return
            if isinstance(inst, CondBranchInst):
                counters.note_issue("control", active)
                counters.cycles += charge(issue_cost("control", "condbr"),
                                          active)
                counters.branches += 1
                cond = self._eval(inst.condition, ctx,
                                  arg_values).astype(bool)
                t_mask = mask & cond
                f_mask = mask & ~cond
                t_any = bool(t_mask.any())
                f_any = bool(f_mask.any())
                if t_any and f_any:
                    counters.divergent_branches += 1
                    follow(inst.true_target, t_mask)
                    follow(inst.false_target, f_mask)
                elif t_any:
                    follow(inst.true_target, t_mask)
                elif f_any:
                    follow(inst.false_target, f_mask)
                return
            if isinstance(inst, RetInst):
                counters.note_issue("control", active)
                counters.cycles += charge(issue_cost("control", "ret"),
                                          active)
                if inst.value is not None:
                    value = self._eval(inst.value, ctx, arg_values)
                    if ctx.ret_values is None:
                        dtype = _storage_dtype(inst.value.type)
                        ctx.ret_values = np.zeros(WARP_SIZE, dtype=dtype)
                    ctx.ret_values[mask] = value[mask]
                return
            if isinstance(inst, UnreachableInst):
                raise SimulationError(
                    f"@{func.name}: executed unreachable in {block.name}")
            self._exec_compute(inst, mask, ctx, arg_values, counters, active)
        raise SimulationError(
            f"@{func.name}: block {block.name} has no terminator")

    # -- instruction semantics ------------------------------------------------
    def _exec_compute(self, inst: Instruction, mask: np.ndarray,
                      ctx: _WarpContext, arg_values: Dict[int, np.ndarray],
                      counters: Counters, active: int) -> None:
        category = inst.category
        intrinsic = inst.intrinsic.name if isinstance(inst, CallInst) else ""
        counters.note_issue(category, active)
        counters.cycles += charge(
            issue_cost(category, inst.opcode, intrinsic), active)

        if isinstance(inst, LoadInst):
            addrs = self._eval(inst.pointer, ctx, arg_values)
            elem = inst.type.size_bytes()
            raw, transactions = self.memory.load(addrs, mask, elem)
            latency = charge(load_latency(transactions), active)
            counters.cycles += latency
            counters.memory_stall_cycles += latency
            value = raw.astype(_storage_dtype(inst.type))
            self._write(inst, value, mask, ctx)
            return
        if isinstance(inst, StoreInst):
            addrs = self._eval(inst.pointer, ctx, arg_values)
            values = self._eval(inst.value, ctx, arg_values)
            elem = inst.value.type.size_bytes()
            transactions = self.memory.store(addrs, values, mask, elem)
            counters.cycles += charge(store_cost(transactions), active)
            return
        if inst.type.is_void:
            return  # e.g. syncthreads: timing already charged.

        value = self._compute_value(inst, ctx, arg_values)
        self._write(inst, value, mask, ctx)

    def _compute_value(self, inst: Instruction, ctx: _WarpContext,
                       arg_values: Dict[int, np.ndarray]) -> np.ndarray:
        ev = lambda v: self._eval(v, ctx, arg_values)
        if isinstance(inst, BinaryInst):
            return _binary_op(inst.opcode, ev(inst.lhs), ev(inst.rhs),
                              inst.type)
        if isinstance(inst, ICmpInst):
            return _icmp_op(inst.predicate, ev(inst.lhs), ev(inst.rhs))
        if isinstance(inst, FCmpInst):
            return _fcmp_op(inst.predicate, ev(inst.lhs), ev(inst.rhs))
        if isinstance(inst, SelectInst):
            cond = ev(inst.condition).astype(bool)
            return np.where(cond, ev(inst.true_value), ev(inst.false_value))
        if isinstance(inst, CastInst):
            return _cast_op(inst.opcode, ev(inst.value), inst.type,
                            inst.value.type)
        if isinstance(inst, GEPInst):
            base = ev(inst.pointer)
            index = ev(inst.index)
            elem = inst.element_type.size_bytes()
            return base + index.astype(np.int64) * elem
        if isinstance(inst, AllocaInst):
            return self._alloca_addr(inst, ctx)
        if isinstance(inst, CallInst):
            return self._intrinsic(inst, ctx, arg_values)
        raise SimulationError(f"cannot execute {inst!r}")

    def _alloca_addr(self, inst: AllocaInst, ctx: _WarpContext) -> np.ndarray:
        base = ctx.allocas.get(id(inst))
        if base is None:
            dtype = repr(inst.element_type)
            count = inst.count * WARP_SIZE
            base = self.memory.alloc(
                f"__alloca_{inst.name}_{id(ctx):x}", dtype, count)
            ctx.allocas[id(inst)] = base
        elem = inst.element_type.size_bytes()
        stride = inst.count * elem
        return base + np.arange(WARP_SIZE, dtype=np.int64) * stride

    def _intrinsic(self, inst: CallInst, ctx: _WarpContext,
                   arg_values: Dict[int, np.ndarray]) -> np.ndarray:
        name = inst.intrinsic.name
        ev = lambda v: self._eval(v, ctx, arg_values)
        if name == "tid.x":
            return ctx.lane_ids.copy()
        if name == "ctaid.x":
            return np.full(WARP_SIZE, ctx.block_idx, dtype=np.int64)
        if name == "ntid.x":
            return np.full(WARP_SIZE, ctx.block_dim, dtype=np.int64)
        if name == "nctaid.x":
            return np.full(WARP_SIZE, ctx.grid_dim, dtype=np.int64)
        args = [ev(a) for a in inst.operands]
        with np.errstate(all="ignore"):
            if name == "sqrt":
                return np.sqrt(np.maximum(args[0], 0.0))
            if name == "fabs":
                return np.abs(args[0])
            if name == "exp":
                return np.exp(np.clip(args[0], -700, 700))
            if name == "log":
                return np.log(np.maximum(args[0], 1e-300))
            if name == "sin":
                return np.sin(args[0])
            if name == "cos":
                return np.cos(args[0])
            if name == "atan":
                return np.arctan(args[0])
            if name == "floor":
                return np.floor(args[0])
            if name == "pow":
                return np.power(np.abs(args[0]), args[1])
            if name == "fma":
                return args[0] * args[1] + args[2]
            if name in ("min", "fmin"):
                return np.minimum(args[0], args[1])
            if name in ("max", "fmax"):
                return np.maximum(args[0], args[1])
        raise SimulationError(f"unimplemented intrinsic @{name}")

    # -- phi edges -----------------------------------------------------------
    def _edge_moves(self, src: BasicBlock, dst: BasicBlock, mask: np.ndarray,
                    ctx: _WarpContext, arg_values: Dict[int, np.ndarray],
                    counters: Counters) -> None:
        phis = dst.phis()
        if not phis or not mask.any():
            return
        active = int(np.count_nonzero(mask))
        # Parallel-copy semantics: read all incomings before writing any.
        staged: List[Tuple[PhiInst, np.ndarray]] = []
        for phi in phis:
            value = self._eval(phi.incoming_for(src), ctx, arg_values)
            staged.append((phi, value))
        for phi, value in staged:
            counters.note_issue("misc", active)  # One mov per phi.
            counters.cycles += charge(issue_cost("misc", "phi"), active)
            self._write(phi, value, mask, ctx)

    # -- value plumbing --------------------------------------------------------
    def _bind_args(self, func: Function,
                   args: Sequence[ArgValue]) -> Dict[int, np.ndarray]:
        bound: Dict[int, np.ndarray] = {}
        for arg, value in zip(func.args, args):
            dtype = _storage_dtype(arg.type)
            bound[id(arg)] = np.full(WARP_SIZE, value, dtype=dtype)
        return bound

    def _eval(self, value: Value, ctx: _WarpContext,
              arg_values: Dict[int, np.ndarray]) -> np.ndarray:
        if isinstance(value, ConstantInt):
            dtype = _storage_dtype(value.type)
            return np.full(WARP_SIZE, value.value, dtype=dtype)
        if isinstance(value, ConstantFloat):
            dtype = _storage_dtype(value.type)
            return np.full(WARP_SIZE, value.value, dtype=dtype)
        if isinstance(value, Undef):
            return np.zeros(WARP_SIZE, dtype=_storage_dtype(value.type))
        if isinstance(value, Argument):
            return arg_values[id(value)]
        if isinstance(value, GlobalVariable):
            addr = self._global_addrs[value.name]
            return np.full(WARP_SIZE, addr, dtype=np.int64)
        stored = ctx.values.get(id(value))
        if stored is None:
            raise SimulationError(
                f"use of undefined value %{value.name}")
        return stored

    @staticmethod
    def _write(inst: Value, value: np.ndarray, mask: np.ndarray,
               ctx: _WarpContext) -> None:
        dtype = _storage_dtype(inst.type)
        if value.dtype != dtype:
            value = value.astype(dtype)
        slot = ctx.values.get(id(inst))
        if slot is None:
            slot = np.zeros(WARP_SIZE, dtype=dtype)
            ctx.values[id(inst)] = slot
        slot[mask] = value[mask]


# ---------------------------------------------------------------------------
# numpy semantics helpers
# ---------------------------------------------------------------------------

def _binary_op(opcode: str, lhs: np.ndarray, rhs: np.ndarray,
               type_: Type) -> np.ndarray:
    bits = type_.bits if isinstance(type_, IntType) else 64
    with np.errstate(all="ignore"):
        if opcode == "add":
            return _wrap_int(lhs + rhs, bits)
        if opcode == "sub":
            return _wrap_int(lhs - rhs, bits)
        if opcode == "mul":
            return _wrap_int(lhs * rhs, bits)
        if opcode in ("sdiv", "srem"):
            safe = np.where(rhs == 0, 1, rhs)
            quo = np.fix(lhs / safe).astype(np.int64)
            quo = np.where(rhs == 0, 0, quo)
            if opcode == "sdiv":
                return _wrap_int(quo, bits)
            rem = lhs - quo * np.where(rhs == 0, 0, rhs)
            return _wrap_int(np.where(rhs == 0, 0, rem), bits)
        if opcode in ("udiv", "urem"):
            ul = lhs.astype(np.uint64)
            ur = rhs.astype(np.uint64)
            safe = np.where(ur == 0, 1, ur)
            if opcode == "udiv":
                out = np.where(ur == 0, 0, ul // safe)
            else:
                out = np.where(ur == 0, 0, ul % safe)
            return _wrap_int(out.astype(np.int64), bits)
        if opcode == "shl":
            shift = np.clip(rhs, 0, 63)
            return _wrap_int(lhs << shift, bits)
        if opcode == "lshr":
            shift = np.clip(rhs, 0, 63)
            return _wrap_int(
                (lhs.astype(np.uint64) >> shift.astype(np.uint64))
                .astype(np.int64), bits)
        if opcode == "ashr":
            shift = np.clip(rhs, 0, 63)
            return _wrap_int(lhs >> shift, bits)
        if opcode == "and":
            return lhs & rhs
        if opcode == "or":
            return lhs | rhs
        if opcode == "xor":
            return lhs ^ rhs
        if opcode == "fadd":
            return lhs + rhs
        if opcode == "fsub":
            return lhs - rhs
        if opcode == "fmul":
            return lhs * rhs
        if opcode == "fdiv":
            return np.divide(lhs, rhs)
        if opcode == "frem":
            return np.fmod(lhs, rhs)
    raise SimulationError(f"unimplemented binary op {opcode}")


def _icmp_op(pred: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    if pred.startswith("u") and pred not in ("ueq",):
        ul = lhs.astype(np.uint64)
        ur = rhs.astype(np.uint64)
        table = {"ult": ul < ur, "ule": ul <= ur,
                 "ugt": ul > ur, "uge": ul >= ur}
        return table[pred]
    table = {"eq": lhs == rhs, "ne": lhs != rhs,
             "slt": lhs < rhs, "sle": lhs <= rhs,
             "sgt": lhs > rhs, "sge": lhs >= rhs}
    return table[pred]


def _fcmp_op(pred: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    unordered = np.isnan(lhs) | np.isnan(rhs)
    with np.errstate(invalid="ignore"):
        base = {"eq": lhs == rhs, "ne": lhs != rhs,
                "lt": lhs < rhs, "le": lhs <= rhs,
                "gt": lhs > rhs, "ge": lhs >= rhs}[pred[1:]]
    if pred.startswith("o"):
        return base & ~unordered
    return base | unordered


def _cast_op(opcode: str, value: np.ndarray, to_type: Type,
             from_type: Type) -> np.ndarray:
    if opcode in ("trunc",):
        assert isinstance(to_type, IntType)
        return _wrap_int(value.astype(np.int64), to_type.bits)
    if opcode == "zext":
        if value.dtype == np.bool_:
            return value.astype(np.int64)
        # Values are stored sign-wrapped; reinterpret as unsigned at the
        # source width before widening.
        assert isinstance(from_type, IntType)
        if from_type.bits >= 64:
            return value.astype(np.int64)
        mask = (np.int64(1) << from_type.bits) - 1
        return value.astype(np.int64) & mask
    if opcode == "sext":
        return value.astype(np.int64)
    if opcode in ("sitofp", "uitofp"):
        dtype = np.float32 if isinstance(to_type, FloatType) and \
            to_type.bits == 32 else np.float64
        return value.astype(dtype)
    if opcode == "fptosi":
        with np.errstate(all="ignore"):
            clipped = np.nan_to_num(value, nan=0.0,
                                    posinf=2**62, neginf=-2**62)
            return np.fix(clipped).astype(np.int64)
    if opcode in ("fpext", "fptrunc"):
        dtype = np.float32 if isinstance(to_type, FloatType) and \
            to_type.bits == 32 else np.float64
        return value.astype(dtype)
    if opcode in ("bitcast", "ptrtoint", "inttoptr"):
        return value.astype(np.int64)
    raise SimulationError(f"unimplemented cast {opcode}")
