"""Trace-JIT execution engine: batched lattice + compiled superblocks.

This engine is the batched engine (:mod:`repro.gpu.batched`) with a
tier-2 fast path: when the dispatcher pops a group whose mask covers
*every* lane of every warp and a compiled superblock
(:mod:`repro.gpu.regions`) starts at that block, the whole trace runs as
one fused sequence — no per-block scheduling, no masked writes, integer
counters folded per block, and (for memory-free regions whose per-row
accumulators agree) float accounting replayed on two Python scalars
instead of ``(n,)``/``(n, 7)`` lattices.

Guards and deoptimization: each conditional branch crossed by a trace
checks that every lane takes the compile-time expected side (one lattice
reduction).  On disagreement the op *deoptimizes*: scalar accumulators
are flushed back to the per-row vectors, every slot the trace rebound is
normalized to an owned ``(n, 32)`` array, and the branch is resolved by
the exact interpreter logic — parking sub-groups for intra-warp
divergence, or returning the pending cross-warp split that
``_split_state`` partitions (demoting singletons to the per-warp
engine).  Memory faults raised inside a region propagate from the same
program point they would under the interpreter, and runaway loops are
caught at every region back edge against ``machine.max_cycles``.

Bit-identicality: see the :mod:`repro.gpu.regions` module docstring for
the argument; ``tests/test_engine_equivalence.py`` pins this engine
byte-identical (outputs, cycles, Counters, memory transactions) to the
warp and batched engines across benchmarks, corpus, and fuzz kernels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .batched import (_BatchContext, _BatchState, _Results, _exec_block,
                      _finish_state, _follow_batch, _issue_factor,
                      _split_state, _CLS_DIVERGENT, _CLS_TAKEN)
from ..obs import metrics as obs_metrics
from .counters import Counters, N_CATEGORIES
from .icache import InstructionCache
from .machine import (WARP_SIZE, SimulationError, _BR_COST, _CAT_CONTROL,
                      _CAT_MISC, _K_VALUE, _K_VOID)
from .region_cache import flush_region_feedback, load_or_compile_regions
from .regions import (CompiledRegion, GUARD_DEMOTE_FAILS, R_DIAMOND,
                      R_EXIT_BR, R_EXIT_CONDBR, R_GUARD, R_NEXT, R_RET,
                      R_UNREACHABLE, S_FUSED, S_MEM, S_VALUE,
                      demote_guard, drop_cold_region)


def _raise_undef(exc: KeyError, names) -> None:
    """Map a fused closure's missing-slot KeyError to the interpreter's
    undefined-value diagnostic; anything else re-raises unchanged."""
    key = exc.args[0] if exc.args else None
    name = names.get(key) if isinstance(names, dict) else None
    if name is None:
        raise
    raise SimulationError(f"use of undefined value %{name}") from None


def run_launch_jit(machine, func, entry, grid_dim: int, block_dim: int,
                   args: Sequence, total: Counters
                   ) -> Tuple[List[np.ndarray], int]:
    """Run one launch on the jit engine (same contract as batched)."""
    regions = machine._regions.get(id(func))
    if regions is None:
        regions = load_or_compile_regions(machine, func, entry)
        machine._regions[id(func)] = regions
    warps = (block_dim + WARP_SIZE - 1) // WARP_SIZE
    n = grid_dim * warps
    arg_values = machine._bind_args(func, args)
    warp_lanes = (np.arange(warps, dtype=np.int64)[:, None] * WARP_SIZE
                  + np.arange(WARP_SIZE, dtype=np.int64))
    lane_ids = np.tile(warp_lanes, (grid_dim, 1))
    block_ids = np.repeat(np.arange(grid_dim, dtype=np.int64), warps)
    ctx = _BatchContext(lane_ids, block_ids, block_dim, grid_dim,
                        np.arange(n))
    icache = InstructionCache(machine._icache_capacity) \
        if machine._icache_capacity else InstructionCache()
    active = lane_ids < block_dim
    state = _BatchState(ctx, np.zeros(n), np.zeros(n),
                        np.zeros((n, N_CATEGORIES)), icache,
                        [(0, entry, active)])
    results = _Results(n)
    worklist = [state]
    try:
        while worklist:
            _run_state_jit(machine, func, worklist.pop(), arg_values, total,
                           results, worklist, regions)
    finally:
        # Guard feedback (truncations / drops) reshaped the map: persist
        # the improved plan so the next cold process starts from it.
        flush_region_feedback(regions)

    ret_all: List[np.ndarray] = []
    fetch_stalls = 0
    for w in range(n):
        total.cycles += results.cycles[w]
        total.memory_stall_cycles += results.memory_stall[w]
        cat = results.cat[w]
        for i in range(N_CATEGORIES):
            total.cat_cycles[i] += cat[i]
        fetch_stalls += results.fetch[w]
        if results.ret[w] is not None:
            ret_all.append(results.ret[w])
    return ret_all, fetch_stalls


def _run_state_jit(machine, func, state: _BatchState, arg_values, total,
                   results: _Results, worklist: List[_BatchState],
                   regions: Dict[int, CompiledRegion]) -> None:
    """The batched dispatcher with the superblock fast path.

    A region fires only for a group with a *full* mask: then the charge
    factor is uniform, and — since live masks partition lanes — the
    group is provably the only one in the state, so running the whole
    trace without re-entering the scheduler replays the interpreter's
    pop order exactly.
    """
    profile = machine.profile
    # Region value steps rebind slots directly; freezing the geometry
    # lattice makes any aliasing rebind (e.g. ``%t = tid.x``) detectable
    # by the exit-time normalization pass instead of silently sharing a
    # mutable buffer with the context.
    state.ctx.lane_ids.setflags(write=False)
    while state.groups:
        if float(state.cycles.max()) > machine.max_cycles:
            raise SimulationError(
                f"@{func.name}: exceeded {machine.max_cycles} cycles "
                "(runaway kernel?)")
        merged: Dict[int, Tuple] = {}
        for epoch, db, mask in state.groups:
            existing = merged.get(db.block_id)
            if existing is None:
                merged[db.block_id] = (epoch, db, mask)
            else:
                merged[db.block_id] = (max(existing[0], epoch), db,
                                       existing[2] | mask)
        groups = list(merged.values())
        groups.sort(key=lambda g: (g[0], g[1].rpo), reverse=True)
        epoch, db, mask = groups.pop()
        state.groups = groups
        if not mask.any():
            continue
        region = regions.get(db.block_id)
        if region is not None and not bool(mask.all()):
            # Regions need every lane live; one that only ever sees
            # partial masks (e.g. one half of an if/else) is dropped so
            # its full-mask test stops costing a lattice reduction.
            region.entry_fails += 1
            if (region.entry_fails >= GUARD_DEMOTE_FAILS
                    and region.entries == 0):
                drop_cold_region(regions, region, func.name)
            region = None
        if region is not None:
            region.entries += 1
            pending = _run_region(machine, func, region, epoch, mask, state,
                                  arg_values, total, profile, regions)
        else:
            state.cycles += state.icache.access(db.block_id, db.size)
            if profile is None:
                pending = _exec_block(machine, func, db, epoch, mask, state,
                                      arg_values, total)
            else:
                start_ts = float(state.cycles[0])
                before = float(state.cycles.sum())
                pending = _exec_block(machine, func, db, epoch, mask, state,
                                      arg_values, total)
                profile.note_block(db.name,
                                   float(state.cycles.sum()) - before,
                                   int(np.count_nonzero(mask)), mask.size,
                                   start_ts)
        if pending is not None:
            if profile is not None:
                cls = pending[5]
                profile.note_split(db.name, len(set(cls.tolist())),
                                   int(cls.size))
            _split_state(machine, func, state, arg_values, pending, total,
                         results, worklist)
            return
    _finish_state(state, results)


def _run_region(machine, func, region: CompiledRegion, epoch: int,
                mask: np.ndarray, state: _BatchState, arg_values, total,
                profile, regions):
    """Execute one compiled superblock; returns None or a pending split."""
    if region.scalar_ok and _rows_uniform(state):
        if region.self_loop is not None and profile is None:
            return _region_self_scalar(machine, func, region,
                                       region.self_loop, epoch, mask,
                                       state, arg_values, total, regions)
        return _region_scalar(machine, func, region, epoch, mask, state,
                              arg_values, total, profile, regions)
    return _region_vector(machine, func, region, epoch, mask, state,
                          arg_values, total, profile, regions)


def _rows_uniform(state: _BatchState) -> bool:
    """True when every row's float accumulators agree (scalar replay OK)."""
    cy = state.cycles
    if not bool((cy == cy[0]).all()):
        return False
    cc = state.cat_cycles
    return bool((cc == cc[0]).all())


def _flush_ints(total: Counters, issues: int, branches: int,
                cat_acc: Dict[str, int], n: int, lanes: int) -> None:
    """Apply locally accumulated integer counters to ``total``.

    Integer counters are exact and commutative, so a region run folds
    them into plain locals per op and flushes once per exit — identical
    totals to the interpreter's per-instruction ``note_issue`` calls.
    """
    if issues:
        total.inst_executed += issues * n
        total.thread_inst_executed += issues * lanes
        total.active_lane_sum += issues * lanes
        for attr, count in cat_acc.items():
            setattr(total, attr, getattr(total, attr) + count * lanes)
    if branches:
        total.branches += branches * n


def _bind_phis(ctx, arg_values, moves, shape) -> None:
    """Compile-time-resolved phi parallel copy: stage all, then rebind.

    Moves proven alias-safe at compile time (``regions._finalize_moves``:
    the source slot is only ever rebound, never mutated, while the alias
    can live) bind the source array by reference.  The rest go through
    ``broadcast_to(...).astype`` — always a copy, so the staged arrays
    are owned buffers detached from the source slots.  Staging every
    read before any rebind preserves parallel-copy (phi-reads-phi)
    semantics either way.
    """
    staged = []
    for _pid, read, dt, nocopy in moves:
        arr = read(ctx, arg_values)
        if not nocopy:
            arr = np.broadcast_to(arr, shape).astype(dt)
        elif arr.dtype != dt:
            arr = arr.astype(dt)
        staged.append(arr)
    values = ctx.values
    for (pid, _read, _dt, _nc), arr in zip(moves, staged):
        values[pid] = arr


def _normalize_slots(ctx, norm, shape) -> None:
    """Materialize trace-rebound slots as owned writable (n, 32) arrays.

    Value steps and phi binds rebind raw results: possibly ``(32,)``
    broadcastable vectors (uniform computations), read-only shared
    constants, views of context geometry, or aliases of another region
    slot (no-copy phi binds).  The interpreter's masked writes mutate
    slots in place, so before control returns to it every rebound slot
    must be an owned full-shape array that shares no buffer with any
    other slot.  Anything already owned, writable, full-shape, and
    unaliased (the common case) is left untouched.
    """
    values = ctx.values
    seen = set()
    for iid, dt in norm:
        arr = values.get(iid)
        if arr is None:
            continue
        aid = id(arr)
        if (arr.shape != shape or not arr.flags.writeable
                or arr.base is not None or aid in seen):
            out = np.empty(shape, dtype=dt)
            out[...] = arr
            values[iid] = out
            seen.add(id(out))
        else:
            seen.add(aid)


def _resolve_condbr(cond, mask, true_edge, false_edge, epoch, state,
                    arg_values, total):
    """The interpreter's conditional-branch resolution, verbatim.

    Used on guard failure and at condbr region exits: classifies each
    row, parks sub-groups when all rows agree, or returns the pending
    split for ``_split_state``.
    """
    cond = cond.astype(bool)
    if cond.shape != mask.shape:
        cond = np.broadcast_to(cond, mask.shape)
    t_mask = mask & cond
    f_mask = mask & ~cond
    t_any = t_mask.any(axis=1)
    f_any = f_mask.any(axis=1)
    cls = (t_any.astype(np.int8) << 1) | f_any.astype(np.int8)
    first = int(cls[0])
    if bool((cls == first).all()):
        if first == _CLS_DIVERGENT:
            total.divergent_branches += mask.shape[0]
            _follow_batch(true_edge, epoch, t_mask, state, arg_values, total)
            _follow_batch(false_edge, epoch, f_mask, state, arg_values, total)
        elif first == _CLS_TAKEN:
            _follow_batch(true_edge, epoch, t_mask, state, arg_values, total)
        else:
            _follow_batch(false_edge, epoch, f_mask, state, arg_values, total)
        return None
    return (true_edge, false_edge, epoch, t_mask, f_mask, cls)


def _region_self_scalar(machine, func, region: CompiledRegion, op,
                        epoch: int, mask: np.ndarray, state: _BatchState,
                        arg_values, total: Counters, regions):
    """Specialized scalar executor for single-block self-loop regions.

    The hottest compiled shape — a loop body whose guard jumps straight
    back to itself — spins here with every per-iteration attribute load
    hoisted into locals and integer counters folded as one
    multiplication by the iteration count at exit (exact: they are
    Python ints).  The float charge sequence is statement-for-statement
    the generic scalar loop's, so accounting stays bit-identical.  Runs
    only with profiling off; the generic loop keeps the per-iteration
    ``note_block`` stream otherwise.
    """
    ctx = state.ctx
    values = ctx.values
    n = ctx.n
    lanes = n * WARP_SIZE
    shape = mask.shape
    max_cycles = machine.max_cycles
    cy = float(state.cycles[0])
    cats = [float(x) for x in state.cat_cycles[0]]
    acct = op.acct
    vsteps = op.vsteps
    read_cond = op.read_cond
    expected = op.expected
    moves = op.moves
    phi_c = op.phi_c
    k = len(moves)
    cmisc = _CAT_MISC
    # The first fetch may miss; every later one re-touches the block
    # just accessed — a guaranteed hit with zero stall and a no-op LRU
    # reorder — so the loop skips the call entirely.
    cy += state.icache.access(op.block_id, op.size)
    iters = 0
    while True:
        for c, ci in acct:
            cy += c
            cats[ci] += c
        for run, iid, dt in vsteps:
            if iid is None:  # Fused segment: one call for a whole chain.
                try:
                    run(ctx, arg_values, values)
                except KeyError as exc:
                    _raise_undef(exc, dt)
                continue
            arr = run(ctx, arg_values)
            if arr.dtype != dt:
                arr = arr.astype(dt)
            values[iid] = arr
        cond = read_cond(ctx, arg_values)
        if expected:
            ok = bool(cond.all())
        else:
            ok = not bool(cond.any())
        if not ok:
            break
        if k:
            staged = []
            for _pid, read, dt, nocopy in moves:
                arr = read(ctx, arg_values)
                if not nocopy:
                    arr = np.broadcast_to(arr, shape).astype(dt)
                elif arr.dtype != dt:
                    arr = arr.astype(dt)
                staged.append(arr)
            for (pid, _read, _dt, _nc), arr in zip(moves, staged):
                values[pid] = arr
            for _ in range(k):
                cy += phi_c
                cats[cmisc] += phi_c
        iters += 1
        if cy > max_cycles:
            raise SimulationError(
                f"@{func.name}: exceeded {max_cycles} cycles "
                "(runaway kernel?)")

    # Guard failed — the loop's only exit.  Fold the whole run's integer
    # counters, flush floats, and deoptimize to the interpreter.
    op.passes += iters
    op.fails += 1
    obs_metrics.inc("repro_jit_guard_failures_total", kind="loop")
    obs_metrics.inc("repro_jit_deopts_total")
    if (op.fails >= GUARD_DEMOTE_FAILS and op.fails > op.passes
            and regions.get(region.head_id) is region):
        demote_guard(regions, region, 0, func.name)
    state.cycles[:] = cy
    state.cat_cycles[:] = cats
    issues = op.issues * (iters + 1) + k * iters
    cat_acc = {attr: count * (iters + 1) for attr, count in op.cat_counts}
    if k and iters:
        cat_acc["inst_misc"] = cat_acc.get("inst_misc", 0) + k * iters
    _flush_ints(total, issues, op.branch_inc * (iters + 1), cat_acc, n,
                lanes)
    _normalize_slots(ctx, region.norm, shape)
    return _resolve_condbr(cond, mask, op.true_edge, op.false_edge,
                           epoch + op.bump * iters, state, arg_values,
                           total)


def _region_scalar(machine, func, region: CompiledRegion, epoch: int,
                   mask: np.ndarray, state: _BatchState, arg_values,
                   total: Counters, profile, regions):
    """Scalar-accounting region execution (memory-free, uniform rows).

    Float accumulation runs on two Python scalars (``cy``/``cats``) in
    the exact operation order the lattice would use; since every row
    starts equal and every charge is row-uniform, broadcasting the final
    scalars back is bit-identical to the elementwise updates.  Integer
    counters accumulate in locals and flush once per exit.
    """
    ctx = state.ctx
    values = ctx.values
    n = ctx.n
    lanes = n * WARP_SIZE
    shape = mask.shape
    iaccess = state.icache.access
    max_cycles = machine.max_cycles
    ops = region.ops
    cy = float(state.cycles[0])
    cats = [float(x) for x in state.cat_cycles[0]]
    acc_issues = 0
    acc_branches = 0
    acc_cats: Dict[str, int] = {}
    i = 0
    while True:
        op = ops[i]
        cy += iaccess(op.block_id, op.size)
        start = cy
        acc_issues += op.issues
        acc_branches += op.branch_inc
        for attr, count in op.cat_counts:
            acc_cats[attr] = acc_cats.get(attr, 0) + count
        for c, ci in op.acct:
            cy += c
            cats[ci] += c
        for run, iid, dt in op.vsteps:
            if iid is None:  # Fused segment: one call for a whole chain.
                try:
                    run(ctx, arg_values, values)
                except KeyError as exc:
                    _raise_undef(exc, dt)
                continue
            arr = run(ctx, arg_values)
            if arr.dtype != dt:
                arr = arr.astype(dt)
            values[iid] = arr
        kind = op.kind
        if kind == R_GUARD:
            cond = op.read_cond(ctx, arg_values)
            if op.expected:
                ok = bool(cond.all())
            else:
                ok = not bool(cond.any())
            if not ok:
                # Guard failed: deoptimize to the interpreter.
                op.fails += 1
                obs_metrics.inc("repro_jit_guard_failures_total",
                                kind="scalar")
                obs_metrics.inc("repro_jit_deopts_total")
                if (op.fails >= GUARD_DEMOTE_FAILS
                        and op.fails > op.passes
                        and regions.get(region.head_id) is region):
                    demote_guard(regions, region, i, func.name)
                state.cycles[:] = cy
                state.cat_cycles[:] = cats
                _flush_ints(total, acc_issues, acc_branches, acc_cats, n,
                            lanes)
                _normalize_slots(ctx, region.norm, shape)
                if profile is not None:
                    profile.note_block(op.name, (cy - start) * n, lanes,
                                       lanes, start)
                return _resolve_condbr(cond, mask, op.true_edge,
                                       op.false_edge, epoch, state,
                                       arg_values, total)
            op.passes += 1
        elif kind != R_NEXT:
            break
        moves = op.moves
        if moves:
            _bind_phis(ctx, arg_values, moves, shape)
            k = len(moves)
            acc_issues += k
            acc_cats["inst_misc"] = acc_cats.get("inst_misc", 0) + k
            pc = op.phi_c
            for _ in range(k):
                cy += pc
                cats[_CAT_MISC] += pc
        if profile is not None:
            profile.note_block(op.name, (cy - start) * n, lanes, lanes,
                               start)
        epoch += op.bump
        ni = op.next_i
        if ni <= i and cy > max_cycles:
            raise SimulationError(
                f"@{func.name}: exceeded {max_cycles} cycles "
                "(runaway kernel?)")
        i = ni

    # Region exit: flush accumulators, normalize slots, resolve the exit.
    state.cycles[:] = cy
    state.cat_cycles[:] = cats
    _flush_ints(total, acc_issues, acc_branches, acc_cats, n, lanes)
    _normalize_slots(ctx, region.norm, shape)
    if profile is not None:
        profile.note_block(op.name, (cy - start) * n, lanes, lanes, start)
    kind = op.kind
    if kind == R_EXIT_BR:
        _follow_batch(op.exit_edge, epoch, mask, state, arg_values, total)
        return None
    if kind == R_EXIT_CONDBR:
        cond = op.read_cond(ctx, arg_values)
        return _resolve_condbr(cond, mask, op.true_edge, op.false_edge,
                               epoch, state, arg_values, total)
    if kind == R_RET:
        read_value, dtype = op.ret
        if read_value is not None:
            value = read_value(ctx, arg_values)
            if value.shape != shape:
                value = np.broadcast_to(value, shape)
            if ctx.ret_values is None:
                ctx.ret_values = np.zeros(shape, dtype=dtype)
            ctx.ret_values[mask] = value[mask]
        return None
    # R_UNREACHABLE
    raise SimulationError(
        f"@{func.name}: executed unreachable in {op.name}")


def _exec_arm(arm, mask_a: np.ndarray, epoch: int, state: _BatchState,
              ctx, arg_values, total: Counters, profile) -> int:
    """Execute one diamond arm exactly as an interpreter pop would.

    The arm runs under its partial mask with the interpreter's own
    machinery — per-row ``_issue_factor`` charges, masked writers,
    ``_follow_batch`` for the join-edge phi moves — so every float lands
    bit-identically; only the commuting integer counters are folded.
    Returns the epoch the join group was parked at (the arm's join-edge
    bump applied), popping the park since control merges in-region.
    """
    bid, size, name, steps, join_edge, cat_counts, arm_issues = arm
    state.cycles += state.icache.access(bid, size)
    if profile is not None:
        start_ts = float(state.cycles[0])
        before = float(state.cycles.sum())
    actives = np.count_nonzero(mask_a, axis=1)
    active_sum = int(actives.sum())
    n = mask_a.shape[0]
    factor = _issue_factor(actives)
    cycles = state.cycles
    cat = state.cat_cycles
    for _category, cat_idx, cost, kind, run, brun, write, _meta in steps:
        c = cost * factor
        cycles += c
        cat[:, cat_idx] += c
        if kind == _K_VALUE:
            write(ctx, run(ctx, arg_values), mask_a)
        elif kind != _K_VOID:
            brun(ctx, arg_values, mask_a, actives, state)
    # The BR terminator, then the join edge's phi moves.
    c = _BR_COST * factor
    cycles += c
    cat[:, _CAT_CONTROL] += c
    total.branches += n
    total.inst_executed += arm_issues * n
    total.thread_inst_executed += arm_issues * active_sum
    total.active_lane_sum += arm_issues * active_sum
    for attr, count in cat_counts:
        setattr(total, attr, getattr(total, attr) + count * active_sum)
    _follow_batch(join_edge, epoch, mask_a, state, arg_values, total)
    if profile is not None:
        profile.note_block(name, float(state.cycles.sum()) - before,
                           active_sum, mask_a.size, start_ts)
    return state.groups.pop()[0]


def _region_vector(machine, func, region: CompiledRegion, epoch: int,
                   mask: np.ndarray, state: _BatchState, arg_values,
                   total: Counters, profile, regions):
    """Vector-accounting region execution (general case).

    Keeps the per-row ``(n,)``/``(n, 7)`` accumulators (memory latency
    differs per row) but still skips the scheduler, folds integer
    counters, and rebinds slots instead of masked-writing them.  Charges
    are the scalar ``cost * _FULL_FACTOR`` broadcast over rows — the
    same IEEE value the lattice's per-row factor yields at a full mask.
    """
    ctx = state.ctx
    values = ctx.values
    n = ctx.n
    lanes = n * WARP_SIZE
    shape = mask.shape
    iaccess = state.icache.access
    max_cycles = machine.max_cycles
    ops = region.ops
    cycles = state.cycles
    cat = state.cat_cycles
    actives = np.full(n, WARP_SIZE, dtype=np.int64)
    acc_issues = 0
    acc_branches = 0
    acc_cats: Dict[str, int] = {}
    i = 0
    while True:
        op = ops[i]
        cycles += iaccess(op.block_id, op.size)
        if profile is not None:
            start_ts = float(cycles[0])
            before = float(cycles.sum())
        acc_issues += op.issues
        acc_branches += op.branch_inc
        for attr, count in op.cat_counts:
            acc_cats[attr] = acc_cats.get(attr, 0) + count
        for entry in op.steps:
            tag = entry[0]
            if tag == S_VALUE:
                _t, c, ci, run, iid, dt = entry
                cycles += c
                cat[:, ci] += c
                arr = run(ctx, arg_values)
                if arr.dtype != dt:
                    arr = arr.astype(dt)
                values[iid] = arr
            elif tag == S_FUSED:
                # Replay the folded per-step charges in original order
                # (float accumulation is order-sensitive), then compute
                # the whole chain in one generated call.
                _t, charges, run, names = entry
                for c, ci in charges:
                    cycles += c
                    cat[:, ci] += c
                try:
                    run(ctx, arg_values, values)
                except KeyError as exc:
                    _raise_undef(exc, names)
            elif tag == S_MEM:
                _t, c, ci, brun = entry
                cycles += c
                cat[:, ci] += c
                brun(ctx, arg_values, mask, actives, state)
            else:
                _t, c, ci = entry
                cycles += c
                cat[:, ci] += c
        tc = op.term_c
        if tc is not None:
            cycles += tc
            cat[:, _CAT_CONTROL] += tc
        kind = op.kind
        if kind == R_GUARD:
            cond = op.read_cond(ctx, arg_values)
            if op.expected:
                ok = bool(cond.all())
            else:
                ok = not bool(cond.any())
            if not ok:
                op.fails += 1
                obs_metrics.inc("repro_jit_guard_failures_total",
                                kind="lattice")
                obs_metrics.inc("repro_jit_deopts_total")
                if (op.fails >= GUARD_DEMOTE_FAILS
                        and op.fails > op.passes
                        and regions.get(region.head_id) is region):
                    demote_guard(regions, region, i, func.name)
                _flush_ints(total, acc_issues, acc_branches, acc_cats, n,
                            lanes)
                _normalize_slots(ctx, region.norm, shape)
                if profile is not None:
                    profile.note_block(op.name, float(cycles.sum()) - before,
                                       lanes, lanes, start_ts)
                return _resolve_condbr(cond, mask, op.true_edge,
                                       op.false_edge, epoch, state,
                                       arg_values, total)
            op.passes += 1
        elif kind == R_DIAMOND:
            # Predicated if/else: classify rows exactly as the
            # interpreter's condbr would, then run the arm(s) in-region —
            # both arms masked (in the scheduler's rpo pop order) for
            # uniform intra-warp divergence, one arm at full mask for a
            # uniformly decided direction.
            cond = op.read_cond(ctx, arg_values).astype(bool)
            if cond.shape != shape:
                cond = np.broadcast_to(cond, shape)
            t_mask = mask & cond
            f_mask = mask & ~cond
            t_any = t_mask.any(axis=1)
            f_any = f_mask.any(axis=1)
            cls = (t_any.astype(np.int8) << 1) | f_any.astype(np.int8)
            first = int(cls[0])
            if not bool((cls == first).all()):
                # Cross-warp disagreement: flush and hand the pending
                # split to the interpreter, as a condbr exit would.
                _flush_ints(total, acc_issues, acc_branches, acc_cats, n,
                            lanes)
                _normalize_slots(ctx, region.norm, shape)
                if profile is not None:
                    profile.note_block(op.name,
                                       float(cycles.sum()) - before,
                                       lanes, lanes, start_ts)
                return (op.true_edge, op.false_edge, epoch, t_mask,
                        f_mask, cls)
            if profile is not None:
                profile.note_block(op.name, float(cycles.sum()) - before,
                                   lanes, lanes, start_ts)
            if first == _CLS_DIVERGENT:
                total.divergent_branches += n
                arms = ((op.arm_t, t_mask), (op.arm_f, f_mask))
                if not op.arms_t_first:
                    arms = (arms[1], arms[0])
                e1 = _exec_arm(arms[0][0], arms[0][1], epoch, state, ctx,
                               arg_values, total, profile)
                e2 = _exec_arm(arms[1][0], arms[1][1], epoch, state, ctx,
                               arg_values, total, profile)
                # The join group merges at the max parked epoch.
                epoch = max(e1, e2)
            elif first == _CLS_TAKEN:
                epoch = _exec_arm(op.arm_t, t_mask, epoch, state, ctx,
                                  arg_values, total, profile)
            else:
                epoch = _exec_arm(op.arm_f, f_mask, epoch, state, ctx,
                                  arg_values, total, profile)
            ni = op.next_i
            if ni <= i and float(cycles.max()) > max_cycles:
                raise SimulationError(
                    f"@{func.name}: exceeded {max_cycles} cycles "
                    "(runaway kernel?)")
            i = ni
            continue
        elif kind != R_NEXT:
            break
        moves = op.moves
        if moves:
            _bind_phis(ctx, arg_values, moves, shape)
            k = len(moves)
            acc_issues += k
            acc_cats["inst_misc"] = acc_cats.get("inst_misc", 0) + k
            pc = op.phi_c
            for _ in range(k):
                cycles += pc
                cat[:, _CAT_MISC] += pc
        if profile is not None:
            profile.note_block(op.name, float(cycles.sum()) - before,
                               lanes, lanes, start_ts)
        epoch += op.bump
        ni = op.next_i
        if ni <= i and float(cycles.max()) > max_cycles:
            raise SimulationError(
                f"@{func.name}: exceeded {max_cycles} cycles "
                "(runaway kernel?)")
        i = ni

    _flush_ints(total, acc_issues, acc_branches, acc_cats, n, lanes)
    _normalize_slots(ctx, region.norm, shape)
    if profile is not None:
        profile.note_block(op.name, float(cycles.sum()) - before, lanes,
                           lanes, start_ts)
    kind = op.kind
    if kind == R_EXIT_BR:
        _follow_batch(op.exit_edge, epoch, mask, state, arg_values, total)
        return None
    if kind == R_EXIT_CONDBR:
        cond = op.read_cond(ctx, arg_values)
        return _resolve_condbr(cond, mask, op.true_edge, op.false_edge,
                               epoch, state, arg_values, total)
    if kind == R_RET:
        read_value, dtype = op.ret
        if read_value is not None:
            value = read_value(ctx, arg_values)
            if value.shape != shape:
                value = np.broadcast_to(value, shape)
            if ctx.ret_values is None:
                ctx.ret_values = np.zeros(shape, dtype=dtype)
            ctx.ret_values[mask] = value[mask]
        return None
    raise SimulationError(
        f"@{func.name}: executed unreachable in {op.name}")
