"""nvprof-style hardware performance counters.

The counter set matches what the paper's in-depth analysis (Section V) uses
to explain every result: ``inst_misc`` (selp/mov data movement executed by
non-predicated threads), ``inst_control``, ``warp_execution_efficiency``,
IPC, global-load throughput and the instruction-fetch stall fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .timing import CLOCK_HZ

#: Opcode categories with per-category cycle accounting.  The first six are
#: the breakdown ``repro summary --profile`` reports; ``special`` covers the
#: tid/ctaid-style launch-geometry intrinsics.  Fetch stalls are charged by
#: the icache model and tracked separately (``fetch_stall_cycles``), so
#: ``sum(cat_cycles) + fetch_stall_cycles == cycles`` for one launch.
CATEGORIES = ("int", "fp", "load", "store", "control", "misc", "special")
CAT_INDEX = {name: i for i, name in enumerate(CATEGORIES)}
N_CATEGORIES = len(CATEGORIES)


def cat_index(category: str) -> int:
    """Index of ``category`` in :data:`CATEGORIES` (unknown -> misc)."""
    return CAT_INDEX.get(category, CAT_INDEX["misc"])


@dataclass
class Counters:
    """Counters for one kernel launch."""

    cycles: float = 0.0
    inst_executed: int = 0          # Warp instructions issued.
    thread_inst_executed: int = 0   # Sum of active lanes over issues.
    active_lane_sum: int = 0        # For warp_execution_efficiency.
    inst_misc: int = 0              # Thread-level select/phi-mov/casts.
    inst_control: int = 0           # Thread-level branches/returns.
    inst_int: int = 0
    inst_fp: int = 0
    inst_load: int = 0
    inst_store: int = 0
    fetch_stall_cycles: float = 0.0
    memory_stall_cycles: float = 0.0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    load_transactions: int = 0
    store_transactions: int = 0
    divergent_branches: int = 0
    branches: int = 0
    warp_size: int = 32
    #: Cycle charges split by opcode category (indexed by :data:`CATEGORIES`).
    #: Load entries include the exposed memory latency; fetch stalls live in
    #: ``fetch_stall_cycles``, so the categories plus stalls sum to ``cycles``.
    cat_cycles: List[float] = field(
        default_factory=lambda: [0.0] * N_CATEGORIES)

    def note_issue(self, category: str, active: int) -> None:
        self.inst_executed += 1
        self.thread_inst_executed += active
        self.active_lane_sum += active
        if category == "misc":
            self.inst_misc += active
        elif category == "control":
            self.inst_control += active
        elif category == "int":
            self.inst_int += active
        elif category == "fp":
            self.inst_fp += active
        elif category == "load":
            self.inst_load += active
        elif category == "store":
            self.inst_store += active

    # -- derived metrics -----------------------------------------------------
    @property
    def warp_execution_efficiency(self) -> float:
        """Average active threads per issue / warp size (percent)."""
        if self.inst_executed == 0:
            return 100.0
        return 100.0 * self.active_lane_sum / (
            self.inst_executed * self.warp_size)

    @property
    def ipc(self) -> float:
        """Warp instructions issued per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.inst_executed / self.cycles

    @property
    def stall_inst_fetch(self) -> float:
        """Percentage of cycles stalled on instruction fetch."""
        if self.cycles == 0:
            return 0.0
        return 100.0 * self.fetch_stall_cycles / self.cycles

    @property
    def gld_throughput_gbps(self) -> float:
        """Global load throughput in GB/s at the simulated clock."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / CLOCK_HZ
        return self.bytes_loaded / seconds / 1e9

    @property
    def branch_divergence_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return 100.0 * self.divergent_branches / self.branches

    def merge(self, other: "Counters") -> None:
        """Accumulate another launch/warp into this counter set."""
        for name in ("cycles", "inst_executed", "thread_inst_executed",
                     "active_lane_sum", "inst_misc", "inst_control",
                     "inst_int", "inst_fp", "inst_load", "inst_store",
                     "fetch_stall_cycles", "memory_stall_cycles",
                     "bytes_loaded", "bytes_stored", "load_transactions",
                     "store_transactions", "divergent_branches", "branches"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for i, value in enumerate(other.cat_cycles):
            self.cat_cycles[i] += value

    def category_cycles(self) -> Dict[str, float]:
        """Cycle charges by opcode category (see :data:`CATEGORIES`)."""
        return dict(zip(CATEGORIES, self.cat_cycles))

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": float(self.cycles),
            "inst_executed": float(self.inst_executed),
            "thread_inst_executed": float(self.thread_inst_executed),
            "inst_misc": float(self.inst_misc),
            "inst_control": float(self.inst_control),
            "warp_execution_efficiency": self.warp_execution_efficiency,
            "ipc": self.ipc,
            "stall_inst_fetch": self.stall_inst_fetch,
            "gld_throughput_gbps": self.gld_throughput_gbps,
            "branch_divergence_rate": self.branch_divergence_rate,
        }
