"""Simulated global memory: a flat 64-bit address space over numpy buffers.

Pointers in the simulator are plain 64-bit addresses.  Each allocation
reserves an aligned region; loads/stores gather/scatter through numpy and
record coalescing statistics (32-byte transaction segments per warp access),
which feed the memory-latency model in :mod:`repro.gpu.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Memory transaction segment size in bytes (V100 L2 sector granularity).
SEGMENT_BYTES = 32

_DTYPES = {
    "i8": np.int8,
    "i16": np.int16,
    "i32": np.int32,
    "i64": np.int64,
    "f32": np.float32,
    "f64": np.float64,
}


@dataclass
class Buffer:
    """One allocation in the flat address space."""

    name: str
    start: int
    elem_size: int
    data: np.ndarray

    @property
    def end(self) -> int:
        return self.start + self.data.size * self.elem_size


@dataclass
class MemoryStats:
    """Aggregated traffic counters for one launch."""

    load_requests: int = 0
    store_requests: int = 0
    load_transactions: int = 0
    store_transactions: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0


class Memory:
    """Flat simulated device memory."""

    def __init__(self) -> None:
        self._buffers: List[Buffer] = []
        self._by_name: Dict[str, Buffer] = {}
        self._next_addr = 0x1000  # Null page stays unmapped.
        self.stats = MemoryStats()

    # -- allocation --------------------------------------------------------
    def alloc(self, name: str, dtype: str, count: int,
              init: Optional[np.ndarray] = None) -> int:
        """Allocate ``count`` elements of ``dtype``; returns the base address."""
        np_dtype = _DTYPES[dtype]
        elem_size = np.dtype(np_dtype).itemsize
        if init is not None:
            data = np.ascontiguousarray(init, dtype=np_dtype).copy()
            if data.size != count:
                raise ValueError(
                    f"initializer size {data.size} != count {count}")
        else:
            data = np.zeros(count, dtype=np_dtype)
        start = (self._next_addr + 255) & ~255  # 256-byte alignment.
        buf = Buffer(name, start, elem_size, data)
        self._next_addr = buf.end
        self._buffers.append(buf)
        self._by_name[name] = buf
        return start

    def buffer(self, name: str) -> Buffer:
        return self._by_name[name]

    def read_back(self, name: str) -> np.ndarray:
        """Copy of a buffer's current contents (host-side view)."""
        return self._by_name[name].data.copy()

    # -- access --------------------------------------------------------------
    def _find(self, addr: int) -> Buffer:
        for buf in self._buffers:
            if buf.start <= addr < buf.end:
                return buf
        raise MemoryError(f"simulated segfault: address {addr:#x} unmapped")

    def load(self, addrs: np.ndarray, mask: np.ndarray,
             elem_size: int) -> Tuple[np.ndarray, int]:
        """Gather one element per active lane.

        Returns ``(values, transactions)`` where values for inactive lanes
        are zero and ``transactions`` is the number of 32-byte segments the
        warp access touched (the coalescing metric).
        """
        active = np.flatnonzero(mask)
        if active.size == 0:
            return np.zeros(addrs.shape[0]), 0
        first = self._find(int(addrs[active[0]]))
        lane_addrs = addrs[active]
        if (lane_addrs < first.start).any() or (lane_addrs >= first.end).any():
            # Slow path: lanes hit different buffers.
            values = np.zeros(addrs.shape[0], dtype=np.float64)
            segments = set()
            for lane in active:
                buf = self._find(int(addrs[lane]))
                idx = (int(addrs[lane]) - buf.start) // buf.elem_size
                values[lane] = buf.data[idx]
                segments.add(int(addrs[lane]) // SEGMENT_BYTES)
            transactions = len(segments)
            out = values
        else:
            idx = (lane_addrs - first.start) // first.elem_size
            gathered = first.data[idx]
            out = np.zeros(addrs.shape[0], dtype=first.data.dtype)
            out[active] = gathered
            transactions = int(
                np.unique(lane_addrs // SEGMENT_BYTES).size)
        self.stats.load_requests += 1
        self.stats.load_transactions += transactions
        self.stats.bytes_loaded += int(active.size) * elem_size
        return out, transactions

    def store(self, addrs: np.ndarray, values: np.ndarray,
              mask: np.ndarray, elem_size: int) -> int:
        """Scatter one element per active lane; returns transaction count."""
        active = np.flatnonzero(mask)
        if active.size == 0:
            return 0
        first = self._find(int(addrs[active[0]]))
        lane_addrs = addrs[active]
        if (lane_addrs < first.start).any() or (lane_addrs >= first.end).any():
            segments = set()
            for lane in active:
                buf = self._find(int(addrs[lane]))
                idx = (int(addrs[lane]) - buf.start) // buf.elem_size
                buf.data[idx] = values[lane]
                segments.add(int(addrs[lane]) // SEGMENT_BYTES)
            transactions = len(segments)
        else:
            idx = (lane_addrs - first.start) // first.elem_size
            first.data[idx] = values[active]
            transactions = int(np.unique(lane_addrs // SEGMENT_BYTES).size)
        self.stats.store_requests += 1
        self.stats.store_transactions += transactions
        self.stats.bytes_stored += int(active.size) * elem_size
        return transactions
