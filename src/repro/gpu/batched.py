"""Launch-vectorized batched execution engine.

Executes *all* warps of a kernel launch as one ``(n_warps, 32)`` numpy
value lattice instead of looping over warps in Python.  Most HeCBench-style
kernels are control-uniform across warps — every warp runs the same decoded
block schedule, only the lane data differs — so one vectorized pass over
the dispatch list replaces ``n_warps`` serial interpreter passes.

Batching invariant
------------------
A batch stays together while every warp makes the *same* control decision:
at each conditional branch the per-warp outcome is classified as
``taken | not-taken | intra-warp-divergent``.  While the classification is
uniform across all rows, every warp's group scheduler would behave
identically (same blocks, same epochs, same merge/sort/pop sequence, same
icache access stream), so one representative schedule — and one
representative :class:`~repro.gpu.icache.InstructionCache` — stands in for
all of them.  The moment warps disagree, the batch *splits* into per-class
sub-batches (which keep running vectorized) and singleton classes *demote*
onto :class:`~repro.gpu.machine.SimtMachine`'s per-warp path, resuming from
the exact divergence point with their sliced register state, seeded
counters, and a cloned icache.

Bit-identicality contract
-------------------------
Return values, counters, and cycle totals equal the per-warp engine
*exactly* (``tests/test_engine_equivalence.py``), which is what lets the
persistent cell cache omit the engine from its keys and the fuzz oracle
treat engines as interchangeable.  The two float-sensitive points:

* per-warp cycle/stall accumulators are kept as ``(n,)`` float64 vectors
  updated elementwise in the *same step order* as the serial engine, with
  the same :func:`~repro.gpu.timing.charge` expression shape — IEEE doubles
  make the per-row sums bit-identical;
* the final reduction into the launch :class:`~repro.gpu.counters.Counters`
  runs in original warp order (block-major), because float addition is not
  associative.  Integer counters commute and aggregate directly.

Memory transaction counting stays per-warp: loads/stores loop over the
rows of the lattice calling :meth:`Memory.load`/:meth:`Memory.store` once
per warp access, so coalescing statistics and latency charges match the
serial engine per warp.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .counters import Counters, N_CATEGORIES
from .icache import InstructionCache
from .memory import Memory
from .timing import ACTIVITY_FRACTION, ISSUE_FIXED_FRACTION
from .machine import (WARP_SIZE, SimulationError, _CAT_CONTROL, _CAT_MISC,
                      _BR_COST, _CONDBR_COST, _PHI_COST, _RET_COST,
                      _K_VALUE, _K_VOID, _T_BR, _T_CONDBR, _T_RET,
                      _T_UNREACHABLE, _WarpContext, _geometry_vec)

# Per-row conditional-branch classification (bit 1: any lane taken,
# bit 0: any lane not taken).  A live mask row is never empty, so 0 cannot
# occur; 3 is intra-warp divergence, which every row shares or the batch
# splits.
_CLS_DIVERGENT = 3
_CLS_TAKEN = 2
_CLS_NOT_TAKEN = 1

#: Demotion hysteresis: under the jit engine a warp must have diverged
#: from its batch this many times before a singleton split hands it to
#: the per-warp engine.  A briefly-diverging warp (one boundary branch,
#: then reconvergence) instead continues as a one-row batch — identical
#: lattice accounting, so observably the same — whose full-mask rows
#: re-enter compiled regions (measured ~1.4x on ``bench-interp``'s
#: ``briefdiv``).  Plain batched execution keeps immediate demotion:
#: without regions a one-row lattice is *slower* than the per-warp
#: engine's scalar accounting, which is the old ~0.91x worst case.
#: Rows that keep splitting are genuinely chaotic and demote either way.
DEMOTE_HYSTERESIS = 2


class _BatchContext:
    """Register state for a batch of warps: ``(n, 32)`` value lattices.

    Mirrors :class:`~repro.gpu.machine._WarpContext` field-for-field so the
    decoded readers/writers/intrinsics work on either; ``rows`` maps each
    lattice row back to its original (block-major) warp index for the final
    ordered reduction.
    """

    __slots__ = ("values", "lane_ids", "block_ids", "ctaid", "ntid",
                 "nctaid", "block_dim", "grid_dim", "rows", "n", "allocas",
                 "ret_values")

    def __init__(self, lane_ids: np.ndarray, block_ids: np.ndarray,
                 block_dim: int, grid_dim: int, rows: np.ndarray) -> None:
        self.values: Dict[int, np.ndarray] = {}
        self.lane_ids = lane_ids                  # (n, 32) in-block tids.
        self.block_ids = block_ids                # (n,) owning block ids.
        self.ctaid = np.broadcast_to(block_ids[:, None], lane_ids.shape)
        self.ntid = _geometry_vec(block_dim)      # (32,) broadcasts up.
        self.nctaid = _geometry_vec(grid_dim)
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.rows = rows                          # (n,) original warp rows.
        self.n = lane_ids.shape[0]
        self.allocas: Dict[int, np.ndarray] = {}  # inst id -> (n,) bases.
        self.ret_values: Optional[np.ndarray] = None

    def alloca_addrs(self, memory: Memory, inst) -> np.ndarray:
        """Per-lane alloca base addresses, one buffer per warp row.

        Allocation *order* differs from the serial engine (which allocates
        lazily as each warp reaches the alloca), but every allocation is
        256-byte aligned, so 32-byte-segment transaction counts — the only
        address-derived quantity in the timing model — are unaffected.
        """
        bases = self.allocas.get(id(inst))
        if bases is None:
            dtype = repr(inst.element_type)
            count = inst.count * WARP_SIZE
            bases = np.empty(self.n, dtype=np.int64)
            for pos in range(self.n):
                bases[pos] = memory.alloc(
                    f"__alloca_{inst.name}_{id(self):x}_{int(self.rows[pos])}",
                    dtype, count)
            self.allocas[id(inst)] = bases
        elem = inst.element_type.size_bytes()
        stride = inst.count * elem
        return bases[:, None] + np.arange(WARP_SIZE, dtype=np.int64) * stride


class _BatchState:
    """One batch mid-execution: context, accumulators, schedule, icache."""

    __slots__ = ("ctx", "cycles", "memory_stall", "cat_cycles", "icache",
                 "groups", "splits")

    def __init__(self, ctx: _BatchContext, cycles: np.ndarray,
                 memory_stall: np.ndarray, cat_cycles: np.ndarray,
                 icache: InstructionCache, groups: List,
                 splits: Optional[np.ndarray] = None) -> None:
        self.ctx = ctx
        self.cycles = cycles              # (n,) float64 per-warp cycles.
        self.memory_stall = memory_stall  # (n,) float64 memory stalls.
        self.cat_cycles = cat_cycles      # (n, N_CATEGORIES) float64.
        self.icache = icache              # Representative for all rows.
        self.groups = groups              # [(epoch, db, (n, 32) mask)].
        #: Per-row count of batch splits survived (demotion hysteresis).
        self.splits = splits if splits is not None \
            else np.zeros(ctx.n, dtype=np.int64)


class _Results:
    """Per-original-warp outcome sinks, reduced in warp order at the end."""

    __slots__ = ("cycles", "memory_stall", "cat", "fetch", "ret")

    def __init__(self, n: int) -> None:
        self.cycles = [0.0] * n
        self.memory_stall = [0.0] * n
        self.cat = [[0.0] * N_CATEGORIES for _ in range(n)]
        self.fetch = [0] * n
        self.ret: List[Optional[np.ndarray]] = [None] * n


def _note_batch(total: Counters, category: str, n: int,
                active_sum: int) -> None:
    """``Counters.note_issue`` for ``n`` warps at once (ints commute)."""
    total.inst_executed += n
    total.thread_inst_executed += active_sum
    total.active_lane_sum += active_sum
    if category == "misc":
        total.inst_misc += active_sum
    elif category == "control":
        total.inst_control += active_sum
    elif category == "int":
        total.inst_int += active_sum
    elif category == "fp":
        total.inst_fp += active_sum
    elif category == "load":
        total.inst_load += active_sum
    elif category == "store":
        total.inst_store += active_sum


def _merge_ints(total: Counters, counters: Counters) -> None:
    """Fold a demoted warp's integer counters into the launch total.

    Float fields (cycles, stalls, category cycles) go through the ordered
    per-warp reduction instead, to match serial summation order.
    """
    for name in ("inst_executed", "thread_inst_executed", "active_lane_sum",
                 "inst_misc", "inst_control", "inst_int", "inst_fp",
                 "inst_load", "inst_store", "divergent_branches", "branches"):
        setattr(total, name, getattr(total, name) + getattr(counters, name))


def _issue_factor(actives: np.ndarray) -> np.ndarray:
    """Vectorized ``charge`` factor, same expression shape as the scalar."""
    return ISSUE_FIXED_FRACTION + ACTIVITY_FRACTION * actives / WARP_SIZE


def run_launch_batched(machine, func, entry, grid_dim: int, block_dim: int,
                       args: Sequence, total: Counters
                       ) -> Tuple[List[np.ndarray], int]:
    """Run one launch on the batched engine.

    Fills ``total``'s integer counters as it goes, then reduces the float
    accumulators in original warp order.  Returns ``(ret_all,
    fetch_stalls)`` exactly as the serial loop in ``launch()`` would.
    """
    warps = (block_dim + WARP_SIZE - 1) // WARP_SIZE
    n = grid_dim * warps
    arg_values = machine._bind_args(func, args)
    warp_lanes = (np.arange(warps, dtype=np.int64)[:, None] * WARP_SIZE
                  + np.arange(WARP_SIZE, dtype=np.int64))
    lane_ids = np.tile(warp_lanes, (grid_dim, 1))
    block_ids = np.repeat(np.arange(grid_dim, dtype=np.int64), warps)
    ctx = _BatchContext(lane_ids, block_ids, block_dim, grid_dim,
                        np.arange(n))
    icache = InstructionCache(machine._icache_capacity) \
        if machine._icache_capacity else InstructionCache()
    active = lane_ids < block_dim
    state = _BatchState(ctx, np.zeros(n), np.zeros(n),
                        np.zeros((n, N_CATEGORIES)), icache,
                        [(0, entry, active)])
    results = _Results(n)
    worklist = [state]
    while worklist:
        _run_state(machine, func, worklist.pop(), arg_values, total,
                   results, worklist)

    # Ordered float reduction: serial `total.merge(per_warp_counters)` adds
    # warp totals block-major; match that order bit-for-bit.
    ret_all: List[np.ndarray] = []
    fetch_stalls = 0
    for w in range(n):
        total.cycles += results.cycles[w]
        total.memory_stall_cycles += results.memory_stall[w]
        cat = results.cat[w]
        for i in range(N_CATEGORIES):
            total.cat_cycles[i] += cat[i]
        fetch_stalls += results.fetch[w]
        if results.ret[w] is not None:
            ret_all.append(results.ret[w])
    return ret_all, fetch_stalls


def _run_state(machine, func, state: _BatchState, arg_values, total,
               results: _Results, worklist: List[_BatchState]) -> None:
    """Drive one batch: the serial group scheduler, lifted to the lattice.

    Merge groups parked at the same block (ORing the (n, 32) masks), run
    the laggard (min ``(epoch, rpo)``), and repeat — identical pop order to
    what every row's serial scheduler would produce, by the batching
    invariant.  Splits/demotes and abandons the state on cross-warp
    divergence; records results when the schedule drains.
    """
    profile = machine.profile
    while state.groups:
        if float(state.cycles.max()) > machine.max_cycles:
            raise SimulationError(
                f"@{func.name}: exceeded {machine.max_cycles} cycles "
                "(runaway kernel?)")
        merged: Dict[int, Tuple] = {}
        for epoch, db, mask in state.groups:
            existing = merged.get(db.block_id)
            if existing is None:
                merged[db.block_id] = (epoch, db, mask)
            else:
                merged[db.block_id] = (max(existing[0], epoch), db,
                                       existing[2] | mask)
        groups = list(merged.values())
        groups.sort(key=lambda g: (g[0], g[1].rpo), reverse=True)
        epoch, db, mask = groups.pop()
        state.groups = groups
        if not mask.any():
            continue
        state.cycles += state.icache.access(db.block_id, db.size)
        if profile is None:
            pending = _exec_block(machine, func, db, epoch, mask, state,
                                  arg_values, total)
        else:
            # One sample per batched block execution: active lanes summed
            # over all rows against the whole lattice's lane capacity,
            # timestamped by the representative row's cycle count.
            start_ts = float(state.cycles[0])
            before = float(state.cycles.sum())
            pending = _exec_block(machine, func, db, epoch, mask, state,
                                  arg_values, total)
            profile.note_block(db.name, float(state.cycles.sum()) - before,
                               int(np.count_nonzero(mask)), mask.size,
                               start_ts)
        if pending is not None:
            if profile is not None:
                cls = pending[5]
                profile.note_split(db.name, len(set(cls.tolist())),
                                   int(cls.size))
            _split_state(machine, func, state, arg_values, pending, total,
                         results, worklist)
            return
    _finish_state(state, results)


def _exec_block(machine, func, db, epoch: int, mask: np.ndarray,
                state: _BatchState, arg_values, total: Counters):
    """Execute one decoded block for the whole batch.

    Returns ``None`` when the batch stays together, or the pending
    conditional-branch split ``(true_edge, false_edge, epoch, t_mask,
    f_mask, cls)`` when warps disagree.
    """
    ctx = state.ctx
    n = mask.shape[0]
    actives = np.count_nonzero(mask, axis=1)
    active_sum = int(actives.sum())
    factor = _issue_factor(actives)
    cycles = state.cycles
    cat = state.cat_cycles
    for category, cat_idx, cost, kind, run, brun, write, _meta in db.steps:
        _note_batch(total, category, n, active_sum)
        c = cost * factor
        cycles += c
        cat[:, cat_idx] += c
        if kind == _K_VALUE:
            write(ctx, run(ctx, arg_values), mask)
        elif kind != _K_VOID:
            brun(ctx, arg_values, mask, actives, state)

    term_kind = db.term_kind
    if term_kind == _T_BR:
        _note_batch(total, "control", n, active_sum)
        c = _BR_COST * factor
        cycles += c
        cat[:, _CAT_CONTROL] += c
        total.branches += n
        _follow_batch(db.term, epoch, mask, state, arg_values, total)
        return None
    if term_kind == _T_CONDBR:
        _note_batch(total, "control", n, active_sum)
        c = _CONDBR_COST * factor
        cycles += c
        cat[:, _CAT_CONTROL] += c
        total.branches += n
        read_cond, true_edge, false_edge = db.term
        cond = read_cond(ctx, arg_values).astype(bool)
        if cond.shape != mask.shape:
            cond = np.broadcast_to(cond, mask.shape)
        t_mask = mask & cond
        f_mask = mask & ~cond
        t_any = t_mask.any(axis=1)
        f_any = f_mask.any(axis=1)
        cls = (t_any.astype(np.int8) << 1) | f_any.astype(np.int8)
        first = int(cls[0])
        if bool((cls == first).all()):
            if first == _CLS_DIVERGENT:
                total.divergent_branches += n
                _follow_batch(true_edge, epoch, t_mask, state, arg_values,
                              total)
                _follow_batch(false_edge, epoch, f_mask, state, arg_values,
                              total)
            elif first == _CLS_TAKEN:
                _follow_batch(true_edge, epoch, t_mask, state, arg_values,
                              total)
            else:
                _follow_batch(false_edge, epoch, f_mask, state, arg_values,
                              total)
            return None
        return (true_edge, false_edge, epoch, t_mask, f_mask, cls)
    if term_kind == _T_RET:
        _note_batch(total, "control", n, active_sum)
        c = _RET_COST * factor
        cycles += c
        cat[:, _CAT_CONTROL] += c
        read_value, dtype = db.term
        if read_value is not None:
            value = read_value(ctx, arg_values)
            if value.shape != mask.shape:
                value = np.broadcast_to(value, mask.shape)
            if ctx.ret_values is None:
                ctx.ret_values = np.zeros(mask.shape, dtype=dtype)
            ctx.ret_values[mask] = value[mask]
        return None
    if term_kind == _T_UNREACHABLE:
        raise SimulationError(
            f"@{func.name}: executed unreachable in {db.name}")
    raise SimulationError(
        f"@{func.name}: block {db.name} has no terminator")


def _follow_batch(edge, epoch: int, mask: np.ndarray, state: _BatchState,
                  arg_values, total: Counters) -> None:
    """Batched ``_follow``: phi edge-moves over the lattice, then park."""
    moves = edge.moves
    ctx = state.ctx
    if moves and mask.any():
        actives = np.count_nonzero(mask, axis=1)
        active_sum = int(actives.sum())
        n = mask.shape[0]
        c = _PHI_COST * _issue_factor(actives)
        # Parallel-copy semantics: read all incomings before writing.
        staged = [(write, read(ctx, arg_values))
                  for write, read, _pid, _dt, _sid in moves]
        for write, value in staged:
            _note_batch(total, "misc", n, active_sum)  # One mov per phi.
            state.cycles += c
            state.cat_cycles[:, _CAT_MISC] += c
            write(ctx, value, mask)
    state.groups.append((epoch + edge.bump_epoch, edge.target, mask))


def _split_state(machine, func, state: _BatchState, arg_values, pending,
                 total: Counters, results: _Results,
                 worklist: List[_BatchState]) -> None:
    """Partition a diverged batch by branch class and keep going.

    Classes with >= 2 rows continue as sliced sub-batches (fancy-indexed
    copies of every lattice, cloned icache); singletons demote to the
    per-warp engine, which resumes from the divergence point.
    """
    true_edge, false_edge, epoch, t_mask, f_mask, cls = pending
    hysteresis = DEMOTE_HYSTERESIS if machine.engine == "jit" else 1
    for value in (_CLS_DIVERGENT, _CLS_TAKEN, _CLS_NOT_TAKEN):
        idx = np.flatnonzero(cls == value)
        if idx.size == 0:
            continue
        if (idx.size == 1
                and state.splits[int(idx[0])] + 1 >= hysteresis):
            _demote_row(machine, func, state, int(idx[0]), value, true_edge,
                        false_edge, epoch, t_mask, f_mask, arg_values,
                        total, results)
            continue
        sub = _slice_state(state, idx)
        if value == _CLS_DIVERGENT:
            total.divergent_branches += int(idx.size)
            _follow_batch(true_edge, epoch, t_mask[idx], sub, arg_values,
                          total)
            _follow_batch(false_edge, epoch, f_mask[idx], sub, arg_values,
                          total)
        elif value == _CLS_TAKEN:
            _follow_batch(true_edge, epoch, t_mask[idx], sub, arg_values,
                          total)
        else:
            _follow_batch(false_edge, epoch, f_mask[idx], sub, arg_values,
                          total)
        worklist.append(sub)


def _slice_state(state: _BatchState, idx: np.ndarray) -> _BatchState:
    """Sub-batch of ``state`` holding the rows in ``idx`` (copies)."""
    octx = state.ctx
    ctx = _BatchContext(octx.lane_ids[idx], octx.block_ids[idx],
                        octx.block_dim, octx.grid_dim, octx.rows[idx])
    ctx.values = {vid: arr[idx] for vid, arr in octx.values.items()}
    ctx.allocas = {iid: bases[idx] for iid, bases in octx.allocas.items()}
    if octx.ret_values is not None:
        ctx.ret_values = octx.ret_values[idx]
    return _BatchState(ctx, state.cycles[idx], state.memory_stall[idx],
                       state.cat_cycles[idx], state.icache.clone(),
                       [(e, db, m[idx]) for e, db, m in state.groups],
                       state.splits[idx] + 1)


def _demote_row(machine, func, state: _BatchState, row: int, cls: int,
                true_edge, false_edge, epoch: int, t_mask: np.ndarray,
                f_mask: np.ndarray, arg_values, total: Counters,
                results: _Results) -> None:
    """Hand one diverged warp to the per-warp engine, mid-flight.

    Rebuilds a ``_WarpContext`` from the warp's lattice row, seeds a
    ``Counters`` with its float accumulators so far, resolves the pending
    conditional branch with the serial ``_follow``, and resumes the serial
    scheduler loop on a cloned icache.
    """
    octx = state.ctx
    if machine.profile is not None:
        machine.profile.note_demotion(true_edge.target.name,
                                      int(octx.rows[row]))
    lane_ids = octx.lane_ids[row].copy()
    wctx = _WarpContext(lane_ids, int(octx.block_ids[row]), octx.block_dim,
                        octx.grid_dim, lane_ids < octx.block_dim)
    wctx.values = {vid: arr[row].copy()
                   for vid, arr in octx.values.items()}
    wctx.allocas = {iid: int(bases[row])
                    for iid, bases in octx.allocas.items()}
    if octx.ret_values is not None:
        wctx.ret_values = octx.ret_values[row].copy()
    counters = Counters()
    counters.cycles = float(state.cycles[row])
    counters.memory_stall_cycles = float(state.memory_stall[row])
    counters.cat_cycles = [float(x) for x in state.cat_cycles[row]]
    icache = state.icache.clone()
    groups = [(e, db, m[row].copy()) for e, db, m in state.groups]
    if cls == _CLS_DIVERGENT:
        counters.divergent_branches += 1
        machine._follow(true_edge, epoch, t_mask[row].copy(), wctx,
                        arg_values, counters, groups)
        machine._follow(false_edge, epoch, f_mask[row].copy(), wctx,
                        arg_values, counters, groups)
    elif cls == _CLS_TAKEN:
        machine._follow(true_edge, epoch, t_mask[row].copy(), wctx,
                        arg_values, counters, groups)
    else:
        machine._follow(false_edge, epoch, f_mask[row].copy(), wctx,
                        arg_values, counters, groups)
    machine._warp_loop(func, wctx, arg_values, groups, counters, icache)
    orig = int(octx.rows[row])
    results.cycles[orig] = counters.cycles
    results.memory_stall[orig] = counters.memory_stall_cycles
    results.cat[orig] = list(counters.cat_cycles)
    results.fetch[orig] = icache.stall_cycles
    results.ret[orig] = wctx.ret_values
    _merge_ints(total, counters)


def _finish_state(state: _BatchState, results: _Results) -> None:
    """Record a drained batch's per-row outcomes into the result sinks."""
    octx = state.ctx
    fetch = state.icache.stall_cycles
    ret = octx.ret_values
    for pos in range(octx.n):
        orig = int(octx.rows[pos])
        results.cycles[orig] = float(state.cycles[pos])
        results.memory_stall[orig] = float(state.memory_stall[pos])
        results.cat[orig] = [float(x) for x in state.cat_cycles[pos]]
        results.fetch[orig] = fetch
        results.ret[orig] = ret[pos].copy() if ret is not None else None
