"""Superblock selection and compilation for the trace-JIT engine.

A *superblock* here is a trace: a maximal straight-line sequence of
decoded basic blocks entered only at its head, extended across branches
whose direction is decided at compile time — unconditional branches
always, conditional branches along one *expected* side chosen from the
observability layer's execution profile (per-block hit counters) when
one is available and from static CFG shape otherwise.  The shapes the
paper's transforms produce — unrolled loop bodies, unmerged per-path
clones — are exactly long chains of such decided branches, so one trace
frequently covers a whole unrolled iteration.

Compilation flattens the trace once per ``(function, region)`` into a
list of :class:`RegionOp` records the jit engine executes without the
per-block scheduler: value steps become direct slot rebinds (a full-mask
masked write is a rebind), phi parallel-copies on internal edges become
staged copy-and-rebind sequences resolved at compile time, and all
integer instruction counters of an op fold into a handful of
precomputed increments.  Every conditional branch crossed becomes a
*guard*: at run time the expected side must be taken by every lane of
every warp (one lattice reduction); otherwise the op deoptimizes — the
scalar accumulators are flushed back to the per-row vectors, rebound
slots are normalized to owned ``(n, 32)`` arrays, and the branch is
resolved by the exact batched-interpreter logic (park sub-groups, or
report a pending cross-warp split).

Bit-identicality argument (the contract of the engine family): a region
executes only for a group whose mask is *full* — every lane of every
warp active.  Then the batched engine's per-issue charge factor
``ISSUE_FIXED_FRACTION + ACTIVITY_FRACTION * actives / 32`` is the same
constant for every row, so per-row float accumulation degenerates to one
scalar sequence that can be replayed on Python floats (same IEEE-754
doubles, same operation order) and broadcast back.  A full mask also
implies the group is the *only* live group of its batch (masks partition
lanes), so running the whole trace without re-entering the scheduler
reproduces the interpreter's merge/sort/pop order exactly.  Regions
containing memory steps keep the per-row vector accumulators (transaction
latencies differ per row) but still skip scheduling and masked writes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs import metrics as obs_metrics
from ..obs import session as obs_session
from .fuser import FuseContext, fusion_enabled
from .machine import (_BR_COST, _CONDBR_COST, _PHI_COST, _RET_COST,
                      _CAT_CONTROL, _K_LOAD, _K_STORE, _K_VALUE, _K_VOID,
                      _T_BR, _T_CONDBR, _T_MISSING, _T_RET, _T_UNREACHABLE,
                      WARP_SIZE, _DecodedBlock)
from .timing import ACTIVITY_FRACTION, ISSUE_FIXED_FRACTION

#: Per-issue charge factor at a full 32-lane mask — the same IEEE-754
#: expression shape as ``batched._issue_factor`` evaluates per row, so
#: scalar replay of ``cost * _FULL_FACTOR`` is bit-identical to the
#: lattice's elementwise ``cost * factor``.
_FULL_FACTOR = ISSUE_FIXED_FRACTION + ACTIVITY_FRACTION * WARP_SIZE / WARP_SIZE

#: Trace growth limits: blocks per region and guards (crossed conditional
#: branches) per region.
MAX_REGION_BLOCKS = 64
MAX_REGION_GUARDS = 16

#: Guard-failure feedback: once a guard has failed this many times *and*
#: failed more often than it passed, the trace is truncated at that
#: guard (``demote_guard``) so an intra-warp-divergent branch stops
#: paying region-entry + deopt on every traversal.  Pure scheduling
#: policy — region and interpreted execution are bit-identical, so the
#: threshold cannot affect any observable result.
GUARD_DEMOTE_FAILS = 8

# RegionOp terminator kinds.
R_NEXT = 0          # Unconditional internal edge to ops[next_i].
R_GUARD = 1         # Conditional: expected side internal, other side exits.
R_EXIT_BR = 2       # Unconditional edge leaving the region.
R_EXIT_CONDBR = 3   # Conditional branch resolved by the interpreter.
R_RET = 4
R_UNREACHABLE = 5
R_DIAMOND = 6       # Predicated if/else: both arms execute masked in-region.

#: Counters attribute per category ("special" has no per-category field).
_CAT_ATTR = {"misc": "inst_misc", "control": "inst_control",
             "int": "inst_int", "fp": "inst_fp",
             "load": "inst_load", "store": "inst_store"}

# Step-entry tags in RegionOp.steps (vector-mode execution list).
S_VALUE = 0
S_MEM = 1
S_VOID = 2
S_FUSED = 3


class RegionOp:
    """One trace block, compiled: fused steps + folded accounting."""

    __slots__ = ("block_id", "name", "size", "steps", "vsteps", "acct",
                 "term_c", "issues", "cat_counts", "branch_inc", "has_mem",
                 "kind", "next_i", "bump", "moves", "phi_c", "read_cond",
                 "expected", "true_edge", "false_edge", "exit_edge", "ret",
                 "load_ids", "fails", "passes", "arm_t", "arm_f",
                 "arms_t_first", "stored", "fuse_plan")

    def __init__(self, db: _DecodedBlock) -> None:
        self.block_id = db.block_id
        self.name = db.name
        self.size = db.size
        self.steps: Tuple = ()       # ((tag, charge, cat_idx, ...), ...)
        self.vsteps: Tuple = ()      # ((run, inst_id, dtype), ...)
        self.acct: Tuple = ()        # ((charge, cat_idx), ...) scalar replay
        self.term_c: Optional[float] = None
        self.issues = 0              # note_issue count (steps + terminator)
        self.cat_counts: Tuple = ()  # ((Counters attr, count), ...)
        self.branch_inc = 0
        self.has_mem = False
        self.kind = R_UNREACHABLE
        self.next_i = 0              # Internal successor op index.
        self.bump = 0                # Epoch bump of the internal edge.
        self.moves: Tuple = ()       # ((phi_id, reader, dtype, nocopy), ...)
        self.phi_c = 0.0             # Charge per phi move on that edge.
        self.read_cond = None
        self.expected = True
        self.true_edge = None
        self.false_edge = None
        self.exit_edge = None
        self.ret = None
        self.load_ids: Tuple = ()    # Slots mutated in place by loads.
        self.fails = 0               # Guard-failure feedback counters.
        self.passes = 0
        self.arm_t = None            # R_DIAMOND compiled arms (_compile_arm).
        self.arm_f = None
        self.arms_t_first = True     # True arm has the lower rpo.
        self.stored = ()             # (iid, dtype) slots this op rebinds.
        self.fuse_plan = ()          # ((lo, hi, liveouts), ...) fused spans.


class CompiledRegion:
    """A compiled superblock: ops, entry id, and exit bookkeeping."""

    __slots__ = ("head_id", "head_name", "ops", "scalar_ok", "norm",
                 "n_guards", "loopback", "self_loop", "entries",
                 "entry_fails", "fused_segments", "fused_steps",
                 "max_chain")

    def __init__(self, head_id: int, head_name: str, ops: List[RegionOp],
                 norm: Tuple, n_guards: int, loopback: bool) -> None:
        self.head_id = head_id
        self.head_name = head_name
        self.ops = tuple(ops)
        #: Scalar accumulator replay is valid only for memory-free regions
        #: without diamonds (arms run masked: per-row accounting).
        self.scalar_ok = not any(op.has_mem or op.kind == R_DIAMOND
                                 for op in ops)
        #: Slots rebound by value steps or phi binds; normalized to owned
        #: (n, 32) arrays at every region exit (``jit._normalize_slots``).
        self.norm = norm
        self.n_guards = n_guards
        self.loopback = loopback
        #: A single-block region whose guard loops straight back to
        #: itself — the hot-loop shape the jit's specialized scalar
        #: executor handles with all per-iteration bookkeeping hoisted.
        op0 = self.ops[0] if len(self.ops) == 1 else None
        self.self_loop = op0 if (op0 is not None and op0.kind == R_GUARD
                                 and op0.next_i == 0 and loopback) else None
        #: Entry feedback: full-mask entries vs. partial-mask dispatches.
        self.entries = 0
        self.entry_fails = 0
        #: Fusion telemetry (see gpu/fuser.py), folded into remarks and
        #: the region-cache session counters.
        self.fused_segments = sum(len(op.fuse_plan) for op in self.ops)
        self.fused_steps = sum(hi - lo for op in self.ops
                               for lo, hi, _live in op.fuse_plan)
        self.max_chain = max((hi - lo for op in self.ops
                              for lo, hi, _live in op.fuse_plan), default=0)


class RegionMap(dict):
    """``{head block id -> CompiledRegion}`` plus persistence bookkeeping.

    ``key`` is the region-cache content key the map was loaded from or
    stored under (None when the persistent cache is bypassed); ``dirty``
    flips when guard feedback reshapes the map (truncation / drop) so
    the improved plan can be re-persisted after the launch.
    """

    __slots__ = ("fuse", "key", "dirty", "func_name")

    def __init__(self, fuse: bool = False, func_name: str = "") -> None:
        super().__init__()
        self.fuse = fuse
        self.key: Optional[str] = None
        self.dirty = False
        self.func_name = func_name


def _mark_dirty(regions) -> None:
    if isinstance(regions, RegionMap):
        regions.dirty = True


class PlanMismatch(Exception):
    """A persisted region plan no longer matches the decoded function."""


def compile_regions(machine, func, entry: Optional[_DecodedBlock] = None,
                    profile=None, fuse: Optional[bool] = None) -> RegionMap:
    """Select and compile all superblocks of one decoded function.

    Heads are seeded from the function entry and, transitively, from
    every branch target observed while tracing — i.e. every block the
    dispatcher could ever park a group at.  Emits one ``analysis``
    remark per compiled or rejected region through the obs layer.

    ``fuse`` overrides the ``REPRO_JIT_FUSE`` gate (None: follow it);
    the machine and function are needed so the expression fuser can
    hoist global addresses and compute function-wide use counts.
    """
    if entry is None:
        entry = machine._decode(func)
    if profile is None:
        profile = machine.profile
    if fuse is None:
        fuse = fusion_enabled()
    func_name = func.name
    fuse_ctx = FuseContext(machine, func) if fuse else None
    hits = profile.block_hits if profile is not None else {}
    regions = RegionMap(fuse=bool(fuse), func_name=func_name)
    done = set()
    work = [entry]
    while work:
        head = work.pop()
        if head.block_id in done:
            continue
        done.add(head.block_id)
        region, succs, reason = _build_region(head, hits, fuse_ctx)
        for tgt in succs:
            if tgt.block_id not in done:
                work.append(tgt)
        if region is None:
            obs_metrics.inc("repro_jit_regions_total", result="rejected")
            obs_session.remark(
                "analysis", "jit", func_name,
                f"region at {head.name} rejected: {reason}",
                head=head.name, reason=reason)
            continue
        regions[head.block_id] = region
        obs_metrics.inc("repro_jit_regions_total", result="compiled")
        if region.fused_segments:
            obs_metrics.inc("repro_jit_fused_segments_total",
                            region.fused_segments)
            obs_metrics.inc("repro_jit_fused_steps_total",
                            region.fused_steps)
        obs_session.remark(
            "analysis", "jit", func_name,
            f"compiled superblock at {head.name}: "
            f"{len(region.ops)} blocks, {region.n_guards} guards",
            head=head.name, blocks=len(region.ops),
            guards=region.n_guards,
            steps=sum(len(op.steps) for op in region.ops),
            diamonds=sum(1 for op in region.ops if op.kind == R_DIAMOND),
            mode="scalar" if region.scalar_ok else "vector",
            loopback=region.loopback,
            fused=region.fused_steps,
            fused_segments=region.fused_segments)
    return regions


def _pick_side(db: _DecodedBlock, true_edge, false_edge, head_id: int,
               hits: Dict[str, int]) -> bool:
    """Expected direction of a conditional branch inside a trace.

    Priority: a side closing the loop back to the trace head (the hot
    back edge), then the side whose target the execution profile has
    seen more often, then the static forward (non-back) edge, then the
    true side.
    """
    if true_edge.target.block_id == head_id:
        return True
    if false_edge.target.block_id == head_id:
        return False
    ht = hits.get(true_edge.target.name)
    hf = hits.get(false_edge.target.name)
    if ht is not None or hf is not None:
        return (ht or 0) >= (hf or 0)
    t_back = true_edge.target.rpo <= db.rpo
    f_back = false_edge.target.rpo <= db.rpo
    if t_back != f_back:
        return f_back  # Prefer the forward edge.
    return True


def _build_region(head: _DecodedBlock, hits: Dict[str, int],
                  fuse_ctx: Optional[FuseContext] = None):
    """Grow one trace from ``head``; returns (region|None, succs, reason).

    ``succs`` collects every branch-target block encountered — the seed
    set for further heads — whether or not this region compiles.
    """
    if head.term_kind == _T_MISSING:
        return None, [], "no terminator"
    decisions: List[Tuple[_DecodedBlock, Tuple]] = []
    seen = {head.block_id}
    succs: List[_DecodedBlock] = []
    guards = 0
    loopback = False
    cur = head
    while True:
        tk = cur.term_kind
        if tk == _T_RET:
            decisions.append((cur, (R_RET, None)))
            break
        if tk == _T_UNREACHABLE:
            decisions.append((cur, (R_UNREACHABLE, None)))
            break
        if tk == _T_BR:
            edge = cur.term
            tgt = edge.target
            succs.append(tgt)
            if tgt.block_id == head.block_id:
                decisions.append((cur, (R_NEXT, edge, 0)))
                loopback = True
                break
            if (tgt.block_id in seen
                    or len(decisions) + 1 >= MAX_REGION_BLOCKS
                    or tgt.term_kind == _T_MISSING):
                decisions.append((cur, (R_EXIT_BR, edge)))
                break
            decisions.append((cur, (R_NEXT, edge, len(decisions) + 1)))
            seen.add(tgt.block_id)
            cur = tgt
            continue
        # Conditional branch.
        read_cond, t_edge, f_edge = cur.term
        succs.append(t_edge.target)
        succs.append(f_edge.target)
        if guards >= MAX_REGION_GUARDS:
            decisions.append((cur, (R_EXIT_CONDBR, read_cond, t_edge,
                                    f_edge)))
            break
        # An if/else diamond is folded into the trace whole: both arms
        # execute masked in-region (paper-style predication), so an
        # intra-warp-divergent branch needs no deopt at all.  Loopback
        # guards keep priority — a back edge to the head beats a diamond.
        if (t_edge.target.block_id != head.block_id
                and f_edge.target.block_id != head.block_id):
            dia = _try_diamond(t_edge, f_edge, seen)
            if dia is not None:
                ta, fa, join = dia
                if join.block_id == head.block_id:
                    decisions.append((cur, (R_DIAMOND, read_cond, t_edge,
                                            f_edge, ta, fa, 0)))
                    guards += 1
                    seen.update((ta.block_id, fa.block_id))
                    loopback = True
                    break
                if (join.block_id not in seen
                        and len(decisions) + 3 < MAX_REGION_BLOCKS
                        and join.term_kind != _T_MISSING):
                    decisions.append((cur, (R_DIAMOND, read_cond, t_edge,
                                            f_edge, ta, fa,
                                            len(decisions) + 1)))
                    guards += 1
                    seen.update((ta.block_id, fa.block_id, join.block_id))
                    succs.append(join)
                    cur = join
                    continue
        expected = _pick_side(cur, t_edge, f_edge, head.block_id, hits)
        chosen = t_edge if expected else f_edge
        tgt = chosen.target
        if tgt.block_id == head.block_id:
            decisions.append((cur, (R_GUARD, read_cond, expected, t_edge,
                                    f_edge, chosen, 0)))
            guards += 1
            loopback = True
            break
        if (tgt.block_id in seen
                or len(decisions) + 1 >= MAX_REGION_BLOCKS
                or tgt.term_kind == _T_MISSING):
            decisions.append((cur, (R_EXIT_CONDBR, read_cond, t_edge,
                                    f_edge)))
            break
        decisions.append((cur, (R_GUARD, read_cond, expected, t_edge,
                                f_edge, chosen, len(decisions) + 1)))
        guards += 1
        seen.add(tgt.block_id)
        cur = tgt

    n_steps = sum(len(db.steps) for db, _ in decisions)
    if len(decisions) == 1 and not loopback and n_steps == 0:
        # A bare jump/return stub: the interpreter's single dispatch is
        # already minimal, and compiling it would only add indirection.
        return None, succs, "trivial: single empty block, no loop"
    ops = [_compile_op(db, decision, fuse_ctx) for db, decision in decisions]
    _finalize_moves(ops)
    return (CompiledRegion(head.block_id, head.name, ops, _norm_of(ops),
                           guards, loopback),
            succs, "")


def _try_diamond(t_edge, f_edge, seen):
    """Detect an if/else diamond rooted at a conditional branch.

    Shape: two distinct arm blocks, each straight-line with an
    unconditional branch to the same join block, entered with no phi
    moves and no epoch bump (forward edges).  Under those conditions
    executing both arms masked inside the region, true-path lanes then
    false-path lanes, replays the interpreter's park/pop order exactly.
    Returns ``(true_arm, false_arm, join)`` or ``None``.
    """
    ta, fa = t_edge.target, f_edge.target
    if (ta.block_id == fa.block_id
            or ta.block_id in seen or fa.block_id in seen
            or t_edge.bump_epoch or f_edge.bump_epoch
            or t_edge.moves or f_edge.moves
            or ta.term_kind != _T_BR or fa.term_kind != _T_BR):
        return None
    t_join = ta.term
    f_join = fa.term
    if t_join.target is not f_join.target:
        return None
    join = t_join.target
    if join.block_id in (ta.block_id, fa.block_id):
        return None
    return ta, fa, join


def _finalize_moves(ops: List[RegionOp]) -> None:
    """Resolve each phi move's copy-vs-alias decision.

    A phi bind may alias its source array (skip ``broadcast_to/astype``)
    only when the source slot is *rebound, never mutated* for as long as
    the alias can live: a value-step result of this region or another
    phi bound by this region — and not a load destination, since loads
    masked-write their slot in place.  Everything else (constants,
    arguments, slots owned by the interpreter, load results) is copied
    at bind time, exactly as the interpreter's masked phi write would.
    Exit-time normalization breaks any surviving alias between two
    region slots before the interpreter regains masked-write access.
    """
    safe = {iid for op in ops for iid, _dt in op.stored}
    safe |= {pid for op in ops for pid, _read, _dt, _sid in op.moves}
    safe -= {iid for op in ops for iid in op.load_ids}
    for op in ops:
        if op.kind == R_DIAMOND:
            # Diamond join phis are masked-written in place each
            # traversal — aliasing them would corrupt the alias.
            for arm in (op.arm_t, op.arm_f):
                safe -= {pid for _w, _read, pid, _dt, _sid in arm[4].moves}
    for op in ops:
        if op.moves:
            op.moves = tuple((pid, read, dt, sid is not None and sid in safe)
                             for pid, read, dt, sid in op.moves)


def _norm_of(ops) -> Tuple:
    """Slots a region can rebind: value steps plus phi destinations."""
    return tuple(dict.fromkeys(  # Preserve order, drop duplicates.
        [(iid, dt) for op in ops for iid, dt in op.stored]
        + [(pid, dt) for op in ops for pid, _read, dt, _nc in op.moves]))


def _compile_op(db: _DecodedBlock, decision: Tuple,
                fuse_ctx: Optional[FuseContext] = None) -> RegionOp:
    """Flatten one decoded block (plus its trace decision) into a RegionOp.

    With a :class:`FuseContext`, maximal memory-free chains of fusible
    value steps collapse into single ``S_FUSED`` entries: one generated
    closure computes the whole chain, and the per-step cycle charges —
    folded here in original step order — are replayed by the executor
    before the call, so ``Counters`` are bit-identical to the unfused
    path (charge accumulation is independent of value computation).
    """
    op = RegionOp(db)
    steps: List[Tuple] = []
    vsteps: List[Tuple] = []
    acct: List[Tuple[float, int]] = []
    cats: Dict[str, int] = {}
    load_ids: List[int] = []
    stored: List[Tuple[int, object]] = []
    fuse_plan: List[Tuple[int, int, Tuple[int, ...]]] = []
    issues = 0
    segments = fuse_ctx.segments_for(db) if fuse_ctx is not None else ()
    seg_iter = iter(segments)
    seg = next(seg_iter, None)
    db_steps = db.steps
    i = 0
    while i < len(db_steps):
        if seg is not None and i == seg[0]:
            lo, hi, live = seg
            charges: List[Tuple[float, int]] = []
            for k in range(lo, hi):
                category, cat_idx, cost = db_steps[k][0], db_steps[k][1], \
                    db_steps[k][2]
                c = cost * _FULL_FACTOR
                acct.append((c, cat_idx))
                issues += 1
                cats[category] = cats.get(category, 0) + 1
                charges.append((c, cat_idx))
            fn, names, seg_stored = fuse_ctx.compile_segment(db, lo, hi,
                                                             live)
            steps.append((S_FUSED, tuple(charges), fn, names))
            # Scalar executors key on iid=None; the dtype slot carries
            # the diagnostics name map instead.
            vsteps.append((fn, None, names))
            stored.extend(seg_stored)
            fuse_plan.append((lo, hi, tuple(live)))
            seg = next(seg_iter, None)
            i = hi
            continue
        category, cat_idx, cost, kind, run, brun, _write, meta = db_steps[i]
        i += 1
        c = cost * _FULL_FACTOR
        acct.append((c, cat_idx))
        issues += 1
        cats[category] = cats.get(category, 0) + 1
        if kind == _K_VALUE:
            iid, dt = meta[0], meta[1]
            steps.append((S_VALUE, c, cat_idx, run, iid, dt))
            vsteps.append((run, iid, dt))
            stored.append((iid, dt))
        elif kind in (_K_LOAD, _K_STORE):
            op.has_mem = True
            steps.append((S_MEM, c, cat_idx, brun))
            if kind == _K_LOAD:
                load_ids.append(meta[0])
        else:  # _K_VOID
            steps.append((S_VOID, c, cat_idx))

    kind0 = decision[0]
    op.kind = kind0
    if kind0 in (R_NEXT, R_EXIT_BR):
        op.term_c = _BR_COST * _FULL_FACTOR
        op.branch_inc = 1
    elif kind0 in (R_GUARD, R_EXIT_CONDBR, R_DIAMOND):
        op.term_c = _CONDBR_COST * _FULL_FACTOR
        op.branch_inc = 1
    elif kind0 == R_RET:
        op.term_c = _RET_COST * _FULL_FACTOR
        op.ret = db.term
    if op.term_c is not None:
        acct.append((op.term_c, _CAT_CONTROL))
        issues += 1
        cats["control"] = cats.get("control", 0) + 1

    if kind0 == R_NEXT:
        edge = decision[1]
        op.next_i = decision[2]
        op.bump = edge.bump_epoch
        op.moves = tuple((pid, read, dt, sid)
                         for _write, read, pid, dt, sid in edge.moves)
    elif kind0 == R_EXIT_BR:
        op.exit_edge = decision[1]
    elif kind0 == R_GUARD:
        _k, read_cond, expected, t_edge, f_edge, chosen, next_i = decision
        op.read_cond = read_cond
        op.expected = expected
        op.true_edge = t_edge
        op.false_edge = f_edge
        op.next_i = next_i
        op.bump = chosen.bump_epoch
        op.moves = tuple((pid, read, dt, sid)
                         for _write, read, pid, dt, sid in chosen.moves)
    elif kind0 == R_EXIT_CONDBR:
        _k, read_cond, t_edge, f_edge = decision
        op.read_cond = read_cond
        op.true_edge = t_edge
        op.false_edge = f_edge
    elif kind0 == R_DIAMOND:
        _k, read_cond, t_edge, f_edge, ta, fa, next_i = decision
        op.read_cond = read_cond
        op.true_edge = t_edge
        op.false_edge = f_edge
        op.next_i = next_i
        op.arm_t = _compile_arm(ta)
        op.arm_f = _compile_arm(fa)
        op.arms_t_first = ta.rpo <= fa.rpo

    op.phi_c = _PHI_COST * _FULL_FACTOR
    op.steps = tuple(steps)
    op.vsteps = tuple(vsteps)
    op.acct = tuple(acct)
    op.load_ids = tuple(load_ids)
    op.stored = tuple(stored)
    op.fuse_plan = tuple(fuse_plan)
    op.issues = issues
    op.cat_counts = tuple(
        (_CAT_ATTR[cat], count) for cat, count in cats.items()
        if cat in _CAT_ATTR)
    return op


def _compile_arm(db: _DecodedBlock) -> Tuple:
    """Pack one diamond arm for masked in-region execution.

    Arms run under partial masks, so they keep the raw decoded steps
    (masked writers included) and replay the interpreter's per-pop
    sequence exactly; only the integer instruction counters — which
    commute — are folded ahead of time.  Layout:
    ``(block_id, size, name, steps, join_edge, cat_counts, issues)``.
    """
    cats: Dict[str, int] = {}
    for category, _ci, _cost, _kind, _run, _brun, _write, _meta in db.steps:
        cats[category] = cats.get(category, 0) + 1
    cats["control"] = cats.get("control", 0) + 1  # The BR terminator.
    cat_counts = tuple(
        (_CAT_ATTR[cat], count) for cat, count in cats.items()
        if cat in _CAT_ATTR)
    return (db.block_id, db.size, db.name, db.steps, db.term,
            cat_counts, len(db.steps) + 1)


def demote_guard(regions: Dict[int, "CompiledRegion"],
                 region: CompiledRegion, op_index: int,
                 func_name: str) -> None:
    """Truncate a region at a guard that keeps failing.

    The guard op becomes a condbr side exit (identical charges — only
    the resolution strategy changes), everything past it is dropped, and
    the replacement is installed in the dispatch map.  If nothing
    executable remains before the exit the region is dropped entirely
    and the block returns to plain interpreted dispatch.
    """
    old = region.ops[op_index]
    fails = old.fails
    _mark_dirty(regions)
    if op_index == 0 and not old.steps:
        del regions[region.head_id]
        obs_metrics.inc("repro_jit_regions_total", result="dropped")
        obs_session.remark(
            "analysis", "jit", func_name,
            f"region at {region.head_name} dropped: guard in {old.name} "
            f"failed {fails}x (intra-warp divergent branch)",
            head=region.head_name, guard=old.name, fails=fails,
            action="dropped")
        return
    exit_op = RegionOp.__new__(RegionOp)
    for slot in RegionOp.__slots__:
        setattr(exit_op, slot, getattr(old, slot))
    exit_op.kind = R_EXIT_CONDBR
    exit_op.moves = ()
    exit_op.next_i = 0
    exit_op.bump = 0
    exit_op.fails = 0
    exit_op.passes = 0
    ops = list(region.ops[:op_index]) + [exit_op]
    guards = sum(1 for op in ops if op.kind == R_GUARD)
    regions[region.head_id] = CompiledRegion(
        region.head_id, region.head_name, ops, _norm_of(ops), guards,
        loopback=False)
    obs_metrics.inc("repro_jit_regions_total", result="truncated")
    obs_session.remark(
        "analysis", "jit", func_name,
        f"region at {region.head_name} truncated to {len(ops)} blocks: "
        f"guard in {old.name} failed {fails}x (intra-warp divergent "
        "branch)",
        head=region.head_name, guard=old.name, fails=fails,
        blocks=len(ops), action="truncated")


def drop_cold_region(regions: Dict[int, CompiledRegion],
                     region: CompiledRegion, func_name: str) -> None:
    """Drop a region the dispatcher keeps reaching without a full mask.

    Such a region can never fire (regions require every lane active), so
    the per-dispatch full-mask test on it is pure overhead — e.g. the
    divergent halves of an if/else, always entered under partial masks.
    Scheduling policy only; execution is unaffected.
    """
    _mark_dirty(regions)
    del regions[region.head_id]
    obs_metrics.inc("repro_jit_regions_total", result="dropped")
    obs_session.remark(
        "analysis", "jit", func_name,
        f"region at {region.head_name} dropped: "
        f"{region.entry_fails} dispatches without a full mask",
        head=region.head_name, entry_fails=region.entry_fails,
        action="dropped")


# ---------------------------------------------------------------------------
# Region-plan persistence (see gpu/region_cache.py)
# ---------------------------------------------------------------------------
# Compiled regions close over live object ids, so what persists across
# processes is the *plan*: which blocks each trace covers, every branch
# decision, and the fused-segment spans.  Replaying a plan against a
# freshly decoded function skips selection and chain analysis; every
# structural fact is re-validated against the decoded CFG and any
# mismatch raises PlanMismatch, which the cache treats as a miss —
# a stale plan can only ever cost a fresh compile, never correctness.

def extract_plan(regions: RegionMap) -> Dict[str, object]:
    """Serialize a region map into a JSON-able, order-deterministic plan."""
    plan_regions = []
    for head_id in sorted(regions, key=lambda h: regions[h].head_name):
        region = regions[head_id]
        ops = []
        for op in region.ops:
            entry: Dict[str, object] = {"name": op.name, "kind": op.kind}
            if op.kind in (R_NEXT, R_GUARD, R_DIAMOND):
                entry["next"] = op.next_i
            if op.kind == R_GUARD:
                entry["expected"] = bool(op.expected)
            if op.kind == R_DIAMOND:
                entry["arm_t"] = op.arm_t[2]
                entry["arm_f"] = op.arm_f[2]
            if op.fuse_plan:
                entry["fuse"] = [[lo, hi, list(live)]
                                 for lo, hi, live in op.fuse_plan]
            ops.append(entry)
        plan_regions.append({"head": region.head_name,
                             "loopback": bool(region.loopback),
                             "guards": region.n_guards,
                             "ops": ops})
    return {"regions": plan_regions}


def _block_map(entry: _DecodedBlock) -> Dict[str, _DecodedBlock]:
    """Name -> decoded block over everything reachable from ``entry``.

    Ambiguously named blocks are removed — a plan referencing one fails
    validation and falls back to a fresh compile.
    """
    blocks: Dict[str, _DecodedBlock] = {}
    ambiguous = set()
    stack = [entry]
    seen = set()
    while stack:
        db = stack.pop()
        if db.block_id in seen:
            continue
        seen.add(db.block_id)
        if db.name in blocks and blocks[db.name] is not db:
            ambiguous.add(db.name)
        else:
            blocks[db.name] = db
        tk = db.term_kind
        if tk == _T_BR:
            stack.append(db.term.target)
        elif tk == _T_CONDBR:
            stack.append(db.term[1].target)
            stack.append(db.term[2].target)
    for name in ambiguous:
        blocks.pop(name, None)
    return blocks


def replay_plan(machine, func, entry: _DecodedBlock,
                plan: Dict[str, object], fuse: bool) -> RegionMap:
    """Rebuild a RegionMap from a persisted plan; raises PlanMismatch."""
    try:
        plan_regions = plan["regions"]
    except (TypeError, KeyError):
        raise PlanMismatch("malformed plan")
    blocks = _block_map(entry)
    fuse_ctx = None
    if fuse:
        segs: Dict[str, Tuple] = {}
        for rp in plan_regions:
            for opp in rp.get("ops", ()):
                if "fuse" in opp:
                    segs[opp["name"]] = tuple(
                        (int(lo), int(hi), tuple(int(x) for x in live))
                        for lo, hi, live in opp["fuse"])
        fuse_ctx = FuseContext(machine, func, plan=segs)
    regions = RegionMap(fuse=bool(fuse), func_name=func.name)
    for rp in plan_regions:
        head = blocks.get(rp.get("head"))
        if head is None:
            raise PlanMismatch(f"unknown head {rp.get('head')!r}")
        region = _replay_region(head, rp, fuse_ctx)
        regions[head.block_id] = region
    return regions


def _replay_region(head: _DecodedBlock, rp: Dict[str, object],
                   fuse_ctx: Optional[FuseContext]) -> CompiledRegion:
    """Re-derive one region's decision list from its plan entry."""
    ops_plan = rp.get("ops") or []
    if not ops_plan:
        raise PlanMismatch("empty op list")
    decisions: List[Tuple[_DecodedBlock, Tuple]] = []
    seen = {head.block_id}
    cur: Optional[_DecodedBlock] = head
    last = len(ops_plan) - 1
    for i, opp in enumerate(ops_plan):
        if cur is None or cur.name != opp.get("name"):
            raise PlanMismatch(f"block mismatch at op {i}")
        kind = opp.get("kind")
        tk = cur.term_kind
        nxt: Optional[Tuple[int, _DecodedBlock]] = None
        if kind == R_RET:
            if tk != _T_RET:
                raise PlanMismatch("terminator changed (ret)")
            decisions.append((cur, (R_RET, None)))
        elif kind == R_UNREACHABLE:
            if tk != _T_UNREACHABLE:
                raise PlanMismatch("terminator changed (unreachable)")
            decisions.append((cur, (R_UNREACHABLE, None)))
        elif kind in (R_NEXT, R_EXIT_BR):
            if tk != _T_BR:
                raise PlanMismatch("terminator changed (br)")
            edge = cur.term
            if kind == R_EXIT_BR:
                decisions.append((cur, (R_EXIT_BR, edge)))
            else:
                ni = int(opp.get("next", 0))
                decisions.append((cur, (R_NEXT, edge, ni)))
                nxt = (ni, edge.target)
        elif kind in (R_GUARD, R_EXIT_CONDBR, R_DIAMOND):
            if tk != _T_CONDBR:
                raise PlanMismatch("terminator changed (condbr)")
            read_cond, t_edge, f_edge = cur.term
            if kind == R_EXIT_CONDBR:
                decisions.append((cur, (R_EXIT_CONDBR, read_cond, t_edge,
                                        f_edge)))
            elif kind == R_GUARD:
                expected = bool(opp.get("expected", True))
                chosen = t_edge if expected else f_edge
                ni = int(opp.get("next", 0))
                decisions.append((cur, (R_GUARD, read_cond, expected,
                                        t_edge, f_edge, chosen, ni)))
                nxt = (ni, chosen.target)
            else:
                dia = _try_diamond(t_edge, f_edge, seen)
                if dia is None:
                    raise PlanMismatch("diamond shape changed")
                ta, fa, join = dia
                if (ta.name != opp.get("arm_t")
                        or fa.name != opp.get("arm_f")):
                    raise PlanMismatch("diamond arms changed")
                ni = int(opp.get("next", 0))
                decisions.append((cur, (R_DIAMOND, read_cond, t_edge,
                                        f_edge, ta, fa, ni)))
                seen.update((ta.block_id, fa.block_id))
                nxt = (ni, join)
        else:
            raise PlanMismatch(f"unknown op kind {kind!r}")
        if nxt is None:
            if i != last:
                raise PlanMismatch("terminal op mid-plan")
            cur = None
        else:
            ni, tgt = nxt
            if ni == 0:
                if tgt.block_id != head.block_id or i != last:
                    raise PlanMismatch("bad loopback edge")
                cur = None
            else:
                if ni != i + 1 or i == last:
                    raise PlanMismatch("bad internal edge")
                seen.add(tgt.block_id)
                cur = tgt
    ops = [_compile_op(db, decision, fuse_ctx) for db, decision in decisions]
    _finalize_moves(ops)
    return CompiledRegion(head.block_id, head.name, ops, _norm_of(ops),
                          int(rp.get("guards", 0)), bool(rp.get("loopback")))
