"""Cross-launch persistence of compiled-region plans for the JIT tier.

The trace-JIT (:mod:`repro.gpu.jit`) selects superblock regions and runs
the expression fuser (:mod:`repro.gpu.fuser`) over every function it
executes — work that is pure in the function's IR, the timing model, and
the fusion flag, yet was redone on every launch: each sweep cell, tuner
candidate, and serve request paid selection and chain analysis again.
This module memoizes that work across launches *and processes*:

* **Keying** is content-addressed: SHA-256 over the printed function IR
  × :data:`repro.gpu.timing.TIMING_MODEL_VERSION` × the fusion flag ×
  :data:`REGION_SCHEMA_VERSION`.  Editing a kernel, bumping the timing
  model, or toggling ``REPRO_JIT_FUSE`` each orphan old entries
  structurally — there is no time-based invalidation.
* **What is stored** is the *plan* (:func:`repro.gpu.regions.extract_plan`),
  not compiled closures: region shapes, guard expectations, and fusion
  segment boundaries.  Replay re-validates the plan against the freshly
  decoded CFG and re-generates closures from it, so a stale or corrupt
  plan can only ever cost a recompilation, never correctness.
* **Guard feedback** (truncations / cold-region drops discovered while
  running) marks the map dirty; :func:`flush_region_feedback` re-persists
  the improved plan so the *next* process starts with the truncated
  shape instead of rediscovering the deopt storm.
* **Disk discipline** is inherited from the cell cache
  (:class:`repro.harness.cache.ShardedLRUStore`): 256 two-hex shards
  under ``results/.regioncache``, atomic temp-file+rename puts,
  monotonic-mtime LRU eviction under ``REPRO_REGION_CACHE_MAX_BYTES``,
  and orphan-temp sweeping.

The persistent cache steps aside (fresh selection, exactly the pre-cache
behaviour) when a launch carries an execution profile — profile-seeded
selection must see the profile, not a profile-free cached plan — or when
``REPRO_TRACE`` observability is enabled, so remark streams stay
byte-identical across cold and warm runs and ``-j1``/``-jN``.
``REPRO_REGION_CACHE=0`` disables it outright.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

from ..harness.cache import ShardedLRUStore
from ..ir.printer import print_function
from ..obs import session as obs_session
from .fuser import fusion_enabled
from .regions import RegionMap, compile_regions, extract_plan, replay_plan
from .timing import TIMING_MODEL_VERSION

#: Bump when the persisted plan layout changes; mismatched entries are
#: discarded and recomputed.
REGION_SCHEMA_VERSION = 1

#: Set to ``0`` to disable the persistent region cache entirely.
REGION_CACHE_ENV = "REPRO_REGION_CACHE"

#: Environment override for the region-cache directory.
REGION_CACHE_DIR_ENV = "REPRO_REGION_CACHE_DIR"

#: LRU total-bytes cap for the region cache (absent/invalid/<= 0 means
#: unbounded).
REGION_MAX_BYTES_ENV = "REPRO_REGION_CACHE_MAX_BYTES"

#: In-process memo bound: plans are tiny, but a pathological session
#: feeding thousands of distinct functions through one process (fuzzing)
#: should not grow without bound.
_MEMO_LIMIT = 512


def region_cache_enabled() -> bool:
    return os.environ.get(REGION_CACHE_ENV, "1") != "0"


def default_region_cache_dir() -> Path:
    """``results/.regioncache`` at the repository root (env-overridable)."""
    env = os.environ.get(REGION_CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "results" / ".regioncache"


def default_region_max_bytes() -> Optional[int]:
    env = os.environ.get(REGION_MAX_BYTES_ENV)
    if not env:
        return None
    try:
        cap = int(env)
    except ValueError:
        return None
    return cap if cap > 0 else None


def region_key(func, fuse: bool) -> str:
    """Content key: printed IR × timing model × fusion flag × schema."""
    payload = "\n".join([
        f"schema={REGION_SCHEMA_VERSION}",
        f"timing={TIMING_MODEL_VERSION}",
        f"fuse={int(bool(fuse))}",
        print_function(func),
    ])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class RegionCache(ShardedLRUStore):
    """In-process + on-disk store of serialized region plans."""

    metrics_label = "region"

    def __init__(self, root: Optional[Path] = None,
                 max_bytes: Optional[int] = None) -> None:
        super().__init__(
            root if root is not None else default_region_cache_dir(),
            max_bytes if max_bytes is not None else default_region_max_bytes())
        #: Plans already decoded this process; keyed like the disk store.
        self._memo: Dict[str, Dict] = {}

    def _path(self, key: str) -> Path:
        return self.shard_path(key, f"{key}.json")

    def _remember(self, key: str, plan: Dict) -> None:
        if len(self._memo) >= _MEMO_LIMIT:
            self._memo.clear()
        self._memo[key] = plan

    def get(self, key: str) -> Optional[Dict]:
        """Load a plan (memo first, then disk); None on any miss.

        Stale-schema or corrupted entries are deleted and reported as
        misses, mirroring the cell cache's only-ever-costs-recompute
        contract.
        """
        plan = self._memo.get(key)
        if plan is not None:
            self.hits += 1
            self._metric("hits")
            return plan
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            self._metric("misses")
            return None
        try:
            data = json.loads(raw)
            if data.get("schema") != REGION_SCHEMA_VERSION:
                raise ValueError("stale region-cache schema")
            plan = data["plan"]
            if not isinstance(plan, dict):
                raise ValueError("malformed region plan")
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            self._metric("misses")
            return None
        self.hits += 1
        self._metric("hits")
        self._touch(path)  # LRU recency: a hit makes the entry newest.
        self._remember(key, plan)
        return plan

    def put(self, key: str, plan: Dict) -> None:
        """Store a plan (memo + atomic disk write, then evict if capped)."""
        self._remember(key, plan)
        path = self._path(key)
        text = json.dumps({"schema": REGION_SCHEMA_VERSION, "plan": plan})
        self._atomic_write(path, text)
        self.puts += 1
        self._metric("puts")
        self._metric("bytes_written", len(text))
        self._touch(path)
        if self.max_bytes is not None:
            self.evict()

    def clear(self) -> int:
        self._memo.clear()
        return super().clear()

    def stats(self) -> Dict[str, object]:
        files = self.entries()
        n_files, files_bytes = self._sizes(files)
        n_tmp, tmp_bytes = self._sizes(self.tmp_files())
        return {
            "root": str(self.root),
            "entries": n_files,
            "bytes": files_bytes,
            "tmp_files": n_tmp,
            "tmp_bytes": tmp_bytes,
            "max_bytes": self.max_bytes,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_puts": self.puts,
            "session_evictions": self.evictions,
        }


_CACHE: Optional[RegionCache] = None


def region_cache() -> Optional[RegionCache]:
    """The process-wide region cache, or None when disabled.

    Rebuilt whenever the resolved root or cap changes (tests repoint
    ``REPRO_REGION_CACHE_DIR`` at temp dirs mid-process).
    """
    global _CACHE
    if not region_cache_enabled():
        return None
    root = default_region_cache_dir()
    cap = default_region_max_bytes()
    if _CACHE is None or _CACHE.root != root or _CACHE.max_bytes != cap:
        _CACHE = RegionCache(root, cap)
    return _CACHE


def reset_region_cache() -> None:
    """Drop the process-wide instance (test isolation)."""
    global _CACHE
    _CACHE = None


# -- session counters ---------------------------------------------------------

@dataclasses.dataclass
class RegionSession:
    """Per-session fusion/persistence telemetry.

    Folded across parallel workers by :mod:`repro.harness.parallel` (sums
    except ``max_chain``, which takes the max — both order-independent,
    so ``-j1`` and ``-jN`` report identical lines) and surfaced by the
    per-sweep cache line, ``repro summary --profile``, ``repro cache
    stats``, and the serve daemon's ``/stats``.
    """

    selections: int = 0      # fresh region selections (full compile)
    replays: int = 0         # plans replayed from the cache
    regions: int = 0         # compiled regions, both paths
    fused_segments: int = 0  # fused SSA segments emitted
    fused_steps: int = 0     # original vsteps folded into those segments
    max_chain: int = 0       # longest fused chain seen
    hits: int = 0            # plan lookups served from the cache
    misses: int = 0          # plan lookups that missed
    puts: int = 0            # plans persisted (incl. guard feedback)
    evictions: int = 0       # LRU evictions caused by those puts
    invalid: int = 0         # stale plans that failed replay validation

    def snapshot(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    def absorb(self, data: Optional[Dict[str, int]]) -> None:
        """Fold a worker snapshot in (sums; max for ``max_chain``)."""
        if not data:
            return
        for field in dataclasses.fields(self):
            try:
                value = int(data.get(field.name, 0))
            except (TypeError, ValueError):
                continue
            if field.name == "max_chain":
                self.max_chain = max(self.max_chain, value)
            else:
                setattr(self, field.name, getattr(self, field.name) + value)

    def any(self) -> bool:
        return any(getattr(self, f.name) for f in dataclasses.fields(self))

    def line(self) -> str:
        """One-line session summary; empty when the JIT never ran."""
        if not self.any():
            return ""
        line = (f"region cache: {self.hits} hits / {self.misses} misses, "
                f"{self.replays} replayed / {self.selections} selected")
        if self.fused_segments:
            line += (f", {self.fused_steps} steps fused in "
                     f"{self.fused_segments} segments "
                     f"(max chain {self.max_chain})")
        if self.invalid:
            line += f", {self.invalid} stale"
        if self.evictions:
            line += f", {self.evictions} evicted (LRU)"
        return line


_SESSION = RegionSession()


def session() -> RegionSession:
    return _SESSION


def take_session() -> Dict[str, int]:
    """Snapshot-and-reset, for parallel worker handoff."""
    global _SESSION
    snap = _SESSION.snapshot()
    _SESSION = RegionSession()
    return snap


# -- the JIT entry points -----------------------------------------------------

def _note_regions(sess: RegionSession, regions: RegionMap) -> None:
    sess.regions += len(regions)
    for region in regions.values():
        sess.fused_segments += region.fused_segments
        sess.fused_steps += region.fused_steps
        if region.max_chain > sess.max_chain:
            sess.max_chain = region.max_chain


def load_or_compile_regions(machine, func, entry) -> RegionMap:
    """Region map for ``func``: replay a persisted plan, else compile.

    The persistent cache is bypassed (plain :func:`compile_regions`)
    when the machine carries an execution profile — profile-seeded
    selection must stay exact — or when observability is enabled, so
    cold and warm runs emit identical remark streams.
    """
    fuse = fusion_enabled()
    sess = session()
    cache = None
    if machine.profile is None and not obs_session.enabled():
        cache = region_cache()
    key = region_key(func, fuse) if cache is not None else None
    if cache is not None:
        plan = cache.get(key)
        if plan is not None:
            sess.hits += 1
            try:
                regions = replay_plan(machine, func, entry, plan, fuse)
            except Exception:
                # Stale/corrupt plan (edited decoder, hash collision,
                # hand-mangled entry): fall through to a fresh compile,
                # whose put below overwrites the bad entry.
                sess.invalid += 1
            else:
                regions.key = key
                sess.replays += 1
                _note_regions(sess, regions)
                obs_session.remark(
                    "analysis", "jit", func.name,
                    f"region-cache-hit: {len(regions)} regions replayed",
                    regions=len(regions),
                    fused=sum(r.fused_steps for r in regions.values()),
                    key=key[:12])
                return regions
        else:
            sess.misses += 1
    regions = compile_regions(machine, func, entry,
                              profile=machine.profile, fuse=fuse)
    sess.selections += 1
    _note_regions(sess, regions)
    if cache is not None:
        regions.key = key
        before = cache.evictions
        try:
            cache.put(key, extract_plan(regions))
        except OSError:
            return regions  # Unwritable cache dir: still a valid compile.
        sess.puts += 1
        sess.evictions += cache.evictions - before
    return regions


def flush_region_feedback(regions) -> None:
    """Re-persist a plan reshaped by guard feedback (truncation/drop).

    A no-op unless ``regions`` is a cache-keyed :class:`RegionMap` whose
    shape actually changed since it was loaded or stored.
    """
    if not isinstance(regions, RegionMap):
        return
    if not regions.dirty or regions.key is None:
        return
    cache = region_cache()
    if cache is None:
        return
    sess = session()
    before = cache.evictions
    try:
        cache.put(regions.key, extract_plan(regions))
    except OSError:
        return  # Unwritable cache dir: keep dirty, retry next flush.
    regions.dirty = False
    sess.puts += 1
    sess.evictions += cache.evictions - before
