"""Instruction-cache model.

u&u can inflate a loop body past what the fetch path streams for free; the
paper observes exactly this on `complex` (stall_inst_fetch 3.7 % -> 79.6 %)
and `haccmk`.  The model is an LRU cache of basic blocks with a capacity in
instruction slots: entering a resident block is free, a miss stalls for a
few cycles plus the time to stream the block in.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from .timing import ICACHE_CAPACITY, ICACHE_FETCH_WIDTH, ICACHE_MISS_BASE


class InstructionCache:
    """LRU basic-block instruction cache."""

    def __init__(self, capacity: int = ICACHE_CAPACITY) -> None:
        self.capacity = capacity
        self._resident: "OrderedDict[int, int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.stall_cycles = 0

    def clone(self) -> "InstructionCache":
        """Independent copy with identical residency and statistics.

        The batched engine runs one representative cache for every warp of a
        batch (their access sequences are identical by construction); when a
        warp demotes or a batch splits, each part continues from a clone.
        """
        copy = InstructionCache(self.capacity)
        copy._resident = OrderedDict(self._resident)
        copy._used = self._used
        copy.hits = self.hits
        copy.misses = self.misses
        copy.stall_cycles = self.stall_cycles
        return copy

    def access(self, block_id: int, block_size: int) -> int:
        """Charge one block entry; returns the fetch stall in cycles."""
        size = max(1, block_size)
        if block_id in self._resident:
            self._resident.move_to_end(block_id)
            self.hits += 1
            return 0
        self.misses += 1
        while self._used + size > self.capacity and self._resident:
            _, evicted = self._resident.popitem(last=False)
            self._used -= evicted
        self._resident[block_id] = size
        self._used += size
        stall = ICACHE_MISS_BASE + (size + ICACHE_FETCH_WIDTH - 1) // ICACHE_FETCH_WIDTH
        self.stall_cycles += stall
        return stall
