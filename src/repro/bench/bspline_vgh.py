"""bspline-vgh analog (paper Table I row "bspline-vgh").

Cubic B-spline value/gradient/Hessian evaluation.  The hot loop has a trip
count of 4 (the four cubic basis functions) — exactly the property the
paper highlights: u&u with factor 4 fully unrolls it (SCCP proves the back
edge dead), so factors 4 and 8 generate identical code, and the unmerged
paths let the boundary-clamp conditions of later iterations fold.  This is
the paper's best result: 1.81x for the heuristic.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (And, Assign, Cast, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

THREADS = 64
GRID = 256          # Spline grid size.


class BsplineVGH(Benchmark):
    name = "bspline-vgh"
    category = "Simulation"
    command_line = "no CLI input"
    paper = PaperNumbers(loops=1, compute_percent=11.69,
                         baseline_ms=137.49, baseline_rsd=6.46,
                         heuristic_ms=77.04, heuristic_rsd=6.64)
    seed = 505

    def kernels(self) -> List[KernelDef]:
        kernel = KernelDef(
            "bspline_vgh",
            [Param("coefs", "f64*", restrict=True),
             Param("pos", "f64*", restrict=True),
             Param("vals", "f64*", restrict=True),
             Param("grads", "f64*", restrict=True),
             Param("grid", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("x", Index("pos", V("gid"))),
                    Assign("ix", Cast("i64", V("x"))),
                    Assign("fx", V("x") - V("ix")),
                    Assign("c0", Index("coefs", V("gid") % V("grid"))),
                    Assign("val", Lit(0.0, "f64")),
                    Assign("grad", Lit(0.0, "f64")),
                    # Four basis functions, iterated by doubling the weight
                    # mask (w = 1,2,4,8).  The shift induction defeats the
                    # stock unroller's trip-count analysis (as irregular
                    # inductions defeat LLVM's SCEV), but after u&u with
                    # factor 4 SCCP folds the whole chain w=1,2,4,8,16 and
                    # deletes every exit check: the loop control disappears
                    # entirely, and on the unmerged interior path the
                    # boundary test survives only once.  The baseline keeps
                    # 4 iterations of phi-moves + compare + branch around a
                    # tiny arithmetic body — the paper's 1.81x on this
                    # control-dominated kernel.
                    Assign("w", Lit(1, "i64")),
                    While(V("w") <= 8, [
                        If(And(V("ix") >= 0, V("ix") < V("grid") - 4), [
                            Assign("val", V("val") * V("fx")
                                   + V("c0") * V("w")),
                            Assign("grad", V("grad") + V("c0") * V("fx")),
                        ], [
                            Assign("val", V("val") * 0.5),
                            Assign("grad", V("grad") + 0.125),
                        ]),
                        Assign("w", V("w") << 1),
                    ]),
                    Store("vals", V("gid"), V("val")),
                    Store("grads", V("gid"), V("grad")),
                ]),
            ])
        return [kernel]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        coefs = rng.random(GRID)
        pos = rng.random(THREADS) * (GRID - 8) + 2
        return {
            "coefs": mem.alloc("coefs", "f64", GRID, coefs),
            "pos": mem.alloc("pos", "f64", THREADS, pos),
            "vals": mem.alloc("vals", "f64", THREADS),
            "grads": mem.alloc("grads", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [Launch("bspline_vgh", 1, THREADS,
                       [buf("coefs"), buf("pos"), buf("vals"), buf("grads"),
                        GRID, THREADS])
                for _ in range(4)]

    def output_buffers(self) -> List[str]:
        return ["vals", "grads"]

