"""complex analog (paper Table I row "complex", Listing 7).

Complex-number exponentiation by squaring: ``n`` starts at the *global
thread id*, so the ``n & 1`` test diverges almost every iteration within a
warp.  The baseline -O3 pipeline if-converts the small conditional body
into selects (predication), keeping warps converged; u&u replaces those
selects with branches and makes the divergent paths *longer*, with no
redundancy for the cleanup passes to remove — the paper measures warp
execution efficiency 100% -> 19.4%, stall_inst_fetch 3.7% -> 79.6%, and a
slowdown down to 0.11x at factor 8.  This is the paper's designated
worst case (Section V).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, GlobalTid, If, Index, KernelDef, Lit,
                            Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

THREADS = 128


class ComplexBench(Benchmark):
    name = "complex"
    category = "Math"
    command_line = "10000000 1000"
    paper = PaperNumbers(loops=1, compute_percent=99.91,
                         baseline_ms=2199.23, baseline_rsd=0.26,
                         heuristic_ms=2730.95, heuristic_rsd=0.10)
    seed = 303

    def kernels(self) -> List[KernelDef]:
        # Paper Listing 7: binary exponentiation where n = global tid.
        kernel = KernelDef(
            "complex_pow",
            [Param("a_re", "f64*", restrict=True),
             Param("out", "f64*", restrict=True),
             Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("n", V("gid")),
                    Assign("a", Index("a_re", V("gid"))),
                    Assign("c", Lit(1.0, "f64")),
                    Assign("a_new", Lit(1.0, "f64")),
                    Assign("c_new", Lit(0.0, "f64")),
                    While(V("n") > 0, [
                        If((V("n") & 1) != 0, [
                            Assign("a_new", V("a_new") * V("a")),
                            Assign("c_new", V("c_new") * V("a") + V("c")),
                        ]),
                        Assign("c", V("c") * (V("a") + 1.0)),
                        Assign("a", V("a") * V("a")),
                        Assign("n", V("n") >> 1),
                    ]),
                    Store("out", V("gid"), V("a_new") + V("c_new")),
                ]),
            ])
        return [kernel]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        # Values near 1 keep repeated squaring finite for ~7 iterations.
        a = rng.random(THREADS) * 0.2 + 0.9
        return {
            "a_re": mem.alloc("a_re", "f64", THREADS, a),
            "out": mem.alloc("out", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        # Several launches amortise the icache warm-up, as the real
        # benchmark's 1000 repetitions do.
        return [Launch("complex_pow", 1, THREADS,
                       [buf("a_re"), buf("out"), THREADS])
                for _ in range(4)]

    def output_buffers(self) -> List[str]:
        return ["out"]
