"""lavaMD analog (paper Table I row "lavaMD").

Molecular-dynamics particle interactions within neighbour boxes: per
particle, an inner loop over the particles of a neighbour box evaluates an
exponentially screened pair potential with a cutoff test.  Moderate u&u
win (33.28 -> 30.65 ms, 1.09x) from folding the repeated cutoff-class
checks along unmerged paths.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

PER_BOX = 48
THREADS = 64


class LavaMD(Benchmark):
    name = "lavaMD"
    category = "Simulation"
    command_line = "-boxes1d 30"
    paper = PaperNumbers(loops=1, compute_percent=66.52,
                         baseline_ms=33.28, baseline_rsd=0.08,
                         heuristic_ms=30.65, heuristic_rsd=0.07)
    seed = 333

    def kernels(self) -> List[KernelDef]:
        pairs = KernelDef(
            "lavamd_pairs",
            [Param("qx", "f64*", restrict=True),
             Param("qv", "f64*", restrict=True),
             Param("acc", "f64*", restrict=True),
             Param("per_box", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("x0", Index("qx", V("gid") % V("per_box"))),
                    Assign("a", Lit(0.0, "f64")),
                    Assign("near", Lit(0, "i64")),
                    For("j", Lit(0, "i64"), V("per_box"), [
                        Assign("dx", Index("qx", V("j")) - V("x0")),
                        Assign("r2", V("dx") * V("dx")),
                        If(V("r2") < 0.25, [
                            Assign("e", Call("exp", (0.0 - V("r2") * 2.0,))),
                            Assign("a", V("a") + V("e")
                                   * Index("qv", V("j"))),
                            Assign("near", V("near") + 1),
                        ], [
                            If(V("near") > 8, [
                                # Saturated neighbourhood: cheap tail term.
                                Assign("a", V("a") + 0.0001),
                            ], [
                                Assign("a", V("a") + V("dx") * 0.001),
                            ]),
                        ]),
                    ]),
                    Store("acc", V("gid"), V("a")),
                ]),
            ])
        return [pairs]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        qx = rng.random(PER_BOX)
        qv = rng.random(PER_BOX) - 0.5
        return {
            "qx": mem.alloc("qx", "f64", PER_BOX, qx),
            "qv": mem.alloc("qv", "f64", PER_BOX, qv),
            "acc": mem.alloc("acc", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [Launch("lavamd_pairs", 1, THREADS,
                       [buf("qx"), buf("qv"), buf("acc"), PER_BOX, THREADS])
                for _ in range(2)]

    def output_buffers(self) -> List[str]:
        return ["acc"]
