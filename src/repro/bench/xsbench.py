"""XSBench analog (paper Table I row "XSBench", Listings 1/3-5).

The Monte Carlo neutron-transport macroscopic-cross-section lookup in event
mode: each thread draws an energy ("quarry"), binary-searches the sorted
energy grid (the paper's motivating Listing 1), then accumulates
interpolated cross sections over the nuclides at that grid point.

The binary-search loop is the paper's flagship u&u target: on the taken
path ``upperLimit - lowerLimit`` is provably ``length/2`` and the division
result is reused, eliminating the subtraction and the ``selp`` data moves
(Section V, Listings 4-5).  The paper reports up to 1.36x from this loop
despite warp-execution efficiency dropping from 62.9% to 18.9%.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

GRIDPOINTS = 2048
NUCLIDES = 12
LOOKUPS = 128


class XSBench(Benchmark):
    name = "XSBench"
    category = "Simulation"
    command_line = "-s small -m event"
    paper = PaperNumbers(loops=210, compute_percent=87.62,
                         baseline_ms=137.21, baseline_rsd=0.12,
                         heuristic_ms=121.72, heuristic_rsd=0.14)
    seed = 101

    def kernels(self) -> List[KernelDef]:
        grid_search = KernelDef(
            "grid_search",
            [Param("egrid", "f64*", restrict=True),
             Param("quarries", "f64*", restrict=True),
             Param("found", "i64*", restrict=True),
             Param("n", "i64"), Param("lookups", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("lookups"), [
                    Assign("quarry", Index("quarries", V("gid"))),
                    # The paper's Listing 1, verbatim structure.
                    Assign("lowerLimit", Lit(0, "i64")),
                    Assign("upperLimit", V("n")),
                    Assign("length", V("n")),
                    While(V("length") > 1, [
                        Assign("mid", V("lowerLimit") + V("length") / 2),
                        If(Index("egrid", V("mid")) > V("quarry"),
                           [Assign("upperLimit", V("mid"))],
                           [Assign("lowerLimit", V("mid"))]),
                        Assign("length", V("upperLimit") - V("lowerLimit")),
                    ]),
                    Store("found", V("gid"), V("lowerLimit")),
                ]),
            ])

        xs_lookup = KernelDef(
            "xs_lookup",
            [Param("egrid", "f64*", restrict=True),
             Param("xs", "f64*", restrict=True),
             Param("quarries", "f64*", restrict=True),
             Param("found", "i64*", restrict=True),
             Param("macro", "f64*", restrict=True),
             Param("nuclides", "i64"), Param("n", "i64"),
             Param("lookups", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("lookups"), [
                    Assign("idx", Index("found", V("gid"))),
                    Assign("e", Index("quarries", V("gid"))),
                    Assign("e0", Index("egrid", V("idx"))),
                    Assign("e1", Index("egrid", V("idx") + 1)),
                    Assign("frac", (V("e") - V("e0")) / (V("e1") - V("e0"))),
                    Assign("acc", Lit(0.0, "f64")),
                    # Accumulate interpolated micro cross sections.
                    For("nuc", Lit(0, "i64"), V("nuclides"), [
                        Assign("base", V("nuc") * V("n") + V("idx")),
                        Assign("x0", Index("xs", V("base"))),
                        Assign("x1", Index("xs", V("base") + 1)),
                        Assign("micro",
                               V("x0") + V("frac") * (V("x1") - V("x0"))),
                        If(V("micro") > 0.5,
                           [Assign("acc", V("acc") + V("micro"))],
                           [Assign("acc", V("acc") + V("micro") * 0.5)]),
                    ]),
                    Store("macro", V("gid"), V("acc")),
                ]),
            ])
        return [grid_search, xs_lookup]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        egrid = np.sort(rng.random(GRIDPOINTS))
        xs = rng.random(GRIDPOINTS * NUCLIDES)
        quarries = rng.random(LOOKUPS) * 0.98 + 0.01
        return {
            "egrid": mem.alloc("egrid", "f64", GRIDPOINTS, egrid),
            "xs": mem.alloc("xs", "f64", GRIDPOINTS * NUCLIDES, xs),
            "quarries": mem.alloc("quarries", "f64", LOOKUPS, quarries),
            "found": mem.alloc("found", "i64", LOOKUPS),
            "macro": mem.alloc("macro", "f64", LOOKUPS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("grid_search", 1, LOOKUPS,
                   [buf("egrid"), buf("quarries"), buf("found"),
                    GRIDPOINTS, LOOKUPS]),
            Launch("xs_lookup", 1, LOOKUPS,
                   [buf("egrid"), buf("xs"), buf("quarries"), buf("found"),
                    buf("macro"), NUCLIDES, GRIDPOINTS, LOOKUPS]),
        ]

    def output_buffers(self) -> List[str]:
        return ["found", "macro"]
