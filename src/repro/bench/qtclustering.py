"""qtclustering analog (paper Table I row "qtclustering").

Quality-threshold clustering: per candidate point, loops over the dataset
computing distances, with threshold branches deciding membership and a
sticky "cluster full" state.  The paper reports a modest heuristic win
(176.3 -> 165.9 ms, 1.06x) and notes its compile time is dominated by the
constant-propagation pass over the duplicated code.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

POINTS = 48
THREADS = 64
CAPACITY = 20


class QTClustering(Benchmark):
    name = "qtclustering"
    category = "Machine learning"
    command_line = "no CLI input"
    paper = PaperNumbers(loops=19, compute_percent=99.14,
                         baseline_ms=176.3, baseline_rsd=1.9,
                         heuristic_ms=165.92, heuristic_rsd=0.2)
    seed = 666

    def kernels(self) -> List[KernelDef]:
        membership = KernelDef(
            "qt_membership",
            [Param("px", "f64*", restrict=True),
             Param("py", "f64*", restrict=True),
             Param("members", "i64*", restrict=True),
             Param("points", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("cx", Index("px", V("gid") % V("points"))),
                    Assign("cy", Index("py", V("gid") % V("points"))),
                    Assign("count", Lit(0, "i64")),
                    Assign("full", Lit(0, "i64")),
                    Assign("j", Lit(0, "i64")),
                    While(V("j") < V("points"), [
                        If(V("full") == 0, [
                            Assign("dx", Index("px", V("j")) - V("cx")),
                            Assign("dy", Index("py", V("j")) - V("cy")),
                            Assign("d2", V("dx") * V("dx")
                                   + V("dy") * V("dy")),
                            If(V("d2") < 0.1, [
                                Assign("count", V("count") + 1),
                                If(V("count") >= CAPACITY,
                                   [Assign("full", Lit(1, "i64"))]),
                            ]),
                        ]),
                        Assign("j", V("j") + 1),
                    ]),
                    Store("members", V("gid"), V("count")),
                ]),
            ])

        diameter = KernelDef(
            "qt_diameter",
            [Param("px", "f64*", restrict=True),
             Param("members", "i64*", restrict=True),
             Param("diam", "f64*", restrict=True),
             Param("points", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("m", Index("members", V("gid"))),
                    Assign("best", Lit(0.0, "f64")),
                    For("k", Lit(0, "i64"), Lit(12, "i64"), [
                        Assign("d", Index("px", (V("gid") + V("k"))
                                          % V("points"))
                               - Index("px", V("gid") % V("points"))),
                        Assign("d2", V("d") * V("d")),
                        If(V("d2") > V("best"),
                           [Assign("best", V("d2"))]),
                    ]),
                    Store("diam", V("gid"), V("best") + V("m") * 0.0),
                ]),
            ])
        return [membership, diameter]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        px = rng.random(POINTS)
        py = rng.random(POINTS)
        return {
            "px": mem.alloc("px", "f64", POINTS, px),
            "py": mem.alloc("py", "f64", POINTS, py),
            "members": mem.alloc("members", "i64", THREADS),
            "diam": mem.alloc("diam", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("qt_membership", 1, THREADS,
                   [buf("px"), buf("py"), buf("members"), POINTS, THREADS]),
            Launch("qt_diameter", 1, THREADS,
                   [buf("px"), buf("members"), buf("diam"), POINTS,
                    THREADS]),
        ]

    def output_buffers(self) -> List[str]:
        return ["members", "diam"]
