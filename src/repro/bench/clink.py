"""clink analog (paper Table I row "clink").

LSTM-network inference (CLINK is an LSTM link-prediction kernel): per
thread, a time-step loop applies gate activations with piecewise-linear
"hard sigmoid" saturation branches.  Saturation is sticky in this workload
(once a cell saturates it stays saturated for the remaining steps), so the
re-checks are exactly the cross-iteration redundancy u&u exposes — the
paper reports 1058 -> 871 ms (1.21x) for the heuristic.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

STEPS = 24
THREADS = 64


class Clink(Benchmark):
    name = "clink"
    category = "Machine learning"
    command_line = "no CLI input"
    paper = PaperNumbers(loops=5, compute_percent=27.23,
                         baseline_ms=1058.04, baseline_rsd=0.12,
                         heuristic_ms=870.99, heuristic_rsd=0.03)
    seed = 808

    def kernels(self) -> List[KernelDef]:
        lstm = KernelDef(
            "clink_lstm",
            [Param("xs", "f64*", restrict=True),
             Param("w", "f64*", restrict=True),
             Param("hidden", "f64*", restrict=True),
             Param("steps", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("h", Lit(0.0, "f64")),
                    Assign("cell", Lit(0.0, "f64")),
                    Assign("sat", Lit(0, "i64")),
                    Assign("t", Lit(0, "i64")),
                    While(V("t") < V("steps"), [
                        Assign("xin", Index("xs", V("gid") * V("steps")
                                            + V("t"))),
                        Assign("gate", V("xin") * Index("w", V("gid"))
                               + V("h") * 0.5),
                        # Sticky saturation: once sat != 0 it stays set.
                        If(V("sat") != 0, [
                            Assign("cell", V("cell") * 0.9),
                        ], [
                            If(V("gate") > 2.5, [
                                Assign("sat", Lit(1, "i64")),
                                Assign("cell", V("cell") * 0.9),
                            ], [
                                Assign("cell", V("cell") + V("gate") * 0.25),
                            ]),
                        ]),
                        Assign("h", V("cell") * 0.5),
                        Assign("t", V("t") + 1),
                    ]),
                    Store("hidden", V("gid"), V("h")),
                ]),
            ])

        # Distance kernel: two more small loops (cluster linkage).
        linkage = KernelDef(
            "clink_linkage",
            [Param("hidden", "f64*", restrict=True),
             Param("dist", "f64*", restrict=True),
             Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("best", Lit(1e30, "f64")),
                    For("k", Lit(0, "i64"), Lit(12, "i64"), [
                        Assign("other", Index("hidden", (V("gid") + V("k") + 1)
                                              % V("threads"))),
                        Assign("d", Index("hidden", V("gid")) - V("other")),
                        Assign("d2", V("d") * V("d")),
                        If(V("d2") < V("best"), [Assign("best", V("d2"))]),
                    ]),
                    Store("dist", V("gid"), V("best")),
                ]),
            ])
        return [lstm, linkage]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        xs = rng.random(THREADS * STEPS) * 2.0
        w = rng.random(THREADS) + 0.5
        return {
            "xs": mem.alloc("xs", "f64", THREADS * STEPS, xs),
            "w": mem.alloc("w", "f64", THREADS, w),
            "hidden": mem.alloc("hidden", "f64", THREADS),
            "dist": mem.alloc("dist", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("clink_lstm", 1, THREADS,
                   [buf("xs"), buf("w"), buf("hidden"), STEPS, THREADS]),
            Launch("clink_linkage", 1, THREADS,
                   [buf("hidden"), buf("dist"), THREADS]),
        ]

    def output_buffers(self) -> List[str]:
        return ["hidden", "dist"]
