"""Benchmark infrastructure.

Each of the 16 HeCBench analogs (paper Table I) subclasses
:class:`Benchmark`: it declares its kernels in the structured frontend,
allocates and initialises its simulated device buffers, and describes the
kernel launches.  The harness compiles the module under a pipeline
configuration, runs the launches on the SIMT machine, and reads back the
output buffers for differential checking.

Paper-anchored metadata (category, command line, compute fraction ``%C``,
baseline RSD) is carried verbatim from Table I so the harness can print the
table and convert simulated cycles into paper-scale milliseconds (see
DESIGN.md, "Known deviations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..frontend.ast import KernelDef
from ..frontend.lower import lower_kernels
from ..gpu.counters import Counters
from ..gpu.machine import WARP_SIZE, SimtMachine
from ..gpu.memory import Memory
from ..ir.module import Module


def scale_geometry(grid_dim: int, block_dim: int,
                   scale: int) -> Tuple[int, int]:
    """Shrink a launch to roughly ``1/scale`` of its threads.

    Used by the autotuner's successive-halving rounds: early rounds rank
    candidates on a reduced geometry and only survivors get full-size
    timing.  Whole blocks are dropped first; once a single block remains,
    it is shrunk in whole warps (never below one warp, so intra-warp
    divergence behaviour is preserved).  ``scale <= 1`` is the identity.
    """
    if scale <= 1:
        return grid_dim, block_dim
    total = grid_dim * block_dim
    target = max(1, total // scale)
    if target >= block_dim:
        return max(1, target // block_dim), block_dim
    if block_dim >= WARP_SIZE:
        warps = max(1, (block_dim // WARP_SIZE) // scale)
        return 1, warps * WARP_SIZE
    return 1, max(1, block_dim // scale)


@dataclass
class Launch:
    """One kernel launch: which kernel, geometry, and argument values.

    ``args`` entries are either literal scalars or ``("buf", name)`` pairs
    resolved to buffer base addresses at run time.
    """

    kernel: str
    grid_dim: int
    block_dim: int
    args: List


@dataclass
class PaperNumbers:
    """Table I reference values (for EXPERIMENTS.md side-by-side output)."""

    loops: int
    compute_percent: float
    baseline_ms: float
    baseline_rsd: float
    heuristic_ms: float
    heuristic_rsd: float


class Benchmark:
    """Base class for one benchmark analog."""

    #: Unique short name (Table I "Name").
    name: str = ""
    #: Table I "Category".
    category: str = ""
    #: Table I "Command Line".
    command_line: str = ""
    #: Paper reference numbers.
    paper: PaperNumbers = PaperNumbers(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    #: Default RNG seed for workload generation (determinism).
    seed: int = 2024

    # -- to be provided by subclasses ------------------------------------
    def kernels(self) -> List[KernelDef]:
        """Kernel definitions (frontend ASTs)."""
        raise NotImplementedError

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        """Allocate and initialise device buffers; returns name -> address."""
        raise NotImplementedError

    def launches(self) -> List[Launch]:
        """The launch sequence of one measured run."""
        raise NotImplementedError

    def output_buffers(self) -> List[str]:
        """Buffers whose contents define the benchmark's observable result."""
        raise NotImplementedError

    # -- provided -----------------------------------------------------------
    def build_module(self) -> Module:
        """Lower all kernels into a fresh module."""
        return lower_kernels(self.kernels(), self.name)

    def run(self, module: Module,
            icache_capacity: Optional[int] = None,
            engine: Optional[str] = None,
            scale: int = 1
            ) -> Tuple[Dict[str, np.ndarray], Counters]:
        """Execute the workload on a fresh memory; returns outputs+counters.

        ``scale > 1`` runs a reduced launch geometry (see
        :func:`scale_geometry`) — the autotuner's cheap screening rounds.
        Scaled outputs are only comparable to equally-scaled references.
        """
        rng = np.random.default_rng(self.seed)
        mem = Memory()
        buffers = self.setup(mem, rng)
        machine = SimtMachine(module, mem, icache_capacity=icache_capacity,
                              engine=engine)
        total = Counters()
        for launch in self.launches():
            args = [buffers[a[1]] if isinstance(a, tuple) and a[0] == "buf"
                    else a for a in launch.args]
            grid_dim, block_dim = scale_geometry(launch.grid_dim,
                                                 launch.block_dim, scale)
            result = machine.launch(launch.kernel, grid_dim, block_dim, args)
            total.merge(result.counters)
        outputs = {name: mem.read_back(name)
                   for name in self.output_buffers()}
        return outputs, total

    def loop_ids(self) -> List[str]:
        """Deterministic ids of every loop in the benchmark's kernels."""
        from ..analysis.loops import LoopInfo

        module = self.build_module()
        ids: List[str] = []
        for func in module.functions.values():
            info = LoopInfo.compute(func)
            ids.extend(loop.loop_id for loop in info.loops)
        return ids

    def __repr__(self) -> str:
        return f"<Benchmark {self.name}>"


def buf(name: str) -> Tuple[str, str]:
    """Launch-argument placeholder for a buffer's base address."""
    return ("buf", name)
