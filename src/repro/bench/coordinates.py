"""coordinates analog (paper Table I row "coordinates").

Geodetic coordinate conversion (WGS84-style): an iterative latitude
refinement loop with a fixed iteration count and *no* internal branching
(one path).  The paper's quirk: the baseline fully unrolls this loop, which
is a pessimisation (instruction-cache pressure); adding the u&u pass claims
the loop away from the stock unroller, and the resulting *smaller* code
runs 1.11x faster at factor 2 — the speedup comes from the pipeline
interaction, not from unmerging (p = 1 means there is nothing to unmerge).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

ITERS = 48           # Constant trip count the stock unroller fully unrolls.
THREADS = 64


class Coordinates(Benchmark):
    name = "coordinates"
    category = "Geographic information system"
    command_line = "10000000 1000"
    paper = PaperNumbers(loops=6, compute_percent=92.63,
                         baseline_ms=744.91, baseline_rsd=0.06,
                         heuristic_ms=744.33, heuristic_rsd=0.07)
    seed = 111

    def kernels(self) -> List[KernelDef]:
        convert = KernelDef(
            "coord_convert",
            [Param("xs", "f64*", restrict=True),
             Param("ys", "f64*", restrict=True),
             Param("lat", "f64*", restrict=True),
             Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("x", Index("xs", V("gid"))),
                    Assign("y", Index("ys", V("gid"))),
                    Assign("phi", V("y") * 0.5),
                    # Straight-line iterative refinement, trip count 48.
                    For("it", Lit(0, "i64"), Lit(ITERS, "i64"), [
                        Assign("s", V("phi") * 0.9 + V("x") * 0.01),
                        Assign("phi", V("phi") * 0.98
                               + V("s") * 0.015 + V("y") * 0.001),
                    ]),
                    Store("lat", V("gid"), V("phi")),
                ]),
            ])

        # A second kernel with a short distance loop (Table I lists 6
        # loops; we model the two hot ones plus this sweep).
        distance = KernelDef(
            "coord_distance",
            [Param("lat", "f64*", restrict=True),
             Param("dist", "f64*", restrict=True),
             Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("acc", Lit(0.0, "f64")),
                    For("k", Lit(0, "i64"), Lit(8, "i64"), [
                        Assign("d", Index("lat", V("gid"))
                               - Index("lat", (V("gid") + V("k"))
                                       % V("threads"))),
                        Assign("acc", V("acc") + V("d") * V("d")),
                    ]),
                    Store("dist", V("gid"), V("acc")),
                ]),
            ])
        return [convert, distance]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        xs = rng.random(THREADS) * 180 - 90
        ys = rng.random(THREADS) * 360 - 180
        return {
            "xs": mem.alloc("xs", "f64", THREADS, xs),
            "ys": mem.alloc("ys", "f64", THREADS, ys),
            "lat": mem.alloc("lat", "f64", THREADS),
            "dist": mem.alloc("dist", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("coord_convert", 1, THREADS,
                   [buf("xs"), buf("ys"), buf("lat"), THREADS]),
            Launch("coord_distance", 1, THREADS,
                   [buf("lat"), buf("dist"), THREADS]),
        ] * 2

    def output_buffers(self) -> List[str]:
        return ["lat", "dist"]
