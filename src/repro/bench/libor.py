"""libor analog (paper Table I row "libor").

LIBOR market-model Monte Carlo: each thread evolves forward rates across
maturities and prices a portfolio of swaptions, with a positivity branch on
each payoff.  Once a path's accumulated discount drops below the strike the
payoff branch becomes sticky — the cross-iteration fact u&u exposes.
Paper: 1422 -> 1346 ms (1.06x) for the heuristic.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

MATURITIES = 24
THREADS = 64


class Libor(Benchmark):
    name = "libor"
    category = "Finance"
    command_line = "100"
    paper = PaperNumbers(loops=8, compute_percent=99.99,
                         baseline_ms=1422.20, baseline_rsd=0.07,
                         heuristic_ms=1345.94, heuristic_rsd=0.03)
    seed = 444

    def kernels(self) -> List[KernelDef]:
        path = KernelDef(
            "libor_path",
            [Param("z", "f64*", restrict=True),
             Param("rates0", "f64*", restrict=True),
             Param("payoff", "f64*", restrict=True),
             Param("mats", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("rate", Index("rates0", V("gid"))),
                    Assign("disc", Lit(1.0, "f64")),
                    Assign("dead", Lit(0, "i64")),
                    Assign("acc", Lit(0.0, "f64")),
                    Assign("m", Lit(0, "i64")),
                    While(V("m") < V("mats"), [
                        Assign("shock", Index("z", V("gid") * V("mats")
                                              + V("m"))),
                        Assign("rate", V("rate") * (1.0 + V("shock") * 0.1)),
                        Assign("disc", V("disc") / (1.0 + V("rate") * 0.25)),
                        If(V("dead") != 0, [
                            # Knocked-out path: nothing further accrues.
                            Assign("acc", V("acc") * 1.0),
                        ], [
                            If(V("disc") < 0.82, [
                                Assign("dead", Lit(1, "i64")),
                            ], [
                                Assign("acc", V("acc")
                                       + V("disc") * (V("rate") - 0.04)),
                            ]),
                        ]),
                        Assign("m", V("m") + 1),
                    ]),
                    Store("payoff", V("gid"), V("acc")),
                ]),
            ])

        # Portfolio aggregation (a second loop).
        portfolio = KernelDef(
            "libor_portfolio",
            [Param("payoff", "f64*", restrict=True),
             Param("value", "f64*", restrict=True),
             Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("acc", Lit(0.0, "f64")),
                    For("k", Lit(0, "i64"), Lit(8, "i64"), [
                        Assign("p", Index("payoff", (V("gid") + V("k"))
                                          % V("threads"))),
                        If(V("p") > 0.0, [Assign("acc", V("acc") + V("p"))]),
                    ]),
                    Store("value", V("gid"), V("acc")),
                ]),
            ])
        return [path, portfolio]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        z = rng.standard_normal(THREADS * MATURITIES) * 0.5
        rates0 = rng.random(THREADS) * 0.05 + 0.02
        return {
            "z": mem.alloc("z", "f64", THREADS * MATURITIES, z),
            "rates0": mem.alloc("rates0", "f64", THREADS, rates0),
            "payoff": mem.alloc("payoff", "f64", THREADS),
            "value": mem.alloc("value", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("libor_path", 1, THREADS,
                   [buf("z"), buf("rates0"), buf("payoff"), MATURITIES,
                    THREADS]),
            Launch("libor_portfolio", 1, THREADS,
                   [buf("payoff"), buf("value"), THREADS]),
        ]

    def output_buffers(self) -> List[str]:
        return ["payoff", "value"]
