"""The 16 HeCBench benchmark analogs of the paper's Table I."""

from .base import Benchmark, Launch, PaperNumbers, buf
from .registry import all_benchmarks, benchmark_by_name, benchmark_names

__all__ = [
    "Benchmark", "Launch", "PaperNumbers", "buf",
    "all_benchmarks", "benchmark_by_name", "benchmark_names",
]
