"""haccmk analog (paper Table I row "haccmk").

The HACC cosmology short-force kernel: per particle, an inner loop over
neighbours computes a softened gravitational force with a cutoff branch.
The paper observes that plain unrolling is *slightly better* than u&u here
(u&u's duplicated paths raise instruction-fetch stalls while the cutoff
branch exposes only a small redundancy), and the heuristic still lands a
1.14x overall win (5823 -> 5105 ms).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

NEIGHBOURS = 64
THREADS = 64


class Haccmk(Benchmark):
    name = "haccmk"
    category = "Simulation"
    command_line = "2000"
    paper = PaperNumbers(loops=1, compute_percent=99.83,
                         baseline_ms=5823.46, baseline_rsd=0.01,
                         heuristic_ms=5105.43, heuristic_rsd=0.01)
    seed = 222

    def kernels(self) -> List[KernelDef]:
        force = KernelDef(
            "haccmk_force",
            [Param("px", "f64*", restrict=True),
             Param("py", "f64*", restrict=True),
             Param("mass", "f64*", restrict=True),
             Param("fx", "f64*", restrict=True),
             Param("n", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("x0", Index("px", V("gid"))),
                    Assign("y0", Index("py", V("gid"))),
                    Assign("f", Lit(0.0, "f64")),
                    For("j", Lit(0, "i64"), V("n"), [
                        Assign("dx", Index("px", V("j")) - V("x0")),
                        Assign("dy", Index("py", V("j")) - V("y0")),
                        Assign("r2", V("dx") * V("dx") + V("dy") * V("dy")),
                        # Cutoff branch: mostly taken, small else side.
                        If(V("r2") < 1.0, [
                            Assign("inv",
                                   1.0 / (V("r2") + 0.01)),
                            Assign("f", V("f") + Index("mass", V("j"))
                                   * V("inv") * V("dx")),
                        ], [
                            Assign("f", V("f") + 0.0001 * V("dx")),
                        ]),
                    ]),
                    Store("fx", V("gid"), V("f")),
                ]),
            ])
        return [force]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        px = rng.random(NEIGHBOURS)
        py = rng.random(NEIGHBOURS)
        mass = rng.random(NEIGHBOURS) + 0.5
        return {
            "px": mem.alloc("px", "f64", NEIGHBOURS, px),
            "py": mem.alloc("py", "f64", NEIGHBOURS, py),
            "mass": mem.alloc("mass", "f64", NEIGHBOURS, mass),
            "fx": mem.alloc("fx", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [Launch("haccmk_force", 1, THREADS,
                       [buf("px"), buf("py"), buf("mass"), buf("fx"),
                        NEIGHBOURS, THREADS])
                for _ in range(2)]

    def output_buffers(self) -> List[str]:
        return ["fx"]
