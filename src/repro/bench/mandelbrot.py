"""mandelbrot analog (paper Table I row "mandelbrot").

Escape-time iteration per pixel.  The body carries an escaped-flag diamond
whose redundancy is *intra-iteration*: once ``esc`` is set the expensive
update is skipped, and unmerging alone lets GVN fold the second ``esc``
check within the same iteration.  Unrolling, by contrast, deepens the
divergence between pixels that escape at different iterations — which is
why this is the one application in the paper where *unmerge alone beats
both unroll and u&u* (Figure 7), while u&u still beats unroll.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, GlobalTid, If, Index, KernelDef,
                            Lit, Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

MAX_ITER = 48
THREADS = 64


class Mandelbrot(Benchmark):
    name = "mandelbrot"
    category = "CV and image processing"
    command_line = "100"
    paper = PaperNumbers(loops=1, compute_percent=14.47,
                         baseline_ms=15.60, baseline_rsd=0.08,
                         heuristic_ms=13.21, heuristic_rsd=0.07)
    seed = 555

    def kernels(self) -> List[KernelDef]:
        escape = KernelDef(
            "mandelbrot_escape",
            [Param("cr", "f64*", restrict=True),
             Param("ci", "f64*", restrict=True),
             Param("iters", "i64*", restrict=True),
             Param("shades", "f64*", restrict=True),
             Param("max_iter", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("cre", Index("cr", V("gid"))),
                    Assign("cim", Index("ci", V("gid"))),
                    Assign("x", Lit(0.0, "f64")),
                    Assign("y", Lit(0.0, "f64")),
                    Assign("esc", Lit(0, "i64")),
                    Assign("shade", Lit(0.0, "f64")),
                    Assign("count", Lit(0, "i64")),
                    Assign("i", Lit(0, "i64")),
                    While(V("i") < V("max_iter"), [
                        Assign("x2", V("x") * V("x")),
                        Assign("y2", V("y") * V("y")),
                        # First esc check: classify this iteration.
                        If(V("esc") == 0, [
                            If(V("x2") + V("y2") > 4.0,
                               [Assign("esc", Lit(1, "i64"))]),
                        ]),
                        # Second esc check in the same iteration: the
                        # redundancy unmerge exposes *without* unrolling.
                        If(V("esc") == 0, [
                            Assign("y", 2.0 * V("x") * V("y") + V("cim")),
                            Assign("x", V("x2") - V("y2") + V("cre")),
                            # Smooth-colouring accumulation: enough per-
                            # iteration FP work that unrolling buys little
                            # while inflating the body past the icache —
                            # which is why unmerge *alone* wins here.
                            Assign("lum", Call("sqrt", (V("x2") + V("y2")
                                                        + 1.0,))),
                            Assign("shade", V("shade") * 0.97
                                   + Call("log", (V("lum") + 1.0,))),
                            Assign("count", V("count") + 1),
                        ]),
                        Assign("i", V("i") + 1),
                    ]),
                    Store("iters", V("gid"), V("count")),
                    Store("shades", V("gid"), V("shade")),
                ]),
            ])
        return [escape]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        cr = rng.random(THREADS) * 3.0 - 2.0
        ci = rng.random(THREADS) * 2.4 - 1.2
        return {
            "cr": mem.alloc("cr", "f64", THREADS, cr),
            "ci": mem.alloc("ci", "f64", THREADS, ci),
            "iters": mem.alloc("iters", "i64", THREADS),
            "shades": mem.alloc("shades", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [Launch("mandelbrot_escape", 1, THREADS,
                       [buf("cr"), buf("ci"), buf("iters"), buf("shades"),
                        MAX_ITER, THREADS])
                for _ in range(2)]

    def output_buffers(self) -> List[str]:
        return ["iters", "shades"]
