"""bn analog (paper Table I row "bn").

Bayesian-network structure scoring: per-thread loops over candidate parent
sets accumulating log-likelihood contributions, with branches on count
sparsity.  The paper lists 11 loops; our analog carries the hot scoring
loops across three kernels.  The repeated sparsity checks inside the
scoring loops are what u&u exposes (once a family's count is zero it stays
zero for the rest of the scan), giving the paper's 1.27x heuristic win.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (And, Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

NODES = 64
STATES = 24
THREADS = 64


class BN(Benchmark):
    name = "bn"
    category = "Machine learning"
    command_line = "result"
    paper = PaperNumbers(loops=11, compute_percent=97.28,
                         baseline_ms=1322.07, baseline_rsd=1.52,
                         heuristic_ms=1042.53, heuristic_rsd=1.47)
    seed = 606

    def kernels(self) -> List[KernelDef]:
        # Kernel 1: per-node family counting with a sparsity fast path.
        count = KernelDef(
            "bn_count",
            [Param("data", "i64*", restrict=True),
             Param("counts", "i64*", restrict=True),
             Param("states", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("total", Lit(0, "i64")),
                    Assign("zero_run", Lit(0, "i64")),
                    For("s", Lit(0, "i64"), V("states"), [
                        Assign("v", Index("data", V("gid") * V("states")
                                          + V("s"))),
                        If(V("v") > 0, [
                            Assign("total", V("total") + V("v")),
                            Assign("zero_run", Lit(0, "i64")),
                        ], [
                            Assign("zero_run", V("zero_run") + 1),
                        ]),
                    ]),
                    Store("counts", V("gid"), V("total") + V("zero_run")),
                ]),
            ])

        # Kernel 2: scoring loop — once `sparse` flips it never unflips,
        # the redundancy u&u exploits across unrolled iterations.
        score = KernelDef(
            "bn_score",
            [Param("data", "i64*", restrict=True),
             Param("counts", "i64*", restrict=True),
             Param("scores", "f64*", restrict=True),
             Param("states", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("n", Index("counts", V("gid"))),
                    Assign("acc", Lit(0.0, "f64")),
                    Assign("budget", V("n")),
                    Assign("s", Lit(0, "i64")),
                    While(V("s") < V("states"), [
                        Assign("v", Index("data", V("gid") * V("states")
                                          + V("s"))),
                        If(V("budget") > 16, [
                            Assign("acc", V("acc") +
                                   Call("log", (V("v") + 1.0,))),
                            Assign("budget", V("budget") - V("v")),
                        ], [
                            Assign("acc", V("acc") + V("v") * 0.001),
                        ]),
                        Assign("s", V("s") + 1),
                    ]),
                    Store("scores", V("gid"), V("acc")),
                ]),
            ])

        # Kernel 3: order search sweep (two more loops).
        order = KernelDef(
            "bn_order",
            [Param("scores", "f64*", restrict=True),
             Param("best", "f64*", restrict=True),
             Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("b", Lit(-1e30, "f64")),
                    For("k", Lit(0, "i64"), Lit(8, "i64"), [
                        Assign("cand", Index("scores",
                                             (V("gid") + V("k"))
                                             % V("threads"))),
                        If(V("cand") > V("b"), [Assign("b", V("cand"))]),
                    ]),
                    Assign("pen", Lit(0.0, "f64")),
                    For("k2", Lit(0, "i64"), Lit(4, "i64"), [
                        Assign("pen", V("pen") + V("b") * 0.1),
                    ]),
                    Store("best", V("gid"), V("b") - V("pen")),
                ]),
            ])
        return [count, score, order]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        data = rng.integers(0, 6, NODES * STATES)
        data[rng.random(NODES * STATES) < 0.4] = 0  # Sparsity.
        return {
            "data": mem.alloc("data", "i64", NODES * STATES, data),
            "counts": mem.alloc("counts", "i64", THREADS),
            "scores": mem.alloc("scores", "f64", THREADS),
            "best": mem.alloc("best", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("bn_count", 1, THREADS,
                   [buf("data"), buf("counts"), STATES, THREADS]),
            Launch("bn_score", 1, THREADS,
                   [buf("data"), buf("counts"), buf("scores"), STATES,
                    THREADS]),
            Launch("bn_order", 1, THREADS,
                   [buf("scores"), buf("best"), THREADS]),
        ]

    def output_buffers(self) -> List[str]:
        return ["counts", "scores", "best"]
