"""ccs analog (paper Table I row "ccs").

Bicluster (condition-based co-expression) scoring over a gene-expression
matrix: many *small* loops with constant trip counts.  This is one of the
paper's negative results: the heuristic u&u-transforms several small loops,
which (a) claims them away from the stock unroller's beneficial full/
runtime unrolling and (b) adds divergence without exposing redundancy —
1629 ms degrades to 3463 ms.  Four of its loops are also the paper's
compile-timeout cases, which here surface as the unmerge growth cap.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

GENES = 64
SAMPLES = 16          # Constant trip count: stock unroller loves these.
THREADS = 64


class CCS(Benchmark):
    name = "ccs"
    category = "Bioinformatics"
    command_line = ("-t 0.9 -i Data_Constant_100_1_bicluster.txt "
                    "-m 50 -p 1 -g 100.0 -r 100")
    paper = PaperNumbers(loops=9, compute_percent=99.98,
                         baseline_ms=1629.32, baseline_rsd=0.2,
                         heuristic_ms=3462.97, heuristic_rsd=0.02)
    seed = 707

    def kernels(self) -> List[KernelDef]:
        # Several small constant-trip-count loops over the sample axis.
        # With divergent thresholds and no repeated conditions, u&u can
        # eliminate nothing; the baseline fully unrolls instead.
        correlate = KernelDef(
            "ccs_correlate",
            [Param("expr", "f64*", restrict=True),
             Param("corr", "f64*", restrict=True),
             Param("samples", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("mean", Lit(0.0, "f64")),
                    For("s", Lit(0, "i64"), Lit(16, "i64"), [
                        Assign("mean", V("mean") +
                               Index("expr", V("gid") * V("samples")
                                     + V("s"))),
                    ]),
                    Assign("mean", V("mean") / 16.0),
                    Assign("var", Lit(0.0, "f64")),
                    For("s2", Lit(0, "i64"), Lit(16, "i64"), [
                        Assign("d", Index("expr", V("gid") * V("samples")
                                          + V("s2")) - V("mean")),
                        Assign("var", V("var") + V("d") * V("d")),
                    ]),
                    Store("corr", V("gid"), V("var")),
                ]),
            ])

        score = KernelDef(
            "ccs_score",
            [Param("corr", "f64*", restrict=True),
             Param("scores", "f64*", restrict=True),
             Param("thresh", "f64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("acc", Lit(0.0, "f64")),
                    For("k", Lit(0, "i64"), Lit(8, "i64"), [
                        Assign("c", Index("corr", (V("gid") + V("k"))
                                          % V("threads"))),
                        If(V("c") > V("thresh"),
                           [Assign("acc", V("acc") + V("c"))]),
                    ]),
                    For("k2", Lit(0, "i64"), Lit(8, "i64"), [
                        Assign("acc", V("acc") * 0.99),
                    ]),
                    Store("scores", V("gid"), V("acc")),
                ]),
            ])
        return [correlate, score]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        expr = rng.random(GENES * SAMPLES)
        return {
            "expr": mem.alloc("expr", "f64", GENES * SAMPLES, expr),
            "corr": mem.alloc("corr", "f64", THREADS),
            "scores": mem.alloc("scores", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("ccs_correlate", 1, THREADS,
                   [buf("expr"), buf("corr"), SAMPLES, THREADS]),
            Launch("ccs_score", 1, THREADS,
                   [buf("corr"), buf("scores"), 0.9, THREADS]),
        ] * 2

    def output_buffers(self) -> List[str]:
        return ["corr", "scores"]
