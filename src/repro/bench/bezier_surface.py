"""bezier-surface analog (paper Table I row "bezier-surface", Listing 2).

Bezier surface evaluation: the binomial-blend loop of the paper's Listing 2
computes ``n! / (k! (n-k)!)``-style blends with two decrementing divisor
counters.  Once ``kn > 1`` (or ``nkn > 1``) turns false it stays false —
u&u lets GVN's branch facts delete the re-evaluations in later unrolled
iterations (the FT/TF/FF nodes of the paper's Figure 5), worth 30% on this
loop.  Two further loops evaluate the surface points (Table I lists 3
loops).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, Call, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

DEGREE = 12          # Bernstein degree n.
THREADS = 64
RESOLUTION = 16      # Surface sample points per thread.


class BezierSurface(Benchmark):
    name = "bezier-surface"
    category = "CV and image processing"
    command_line = "-n 4096"
    paper = PaperNumbers(loops=3, compute_percent=67.18,
                         baseline_ms=78.75, baseline_rsd=4.07,
                         heuristic_ms=66.16, heuristic_rsd=3.47)
    seed = 404

    def kernels(self) -> List[KernelDef]:
        # Loop 1: the paper's Listing 2, verbatim structure.
        blend = KernelDef(
            "bezier_blend",
            [Param("k_of", "i64*", restrict=True),
             Param("blends", "f64*", restrict=True),
             Param("n", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("k", Index("k_of", V("gid"))),
                    Assign("nn", V("n")),
                    Assign("kn", V("k")),
                    Assign("nkn", V("n") - V("k")),
                    Assign("blend", Lit(1.0, "f64")),
                    While(V("nn") >= 1, [
                        Assign("blend", V("blend") * V("nn")),
                        Assign("nn", V("nn") - 1),
                        If(V("kn") > 1, [
                            Assign("blend", V("blend") / V("kn")),
                            Assign("kn", V("kn") - 1),
                        ]),
                        If(V("nkn") > 1, [
                            Assign("blend", V("blend") / V("nkn")),
                            Assign("nkn", V("nkn") - 1),
                        ]),
                    ]),
                    Store("blends", V("gid"), V("blend")),
                ]),
            ])

        # Loops 2-3: surface point accumulation using the blends.
        surface = KernelDef(
            "bezier_surface_eval",
            [Param("blends", "f64*", restrict=True),
             Param("ctrl", "f64*", restrict=True),
             Param("out", "f64*", restrict=True),
             Param("res", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("b", Index("blends", V("gid"))),
                    Assign("acc", Lit(0.0, "f64")),
                    For("s", Lit(0, "i64"), V("res"), [
                        Assign("t", V("s") * 1.0 / V("res")),
                        Assign("acc", V("acc") +
                               V("b") * V("t") * Index("ctrl", V("s"))),
                    ]),
                    Assign("acc2", Lit(0.0, "f64")),
                    For("s2", Lit(0, "i64"), V("res"), [
                        Assign("u", 1.0 - V("s2") * 1.0 / V("res")),
                        Assign("acc2", V("acc2") +
                               V("u") * Index("ctrl", V("s2"))),
                    ]),
                    Store("out", V("gid"), V("acc") + V("acc2")),
                ]),
            ])
        return [blend, surface]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        k_of = rng.integers(2, DEGREE - 1, THREADS)
        ctrl = rng.random(RESOLUTION)
        return {
            "k_of": mem.alloc("k_of", "i64", THREADS, k_of),
            "blends": mem.alloc("blends", "f64", THREADS),
            "ctrl": mem.alloc("ctrl", "f64", RESOLUTION),
            "out": mem.alloc("out", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("bezier_blend", 1, THREADS,
                   [buf("k_of"), buf("blends"), DEGREE, THREADS]),
            Launch("bezier_surface_eval", 1, THREADS,
                   [buf("blends"), buf("ctrl"), buf("out"), RESOLUTION,
                    THREADS]),
        ]

    def output_buffers(self) -> List[str]:
        return ["blends", "out"]
