"""contract analog (paper Table I row "contract").

Tensor contraction with compressed/reduced accumulation: nests of small
accumulation loops over contraction indices, with bounds checks.  The
paper's heuristic transforms many of its 46 loops, which inflates compile
time the most of any application (4.58x) and *slows execution down*
(5470 -> 6571 ms): pure FMA accumulation chains expose no redundancy to the
cleanup passes, so u&u only adds code and branches.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, For, GlobalTid, If, Index, KernelDef,
                            Lit, Param, Store, V)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

DIM = 8
THREADS = 64


class Contract(Benchmark):
    name = "contract"
    category = "Data compression/reduction"
    command_line = "64 5"
    paper = PaperNumbers(loops=46, compute_percent=99.61,
                         baseline_ms=5470.18, baseline_rsd=0.76,
                         heuristic_ms=6570.50, heuristic_rsd=0.11)
    seed = 909

    def kernels(self) -> List[KernelDef]:
        contract2 = KernelDef(
            "tensor_contract",
            [Param("a", "f64*", restrict=True),
             Param("b", "f64*", restrict=True),
             Param("out", "f64*", restrict=True),
             Param("dim", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("row", (V("gid") % V("dim")) * V("dim")),
                    Assign("acc", Lit(0.0, "f64")),
                    # Contraction nest: pure FMA chains, nothing for the
                    # cleanup passes to fold after u&u.
                    For("i", Lit(0, "i64"), V("dim"), [
                        For("j", Lit(0, "i64"), V("dim"), [
                            Assign("av", Index("a", V("row") + V("i"))),
                            Assign("bv", Index("b", V("i") * V("dim")
                                               + V("j"))),
                            Assign("acc", V("acc") + V("av") * V("bv")),
                        ]),
                    ]),
                    Store("out", V("gid"), V("acc")),
                ]),
            ])

        reduce_k = KernelDef(
            "tensor_reduce",
            [Param("out", "f64*", restrict=True),
             Param("red", "f64*", restrict=True),
             Param("dim", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("acc", Lit(0.0, "f64")),
                    For("k", Lit(0, "i64"), V("dim"), [
                        Assign("v", Index("out", (V("gid") + V("k"))
                                          % V("threads"))),
                        If(V("v") > 0.0,
                           [Assign("acc", V("acc") + V("v"))],
                           [Assign("acc", V("acc") - V("v"))]),
                    ]),
                    For("k2", Lit(0, "i64"), V("dim"), [
                        Assign("acc", V("acc") * 0.875 + V("k2") * 0.001),
                    ]),
                    Store("red", V("gid"), V("acc")),
                ]),
            ])
        return [contract2, reduce_k]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        a = rng.random(DIM * DIM) - 0.5
        b = rng.random(DIM * DIM) - 0.5
        return {
            "a": mem.alloc("a", "f64", DIM * DIM, a),
            "b": mem.alloc("b", "f64", DIM * DIM, b),
            "out": mem.alloc("out", "f64", THREADS),
            "red": mem.alloc("red", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("tensor_contract", 1, THREADS,
                   [buf("a"), buf("b"), buf("out"), DIM, THREADS]),
            Launch("tensor_reduce", 1, THREADS,
                   [buf("out"), buf("red"), DIM, THREADS]),
        ] * 2

    def output_buffers(self) -> List[str]:
        return ["out", "red"]
