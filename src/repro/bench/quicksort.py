"""quicksort analog (paper Table I row "quicksort").

GPU quicksort's per-thread partition phase: each thread partitions its own
segment around a pivot with branch-heavy compare/swap loops (the real
HeCBench benchmark dispatches segments to threads the same way).  Small
heuristic win in the paper (518 -> 503 ms, 1.03x); the interesting property
is the store/load traffic that limits what u&u can eliminate.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (And, Assign, For, GlobalTid, If, Index,
                            KernelDef, Lit, Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

SEGMENT = 48
THREADS = 64


class Quicksort(Benchmark):
    name = "quicksort"
    category = "Sorting"
    command_line = "10 2048 2048"
    paper = PaperNumbers(loops=15, compute_percent=80.36,
                         baseline_ms=518.19, baseline_rsd=0.29,
                         heuristic_ms=502.68, heuristic_rsd=0.28)
    seed = 777

    def kernels(self) -> List[KernelDef]:
        partition = KernelDef(
            "qs_partition",
            [Param("data", "f64*", restrict=True),
             Param("pivots", "i64*", restrict=True),
             Param("seg", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("base", V("gid") * V("seg")),
                    Assign("pivot", Index("data", V("base")
                                          + V("seg") / 2)),
                    Assign("lo", Lit(0, "i64")),
                    Assign("hi", V("seg") - 1),
                    While(V("lo") <= V("hi"), [
                        # Advance lo past elements below the pivot.
                        If(Index("data", V("base") + V("lo")) < V("pivot"), [
                            Assign("lo", V("lo") + 1),
                        ], [
                            If(Index("data", V("base") + V("hi"))
                               > V("pivot"), [
                                Assign("hi", V("hi") - 1),
                            ], [
                                # Swap.
                                Assign("tmp", Index("data", V("base")
                                                    + V("lo"))),
                                Store("data", V("base") + V("lo"),
                                      Index("data", V("base") + V("hi"))),
                                Store("data", V("base") + V("hi"), V("tmp")),
                                Assign("lo", V("lo") + 1),
                                Assign("hi", V("hi") - 1),
                            ]),
                        ]),
                    ]),
                    Store("pivots", V("gid"), V("lo")),
                ]),
            ])

        # Insertion-sort cleanup pass over small runs (more small loops).
        insertion = KernelDef(
            "qs_insertion",
            [Param("data", "f64*", restrict=True),
             Param("seg", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("base", V("gid") * V("seg")),
                    For("i", Lit(1, "i64"), Lit(12, "i64"), [
                        Assign("key", Index("data", V("base") + V("i"))),
                        Assign("j", V("i") - 1),
                        Assign("done", Lit(0, "i64")),
                        While(And(V("j") >= 0, V("done") == 0), [
                            If(Index("data", V("base") + V("j"))
                               > V("key"), [
                                Store("data", V("base") + V("j") + 1,
                                      Index("data", V("base") + V("j"))),
                                Assign("j", V("j") - 1),
                            ], [
                                Assign("done", Lit(1, "i64")),
                            ]),
                        ]),
                        Store("data", V("base") + V("j") + 1, V("key")),
                    ]),
                ]),
            ])
        return [partition, insertion]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        data = rng.random(SEGMENT * THREADS)
        return {
            "data": mem.alloc("data", "f64", SEGMENT * THREADS, data),
            "pivots": mem.alloc("pivots", "i64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("qs_partition", 1, THREADS,
                   [buf("data"), buf("pivots"), SEGMENT, THREADS]),
            Launch("qs_insertion", 1, THREADS,
                   [buf("data"), SEGMENT, THREADS]),
        ]

    def output_buffers(self) -> List[str]:
        return ["data", "pivots"]
