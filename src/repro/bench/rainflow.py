"""rainflow analog (paper Table I row "rainflow", Listing 6).

Rainflow counting for fatigue analysis: each thread scans its own signal
``x`` and maintains a turning-point stack ``y``.  The loop is the paper's
Listing 6: conditions ``a = x[i] > y[j]``, ``b = x[i] > x[i+1]``,
``c = x[i] < y[j]``, ``d = x[i] < x[i+1]`` and the push ``y[++j] = x[i]``
give 7 paths, with partial redundancies only u&u exposes (Section V):
``x[i+1]`` loaded this iteration is ``x[i]`` of the next, ``y[j]`` equals
the value just stored, and ``a`` in iteration ``i+1`` is decided by which
path iteration ``i`` took.  The paper measures inst_misc -77%,
inst_control -45%, gld_throughput -17% and IPC x2.04 at factor 4.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..frontend.ast import (Assign, GlobalTid, If, Index, KernelDef, Lit,
                            Param, Store, V, While)
from ..gpu.memory import Memory
from .base import Benchmark, Launch, PaperNumbers, buf

SIGNAL_LEN = 96
THREADS = 64


class Rainflow(Benchmark):
    name = "rainflow"
    category = "Simulation"
    command_line = "100000 100"
    paper = PaperNumbers(loops=3, compute_percent=99.55,
                         baseline_ms=7395.28, baseline_rsd=0.18,
                         heuristic_ms=7089.02, heuristic_rsd=0.17)
    seed = 202

    def kernels(self) -> List[KernelDef]:
        # x is laid out per-thread: thread t owns x[t*len .. t*len+len-1],
        # and its turning-point stack y likewise (restrict: no aliasing).
        count = KernelDef(
            "rainflow_count",
            [Param("x", "f64*", restrict=True),
             Param("y", "f64*", restrict=True),
             Param("counts", "i64*", restrict=True),
             Param("length", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("xb", V("gid") * V("length")),
                    Assign("yb", V("gid") * V("length")),
                    Assign("j", Lit(0, "i64")),
                    Store("y", V("yb"), Index("x", V("xb"))),
                    Assign("i", Lit(1, "i64")),
                    # Paper Listing 6 loop: turning-point extraction.
                    While(V("i") < V("length") - 1, [
                        If(Index("x", V("xb") + V("i")) >
                           Index("y", V("yb") + V("j")), [
                            If(Index("x", V("xb") + V("i")) >
                               Index("x", V("xb") + V("i") + 1), [
                                Assign("j", V("j") + 1),
                                Store("y", V("yb") + V("j"),
                                      Index("x", V("xb") + V("i"))),
                            ]),
                        ]),
                        If(Index("x", V("xb") + V("i")) <
                           Index("y", V("yb") + V("j")), [
                            If(Index("x", V("xb") + V("i")) <
                               Index("x", V("xb") + V("i") + 1), [
                                Assign("j", V("j") + 1),
                                Store("y", V("yb") + V("j"),
                                      Index("x", V("xb") + V("i"))),
                            ]),
                        ]),
                        Assign("i", V("i") + 1),
                    ]),
                    Store("counts", V("gid"), V("j")),
                ]),
            ])

        # Amplitude accumulation over extracted turning points (2nd loop).
        amplitude = KernelDef(
            "rainflow_amplitude",
            [Param("y", "f64*", restrict=True),
             Param("counts", "i64*", restrict=True),
             Param("damage", "f64*", restrict=True),
             Param("length", "i64"), Param("threads", "i64")],
            [
                Assign("gid", GlobalTid()),
                If(V("gid") < V("threads"), [
                    Assign("yb", V("gid") * V("length")),
                    Assign("m", Index("counts", V("gid"))),
                    Assign("acc", Lit(0.0, "f64")),
                    Assign("k", Lit(0, "i64")),
                    While(V("k") < V("m"), [
                        Assign("amp", Index("y", V("yb") + V("k") + 1) -
                               Index("y", V("yb") + V("k"))),
                        If(V("amp") < 0.0,
                           [Assign("amp", 0.0 - V("amp"))]),
                        Assign("acc", V("acc") + V("amp") * V("amp")),
                        Assign("k", V("k") + 1),
                    ]),
                    Store("damage", V("gid"), V("acc")),
                ]),
            ])
        return [count, amplitude]

    def setup(self, mem: Memory, rng: np.random.Generator) -> Dict[str, int]:
        x = rng.random(SIGNAL_LEN * THREADS)
        return {
            "x": mem.alloc("x", "f64", SIGNAL_LEN * THREADS, x),
            "y": mem.alloc("y", "f64", SIGNAL_LEN * THREADS),
            "counts": mem.alloc("counts", "i64", THREADS),
            "damage": mem.alloc("damage", "f64", THREADS),
        }

    def launches(self) -> List[Launch]:
        return [
            Launch("rainflow_count", 1, THREADS,
                   [buf("x"), buf("y"), buf("counts"), SIGNAL_LEN, THREADS]),
            Launch("rainflow_amplitude", 1, THREADS,
                   [buf("y"), buf("counts"), buf("damage"), SIGNAL_LEN,
                    THREADS]),
        ]

    def output_buffers(self) -> List[str]:
        return ["y", "counts", "damage"]
