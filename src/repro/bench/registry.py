"""Registry of the 16 benchmark analogs, in Table I order."""

from __future__ import annotations

from typing import Dict, List

from .base import Benchmark
from .bezier_surface import BezierSurface
from .bn import BN
from .bspline_vgh import BsplineVGH
from .ccs import CCS
from .clink import Clink
from .complex_bench import ComplexBench
from .contract import Contract
from .coordinates import Coordinates
from .haccmk import Haccmk
from .lavamd import LavaMD
from .libor import Libor
from .mandelbrot import Mandelbrot
from .qtclustering import QTClustering
from .quicksort import Quicksort
from .rainflow import Rainflow
from .xsbench import XSBench

_CLASSES = [
    BezierSurface, BN, BsplineVGH, CCS, Clink, ComplexBench, Contract,
    Coordinates, Haccmk, LavaMD, Libor, Mandelbrot, QTClustering,
    Quicksort, Rainflow, XSBench,
]


def all_benchmarks() -> List[Benchmark]:
    """Fresh instances of every benchmark, in Table I order."""
    return [cls() for cls in _CLASSES]


def benchmark_by_name(name: str) -> Benchmark:
    for cls in _CLASSES:
        instance = cls()
        if instance.name == name:
            return instance
    raise KeyError(f"unknown benchmark: {name!r}")


def benchmark_names() -> List[str]:
    return [cls().name for cls in _CLASSES]
